"""E6 (Theorem 6.1): exact min st-cut — value equals max-flow, bisection
and marked edges verified, Õ(D²) rounds."""

import pytest

from repro.congest import RoundLedger
from repro.core import flow_value_networkx, min_st_cut, verify_st_cut


@pytest.mark.parametrize("name", ["grid-small", "cylinder", "delaunay"])
def test_min_st_cut(benchmark, instances, name):
    g = instances[name]
    s, t = 0, g.n - 1
    ref = flow_value_networkx(g, s, t, directed=True)
    led = RoundLedger()

    def run():
        return min_st_cut(g, s, t, directed=True,
                          leaf_size=max(12, g.diameter()), ledger=led)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.value == ref
    assert verify_st_cut(g, s, t, res.cut_edge_ids, directed=True)
    d = g.diameter()
    benchmark.extra_info.update({
        "n": g.n, "D": d, "cut_value": res.value,
        "cut_edges": len(res.cut_edge_ids),
        "congest_rounds": led.total(),
        "rounds_per_D2": round(led.total() / d ** 2, 2),
    })
