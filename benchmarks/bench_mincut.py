"""E6 (Theorem 6.1): exact min st-cut — value equals max-flow, bisection
and marked edges verified, Õ(D²) rounds.

Script mode re-runs the families at smoke scale and emits a
``BENCH_mincut.json`` report for ``scripts/bench_history.py``::

    PYTHONPATH=src python benchmarks/bench_mincut.py \\
        [--json BENCH_mincut.json]
"""

import argparse
import time

import pytest

from _json_out import add_json_arg, emit_json
from repro.congest import RoundLedger
from repro.core import flow_value_networkx, min_st_cut, verify_st_cut
from repro.planar.generators import cylinder, grid, randomize_weights


@pytest.mark.parametrize("name", ["grid-small", "cylinder", "delaunay"])
def test_min_st_cut(benchmark, instances, name):
    g = instances[name]
    s, t = 0, g.n - 1
    ref = flow_value_networkx(g, s, t, directed=True)
    led = RoundLedger()

    def run():
        return min_st_cut(g, s, t, directed=True,
                          leaf_size=max(12, g.diameter()), ledger=led)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.value == ref
    assert verify_st_cut(g, s, t, res.cut_edge_ids, directed=True)
    d = g.diameter()
    benchmark.extra_info.update({
        "n": g.n, "D": d, "cut_value": res.value,
        "cut_edges": len(res.cut_edge_ids),
        "congest_rounds": led.total(),
        "rounds_per_D2": round(led.total() / d ** 2, 2),
    })


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="E6: exact min st-cut — value equals max-flow, "
                    "marked edges verified")
    add_json_arg(ap)
    args = ap.parse_args(argv)
    ok = True
    rows = {}

    families = {
        "grid": randomize_weights(grid(5, 6), seed=1,
                                  directed_capacities=True),
        "cylinder": randomize_weights(cylinder(4, 8), seed=3,
                                      directed_capacities=True),
    }
    for name, g in families.items():
        s, t = 0, g.n - 1
        ref = flow_value_networkx(g, s, t, directed=True)
        led = RoundLedger()
        t0 = time.perf_counter()
        res = min_st_cut(g, s, t, directed=True,
                         leaf_size=max(12, g.diameter()), ledger=led)
        cut_s = time.perf_counter() - t0
        valid = verify_st_cut(g, s, t, res.cut_edge_ids, directed=True)
        ok &= res.value == ref and valid
        d = g.diameter()
        rows[name] = {
            "n": g.n, "D": d, "cut_value": res.value, "cut_s": cut_s,
            "cut_edges": len(res.cut_edge_ids),
            "congest_rounds": led.total(),
            "rounds_per_D2": round(led.total() / d ** 2, 2),
        }
        print(f"{name}: cut={res.value} ({cut_s * 1e3:.1f}ms, "
              f"{len(res.cut_edge_ids)} edges, {led.total()} rounds)"
              + ("" if res.value == ref and valid else "  FAIL"))

    print(f"bench_mincut: {'PASS' if ok else 'FAIL'}")
    emit_json(args.json, "mincut", rows, ok)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
