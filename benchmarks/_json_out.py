"""Shared ``--json`` emitter for the benchmark scripts.

Every ``benchmarks/bench_*.py`` script prints a human-readable table;
CI additionally wants a machine-readable artifact it can upload and
diff across runs.  ``add_json_arg`` registers the flag and
``emit_json`` writes one self-describing report::

    {"bench": "mutation", "ok": true, "rows": {...},
     "python": "3.12.1", "platform": "...", "argv": [...],
     "timestamp": "2026-08-07T12:00:00+0000"}

``rows`` is whatever metric mapping the script measured (latencies in
seconds, throughputs in q/s, speedup factors); ``ok`` mirrors the
script's acceptance verdict so a gate can fail on the exit code *or*
the artifact.
"""

import json
import platform
import sys
import time


def add_json_arg(ap):
    """Register ``--json PATH`` on an ``argparse`` parser."""
    ap.add_argument("--json", metavar="PATH", default=None,
                    help="also write the measurements as a JSON report")


def emit_json(path, bench, rows, ok):
    """Write the report to ``path`` (no-op when ``path`` is falsy)."""
    if not path:
        return
    report = {
        "bench": bench,
        "ok": bool(ok),
        "rows": rows,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "argv": sys.argv[1:],
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"json report              : {path}")
