"""Workload benchmark: dynamic-scenario replay parity + open-loop
latency on the served stack (DESIGN.md §12).

Two modes:

* under pytest (part of the benchmark suite): times a warm in-process
  replay of a small evacuation scenario, asserting bit-parity against
  a second reference replay inline;

* as a script, the standing acceptance gate every serving-path perf
  PR must keep green —

      PYTHONPATH=src python benchmarks/bench_workload.py \\
          [--rows 64] [--cols 64] [--scenario evacuation] \\
          [--json BENCH_workload.json]

  runs, on the rows x cols scenario:

  1. **reference replay** — the scenario against a fresh
     single-threaded :class:`~repro.service.catalog.GraphCatalog`
     (mutations, query bursts, an ``audit_labeling`` checkpoint after
     every mutation epoch);
  2. **served replay** — the same scenario over the full stack
     (forked :class:`~repro.server.pool.WarmWorkerPool` behind a
     :class:`~repro.server.app.QueryServer`, NDJSON client), then
     byte-compares the two logs: every query result, every typed
     error, every audit checkpoint must be *bit-identical*;
  3. **open-loop load** — the scenario's query mix replayed through
     the load generator at a fixed arrival rate over several
     connections, reporting p50/p95/p99 latency, throughput and error
     counts per query type.

  Acceptance: served replay bit-parity PASS **and** warm p99 latency
  under ``--p99-budget`` seconds **and** zero load-phase errors.
"""

import argparse
import time

from _json_out import add_json_arg, emit_json

from repro.workload import (
    assert_replay_parity,
    reference_replay,
    replay_scenario,
)


# ----------------------------------------------------------------------
# pytest mode
# ----------------------------------------------------------------------
def test_reference_replay_deterministic(benchmark, small_scenario):
    """Warm in-process replay of the small evacuation scenario."""
    from repro.service import GraphCatalog
    from repro.workload import CatalogExecutor

    baseline = reference_replay(small_scenario, leaf_size=6)

    def replay_once():
        catalog = GraphCatalog()
        return replay_scenario(small_scenario,
                               CatalogExecutor(catalog), leaf_size=6)

    log = benchmark(replay_once)
    assert_replay_parity(log, baseline)
    assert all(a["audit"]["error"] is None
               for a in log.audit_checkpoints())
    benchmark.extra_info.update(
        {"records": len(log.records),
         "queries": small_scenario.query_count(),
         "epochs": small_scenario.mutation_epochs()})


def test_loadgen_stub_overhead(benchmark, small_scenario):
    """Generator overhead: open-loop dispatch against a no-op target
    (per-query cost of the harness itself, not of any server)."""
    from repro.workload import run_load
    from repro.workload.scenario import QueryBurst

    queries = [q for e in small_scenario.events
               if isinstance(e, QueryBurst) for q in e.queries]

    class _Null:
        def query(self, q):
            return q

    report = benchmark(lambda: run_load(queries, lambda i: _Null(),
                                        rate=5000.0, connections=2))
    assert report.error_count == 0
    assert report.total.count == len(queries)


# ----------------------------------------------------------------------
# script mode
# ----------------------------------------------------------------------
def main(argv=None):
    from repro.server import QueryServer, ServiceClient, WarmWorkerPool
    from repro.workload import ClientExecutor, make_scenario, run_load
    from repro.workload.scenario import QueryBurst

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scenario", default="evacuation",
                    choices=("evacuation", "outage", "flood"))
    ap.add_argument("--rows", type=int, default=64)
    ap.add_argument("--cols", type=int, default=64)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--epochs", type=int, default=4,
                    help="mutation epochs (ignored by flood, which "
                         "uses its stage profile)")
    ap.add_argument("--queries-per-epoch", type=int, default=24)
    ap.add_argument("--leaf-size", type=int, default=None,
                    help="BDD leaf size for labelings and audits")
    ap.add_argument("--workers", type=int, default=2,
                    help="pool workers behind the server")
    ap.add_argument("--rate", type=float, default=12.0,
                    help="open-loop arrival rate (queries/second); "
                         "two warm workers sustain ~20 q/s on the "
                         "64x64 evacuation scenario, so the default "
                         "probes a ~60%% utilization operating point "
                         "rather than saturation (open-loop latency "
                         "explodes past capacity by design)")
    ap.add_argument("--connections", type=int, default=4)
    ap.add_argument("--load-repeats", type=int, default=3,
                    help="times the scenario's query mix is replayed "
                         "through the load generator")
    ap.add_argument("--p99-budget", type=float, default=2.0,
                    help="acceptance: warm p99 latency budget "
                         "(seconds).  ~1.2 s measured at the default "
                         "operating point on the 64x64 scenario: "
                         "result memoization is per worker, so the "
                         "tail is the first occurrence of a query on "
                         "the worker that did not serve it during "
                         "warm-up.  Saturation — the regression this "
                         "gate exists to catch — shows up an order "
                         "of magnitude above the budget")
    add_json_arg(ap)
    args = ap.parse_args(argv)

    kwargs = {"rows": args.rows, "cols": args.cols, "seed": args.seed,
              "queries_per_epoch": args.queries_per_epoch}
    if args.scenario != "flood":
        kwargs["epochs"] = args.epochs
    scenario = make_scenario(args.scenario, **kwargs)
    print(f"scenario: {scenario.name}  events={len(scenario.events)}  "
          f"queries={scenario.query_count()}  "
          f"mutation epochs={scenario.mutation_epochs()}")

    # -- 1. single-threaded reference replay (the ground truth)
    t0 = time.perf_counter()
    reference = reference_replay(scenario, leaf_size=args.leaf_size)
    ref_s = time.perf_counter() - t0
    print(f"reference replay         : {ref_s:8.2f} s "
          f"({len(reference.records)} records, "
          f"digest {reference.digest()[:16]})")

    # -- 2. served replay over the full stack, then byte-compare
    pool = WarmWorkerPool(workers=args.workers)
    for name, g in scenario.build_graphs().items():
        pool.register(name, g)
    pool.prewarm(kinds=("flow", "distance"))
    pool.start()
    server = QueryServer(pool).start_background()
    try:
        with ServiceClient(*server.address, timeout=600) as client:
            t0 = time.perf_counter()
            served = replay_scenario(scenario, ClientExecutor(client),
                                     leaf_size=args.leaf_size)
            served_s = time.perf_counter() - t0
        print(f"served replay            : {served_s:8.2f} s "
              f"({args.workers} workers, digest "
              f"{served.digest()[:16]})")
        compared = assert_replay_parity(served, reference)
        audits = served.audit_checkpoints()
        parity_ok = True
        print(f"replay bit-parity        : PASS ({compared} records "
              f"compared, {len(audits)} audit checkpoints)")

        # -- 3. open-loop load against the warm server.  One untimed
        # pass re-memoizes the scenario's full mix under the *final*
        # weights first: the replay's mutation epochs invalidated the
        # early-epoch distance/girth results, and the gate is a *warm*
        # p99 — cold rebuild spikes are bench_service's subject, not
        # this one's.
        queries = [q for e in scenario.events
                   if isinstance(e, QueryBurst) for q in e.queries]
        with ServiceClient(*server.address, timeout=600) as warmer:
            warmer.run(queries)
        queries = queries * args.load_repeats
        report = run_load(
            queries,
            lambda i: ServiceClient(*server.address,
                                    timeout=600).connect(),
            rate=args.rate, connections=args.connections,
            seed=args.seed)
    finally:
        server.shutdown()
        pool.close()

    rows = report.rows()
    for kind, row in sorted(rows.items()):
        if kind == "total" or "p99_s" not in row:
            continue
        print(f"  {kind:<9}: {row['count']:4d} queries  "
              f"p50={row['p50_s'] * 1e3:7.2f} ms  "
              f"p95={row['p95_s'] * 1e3:7.2f} ms  "
              f"p99={row['p99_s'] * 1e3:7.2f} ms  "
              f"{row['throughput_qps']:7.0f} q/s")
    total = rows["total"]
    print(f"open-loop load           : {total['count']} queries over "
          f"{report.seconds:.2f} s at {args.rate:g}/s offered, "
          f"{report.connections} connections")

    p99 = report.p99()
    p99_ok = p99 <= args.p99_budget
    errors_ok = report.error_count == 0
    ok = parity_ok and p99_ok and errors_ok
    print(f"acceptance (parity PASS, p99 <= {args.p99_budget:g} s, "
          f"0 errors) : {'PASS' if ok else 'FAIL'} "
          f"(p99={p99 * 1e3:.2f} ms, errors={report.error_count})")
    emit_json(args.json, "workload", {
        "scenario": {"kind": args.scenario, "name": scenario.name,
                     "rows": args.rows, "cols": args.cols,
                     "seed": args.seed,
                     "queries": scenario.query_count(),
                     "mutation_epochs": scenario.mutation_epochs(),
                     "leaf_size": args.leaf_size},
        "reference_replay_s": ref_s,
        "served_replay_s": served_s,
        "replay_records": compared,
        "audit_checkpoints": len(audits),
        "replay_digest": served.digest(),
        "parity": "PASS" if parity_ok else "FAIL",
        "workers": args.workers,
        "load": rows,
        "p99_s": p99,
        "p99_budget_s": args.p99_budget,
    }, ok)
    return 0 if ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
