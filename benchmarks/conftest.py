"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one experiment of the index in DESIGN.md §4:
it re-runs the algorithm under ``pytest-benchmark`` timing, records the
CONGEST round counts in ``extra_info`` (rounds — not wall time — are the
quantity the paper bounds), and asserts the correctness oracle inline so
a benchmark can never silently report numbers for a wrong answer.
"""

import pytest

from repro.planar.generators import (
    cylinder,
    grid,
    random_planar,
    randomize_weights,
)


@pytest.fixture(scope="session")
def instances():
    """Shared weighted instances across benchmark modules."""
    return {
        "grid-small": randomize_weights(grid(5, 6), seed=1,
                                        directed_capacities=True),
        "grid-large": randomize_weights(grid(7, 9), seed=2,
                                        directed_capacities=True),
        "cylinder": randomize_weights(cylinder(4, 8), seed=3,
                                      directed_capacities=True),
        "delaunay": randomize_weights(random_planar(60, seed=4), seed=4,
                                      directed_capacities=True),
    }


@pytest.fixture(scope="session")
def small_scenario():
    """A tiny evacuation scenario for the workload benchmarks — big
    enough that mutation repair and mixed traffic really run, small
    enough for the pytest-mode smoke."""
    from repro.workload import evacuation_scenario

    return evacuation_scenario(rows=5, cols=6, seed=1, epochs=2,
                               queries_per_epoch=6, edges_per_epoch=3)
