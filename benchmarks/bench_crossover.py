"""E10 (Section 1 comparison table): round-model crossover — for which
diameters does the paper's Õ(D²) beat the D·n^{1/2+o(1)} of de Vos [4]?
Plus an executable data point: the naive distributed Bellman-Ford dual
SSSP vs our measured labeling rounds on the same instance.

Script mode re-runs both and emits a ``BENCH_crossover.json`` report
for ``scripts/bench_history.py``::

    PYTHONPATH=src python benchmarks/bench_crossover.py \\
        [--json BENCH_crossover.json]
"""

import argparse
import time

import pytest

from _json_out import add_json_arg, emit_json

from repro.analysis.experiments import experiment_crossover
from repro.baselines.distributed_naive import naive_dual_sssp_rounds
from repro.bdd import build_bdd
from repro.congest import RoundLedger
from repro.labeling import DualDistanceLabeling
from repro.planar.generators import grid, randomize_weights


def test_crossover_table(benchmark):
    rows = benchmark.pedantic(experiment_crossover, rounds=1, iterations=1)
    assert rows[0]["beats_deVos"] == "yes"      # low-D regime: we win
    assert rows[-1]["beats_deVos"] == "no"      # near-linear D: [4] wins
    benchmark.extra_info["crossover_D"] = next(
        r["D"] for r in rows if r["beats_deVos"] == "no")


@pytest.mark.parametrize("cols", [6, 12])
def test_measured_vs_naive_sssp(benchmark, cols):
    """Executable comparison on a low-diameter family: the naive dual
    Bellman-Ford costs Θ(#faces) rounds; the labeling costs Õ(D²)."""
    g = randomize_weights(grid(3, cols), seed=cols)
    lengths = {d: g.weights[d >> 1] for d in g.darts()}
    led = RoundLedger()

    def run():
        bdd = build_bdd(g, leaf_size=12, ledger=led)
        return DualDistanceLabeling(bdd, lengths, ledger=led)

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "n": g.n, "D": g.diameter(),
        "labeling_rounds": led.total(),
        "naive_bf_rounds": naive_dual_sssp_rounds(g),
    })


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="E10: round-model crossover table + measured "
                    "labeling rounds vs naive dual Bellman-Ford")
    add_json_arg(ap)
    args = ap.parse_args(argv)
    ok = True
    rows = {}

    t0 = time.perf_counter()
    table = experiment_crossover()
    table_s = time.perf_counter() - t0
    ok &= table[0]["beats_deVos"] == "yes"
    ok &= table[-1]["beats_deVos"] == "no"
    crossover_d = next(r["D"] for r in table
                       if r["beats_deVos"] == "no")
    rows["table"] = {"table_s": table_s, "crossover_D": crossover_d}

    g = randomize_weights(grid(3, 6), seed=6)
    lengths = {d: g.weights[d >> 1] for d in g.darts()}
    led = RoundLedger()
    t0 = time.perf_counter()
    bdd = build_bdd(g, leaf_size=12, ledger=led)
    DualDistanceLabeling(bdd, lengths, ledger=led)
    labeling_s = time.perf_counter() - t0
    naive = naive_dual_sssp_rounds(g)
    rows["measured"] = {
        "n": g.n, "D": g.diameter(), "labeling_s": labeling_s,
        "labeling_rounds": led.total(), "naive_bf_rounds": naive,
    }

    print(f"crossover_D={crossover_d} (table in {table_s * 1e3:.1f}ms); "
          f"labeling {led.total()} rounds vs naive {naive}")
    print(f"bench_crossover: {'PASS' if ok else 'FAIL'}")
    emit_json(args.json, "crossover", rows, ok)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
