"""E7 (Theorems 1.3 / 6.2): approximate st-planar flow — value within
(1−ε), assignment feasible, cut valid; ε sweep shows the accuracy/round
trade-off of the n^{o(1)}/ε² oracle budget.

Script mode re-runs the ε sweep at smoke scale and emits a
``BENCH_approx_flow.json`` report for ``scripts/bench_history.py``::

    PYTHONPATH=src python benchmarks/bench_approx_flow.py \\
        [--json BENCH_approx_flow.json]
"""

import argparse
import time

import pytest

from _json_out import add_json_arg, emit_json

from repro.congest import RoundLedger
from repro.core import approx_max_st_flow, flow_value_networkx, \
    validate_flow, verify_st_cut
from repro.planar.generators import grid, randomize_weights


@pytest.mark.parametrize("eps", [0.4, 0.2, 0.1])
def test_approx_flow_eps_sweep(benchmark, eps):
    g = randomize_weights(grid(5, 7), seed=3)
    s, t = 0, g.n - 1
    ref = flow_value_networkx(g, s, t, directed=False)
    led = RoundLedger()

    def run():
        return approx_max_st_flow(g, s, t, eps=eps, seed=5, ledger=led)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    validate_flow(g, s, t, res.flow, res.value, directed=False)
    assert verify_st_cut(g, s, t, res.cut_edge_ids, directed=False)
    assert (1 - 2 * eps) * ref <= res.value <= ref + 1e-9
    benchmark.extra_info.update({
        "n": g.n, "D": g.diameter(), "eps": eps,
        "value_ratio": round(res.value / ref, 3),
        "cut_ratio": round(res.cut_capacity / ref, 3),
        "ma_rounds": res.ma_rounds,
        "congest_rounds": led.total(),
    })


@pytest.mark.parametrize("k", [0, 1])
def test_approx_flow_size_sweep(benchmark, k):
    g = randomize_weights(grid(4 + 2 * k, 6 + 2 * k), seed=k)
    s, t = 0, g.n - 1
    ref = flow_value_networkx(g, s, t, directed=False)

    def run():
        return approx_max_st_flow(g, s, t, eps=0.25, seed=k)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.value <= ref + 1e-9
    benchmark.extra_info.update({
        "n": g.n, "D": g.diameter(),
        "value_ratio": round(res.value / ref, 3),
    })


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="E7: (1-eps)-approximate st-planar flow sweep with "
                    "feasibility/cut validation")
    add_json_arg(ap)
    ap.add_argument("--eps", type=float, nargs="+", default=[0.4, 0.2])
    args = ap.parse_args(argv)
    ok = True
    rows = {}

    g = randomize_weights(grid(5, 7), seed=3)
    s, t = 0, g.n - 1
    ref = flow_value_networkx(g, s, t, directed=False)
    for eps in args.eps:
        led = RoundLedger()
        t0 = time.perf_counter()
        res = approx_max_st_flow(g, s, t, eps=eps, seed=5, ledger=led)
        approx_s = time.perf_counter() - t0
        validate_flow(g, s, t, res.flow, res.value, directed=False)
        valid_cut = verify_st_cut(g, s, t, res.cut_edge_ids,
                                  directed=False)
        in_band = (1 - 2 * eps) * ref <= res.value <= ref + 1e-9
        ok &= valid_cut and in_band
        rows[f"eps_{eps}"] = {
            "n": g.n, "eps": eps, "approx_s": approx_s,
            "value_ratio": round(res.value / ref, 3),
            "ma_rounds": res.ma_rounds,
            "congest_rounds": led.total(),
        }
        print(f"eps={eps}: value={res.value:.3f}/{ref:.3f} "
              f"({approx_s * 1e3:.1f}ms, {led.total()} rounds)"
              + ("" if valid_cut and in_band else "  FAIL"))

    print(f"bench_approx_flow: {'PASS' if ok else 'FAIL'}")
    emit_json(args.json, "approx_flow", rows, ok)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
