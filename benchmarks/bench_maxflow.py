"""E1 (Theorem 1.2): exact max st-flow — value matches the oracle, and
the round count divided by D² stays flat across the diameter sweep."""

import pytest

from repro.baselines.distributed_naive import naive_maxflow_rounds
from repro.congest import RoundLedger
from repro.core import PlanarMaxFlow, flow_value_networkx
from repro.planar.generators import grid, randomize_weights


@pytest.mark.parametrize("name", ["grid-small", "cylinder", "delaunay"])
def test_maxflow_families(benchmark, instances, name):
    g = instances[name]
    s, t = 0, g.n - 1
    ref = flow_value_networkx(g, s, t, directed=True)
    solver = PlanarMaxFlow(g, directed=True,
                           leaf_size=max(12, g.diameter()))

    def run():
        return solver.solve(s, t)

    res = benchmark(run)
    assert res.value == ref

    led = RoundLedger()
    solver_counted = PlanarMaxFlow(g, directed=True,
                                   leaf_size=max(12, g.diameter()),
                                   ledger=led)
    solver_counted.solve(s, t)
    d = g.diameter()
    benchmark.extra_info.update({
        "n": g.n, "D": d, "value": res.value,
        "congest_rounds": led.total(),
        "rounds_per_D2": round(led.total() / d ** 2, 2),
        "naive_rounds": naive_maxflow_rounds(g),
    })


@pytest.mark.parametrize("k", [0, 1, 2])
def test_maxflow_diameter_sweep(benchmark, k):
    """Fixed family, growing D: the Õ(D²) shape experiment."""
    g = randomize_weights(grid(3, 6 + 4 * k), seed=k,
                          directed_capacities=True)
    s, t = 0, g.n - 1
    ref = flow_value_networkx(g, s, t, directed=True)
    led = RoundLedger()

    def run():
        solver = PlanarMaxFlow(g, directed=True, leaf_size=12,
                               ledger=led)
        return solver.solve(s, t)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.value == ref
    d = g.diameter()
    benchmark.extra_info.update({
        "n": g.n, "D": d,
        "congest_rounds": led.total(),
        "rounds_per_D2": round(led.total() / d ** 2, 2),
    })
