"""E1 (Theorem 1.2): exact max st-flow — value matches the oracle, and
the round count divided by D² stays flat across the diameter sweep.

Script mode re-runs the families at smoke scale and emits a
``BENCH_maxflow.json`` report for ``scripts/bench_history.py``::

    PYTHONPATH=src python benchmarks/bench_maxflow.py \\
        [--json BENCH_maxflow.json]
"""

import argparse
import time

import pytest

from _json_out import add_json_arg, emit_json
from repro.planar.generators import cylinder

from repro.baselines.distributed_naive import naive_maxflow_rounds
from repro.congest import RoundLedger
from repro.core import PlanarMaxFlow, flow_value_networkx
from repro.planar.generators import grid, randomize_weights


@pytest.mark.parametrize("name", ["grid-small", "cylinder", "delaunay"])
def test_maxflow_families(benchmark, instances, name):
    g = instances[name]
    s, t = 0, g.n - 1
    ref = flow_value_networkx(g, s, t, directed=True)
    solver = PlanarMaxFlow(g, directed=True,
                           leaf_size=max(12, g.diameter()))

    def run():
        return solver.solve(s, t)

    res = benchmark(run)
    assert res.value == ref

    led = RoundLedger()
    solver_counted = PlanarMaxFlow(g, directed=True,
                                   leaf_size=max(12, g.diameter()),
                                   ledger=led)
    solver_counted.solve(s, t)
    d = g.diameter()
    benchmark.extra_info.update({
        "n": g.n, "D": d, "value": res.value,
        "congest_rounds": led.total(),
        "rounds_per_D2": round(led.total() / d ** 2, 2),
        "naive_rounds": naive_maxflow_rounds(g),
    })


@pytest.mark.parametrize("k", [0, 1, 2])
def test_maxflow_diameter_sweep(benchmark, k):
    """Fixed family, growing D: the Õ(D²) shape experiment."""
    g = randomize_weights(grid(3, 6 + 4 * k), seed=k,
                          directed_capacities=True)
    s, t = 0, g.n - 1
    ref = flow_value_networkx(g, s, t, directed=True)
    led = RoundLedger()

    def run():
        solver = PlanarMaxFlow(g, directed=True, leaf_size=12,
                               ledger=led)
        return solver.solve(s, t)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.value == ref
    d = g.diameter()
    benchmark.extra_info.update({
        "n": g.n, "D": d,
        "congest_rounds": led.total(),
        "rounds_per_D2": round(led.total() / d ** 2, 2),
    })


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="E1: exact max st-flow vs the networkx oracle "
                    "across two instance families")
    add_json_arg(ap)
    args = ap.parse_args(argv)
    ok = True
    rows = {}

    families = {
        "grid": randomize_weights(grid(5, 6), seed=1,
                                  directed_capacities=True),
        "cylinder": randomize_weights(cylinder(4, 8), seed=3,
                                      directed_capacities=True),
    }
    for name, g in families.items():
        s, t = 0, g.n - 1
        ref = flow_value_networkx(g, s, t, directed=True)
        led = RoundLedger()
        solver = PlanarMaxFlow(g, directed=True,
                               leaf_size=max(12, g.diameter()),
                               ledger=led)
        t0 = time.perf_counter()
        res = solver.solve(s, t)
        solve_s = time.perf_counter() - t0
        ok &= res.value == ref
        d = g.diameter()
        rows[name] = {
            "n": g.n, "D": d, "value": res.value, "solve_s": solve_s,
            "congest_rounds": led.total(),
            "rounds_per_D2": round(led.total() / d ** 2, 2),
            "naive_rounds": naive_maxflow_rounds(g),
        }
        print(f"{name}: value={res.value} ({solve_s * 1e3:.1f}ms, "
              f"{led.total()} rounds, {rows[name]['rounds_per_D2']}/D^2)"
              + ("" if res.value == ref else "  FAIL"))

    print(f"bench_maxflow: {'PASS' if ok else 'FAIL'}")
    emit_json(args.json, "maxflow", rows, ok)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
