"""Observability overhead + stitched-trace benchmark (DESIGN.md §13).

Two acceptance gates:

1. **Disabled overhead ≤ 2%** — the whole ``repro.obs`` layer sits
   behind ``obs.enabled()`` checks, so with observability off the warm
   query path must cost within 2% of an uninstrumented replica.  The
   replica is exactly what ``execute_query`` did before the layer
   existed: entry lookup, planner resolution, and the untouched
   ``_serve`` core (cache probe + dispatch) — so the comparison
   isolates precisely the added branches.  Both loops run the same
   warm :class:`~repro.service.queries.DistanceQuery` mix over a grid
   (default 64×64), interleaved across repeated trials with the median
   trial per side compared, which suppresses drift on a shared CI box.

2. **Stitched cross-process trace, durations within 10% of wall** —
   with observability on, each query served through a forked 1-worker
   pool behind a live TCP server must produce exactly one trace whose
   spans parent-link into a single tree rooted at ``client.query``,
   spanning ≥ 2 processes, and the summed root-span durations must be
   within 10% of the wall time measured around the client calls — the
   spans really measure the query, not some fraction of it.

Under pytest (benchmark suite) the same paths run at smoke scale with
the structural assertions inline; timing gates are script-mode only.

    PYTHONPATH=src python benchmarks/bench_obs.py \\
        [--rows 64] [--cols 64] [--queries 200] [--trials 9] \\
        [--json BENCH_obs.json]
"""

import argparse
import random
import statistics
import time

from _json_out import add_json_arg, emit_json

from repro import obs
from repro.planar.generators import grid, randomize_weights
from repro.server import QueryServer, ServiceClient, WarmWorkerPool
from repro.service import DistanceQuery, GraphCatalog, execute_query
from repro.service.queries import _serve


def _make_instance(rows, cols, seed):
    return randomize_weights(grid(rows, cols), seed=seed,
                             directed_capacities=True)


def _warm_queries(name, g, count, seed):
    rng = random.Random(seed)
    nf = g.num_faces()
    pairs = {(rng.randrange(nf), rng.randrange(nf))
             for _ in range(max(8, count // 8))}
    distinct = [DistanceQuery(name, f, h) for f, h in sorted(pairs)]
    return [distinct[i % len(distinct)] for i in range(count)]


def _uninstrumented_replica(catalog, query):
    """The pre-obs ``execute_query`` body: lookup, plan, serve."""
    entry = catalog.get(query.graph)
    backend = catalog.planner.plan(query, entry.graph)
    return _serve(catalog, entry, query, backend)


def measure_disabled_overhead(g, queries, trials):
    """(instrumented_s, replica_s, overhead_frac) per warm query, using
    the median of interleaved trials for each side."""
    assert not obs.enabled()
    catalog = GraphCatalog()
    catalog.register("g", g)
    for q in queries:
        r = execute_query(catalog, q)
        assert _uninstrumented_replica(catalog, q).result == r.result
    inst, repl = [], []
    for _ in range(trials):
        t0 = time.perf_counter()
        for q in queries:
            execute_query(catalog, q)
        inst.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        for q in queries:
            _uninstrumented_replica(catalog, q)
        repl.append(time.perf_counter() - t0)
    inst_s = statistics.median(inst) / len(queries)
    repl_s = statistics.median(repl) / len(queries)
    return inst_s, repl_s, inst_s / repl_s - 1.0


def measure_stitched_traces(g, queries, workers=1):
    """Serve ``queries`` through a forked pool + TCP server with the
    layer on; returns ``(wall_s, span_s, trees)`` where ``trees`` is a
    list of per-query structural summaries (one stitched tree each)."""
    ring = obs.RingBufferSink()
    obs.enable(ring)
    try:
        pool = WarmWorkerPool(workers=workers)
        pool.register("g", g)
        pool.prewarm(kinds=("distance",))
        pool.start()
        server = QueryServer(pool).start_background()
        host, port = server.address
        wall_s = 0.0
        with ServiceClient(host, port, timeout=60) as client:
            for q in queries:
                t0 = time.perf_counter()
                client.query(q)
                wall_s += time.perf_counter() - t0
            pool.drain()
        # worker span deltas ride the result queue; the last ones land
        # just after the futures resolve
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            roots = [s for s in ring.spans(name="client.query")]
            done = {s["trace"] for s in ring.spans(name="query.execute")}
            if len(roots) == len(queries) \
                    and all(r["trace"] in done for r in roots):
                break
            time.sleep(0.05)
        server.shutdown()
        pool.close()
        trees = []
        span_s = 0.0
        for root in ring.spans(name="client.query"):
            spans = ring.spans(trace=root["trace"])
            ids = {s["span"] for s in spans}
            orphans = [s for s in spans
                       if s["parent"] is not None
                       and s["parent"] not in ids]
            roots = [s for s in spans if s["parent"] is None]
            trees.append({
                "trace": root["trace"],
                "spans": len(spans),
                "pids": len({s["pid"] for s in spans}),
                "single_root": len(roots) == 1,
                "orphans": len(orphans),
                "names": sorted({s["name"] for s in spans}),
            })
            span_s += root["seconds"]
        return wall_s, span_s, trees
    finally:
        obs.reset()


def check_trees(trees, count, expect_pids=2):
    """Every query yields one fully stitched, cross-process tree."""
    ok = len(trees) == count
    for t in trees:
        ok = ok and t["single_root"] and t["orphans"] == 0 \
            and t["pids"] >= expect_pids \
            and {"client.query", "server.query",
                 "query.execute"} <= set(t["names"])
    return ok


# ----------------------------------------------------------------------
# pytest mode (structural smoke; timing gates are script-mode)
# ----------------------------------------------------------------------
def test_obs_disabled_overhead_smoke(benchmark, instances):
    obs.reset()
    g = instances["grid-large"]
    catalog = GraphCatalog()
    catalog.register("g", g)
    queries = _warm_queries("g", g, 64, seed=5)
    for q in queries:
        execute_query(catalog, q)
    benchmark(lambda: [execute_query(catalog, q) for q in queries])
    # disabled means *nothing* was recorded
    assert obs.registry().snapshot() == {}
    benchmark.extra_info.update({"n": g.n, "queries": len(queries)})


def test_obs_stitched_trace_smoke(instances):
    obs.reset()
    g = instances["grid-small"]
    queries = _warm_queries("g", g, 6, seed=5)
    wall_s, span_s, trees = measure_stitched_traces(g, queries)
    assert check_trees(trees, len(queries))
    assert 0 < span_s <= wall_s * 1.10


# ----------------------------------------------------------------------
# script mode
# ----------------------------------------------------------------------
def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--rows", type=int, default=64)
    ap.add_argument("--cols", type=int, default=64)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--queries", type=int, default=200,
                    help="warm distance queries per overhead trial")
    ap.add_argument("--trials", type=int, default=9,
                    help="interleaved timing trials (median compared)")
    ap.add_argument("--traced-queries", type=int, default=10,
                    help="queries served for the stitched-trace gate")
    ap.add_argument("--max-overhead", type=float, default=0.02,
                    help="disabled-path overhead gate (fraction)")
    add_json_arg(ap)
    args = ap.parse_args(argv)

    g = _make_instance(args.rows, args.cols, args.seed)
    print(f"instance: {args.rows}x{args.cols} grid, n={g.n}, m={g.m}, "
          f"faces={g.num_faces()}")

    # -- gate 1: disabled overhead on the warm query path
    obs.reset()
    queries = _warm_queries("g", g, args.queries, seed=args.seed)
    inst_s, repl_s, overhead = measure_disabled_overhead(
        g, queries, args.trials)
    print(f"warm query, obs disabled : {inst_s * 1e6:8.2f} us/query")
    print(f"warm query, uninstrum.   : {repl_s * 1e6:8.2f} us/query")
    ok1 = overhead <= args.max_overhead
    print(f"acceptance (disabled overhead <= "
          f"{args.max_overhead:.0%}): "
          f"{'PASS' if ok1 else 'FAIL'} ({overhead:+.2%})")

    # -- gate 2: stitched cross-process trace, durations ~ wall
    traced = _warm_queries("g", g, args.traced_queries,
                           seed=args.seed + 1)
    wall_s, span_s, trees = measure_stitched_traces(g, traced)
    stitched = check_trees(trees, len(traced))
    ratio = span_s / wall_s if wall_s > 0 else 0.0
    ok2 = stitched and abs(ratio - 1.0) <= 0.10
    pids = max((t["pids"] for t in trees), default=0)
    print(f"traced queries           : {len(traced)} over "
          f"{pids} processes; root spans cover {ratio:.1%} of "
          f"{wall_s * 1e3:.1f} ms wall")
    print(f"acceptance (stitched tree, span sum within 10% of wall): "
          f"{'PASS' if ok2 else 'FAIL'}")

    ok = ok1 and ok2
    emit_json(args.json, "obs", {
        "instance": {"rows": args.rows, "cols": args.cols, "n": g.n,
                     "m": g.m},
        "queries": len(queries),
        "trials": args.trials,
        "warm_disabled_s": inst_s,
        "warm_uninstrumented_s": repl_s,
        "disabled_overhead_frac": overhead,
        "traced_queries": len(traced),
        "traced_wall_s": wall_s,
        "traced_span_s": span_s,
        "span_wall_ratio": ratio,
        "stitched": stitched,
        "max_pids": pids,
    }, ok)
    return 0 if ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
