"""E2 (Theorem 2.1): dual distance labeling — Õ(D)-bit labels, Õ(D²)
construction rounds — plus the engine-vs-legacy construction backends
(DESIGN.md §9).

Two modes:

* under pytest (part of the benchmark suite): times the label
  construction and the label-size sweeps as before, and times the
  engine backend against the legacy recursion on the shared instances,
  asserting *bit-identical* labels inline;

* as a script, the headline experiment of the labeling engine —

      PYTHONPATH=src python benchmarks/bench_labeling.py \
          [--rows 64] [--cols 64] [--seed 7] [--legacy-budget 300]

  builds the Theorem 2.1 labeling on a rows x cols grid with the
  engine backend, then races the legacy backend in a subprocess
  against a wall-clock budget (the legacy build decodes child labels
  through dict chains per bag — ~3 minutes at 64x64, hours beyond).
  If the legacy run finishes, decoded distances on a shared sample of
  face pairs are compared and the exact speedup is printed; on budget
  expiry the speedup is reported as a lower bound, as in
  ``bench_engine.py``.  Acceptance: >= 2x on the 64x64 grid.

  Caveat (as for ``bench_engine.py``): instances much below ~12x12
  under ``REPRO_ENGINE_NO_NUMPY=1`` are too small for the SPFA
  fallback to amortize its setup, so the gate is only meaningful with
  the vectorized kernels or at moderate sizes (the fallback clears
  2x from ~20x20 up).
"""

import argparse
import random
import subprocess
import sys
import time

import pytest
from _json_out import add_json_arg, emit_json

from repro.bdd import build_bdd
from repro.congest import RoundLedger
from repro.labeling import DualDistanceLabeling
from repro.planar.generators import grid, randomize_weights


@pytest.mark.parametrize("name", ["grid-small", "grid-large", "delaunay"])
def test_labeling_construction(benchmark, instances, name):
    g = instances[name]
    lengths = {d: g.weights[d >> 1] for d in g.darts()}
    bdd = build_bdd(g, leaf_size=max(12, g.diameter()))

    def run():
        return DualDistanceLabeling(bdd, lengths)

    lab = benchmark(run)
    led = RoundLedger()
    DualDistanceLabeling(bdd, lengths, duals=lab.duals, ledger=led)
    d = g.diameter()
    benchmark.extra_info.update({
        "n": g.n, "D": d,
        "congest_rounds": led.total(),
        "rounds_per_D2": round(led.total() / d ** 2, 2),
        "max_label_bits": lab.max_label_bits(),
        "label_bits_per_D": round(lab.max_label_bits() / d, 1),
        "bdd_depth": bdd.depth,
    })


@pytest.mark.parametrize("name", ["grid-small", "grid-large", "delaunay"])
def test_labeling_engine_vs_legacy(benchmark, instances, name):
    """Engine-backed construction: bit-identical labels, measured
    against the legacy recursion on the same BDD."""
    g = instances[name]
    lengths = {d: g.weights[d >> 1] for d in g.darts()}
    bdd = build_bdd(g, leaf_size=max(12, g.diameter()))
    DualDistanceLabeling(bdd, lengths, backend="engine")  # warm compile

    def run():
        return DualDistanceLabeling(bdd, lengths, backend="engine")

    eng = benchmark(run)

    t0 = time.perf_counter()
    DualDistanceLabeling(bdd, lengths, backend="engine")
    engine_s = max(time.perf_counter() - t0, 1e-9)
    t0 = time.perf_counter()
    leg = DualDistanceLabeling(bdd, lengths)
    legacy_s = time.perf_counter() - t0
    assert eng._labels == leg._labels  # bit-identical, not just equal values
    benchmark.extra_info.update({
        "n": g.n, "D": g.diameter(),
        "legacy_s": round(legacy_s, 4),
        "speedup": round(legacy_s / engine_s, 1),
    })


@pytest.mark.parametrize("cols", [8, 14, 20])
def test_label_bits_vs_diameter(benchmark, cols):
    """Label size sweep: bits should grow ~linearly with D, not with n."""
    g = randomize_weights(grid(3, cols), seed=cols)
    lengths = {d: g.weights[d >> 1] for d in g.darts()}

    def run():
        bdd = build_bdd(g, leaf_size=12)
        return DualDistanceLabeling(bdd, lengths)

    lab = benchmark.pedantic(run, rounds=1, iterations=1)
    d = g.diameter()
    benchmark.extra_info.update({
        "n": g.n, "D": d,
        "max_label_bits": lab.max_label_bits(),
        "label_bits_per_D": round(lab.max_label_bits() / d, 1),
    })


# ----------------------------------------------------------------------
# script mode
# ----------------------------------------------------------------------
def _make_instance(rows, cols, seed):
    return randomize_weights(grid(rows, cols), seed=seed)


def _lengths(g):
    return {d: g.weights[d >> 1] for d in g.darts()}


def _sample_pairs(g, seed, count=20):
    rng = random.Random(seed)
    nf = g.num_faces()
    return [(rng.randrange(nf), rng.randrange(nf))
            for _ in range(count)]


def _legacy_worker(rows, cols, seed):
    """Child process: legacy labeling build to completion, printing the
    build time and the decoded distances of the shared sample (killed
    by the parent on budget expiry)."""
    g = _make_instance(rows, cols, seed)
    bdd = build_bdd(g)
    t0 = time.perf_counter()
    lab = DualDistanceLabeling(bdd, _lengths(g))
    secs = time.perf_counter() - t0
    dists = [lab.distance(f, h) for f, h in _sample_pairs(g, seed)]
    print(f"LEGACY {secs:.3f} " + " ".join(map(str, dists)), flush=True)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--rows", type=int, default=64)
    ap.add_argument("--cols", type=int, default=64)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--legacy-budget", type=float, default=300.0,
                    help="wall-clock seconds granted to the legacy "
                         "backend before reporting a lower bound")
    ap.add_argument("--legacy-worker", action="store_true",
                    help=argparse.SUPPRESS)
    add_json_arg(ap)
    args = ap.parse_args(argv)

    if args.legacy_worker:
        _legacy_worker(args.rows, args.cols, args.seed)
        return 0

    g = _make_instance(args.rows, args.cols, args.seed)
    lengths = _lengths(g)
    print(f"instance: {args.rows}x{args.cols} grid, n={g.n}, m={g.m}, "
          f"faces={g.num_faces()}")

    t0 = time.perf_counter()
    bdd = build_bdd(g)
    print(f"bdd build      : {time.perf_counter() - t0:.2f}s "
          f"(leaf_size={bdd.leaf_size}, bags={len(bdd.bags)}, shared "
          f"by both backends)")

    t0 = time.perf_counter()
    eng = DualDistanceLabeling(bdd, lengths, backend="engine")
    engine_cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    DualDistanceLabeling(bdd, lengths, backend="engine")
    engine_s = max(time.perf_counter() - t0, 1e-9)
    print(f"engine backend : cold {engine_cold_s:.2f}s (compiles the "
          f"bag arrays), warm {engine_s:.2f}s (reuses them — the "
          f"set_weights reprice cost)")

    # inline parity gate on a small instance (bit-identical labels)
    small = _make_instance(12, 12, args.seed)
    small_bdd = build_bdd(small)
    assert DualDistanceLabeling(small_bdd, _lengths(small),
                                backend="engine")._labels == \
        DualDistanceLabeling(small_bdd, _lengths(small))._labels, \
        "engine labels are not bit-identical to legacy on 12x12"
    print("parity (12x12) : labels bit-identical")

    pairs = _sample_pairs(g, args.seed)
    engine_dists = [eng.distance(f, h) for f, h in pairs]

    cmd = [sys.executable, __file__, "--legacy-worker",
           "--rows", str(args.rows), "--cols", str(args.cols),
           "--seed", str(args.seed)]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=args.legacy_budget)
        out = next((line for line in proc.stdout.splitlines()
                    if line.startswith("LEGACY")), None)
        if proc.returncode != 0 or out is None:
            print(f"legacy backend : worker failed "
                  f"(exit {proc.returncode})")
            if proc.stderr:
                print(proc.stderr.rstrip())
            print("acceptance (>= 2x): FAIL (legacy worker died)")
            emit_json(args.json, "labeling", {
                "instance": {"rows": args.rows, "cols": args.cols,
                             "n": g.n, "m": g.m, "seed": args.seed},
                "engine_cold_s": engine_cold_s,
                "engine_s": engine_s,
                "legacy_worker_exit": proc.returncode,
            }, False)
            return 1
        fields = out.split()
        legacy_s = float(fields[1])
        legacy_dists = [int(x) if x.lstrip("-").isdigit() else float(x)
                        for x in fields[2:]]
        assert legacy_dists == engine_dists, \
            "decoded distances diverge between backends"
        speedup = legacy_s / engine_s
        exact = True
        print(f"legacy backend : {legacy_s:.2f}s "
              f"(sampled decodes match)")
        print(f"speedup        : {speedup:.1f}x (exact)")
    except subprocess.TimeoutExpired:
        legacy_s = args.legacy_budget
        speedup = legacy_s / engine_s
        exact = False
        print(f"legacy backend : still running after the "
              f"{args.legacy_budget:.0f}s budget (killed)")
        print(f"speedup        : >= {speedup:.1f}x (lower bound; raise "
              f"--legacy-budget for the exact ratio)")

    ok = speedup >= 2.0
    print(f"acceptance (>= 2x): {'PASS' if ok else 'FAIL'}")
    emit_json(args.json, "labeling", {
        "instance": {"rows": args.rows, "cols": args.cols, "n": g.n,
                     "m": g.m, "seed": args.seed,
                     "leaf_size": bdd.leaf_size, "bags": len(bdd.bags)},
        "engine_cold_s": engine_cold_s,
        "engine_s": engine_s,
        "legacy_s": legacy_s,
        "speedup": speedup,
        "exact": exact,
    }, ok)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
