"""E2 (Theorem 2.1): dual distance labeling — Õ(D)-bit labels, Õ(D²)
construction rounds."""

import pytest

from repro.bdd import build_bdd
from repro.congest import RoundLedger
from repro.labeling import DualDistanceLabeling
from repro.planar.generators import grid, randomize_weights


@pytest.mark.parametrize("name", ["grid-small", "grid-large", "delaunay"])
def test_labeling_construction(benchmark, instances, name):
    g = instances[name]
    lengths = {d: g.weights[d >> 1] for d in g.darts()}
    bdd = build_bdd(g, leaf_size=max(12, g.diameter()))

    def run():
        return DualDistanceLabeling(bdd, lengths)

    lab = benchmark(run)
    led = RoundLedger()
    DualDistanceLabeling(bdd, lengths, duals=lab.duals, ledger=led)
    d = g.diameter()
    benchmark.extra_info.update({
        "n": g.n, "D": d,
        "congest_rounds": led.total(),
        "rounds_per_D2": round(led.total() / d ** 2, 2),
        "max_label_bits": lab.max_label_bits(),
        "label_bits_per_D": round(lab.max_label_bits() / d, 1),
        "bdd_depth": bdd.depth,
    })


@pytest.mark.parametrize("cols", [8, 14, 20])
def test_label_bits_vs_diameter(benchmark, cols):
    """Label size sweep: bits should grow ~linearly with D, not with n."""
    g = randomize_weights(grid(3, cols), seed=cols)
    lengths = {d: g.weights[d >> 1] for d in g.darts()}

    def run():
        bdd = build_bdd(g, leaf_size=12)
        return DualDistanceLabeling(bdd, lengths)

    lab = benchmark.pedantic(run, rounds=1, iterations=1)
    d = g.diameter()
    benchmark.extra_info.update({
        "n": g.n, "D": d,
        "max_label_bits": lab.max_label_bits(),
        "label_bits_per_D": round(lab.max_label_bits() / d, 1),
    })
