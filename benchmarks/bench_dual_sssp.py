"""E3 (Lemma 2.2): dual SSSP — exactness with negative lengths and the
Õ(D) marginal cost per query after labeling, vs the Θ(n)-round naive
distributed Bellman-Ford shape.

Script mode re-runs the query path at smoke scale and emits a
``BENCH_dual_sssp.json`` report for ``scripts/bench_history.py``::

    PYTHONPATH=src python benchmarks/bench_dual_sssp.py \\
        [--json BENCH_dual_sssp.json]
"""

import argparse
import random
import time

import pytest

from _json_out import add_json_arg, emit_json
from repro.planar.generators import grid, randomize_weights

from repro.baselines.distributed_naive import naive_dual_sssp_rounds
from repro.bdd import build_bdd
from repro.congest import RoundLedger
from repro.labeling import DualDistanceLabeling, dual_sssp
from repro.planar import DualGraph
from repro.planar.dual import bellman_ford_arcs
from repro.planar.graph import rev


def mixed_lengths(g, seed=0):
    rng = random.Random(seed)
    base = {d: rng.randint(1, 10) for d in g.darts()}
    phi = {f: rng.randint(-6, 6) for f in range(g.num_faces())}
    return {d: base[d] + phi[g.face_of[d]] - phi[g.face_of[rev(d)]]
            for d in g.darts()}


@pytest.mark.parametrize("name", ["grid-small", "cylinder", "delaunay"])
def test_dual_sssp_query(benchmark, instances, name):
    g = instances[name]
    lengths = mixed_lengths(g, seed=11)
    bdd = build_bdd(g, leaf_size=max(12, g.diameter()))
    lab = DualDistanceLabeling(bdd, lengths)

    def run():
        return dual_sssp(lab, source=0)

    res = benchmark(run)

    # correctness oracle
    dual = DualGraph(g)
    arcs = [(g.face_of[d], g.face_of[rev(d)], lengths[d])
            for d in g.darts()]
    ref = bellman_ford_arcs(dual.num_nodes, arcs, 0)
    for f in range(dual.num_nodes):
        assert res.dist[f] == ref[f]

    led = RoundLedger()
    dual_sssp(lab, source=0, ledger=led)
    benchmark.extra_info.update({
        "n": g.n, "D": g.diameter(),
        "query_rounds": led.total(),
        "naive_bf_rounds": naive_dual_sssp_rounds(g),
        "num_dual_nodes": dual.num_nodes,
    })


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="E3: dual SSSP with mixed-sign lengths vs the "
                    "Bellman-Ford oracle")
    add_json_arg(ap)
    ap.add_argument("--queries", type=int, default=8,
                    help="distinct SSSP sources to time")
    args = ap.parse_args(argv)
    ok = True
    rows = {}

    g = randomize_weights(grid(5, 6), seed=1, directed_capacities=True)
    lengths = mixed_lengths(g, seed=11)
    t0 = time.perf_counter()
    bdd = build_bdd(g, leaf_size=max(12, g.diameter()))
    lab = DualDistanceLabeling(bdd, lengths)
    label_s = time.perf_counter() - t0

    dual = DualGraph(g)
    arcs = [(g.face_of[d], g.face_of[rev(d)], lengths[d])
            for d in g.darts()]
    sources = list(range(min(args.queries, dual.num_nodes)))
    t0 = time.perf_counter()
    results = [dual_sssp(lab, source=src) for src in sources]
    query_s = (time.perf_counter() - t0) / max(1, len(sources))
    for src, res in zip(sources, results):
        ref = bellman_ford_arcs(dual.num_nodes, arcs, src)
        ok &= all(res.dist[f] == ref[f]
                  for f in range(dual.num_nodes))

    led = RoundLedger()
    dual_sssp(lab, source=0, ledger=led)
    rows["query"] = {
        "n": g.n, "D": g.diameter(), "sources": len(sources),
        "label_s": label_s, "query_s": query_s,
        "query_rounds": led.total(),
        "naive_bf_rounds": naive_dual_sssp_rounds(g),
        "num_dual_nodes": dual.num_nodes,
    }

    print(f"{len(sources)} exact SSSPs at {query_s * 1e3:.2f}ms each "
          f"(labeling {label_s * 1e3:.1f}ms, {led.total()} rounds/query)")
    print(f"bench_dual_sssp: {'PASS' if ok else 'FAIL'}")
    emit_json(args.json, "dual_sssp", rows, ok)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
