"""E3 (Lemma 2.2): dual SSSP — exactness with negative lengths and the
Õ(D) marginal cost per query after labeling, vs the Θ(n)-round naive
distributed Bellman-Ford shape."""

import random

import pytest

from repro.baselines.distributed_naive import naive_dual_sssp_rounds
from repro.bdd import build_bdd
from repro.congest import RoundLedger
from repro.labeling import DualDistanceLabeling, dual_sssp
from repro.planar import DualGraph
from repro.planar.dual import bellman_ford_arcs
from repro.planar.graph import rev


def mixed_lengths(g, seed=0):
    rng = random.Random(seed)
    base = {d: rng.randint(1, 10) for d in g.darts()}
    phi = {f: rng.randint(-6, 6) for f in range(g.num_faces())}
    return {d: base[d] + phi[g.face_of[d]] - phi[g.face_of[rev(d)]]
            for d in g.darts()}


@pytest.mark.parametrize("name", ["grid-small", "cylinder", "delaunay"])
def test_dual_sssp_query(benchmark, instances, name):
    g = instances[name]
    lengths = mixed_lengths(g, seed=11)
    bdd = build_bdd(g, leaf_size=max(12, g.diameter()))
    lab = DualDistanceLabeling(bdd, lengths)

    def run():
        return dual_sssp(lab, source=0)

    res = benchmark(run)

    # correctness oracle
    dual = DualGraph(g)
    arcs = [(g.face_of[d], g.face_of[rev(d)], lengths[d])
            for d in g.darts()]
    ref = bellman_ford_arcs(dual.num_nodes, arcs, 0)
    for f in range(dual.num_nodes):
        assert res.dist[f] == ref[f]

    led = RoundLedger()
    dual_sssp(lab, source=0, ledger=led)
    benchmark.extra_info.update({
        "n": g.n, "D": g.diameter(),
        "query_rounds": led.total(),
        "naive_bf_rounds": naive_dual_sssp_rounds(g),
        "num_dual_nodes": dual.num_nodes,
    })
