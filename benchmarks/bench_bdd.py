"""E9 (Section 5.1): BDD shape certification — depth O(log n), |S_X|
and bag diameters Õ(D), face-parts O(log n) — across diameter regimes
from wheels (D=2) to ladders (D=n/2)."""

import pytest

from repro.bdd import build_bdd, validate_bdd
from repro.planar.generators import (
    grid,
    ladder,
    random_planar,
    triangulated_disk,
    wheel,
)


@pytest.mark.parametrize("name,maker", [
    ("wheel-D2", lambda: wheel(40)),
    ("grid", lambda: grid(7, 7)),
    ("ladder-maxD", lambda: ladder(24)),
    ("disk", lambda: triangulated_disk(4)),
    ("delaunay", lambda: random_planar(80, seed=9)),
])
def test_bdd_shape(benchmark, name, maker):
    g = maker()

    def run():
        bdd = build_bdd(g, leaf_size=max(12, g.diameter()))
        return bdd, validate_bdd(bdd)

    bdd, rep = benchmark.pedantic(run, rounds=1, iterations=1)
    d = g.diameter()
    benchmark.extra_info.update({
        "n": g.n, "D": d,
        "depth": rep.depth, "bags": rep.num_bags,
        "max_sep": rep.max_separator,
        "sep_per_D": round(rep.max_separator / max(d, 1), 2),
        "max_face_parts": rep.max_face_parts,
        "max_F_X": rep.max_f_x,
    })


@pytest.mark.parametrize("leaf", [8, 16, 48])
def test_bdd_leaf_size_ablation(benchmark, leaf):
    """Ablation: smaller leaves -> deeper trees, larger labels; the
    leaf-size knob trades recursion depth against leaf broadcasts."""
    g = grid(6, 6)

    def run():
        return build_bdd(g, leaf_size=leaf)

    bdd = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "leaf_size": leaf,
        "depth": bdd.depth,
        "bags": len(bdd.bags),
    })
