"""E9 (Section 5.1): BDD shape certification — depth O(log n), |S_X|
and bag diameters Õ(D), face-parts O(log n) — across diameter regimes
from wheels (D=2) to ladders (D=n/2) — plus the engine-vs-legacy
construction backends (DESIGN.md §14).

Two modes:

* under pytest (part of the benchmark suite): times the shape
  certification and leaf-size ablation as before, and times
  ``build_bdd(backend="engine")`` against the legacy recursion on the
  family instances, asserting *bit-identical* decompositions inline
  (:func:`repro.bdd.bdd_signature`);

* as a script, the headline experiment of the decomposition engine —

      PYTHONPATH=src python benchmarks/bench_bdd.py \
          [--rows 64] [--cols 64] [--json BENCH_bdd.json]

  races the engine backend (bit-packed all-pairs-BFS diameter + array
  separator kernels) against the legacy cold build on a rows x cols
  grid, asserting signature equality on the results, then checks the
  topology-keyed decomposition cache: a ``GraphCatalog.set_weights``
  reprice must rebuild the labeling with **zero** separator calls
  (``bdd.separator.calls`` obs counter) because the BDD and dual bags
  are keyed by topology token in the engine's shared cache.

  Acceptance (both CI-gated): cold speedup >= 5x on the 64x64 grid,
  and zero decomposition cost on reprice.
"""

import argparse
import sys
import time

import pytest
from _json_out import add_json_arg, emit_json

from repro.bdd import bdd_signature, build_bdd, validate_bdd
from repro.planar.generators import (
    grid,
    ladder,
    random_planar,
    triangulated_disk,
    wheel,
)


@pytest.mark.parametrize("name,maker", [
    ("wheel-D2", lambda: wheel(40)),
    ("grid", lambda: grid(7, 7)),
    ("ladder-maxD", lambda: ladder(24)),
    ("disk", lambda: triangulated_disk(4)),
    ("delaunay", lambda: random_planar(80, seed=9)),
])
def test_bdd_shape(benchmark, name, maker):
    g = maker()

    def run():
        bdd = build_bdd(g, leaf_size=max(12, g.diameter()))
        return bdd, validate_bdd(bdd)

    bdd, rep = benchmark.pedantic(run, rounds=1, iterations=1)
    d = g.diameter()
    benchmark.extra_info.update({
        "n": g.n, "D": d,
        "depth": rep.depth, "bags": rep.num_bags,
        "max_sep": rep.max_separator,
        "sep_per_D": round(rep.max_separator / max(d, 1), 2),
        "max_face_parts": rep.max_face_parts,
        "max_F_X": rep.max_f_x,
    })


@pytest.mark.parametrize("leaf", [8, 16, 48])
def test_bdd_leaf_size_ablation(benchmark, leaf):
    """Ablation: smaller leaves -> deeper trees, larger labels; the
    leaf-size knob trades recursion depth against leaf broadcasts."""
    g = grid(6, 6)

    def run():
        return build_bdd(g, leaf_size=leaf)

    bdd = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "leaf_size": leaf,
        "depth": bdd.depth,
        "bags": len(bdd.bags),
    })


@pytest.mark.parametrize("name,maker", [
    ("grid", lambda: grid(12, 12)),
    ("delaunay", lambda: random_planar(200, seed=3)),
])
def test_engine_bdd_backend(benchmark, name, maker):
    """Engine backend vs legacy on the same instance, bit-parity
    asserted inline on the full decomposition signature."""
    g = maker()

    def run():
        return build_bdd(g, backend="engine")

    eng = benchmark.pedantic(run, rounds=1, iterations=1)
    t0 = time.perf_counter()
    ref = build_bdd(g)
    legacy_s = time.perf_counter() - t0
    assert bdd_signature(eng) == bdd_signature(ref), \
        f"engine BDD diverges from legacy on {name}"
    benchmark.extra_info.update({
        "n": g.n, "bags": len(eng.bags),
        "legacy_s": round(legacy_s, 4),
    })


def _reprice_check(rows, cols):
    """Warm a catalog labeling, reprice, count separator calls."""
    from repro import obs
    from repro.obs import RingBufferSink
    from repro.service.catalog import GraphCatalog

    g = grid(rows, cols)
    cat = GraphCatalog()
    cat.register("bench", g)
    cat.get("bench").labeling()          # cold: builds BDD + labels

    def counter(name):
        snap = obs.registry().snapshot()
        return snap.get(name, {}).get("value", 0)

    obs.enable(RingBufferSink())
    try:
        before = counter("bdd.separator.calls")
        t0 = time.perf_counter()
        cat.set_weights("bench", weights=[2.0] * g.m)
        cat.get("bench").labeling()      # reprice rebuild
        reprice_s = time.perf_counter() - t0
        calls = counter("bdd.separator.calls") - before
        hits = counter("catalog.artifact.hit.bdd")
    finally:
        obs.disable()
    return calls, hits, reprice_s


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--rows", type=int, default=64)
    ap.add_argument("--cols", type=int, default=64)
    ap.add_argument("--reprice-rows", type=int, default=24,
                    help="grid size of the set_weights reprice check "
                         "(kept small: its cost is label building, the "
                         "gate is the separator-call count)")
    add_json_arg(ap)
    args = ap.parse_args(argv)

    g = grid(args.rows, args.cols)
    print(f"instance: {args.rows}x{args.cols} grid, n={g.n}, m={g.m}")

    t0 = time.perf_counter()
    eng = build_bdd(g, backend="engine")
    engine_s = max(time.perf_counter() - t0, 1e-9)
    print(f"engine backend : {engine_s:.2f}s "
          f"(leaf_size={eng.leaf_size}, bags={len(eng.bags)})")

    t0 = time.perf_counter()
    ref = build_bdd(g)
    legacy_s = time.perf_counter() - t0
    print(f"legacy backend : {legacy_s:.2f}s")

    parity = bdd_signature(eng) == bdd_signature(ref)
    assert parity, "engine BDD is not bit-identical to legacy"
    print("parity         : decomposition signatures bit-identical")

    speedup = legacy_s / engine_s
    print(f"speedup        : {speedup:.1f}x")

    calls, hits, reprice_s = _reprice_check(args.reprice_rows,
                                            args.reprice_rows)
    print(f"reprice        : {args.reprice_rows}x{args.reprice_rows} "
          f"set_weights rebuild in {reprice_s:.2f}s, "
          f"{calls} separator calls, {hits} BDD cache hits")

    ok = speedup >= 5.0 and calls == 0 and parity
    print(f"acceptance (>= 5x, 0 separator calls on reprice): "
          f"{'PASS' if ok else 'FAIL'}")
    emit_json(args.json, "bdd", {
        "instance": {"rows": args.rows, "cols": args.cols, "n": g.n,
                     "m": g.m, "leaf_size": eng.leaf_size,
                     "bags": len(eng.bags)},
        "engine_s": engine_s,
        "legacy_s": legacy_s,
        "speedup": speedup,
        "parity": parity,
        "reprice": {"rows": args.reprice_rows,
                    "separator_calls": calls,
                    "bdd_cache_hits": hits,
                    "seconds": reprice_s},
    }, ok)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
