"""E8 (Section 4): minor-aggregation on the dual — measured PA cost on
Ĝ (the conversion rate of Theorem 4.10), orientation/deactivation
(Lemma 4.15), and Boruvka MST as the canonical MA workload.

Script mode re-runs the same workloads at smoke scale and emits a
``BENCH_aggregation.json`` report for ``scripts/bench_history.py``::

    PYTHONPATH=src python benchmarks/bench_aggregation.py \\
        [--json BENCH_aggregation.json]
"""

import argparse
import time

import pytest

from _json_out import add_json_arg, emit_json

from repro.aggregation import DualMAHost, boruvka_mst, \
    deactivate_parallel_edges
from repro.congest import RoundLedger
from repro.planar.generators import grid, random_planar, randomize_weights
from repro.shortcuts.partwise import DualPartwiseHost


@pytest.mark.parametrize("k", [0, 1, 2])
def test_pa_cost_on_dual(benchmark, k):
    """The Õ(D) PA cost on G* via Ĝ (Lemma 4.9)."""
    g = grid(4 + 2 * k, 4 + 2 * k)

    def run():
        return DualPartwiseHost(g)

    host = benchmark.pedantic(run, rounds=1, iterations=1)
    d = g.diameter()
    benchmark.extra_info.update({
        "n": g.n, "D": d,
        "pa_rounds": host.pa_rounds,
        "pa_rounds_per_D": round(host.pa_rounds / d, 2),
    })


def test_dual_mst_workload(benchmark):
    """Boruvka MST of G* through the host: Õ(1) MA rounds -> Õ(D)
    CONGEST rounds (Theorem 4.10)."""
    g = randomize_weights(random_planar(60, seed=6), seed=6)
    led = RoundLedger()
    host = DualMAHost(g, ledger=led)

    def run():
        ma = host.ma_graph()
        tree = boruvka_mst(ma)
        host.charge(ma, "bench-mst")
        return tree

    tree = benchmark(run)
    assert len(tree) == g.num_faces() - 1
    benchmark.extra_info.update({
        "n": g.n, "D": g.diameter(),
        "dual_nodes": g.num_faces(),
        "pa_rounds": host.pa_rounds,
    })


def test_parallel_edge_deactivation(benchmark):
    """Lemma 4.15 on a dual with many parallel edges (grid boundary)."""
    g = randomize_weights(grid(2, 12), seed=8)
    host = DualMAHost(g)

    def run():
        ma = host.ma_graph()
        return deactivate_parallel_edges(ma, lambda a, b: a + b)

    rep = benchmark(run)
    assert rep  # at least one bundle collapsed
    benchmark.extra_info.update({"n": g.n, "bundles": len(rep)})


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="E8: minor-aggregation on the dual (PA cost, "
                    "Boruvka MST, parallel-edge deactivation)")
    add_json_arg(ap)
    args = ap.parse_args(argv)
    ok = True
    rows = {}

    g = grid(6, 6)
    t0 = time.perf_counter()
    host = DualPartwiseHost(g)
    rows["partwise"] = {
        "n": g.n, "D": g.diameter(), "build_s": time.perf_counter() - t0,
        "pa_rounds": host.pa_rounds,
    }

    g = randomize_weights(random_planar(60, seed=6), seed=6)
    ma_host = DualMAHost(g, ledger=RoundLedger())
    t0 = time.perf_counter()
    ma = ma_host.ma_graph()
    tree = boruvka_mst(ma)
    mst_s = time.perf_counter() - t0
    ok &= len(tree) == g.num_faces() - 1
    rows["mst"] = {"n": g.n, "dual_nodes": g.num_faces(),
                   "tree_edges": len(tree), "mst_s": mst_s}

    g = randomize_weights(grid(2, 12), seed=8)
    host = DualMAHost(g)
    t0 = time.perf_counter()
    rep = deactivate_parallel_edges(host.ma_graph(), lambda a, b: a + b)
    deact_s = time.perf_counter() - t0
    ok &= bool(rep)
    rows["deactivation"] = {"n": g.n, "bundles": len(rep),
                            "deactivate_s": deact_s}

    for name, row in rows.items():
        print(f"{name}: " + " ".join(f"{k}={v}" for k, v in row.items()))
    print(f"bench_aggregation: {'PASS' if ok else 'FAIL'}")
    emit_json(args.json, "aggregation", rows, ok)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
