"""Engine-vs-legacy backend benchmark (DESIGN.md §6).

Two modes:

* under pytest (part of the benchmark suite): times both backends of
  the exact max-flow on the shared small instances and asserts output
  parity inline, recording the speedup in ``extra_info``;

* as a script, the headline experiment of the engine subsystem —

      PYTHONPATH=src python benchmarks/bench_engine.py \
          [--rows 200] [--cols 200] [--seed 7] [--legacy-budget 60]

  runs the engine backend to completion on a rows x cols grid and
  races the legacy backend against a wall-clock budget in a subprocess.
  The legacy labeling path needs *hours* for a 200x200 grid (it is the
  faithful Õ(D²)-round simulation, ~35 s already at 40x40), so by
  default the race reports the *lower bound* ``legacy ≥ budget`` and
  the speedup as ``≥ budget/engine``; pass a large ``--legacy-budget``
  to let it finish and print the exact ratio.  On small grids (e.g.
  ``--rows 12 --cols 12``, the CI smoke configuration) both backends
  finish and the values are asserted equal.
"""

import argparse
import subprocess
import sys
import time

import pytest
from _json_out import add_json_arg, emit_json

from repro.core import PlanarMaxFlow, flow_value_networkx, max_st_flow
from repro.planar.generators import grid, randomize_weights


@pytest.mark.parametrize("name", ["grid-small", "grid-large", "cylinder",
                                  "delaunay"])
def test_engine_maxflow_families(benchmark, instances, name):
    g = instances[name]
    s, t = 0, g.n - 1
    solver = PlanarMaxFlow(g, directed=True, backend="engine")

    def run():
        return solver.solve(s, t)

    res = benchmark(run)
    assert res.value == flow_value_networkx(g, s, t, directed=True)

    t0 = time.perf_counter()
    solver.solve(s, t)
    engine_s = max(time.perf_counter() - t0, 1e-9)
    t0 = time.perf_counter()
    legacy = PlanarMaxFlow(g, directed=True,
                           leaf_size=max(12, g.diameter()))
    legacy_res = legacy.solve(s, t)
    legacy_s = time.perf_counter() - t0
    assert legacy_res.value == res.value
    assert legacy_res.flow == res.flow
    benchmark.extra_info.update({
        "n": g.n, "value": res.value, "probes": res.probes,
        "legacy_s": round(legacy_s, 4),
        "speedup": round(legacy_s / engine_s, 1),
    })


def test_engine_workspace_reuse(benchmark, instances):
    """Repeated solves on one graph reuse the compiled topology and
    workspace buffers — the steady-state cost of a feasibility service."""
    g = instances["grid-large"]
    solver = PlanarMaxFlow(g, directed=True, backend="engine")
    pairs = [(0, g.n - 1), (1, g.n - 2), (g.n // 2, g.n - 1)]

    def run():
        return [solver.solve(s, t).value for s, t in pairs]

    values = benchmark(run)
    assert values == [flow_value_networkx(g, s, t, directed=True)
                      for s, t in pairs]


# ----------------------------------------------------------------------
# script mode
# ----------------------------------------------------------------------
def _make_instance(rows, cols, seed):
    return randomize_weights(grid(rows, cols), seed=seed,
                             directed_capacities=True)


def _legacy_worker(rows, cols, seed):
    """Child process: run the legacy backend to completion and print
    machine-readable results (killed by the parent on budget expiry)."""
    g = _make_instance(rows, cols, seed)
    t0 = time.perf_counter()
    res = max_st_flow(g, 0, g.n - 1, directed=True, backend="legacy")
    print(f"LEGACY {res.value} {time.perf_counter() - t0:.3f}", flush=True)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--rows", type=int, default=200)
    ap.add_argument("--cols", type=int, default=200)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--legacy-budget", type=float, default=60.0,
                    help="wall-clock seconds granted to the legacy "
                         "backend before reporting a lower bound")
    ap.add_argument("--legacy-worker", action="store_true",
                    help=argparse.SUPPRESS)
    add_json_arg(ap)
    args = ap.parse_args(argv)

    if args.legacy_worker:
        _legacy_worker(args.rows, args.cols, args.seed)
        return 0

    g = _make_instance(args.rows, args.cols, args.seed)
    print(f"instance: {args.rows}x{args.cols} grid, n={g.n}, m={g.m}")

    t0 = time.perf_counter()
    res = max_st_flow(g, 0, g.n - 1, directed=True, backend="engine")
    engine_s = time.perf_counter() - t0
    print(f"engine backend : value={res.value} probes={res.probes} "
          f"time={engine_s:.2f}s")

    t0 = time.perf_counter()
    ref = flow_value_networkx(g, 0, g.n - 1, directed=True)
    print(f"networkx oracle: value={ref} time={time.perf_counter() - t0:.2f}s")
    assert res.value == ref, "engine value does not match the oracle"

    cmd = [sys.executable, __file__, "--legacy-worker",
           "--rows", str(args.rows), "--cols", str(args.cols),
           "--seed", str(args.seed)]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=args.legacy_budget)
        out = next(line for line in proc.stdout.splitlines()
                   if line.startswith("LEGACY"))
        _, value, secs = out.split()
        legacy_s = float(secs)
        assert int(value) == res.value, "legacy value mismatch"
        speedup = legacy_s / engine_s
        exact = True
        print(f"legacy backend : value={value} time={legacy_s:.2f}s")
        print(f"speedup        : {speedup:.1f}x (exact)")
        if legacy_s < 0.05:
            print("note: instance too small for a meaningful wall-clock "
                  "ratio; use --rows/--cols >= 10")
    except subprocess.TimeoutExpired:
        legacy_s = args.legacy_budget
        speedup = legacy_s / engine_s
        exact = False
        print(f"legacy backend : still running after the "
              f"{args.legacy_budget:.0f}s budget (killed)")
        print(f"speedup        : >= {speedup:.1f}x (lower bound; raise "
              f"--legacy-budget for the exact ratio)")

    ok = speedup >= 2.0
    print(f"acceptance (>= 2x): {'PASS' if ok else 'FAIL'}")
    emit_json(args.json, "engine", {
        "instance": {"rows": args.rows, "cols": args.cols, "n": g.n,
                     "m": g.m, "seed": args.seed},
        "engine_s": engine_s,
        "legacy_s": legacy_s,
        "speedup": speedup,
        "exact": exact,
        "value": res.value,
        "probes": res.probes,
    }, ok)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
