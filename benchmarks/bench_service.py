"""Serving-layer benchmark: queries/sec cold vs warm (DESIGN.md §8).

Two modes:

* under pytest (part of the benchmark suite): times warm serving of
  repeated flow queries and label-decoded distance queries on the
  shared small instances, asserting parity with the per-call entry
  points inline;

* as a script, the headline experiment of the serving subsystem —

      PYTHONPATH=src python benchmarks/bench_service.py \
          [--rows 64] [--cols 64] [--seed 7] ...

  measures, on a rows x cols grid:

  1. **st-flow, cold** — every query pays the full per-call cost
     (fresh topology compile + workspace + solve), which is what the
     repo did before the catalog existed;
  2. **st-flow, warm** — the same repeated query served from the
     catalog (artifacts + result cache).  Acceptance: >= 10x;
  3. **st-flow, warm / distinct pairs** — artifact reuse only (every
     pair still solves), the steady-state cost of new queries;
  4. **dual distance, cold** — one Theorem 2.1 labeling build per
     query, measured twice: the legacy recursion (what every miss paid
     before the engine labeling path of DESIGN.md §9) and the served
     miss (engine build over shared-cached compiled bag arrays);
  5. **dual distance, warm** — distinct pairs decoded from the cached
     labels (Lemma 2.2).  Acceptance: >= 100x over the served miss.

  Parity is asserted inline (catalog answers == per-call answers ==
  networkx oracle), so the reported throughputs can never come from a
  wrong answer.
"""

import argparse
import random
import time

import pytest

from _json_out import add_json_arg, emit_json

from repro.bdd import build_bdd
from repro.core import flow_value_networkx, max_st_flow, weighted_girth
from repro.labeling import DualDistanceLabeling
from repro.planar.generators import grid, randomize_weights
from repro.service import (
    DistanceQuery,
    FlowQuery,
    GirthQuery,
    GraphCatalog,
    default_dual_lengths,
)


# ----------------------------------------------------------------------
# pytest mode
# ----------------------------------------------------------------------
def test_service_warm_flow_queries(benchmark, instances):
    """Steady-state repeated flow query: result-cache lookup."""
    g = instances["grid-large"]
    catalog = GraphCatalog()
    catalog.register("g", g)
    q = FlowQuery("g", 0, g.n - 1)
    cold = catalog.serve(q)

    res = benchmark(lambda: catalog.serve(q))
    assert res.warm is True
    assert res.result is cold.result
    assert res.result == max_st_flow(g, 0, g.n - 1, backend="engine")
    benchmark.extra_info.update({"n": g.n, "value": res.result.value})


def test_service_warm_distance_queries(benchmark, instances):
    """Steady-state distinct distance queries: label decode only."""
    g = instances["grid-small"]
    catalog = GraphCatalog()
    catalog.register("g", g)
    nf = g.num_faces()
    catalog.serve(DistanceQuery("g", 0, 1))  # builds the labeling
    pairs = [(f, h) for f in range(min(nf, 6)) for h in range(min(nf, 6))]

    def run():
        return [catalog.serve(DistanceQuery("g", f, h)).result
                for f, h in pairs]

    values = benchmark(run)
    lab = DualDistanceLabeling(build_bdd(g), default_dual_lengths(g))
    assert values == [lab.distance(f, h) for f, h in pairs]
    benchmark.extra_info.update({"pairs": len(pairs)})


# ----------------------------------------------------------------------
# script mode
# ----------------------------------------------------------------------
def _fmt_qps(x):
    return f"{x:,.1f}".replace(",", " ")


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--rows", type=int, default=64)
    ap.add_argument("--cols", type=int, default=64)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--cold-iters", type=int, default=3,
                    help="cold st-flow measurements (fresh compile each)")
    ap.add_argument("--flow-repeats", type=int, default=200,
                    help="warm repeats of the same st-flow query")
    ap.add_argument("--distinct-pairs", type=int, default=8,
                    help="distinct st-pairs for the artifact-reuse row")
    ap.add_argument("--distance-pairs", type=int, default=500,
                    help="distinct warm distance queries")
    add_json_arg(ap)
    args = ap.parse_args(argv)

    g = randomize_weights(grid(args.rows, args.cols), seed=args.seed,
                          directed_capacities=True)
    s, t = 0, g.n - 1
    name = f"grid-{args.rows}x{args.cols}"
    print(f"instance: {args.rows}x{args.cols} grid, n={g.n}, m={g.m}, "
          f"faces={g.num_faces()}")

    # -- 1. cold st-flow: full per-call cost, fresh topology each time
    cold_s = 0.0
    cold_value = None
    for _ in range(args.cold_iters):
        fresh = g.copy()  # new instance -> new topology token -> cold
        t0 = time.perf_counter()
        res = max_st_flow(fresh, s, t, directed=True, backend="engine")
        cold_s += time.perf_counter() - t0
        cold_value = res.value
    cold_s /= args.cold_iters
    cold_qps = 1.0 / cold_s
    assert cold_value == flow_value_networkx(g, s, t, directed=True), \
        "engine value does not match the networkx oracle"
    print(f"st-flow  cold          : {cold_s * 1e3:8.1f} ms/query "
          f"({_fmt_qps(cold_qps)} q/s)  value={cold_value}")

    # -- 2. warm st-flow: repeated query through the catalog
    catalog = GraphCatalog()
    catalog.register(name, g)
    q = FlowQuery(name, s, t)
    first = catalog.serve(q)
    assert first.result.value == cold_value
    t0 = time.perf_counter()
    for _ in range(args.flow_repeats):
        warm = catalog.serve(q)
    warm_flow_s = (time.perf_counter() - t0) / args.flow_repeats
    warm_flow_qps = 1.0 / warm_flow_s
    assert warm.warm and warm.result == first.result
    flow_speedup = warm_flow_qps / cold_qps
    print(f"st-flow  warm repeated : {warm_flow_s * 1e6:8.1f} us/query "
          f"({_fmt_qps(warm_flow_qps)} q/s)  "
          f"speedup {flow_speedup:,.0f}x")

    # -- 3. warm st-flow, distinct pairs: artifact reuse only
    rng = random.Random(args.seed)
    pairs = []
    while len(pairs) < args.distinct_pairs:
        a, b = rng.randrange(g.n), rng.randrange(g.n)
        if a != b:
            pairs.append((a, b))
    t0 = time.perf_counter()
    for a, b in pairs:
        catalog.serve(FlowQuery(name, a, b))
    distinct_s = (time.perf_counter() - t0) / len(pairs)
    print(f"st-flow  warm distinct : {distinct_s * 1e3:8.1f} ms/query "
          f"({_fmt_qps(1.0 / distinct_s)} q/s)  "
          f"amortization {cold_s / distinct_s:.2f}x")

    # -- girth through the same catalog (oracle warm on repeat)
    gq = catalog.serve(GirthQuery(name))
    assert gq.result == weighted_girth(g, backend="engine")
    assert catalog.serve(GirthQuery(name)).warm

    # -- 4. cold distance: one Theorem 2.1 labeling build per query.
    #       The legacy row is what every miss paid before the engine
    #       labeling path (DESIGN.md §9); the served row is the actual
    #       miss cost — the catalog builds the labeling on the engine
    #       backend over shared-cached compiled bag arrays.
    t0 = time.perf_counter()
    lab = DualDistanceLabeling(build_bdd(g), default_dual_lengths(g))
    ref01 = lab.distance(0, 1)
    cold_legacy_s = time.perf_counter() - t0
    print(f"distance cold legacy   : {cold_legacy_s * 1e3:8.1f} ms/query "
          f"({_fmt_qps(1.0 / cold_legacy_s)} q/s)  [legacy Thm 2.1 "
          f"build]")

    t0 = time.perf_counter()
    first_dist = catalog.serve(DistanceQuery(name, 0, 1))
    cold_dist_s = time.perf_counter() - t0
    assert first_dist.warm is False and first_dist.backend == "engine"
    print(f"distance cold served   : {cold_dist_s * 1e3:8.1f} ms/query "
          f"({_fmt_qps(1.0 / cold_dist_s)} q/s)  [engine Thm 2.1 "
          f"build; miss speedup {cold_legacy_s / cold_dist_s:.1f}x]")

    # -- 5. warm distance: distinct pairs decoded from cached labels
    assert first_dist.result == ref01
    nf = g.num_faces()
    fh = [(rng.randrange(nf), rng.randrange(nf))
          for _ in range(args.distance_pairs)]
    t0 = time.perf_counter()
    values = [catalog.serve(DistanceQuery(name, f, h)).result
              for f, h in fh]
    warm_dist_s = (time.perf_counter() - t0) / len(fh)
    warm_dist_qps = 1.0 / warm_dist_s
    dist_speedup = warm_dist_qps * cold_dist_s
    print(f"distance warm distinct : {warm_dist_s * 1e6:8.1f} us/query "
          f"({_fmt_qps(warm_dist_qps)} q/s)  "
          f"speedup {dist_speedup:,.0f}x")
    sample = rng.sample(range(len(fh)), min(20, len(fh)))
    for i in sample:
        f, h = fh[i]
        assert values[i] == lab.distance(f, h), "warm decode mismatch"

    ok_flow = flow_speedup >= 10.0
    ok_dist = dist_speedup >= 100.0
    print(f"acceptance (flow warm/cold >= 10x)      : "
          f"{'PASS' if ok_flow else 'FAIL'} ({flow_speedup:,.0f}x)")
    print(f"acceptance (distance warm/cold >= 100x) : "
          f"{'PASS' if ok_dist else 'FAIL'} ({dist_speedup:,.0f}x)")
    emit_json(args.json, "service", {
        "instance": {"rows": args.rows, "cols": args.cols, "n": g.n,
                     "m": g.m},
        "flow_cold_s": cold_s,
        "flow_warm_repeated_s": warm_flow_s,
        "flow_warm_distinct_s": distinct_s,
        "flow_speedup": flow_speedup,
        "distance_cold_legacy_s": cold_legacy_s,
        "distance_cold_served_s": cold_dist_s,
        "distance_warm_s": warm_dist_s,
        "distance_speedup": dist_speedup,
    }, ok_flow and ok_dist)
    return 0 if (ok_flow and ok_dist) else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
