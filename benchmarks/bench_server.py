"""Server benchmark: warm-pool serving vs fork-cold workers
(DESIGN.md §10).

Two modes:

* under pytest (part of the benchmark suite): times a mixed warm batch
  through an in-process :class:`~repro.server.pool.WarmWorkerPool`,
  asserting bit-parity with direct ``execute_query`` inline;

* as a script, the headline experiment of the server subsystem —

      PYTHONPATH=src python benchmarks/bench_server.py \\
          [--rows 64] [--cols 64] [--workers 4] ...

  races two ways of serving the same mixed query batch (distinct
  st-flow pairs and dual-distance pairs, each repeated — the
  steady-state shape of real traffic):

  1. **warm pool** — artifacts built once in the parent, workers forked
     afterwards (copy-on-write inheritance), every query load-balanced
     over the pool.  This is what ``repro.server`` deploys.
  2. **fork-cold** — every query handled the way the pre-pool
     ``run_sharded`` handled a fresh graph: fork a worker, build a
     private catalog from scratch (CSR compile + BDD + Theorem 2.1
     labeling for distance queries), answer, exit.  Measured on a small
     sample per query kind and extrapolated to the full mix — running
     the whole batch cold would take hours on a 64×64 grid, which is
     precisely the point.

  Parity is asserted inline (pool answers == in-process
  ``execute_query`` answers), so the reported throughputs can never
  come from a wrong answer.  Acceptance: warm pool >= 10x fork-cold.
"""

import argparse
import random
import time
import warnings

from _json_out import add_json_arg, emit_json

from repro.planar.generators import grid, randomize_weights
from repro.server import WarmWorkerPool
from repro.service import (
    DistanceQuery,
    FlowQuery,
    GraphCatalog,
    execute_query,
    run_sharded,
)


# ----------------------------------------------------------------------
# pytest mode
# ----------------------------------------------------------------------
def test_pool_warm_mixed_batch(benchmark, instances):
    """Steady-state mixed batch through a warm in-process pool."""
    g = instances["grid-large"]
    pool = WarmWorkerPool(workers=0)
    pool.register("g", g)
    pool.prewarm(kinds=("flow", "distance"))
    pool.start()
    nf = g.num_faces()
    queries = [FlowQuery("g", 0, g.n - 1),
               DistanceQuery("g", 0, nf - 1),
               DistanceQuery("g", 1, 2)] * 4

    report = benchmark(lambda: pool.run(queries))
    catalog = GraphCatalog()
    catalog.register("g", g)
    assert report.values() == [execute_query(catalog, q).result
                               for q in queries]
    benchmark.extra_info.update({"n": g.n, "queries": len(queries)})
    pool.close()


# ----------------------------------------------------------------------
# script mode
# ----------------------------------------------------------------------
def _fmt(x):
    return f"{x:,.1f}".replace(",", " ")


def _mixed_batch(name, g, rng, flow_pairs, distance_pairs, repeats):
    nf = g.num_faces()
    queries = []
    for _ in range(flow_pairs):
        s, t = rng.randrange(g.n), rng.randrange(g.n)
        while t == s:
            t = rng.randrange(g.n)
        queries.append(FlowQuery(name, s, t))
    for _ in range(distance_pairs):
        queries.append(DistanceQuery(name, rng.randrange(nf),
                                     rng.randrange(nf)))
    return queries * repeats


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--rows", type=int, default=64)
    ap.add_argument("--cols", type=int, default=64)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--workers", type=int, default=4,
                    help="warm-pool worker processes")
    ap.add_argument("--flow-pairs", type=int, default=6,
                    help="distinct st-pairs in the mix")
    ap.add_argument("--distance-pairs", type=int, default=40,
                    help="distinct dual-face pairs in the mix")
    ap.add_argument("--repeats", type=int, default=5,
                    help="times the distinct mix repeats in the batch")
    ap.add_argument("--cold-flow-samples", type=int, default=2,
                    help="fork-cold st-flow measurements")
    ap.add_argument("--cold-distance-samples", type=int, default=1,
                    help="fork-cold distance measurements (each pays a "
                         "full BDD + labeling build)")
    add_json_arg(ap)
    args = ap.parse_args(argv)

    g = randomize_weights(grid(args.rows, args.cols), seed=args.seed,
                          directed_capacities=True)
    name = f"grid-{args.rows}x{args.cols}"
    rng = random.Random(args.seed)
    queries = _mixed_batch(name, g, rng, args.flow_pairs,
                           args.distance_pairs, args.repeats)
    n_flow = args.flow_pairs * args.repeats
    n_dist = args.distance_pairs * args.repeats
    print(f"instance: {args.rows}x{args.cols} grid, n={g.n}, m={g.m}, "
          f"faces={g.num_faces()}")
    print(f"mix: {len(queries)} queries ({n_flow} flow + {n_dist} "
          f"distance; {args.flow_pairs}+{args.distance_pairs} distinct)")

    # -- warm pool: prewarm in the parent, fork, serve the whole batch
    t0 = time.perf_counter()
    pool = WarmWorkerPool(workers=args.workers)
    pool.register(name, g)
    took = pool.prewarm(kinds=("flow", "distance"))
    pool.start()
    prewarm_s = time.perf_counter() - t0
    print(f"prewarm (once, pre-fork) : {prewarm_s:8.1f} s   "
          + "  ".join(f"{kind}={sec:.1f}s"
                      for (_n, kind), sec in took.items()))

    t0 = time.perf_counter()
    report = pool.run(queries)
    warm_s = time.perf_counter() - t0
    warm_qps = len(queries) / warm_s
    print(f"warm pool ({args.workers} workers)     : "
          f"{warm_s * 1e3 / len(queries):8.2f} ms/query "
          f"({_fmt(warm_qps)} q/s)")

    # parity: the pool's answers are bit-identical to in-process ones
    catalog = GraphCatalog()
    catalog.register(name, g.copy())
    sample = rng.sample(range(len(queries)), min(25, len(queries)))
    for i in sample:
        assert report.values()[i] == \
            execute_query(catalog, queries[i]).result, \
            f"pool answer diverges on {queries[i]}"
    pool.close()

    # -- fork-cold: per-query fresh process + private cold catalog,
    #    sampled per kind and extrapolated to the mix
    def cold_seconds(query, samples):
        total = 0.0
        for _ in range(samples):
            fresh = g.copy()  # fresh topology token: nothing cached
            t0 = time.perf_counter()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                rep = run_sharded({name: fresh}, [query],
                                  max_workers=1, fork_per_graph=True)
            total += time.perf_counter() - t0
            assert rep.values()[0] == \
                execute_query(catalog, query).result
        return total / samples

    cold_flow_s = cold_seconds(queries[0], args.cold_flow_samples)
    print(f"fork-cold st-flow        : {cold_flow_s * 1e3:8.1f} "
          f"ms/query ({_fmt(1.0 / cold_flow_s)} q/s)")
    cold_dist_s = cold_seconds(
        DistanceQuery(name, 0, 1), args.cold_distance_samples)
    print(f"fork-cold distance       : {cold_dist_s * 1e3:8.1f} "
          f"ms/query ({_fmt(1.0 / cold_dist_s)} q/s)")

    cold_total_s = n_flow * cold_flow_s + n_dist * cold_dist_s
    cold_qps = len(queries) / cold_total_s
    speedup = warm_qps / cold_qps
    print(f"extrapolated cold mix    : {cold_total_s:8.1f} s "
          f"({_fmt(cold_qps)} q/s)")
    ok = speedup >= 10.0
    print(f"acceptance (warm pool >= 10x fork-cold): "
          f"{'PASS' if ok else 'FAIL'} ({speedup:,.0f}x)")
    emit_json(args.json, "server", {
        "instance": {"rows": args.rows, "cols": args.cols, "n": g.n,
                     "m": g.m},
        "workers": args.workers,
        "queries": len(queries),
        "prewarm_s": prewarm_s,
        "warm_pool_qps": warm_qps,
        "fork_cold_flow_s": cold_flow_s,
        "fork_cold_distance_s": cold_dist_s,
        "fork_cold_qps": cold_qps,
        "speedup": speedup,
    }, ok)
    return 0 if ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
