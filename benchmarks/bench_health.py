"""Health-layer benchmark (DESIGN.md §15): the liveness/SLO acceptance
path, end to end.

Three gates, all through the live ``health``/``exemplars`` wire verbs:

1. **Ready under load** — a forked pool serving warm queries reports
   ``state == "ready"`` with every SLO ``ok``.
2. **Exemplars retained** — the server flight recorder holds at least
   one ``slow`` exemplar (slowest-K tail sampling) and one ``error``
   exemplar after a failing query, each a full stitched span tree.
3. **Kill → breach** — killing a worker under load flips the health
   report to ``degraded``/``breach`` within the watchdog's detection
   budget, while the survivors keep serving.

Under pytest the same paths run at smoke scale without forking; the
timed gates are script-mode only::

    PYTHONPATH=src python benchmarks/bench_health.py \\
        [--queries 40] [--json BENCH_health.json]
"""

import argparse
import time

import pytest

from _json_out import add_json_arg, emit_json

from repro import obs
from repro.planar.generators import grid, randomize_weights
from repro.server import QueryServer, ServiceClient, WarmWorkerPool
from repro.service import DistanceQuery

EXPECTED_VERBS = ("health", "exemplars")


def _make_instance(rows=5, cols=6, seed=1):
    return randomize_weights(grid(rows, cols), seed=seed,
                             directed_capacities=True)


def _warm_queries(name, g, count):
    nf = g.num_faces()
    return [DistanceQuery(name, i % nf, (i * 7 + 3) % nf)
            for i in range(count)]


def kill_pool_worker(pool):
    """Kill one live forked worker outright (the shared provocation of
    ``tests/test_server.py``) and wait for the corpse."""
    live = sorted(w for w, p in pool._procs.items()
                  if w not in pool._dead and p.is_alive())
    if not live:
        raise RuntimeError("no live worker left to kill")
    wid = live[0]
    proc = pool._procs[wid]
    proc.kill()
    proc.join(timeout=10)
    return wid


def wait_for(predicate, timeout=20.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ----------------------------------------------------------------------
# pytest mode (no forking; structural smoke)
# ----------------------------------------------------------------------
def test_health_ready_smoke(instances):
    obs.reset()
    obs.enable()
    try:
        pool = WarmWorkerPool(workers=0)
        pool.register("g", instances["grid-small"])
        pool.prewarm(kinds=("distance",))
        with pool:
            for q in _warm_queries("g", instances["grid-small"], 6):
                pool.submit(q).result()
            report = pool.health()
        assert report["state"] == "ready"
        assert report["status"] == "ok"
        assert report["slos"]["status"] == "ok"
        assert any(s["count"] for s in report["slos"]["slos"])
    finally:
        obs.reset()


def test_flight_recorder_smoke():
    rec = obs.FlightRecorder(slowest_k=1, window_seconds=3600.0)
    for trace, secs, err in (("a", 0.5, None), ("b", 0.1, None),
                             ("c", 0.2, "ValueError")):
        tags = {"error": err} if err else {}
        rec.record_span({"trace": trace, "name": "query.execute",
                         "start": 1.0, "seconds": secs, "tags": tags})
    reasons = {e["trace"]: e["reason"] for e in rec.exemplars()}
    assert reasons == {"a": "slow", "c": "error"}


# ----------------------------------------------------------------------
# script mode
# ----------------------------------------------------------------------
def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--rows", type=int, default=5)
    ap.add_argument("--cols", type=int, default=6)
    ap.add_argument("--queries", type=int, default=40,
                    help="warm distance queries before the health check")
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--detect-timeout", type=float, default=20.0,
                    help="seconds allowed for kill -> breach detection")
    add_json_arg(ap)
    args = ap.parse_args(argv)

    g = _make_instance(args.rows, args.cols)
    obs.reset()
    obs.enable()
    rows = {}
    try:
        pool = WarmWorkerPool(workers=args.workers,
                              heartbeat_interval=0.1, stall_after=2.0)
        pool.register("g", g)
        pool.prewarm(kinds=("distance",))
        pool.start()
        server = QueryServer(pool).start_background()
        host, port = server.address

        with ServiceClient(host, port, timeout=60) as client:
            # -- gate 1: ready/ok under warm load
            t0 = time.perf_counter()
            for q in _warm_queries("g", g, args.queries):
                client.query(q)
            serve_s = (time.perf_counter() - t0) / args.queries
            t0 = time.perf_counter()
            report = client.health()
            health_verb_s = time.perf_counter() - t0
            ok1 = (report["state"] == "ready"
                   and report["status"] == "ok"
                   and report["workers"]["alive"] == args.workers)
            print(f"under load: state={report['state']} "
                  f"status={report['status']} "
                  f"alive={report['workers']['alive']} "
                  f"({serve_s * 1e3:.2f} ms/query, health verb "
                  f"{health_verb_s * 1e3:.2f} ms)")
            print(f"acceptance (ready/ok under load): "
                  f"{'PASS' if ok1 else 'FAIL'}")

            # -- gate 2: flight recorder exemplars (slow + error)
            try:
                client.query(DistanceQuery("no-such-graph", 0, 1))
            except Exception as exc:
                print(f"provoked error: {type(exc).__name__}")

            def has_both():
                d = client.exemplars()
                reasons = {e["reason"] for e in d["exemplars"]}
                return {"slow", "error"} <= reasons

            t0 = time.perf_counter()
            ok2 = wait_for(has_both, timeout=15.0)
            dump = client.exemplars()
            exemplars_verb_s = time.perf_counter() - t0
            reasons = [e["reason"] for e in dump["exemplars"]]
            stitched = all(
                any(s.get("name") == "query.execute"
                    for s in e["spans"])
                for e in dump["exemplars"])
            ok2 = ok2 and dump["recording"] and stitched
            print(f"flight recorder: {dump['retained']} retained "
                  f"({reasons.count('slow')} slow, "
                  f"{reasons.count('error')} error), "
                  f"{dump['dropped']} dropped")
            print(f"acceptance (slow + error exemplars retained): "
                  f"{'PASS' if ok2 else 'FAIL'}")

            # -- gate 3: kill a worker -> breach, survivors serve
            wid = kill_pool_worker(pool)
            t0 = time.perf_counter()

            def breached():
                r = client.health()
                return (r["state"] == "degraded"
                        and r["status"] == "breach")

            detected = wait_for(breached, timeout=args.detect_timeout)
            detect_s = time.perf_counter() - t0
            after = client.health()
            survivor = client.query(_warm_queries("g", g, 1)[0])
            ok3 = (detected and survivor.result is not None
                   and after["workers"]["alive"] == args.workers - 1)
            print(f"killed worker {wid}: state={after['state']} "
                  f"status={after['status']} detected in "
                  f"{detect_s * 1e3:.0f} ms, survivor still serves")
            print(f"acceptance (kill -> degraded/breach): "
                  f"{'PASS' if ok3 else 'FAIL'}")

        server.shutdown()
        pool.close()
        rows = {
            "instance": {"rows": args.rows, "cols": args.cols, "n": g.n},
            "queries": args.queries, "workers": args.workers,
            "serve_s": serve_s,
            "health_verb_s": health_verb_s,
            "exemplars_verb_s": exemplars_verb_s,
            "kill_detect_s": detect_s,
            "retained": dump["retained"],
            "slow_exemplars": reasons.count("slow"),
            "error_exemplars": reasons.count("error"),
        }
    finally:
        obs.reset()

    ok = ok1 and ok2 and ok3
    emit_json(args.json, "health", rows, ok)
    return 0 if ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
