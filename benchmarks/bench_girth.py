"""E4 (Theorem 1.7): weighted girth — exact value, and Õ(D) rounds
(one diameter factor better than the Õ(D²) of prior work [36], whose
shape is included for comparison).

Script mode re-runs grid + Delaunay at smoke scale and emits a
``BENCH_girth.json`` report for ``scripts/bench_history.py``::

    PYTHONPATH=src python benchmarks/bench_girth.py \\
        [--json BENCH_girth.json]
"""

import argparse
import time

import pytest

from _json_out import add_json_arg, emit_json

from repro.baselines.centralized import centralized_weighted_girth
from repro.congest import RoundLedger
from repro.core import weighted_girth
from repro.planar.generators import grid, random_planar, randomize_weights


@pytest.mark.parametrize("k", [0, 1, 2])
def test_girth_grid_sweep(benchmark, k):
    g = randomize_weights(grid(4 + 2 * k, 4 + 2 * k), seed=k)
    ref = centralized_weighted_girth(g)
    led = RoundLedger()

    def run():
        return weighted_girth(g, ledger=led)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.value == ref
    d = g.diameter()

    # executable prior-work comparator [36]: girth via Õ(D²) labeling
    from repro.core import directed_weighted_girth
    from repro.planar.generators import bidirect

    led36 = RoundLedger()
    directed_weighted_girth(bidirect(g, reverse_weights=g.weights),
                            leaf_size=max(10, d), ledger=led36)

    benchmark.extra_info.update({
        "n": g.n, "D": d, "girth": res.value,
        "congest_rounds": led.total(),
        "rounds_per_D": round(led.total() / d, 1),
        "prior36_rounds": led36.total(),
        "ma_rounds": res.ma_rounds,
    })


@pytest.mark.parametrize("num_trees", [4, 12, 40])
def test_girth_tree_packing_ablation(benchmark, num_trees):
    """Ablation: how many greedily-packed trees does the exact min-cut
    need before it stops missing the optimum?  (DESIGN.md calls out the
    tree count as the main knob of the [GZ22] substitute.)"""
    g = randomize_weights(grid(5, 5), seed=9)
    ref = centralized_weighted_girth(g)

    def run():
        return weighted_girth(g, num_trees=num_trees)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "num_trees": num_trees,
        "exact": res.value == ref,
        "value": res.value, "optimum": ref,
        "ma_rounds": res.ma_rounds,
    })


def test_girth_delaunay(benchmark):
    g = randomize_weights(random_planar(50, seed=7), seed=7)
    ref = centralized_weighted_girth(g)

    def run():
        return weighted_girth(g)

    res = benchmark(run)
    assert res.value == ref
    benchmark.extra_info.update({"n": g.n, "girth": res.value})


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="E4: exact weighted girth vs the centralized "
                    "oracle, with the prior-work [36] round shape")
    add_json_arg(ap)
    args = ap.parse_args(argv)
    ok = True
    rows = {}

    g = randomize_weights(grid(5, 5), seed=0)
    ref = centralized_weighted_girth(g)
    led = RoundLedger()
    t0 = time.perf_counter()
    res = weighted_girth(g, ledger=led)
    girth_s = time.perf_counter() - t0
    ok &= res.value == ref
    d = g.diameter()

    from repro.core import directed_weighted_girth
    from repro.planar.generators import bidirect

    led36 = RoundLedger()
    directed_weighted_girth(bidirect(g, reverse_weights=g.weights),
                            leaf_size=max(10, d), ledger=led36)
    rows["grid"] = {
        "n": g.n, "D": d, "girth_s": girth_s,
        "congest_rounds": led.total(),
        "rounds_per_D": round(led.total() / d, 1),
        "prior36_rounds": led36.total(),
        "ma_rounds": res.ma_rounds,
    }

    g = randomize_weights(random_planar(50, seed=7), seed=7)
    ref = centralized_weighted_girth(g)
    t0 = time.perf_counter()
    res = weighted_girth(g)
    delaunay_s = time.perf_counter() - t0
    ok &= res.value == ref
    rows["delaunay"] = {"n": g.n, "girth_s": delaunay_s,
                        "girth": res.value}

    for name, row in rows.items():
        print(f"{name}: " + " ".join(f"{k}={v}" for k, v in row.items()))
    print(f"bench_girth: {'PASS' if ok else 'FAIL'}")
    emit_json(args.json, "girth", rows, ok)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
