"""E5 (Theorem 1.5): directed global min-cut — exact on strongly
connected planar digraphs, Õ(D²) rounds."""

import pytest

from repro.baselines.centralized import centralized_directed_global_mincut
from repro.congest import RoundLedger
from repro.core import directed_global_mincut
from repro.planar.generators import bidirect, random_planar, \
    randomize_weights


@pytest.mark.parametrize("k", [0, 1])
def test_global_mincut(benchmark, k):
    base = randomize_weights(random_planar(14 + 6 * k, seed=k), seed=k)
    g = bidirect(base, seed=k)
    ref = centralized_directed_global_mincut(g)
    led = RoundLedger()

    def run():
        return directed_global_mincut(g, leaf_size=12, ledger=led)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.value == ref
    d = g.diameter()
    benchmark.extra_info.update({
        "n": g.n, "D": d, "cut": res.value,
        "congest_rounds": led.total(),
        "rounds_per_D2": round(led.total() / d ** 2, 2),
    })
