"""E5 (Theorem 1.5): directed global min-cut — exact on strongly
connected planar digraphs, Õ(D²) rounds.

Each run also races the engine backend (DESIGN.md §7) on the same
instance and asserts *full* result parity — value, side, cut edges and
witness cycle darts are bit-identical by construction, since the engine
kernel replicates the legacy two-best Dijkstra tuple for tuple.  The
engine column isolates the kernel gain: both backends share the BDD
construction, so the per-``f ∈ F_X`` constrained-SSSP speedup is
diluted by that common cost on small instances.

Script mode re-runs the parity race at smoke scale and emits a
``BENCH_global_mincut.json`` report for ``scripts/bench_history.py``::

    PYTHONPATH=src python benchmarks/bench_global_mincut.py \\
        [--json BENCH_global_mincut.json]
"""

import argparse
import time

import pytest

from _json_out import add_json_arg, emit_json

from repro.baselines.centralized import centralized_directed_global_mincut
from repro.congest import RoundLedger
from repro.core import directed_global_mincut
from repro.planar.generators import bidirect, random_planar, \
    randomize_weights


@pytest.mark.parametrize("k", [0, 1])
def test_global_mincut(benchmark, k):
    base = randomize_weights(random_planar(14 + 6 * k, seed=k), seed=k)
    g = bidirect(base, seed=k)
    ref = centralized_directed_global_mincut(g)
    led = RoundLedger()

    def run():
        return directed_global_mincut(g, leaf_size=12, ledger=led)

    t0 = time.perf_counter()
    res = benchmark.pedantic(run, rounds=1, iterations=1)
    legacy_s = max(time.perf_counter() - t0, 1e-9)  # the pedantic call
    assert res.value == ref
    d = g.diameter()

    t0 = time.perf_counter()
    eng = directed_global_mincut(g, leaf_size=12, backend="engine")
    engine_s = max(time.perf_counter() - t0, 1e-9)
    assert eng == res  # bit-identical: value, side, cut edges, darts

    benchmark.extra_info.update({
        "n": g.n, "D": d, "cut": res.value,
        "congest_rounds": led.total(),
        "rounds_per_D2": round(led.total() / d ** 2, 2),
        "engine_s": round(engine_s, 4),
        "engine_speedup": round(legacy_s / engine_s, 1),
    })


def test_global_mincut_engine_large(benchmark):
    """Engine backend on an instance past the legacy benchmark sizes;
    the oracle (n−1 max-flow pairs) is still the correctness anchor."""
    base = randomize_weights(random_planar(45, seed=5), seed=5)
    g = bidirect(base, seed=5)

    def run():
        return directed_global_mincut(g, leaf_size=14, backend="engine")

    res = benchmark(run)
    assert res.value == centralized_directed_global_mincut(g)

    t0 = time.perf_counter()
    legacy = directed_global_mincut(g, leaf_size=14)
    legacy_s = time.perf_counter() - t0
    assert legacy == res
    engine_s = max(benchmark.stats.stats.mean, 1e-9)
    benchmark.extra_info.update({
        "n": g.n, "cut": res.value,
        "legacy_s": round(legacy_s, 4),
        "engine_speedup": round(legacy_s / engine_s, 1),
    })


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="E5: directed global min-cut — legacy vs engine "
                    "backend parity race against the centralized oracle")
    add_json_arg(ap)
    args = ap.parse_args(argv)
    ok = True
    rows = {}

    base = randomize_weights(random_planar(14, seed=0), seed=0)
    g = bidirect(base, seed=0)
    ref = centralized_directed_global_mincut(g)
    led = RoundLedger()
    t0 = time.perf_counter()
    res = directed_global_mincut(g, leaf_size=12, ledger=led)
    legacy_s = max(time.perf_counter() - t0, 1e-9)
    t0 = time.perf_counter()
    eng = directed_global_mincut(g, leaf_size=12, backend="engine")
    engine_s = max(time.perf_counter() - t0, 1e-9)
    ok &= res.value == ref
    ok &= eng == res  # bit-identical: value, side, cut edges, darts
    d = g.diameter()
    rows["parity"] = {
        "n": g.n, "D": d, "cut": res.value,
        "legacy_s": legacy_s, "engine_s": engine_s,
        "congest_rounds": led.total(),
        "rounds_per_D2": round(led.total() / d ** 2, 2),
        "engine_speedup": round(legacy_s / engine_s, 1),
    }

    print(f"cut={res.value} legacy={legacy_s * 1e3:.1f}ms "
          f"engine={engine_s * 1e3:.1f}ms "
          f"({legacy_s / engine_s:.1f}x) parity={'ok' if ok else 'FAIL'}")
    print(f"bench_global_mincut: {'PASS' if ok else 'FAIL'}")
    emit_json(args.json, "global_mincut", rows, ok)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
