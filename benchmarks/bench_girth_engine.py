"""Engine-vs-legacy backends for the girth family (DESIGN.md §7).

Companion of ``bench_engine.py`` (which covers the flow family): the
same two-mode layout for the theorems that run on *nonnegative* dual
lengths — weighted girth (Theorem 1.7) and the directed-girth
comparator [36].

* under pytest: times the engine backend on shared instances, asserts
  value/cycle parity against the legacy backend and the centralized
  oracle inline, and records the measured speedup in ``extra_info``;

* as a script, the headline experiment of the girth engine —

      PYTHONPATH=src python benchmarks/bench_girth_engine.py \
          [--rows 24] [--cols 24] [--seed 7]

  runs both backends to completion on the largest common instance (the
  legacy minor-aggregation pipeline finishes in seconds-to-minutes at
  these sizes, so no subprocess race is needed) and checks the ≥ 2x
  acceptance bar.  The engine is typically two orders of magnitude
  ahead: the legacy path pays for the shortcut host, the low out-degree
  orientation and ~3·log²·⁵(n) packed trees, while the engine runs one
  pruned two-best Dijkstra per vertex on the compiled primal.
"""

import argparse
import sys
import time

import pytest
from _json_out import add_json_arg, emit_json

from repro.baselines.centralized import centralized_weighted_girth
from repro.core import directed_weighted_girth, weighted_girth
from repro.planar.generators import (
    bidirect,
    grid,
    random_planar,
    randomize_weights,
)


def _girth_instances():
    return [
        ("grid", randomize_weights(grid(9, 9), seed=11)),
        ("delaunay", randomize_weights(random_planar(70, seed=12),
                                       seed=12)),
        ("sparse-delaunay", randomize_weights(
            random_planar(60, seed=13, keep=0.8), seed=13)),
    ]


@pytest.mark.parametrize("name,g", _girth_instances())
def test_girth_engine_families(benchmark, name, g):
    def run():
        return weighted_girth(g, backend="engine")

    res = benchmark(run)
    assert res.value == centralized_weighted_girth(g)

    t0 = time.perf_counter()
    weighted_girth(g, backend="engine")
    engine_s = max(time.perf_counter() - t0, 1e-9)
    t0 = time.perf_counter()
    legacy = weighted_girth(g)
    legacy_s = time.perf_counter() - t0
    assert legacy.value == res.value
    # the fixture instances have unique minimum cycles, so the witness
    # fields are comparable too (DESIGN.md §7 contract); a new seed that
    # introduces ties should be swapped out, not have the assert relaxed
    assert legacy.cycle_edge_ids == res.cycle_edge_ids
    assert legacy.cut_side_faces == res.cut_side_faces
    benchmark.extra_info.update({
        "n": g.n, "girth": res.value,
        "legacy_s": round(legacy_s, 4),
        "speedup": round(legacy_s / engine_s, 1),
    })


def test_directed_girth_engine(benchmark):
    base = randomize_weights(random_planar(40, seed=14), seed=14)
    g = bidirect(base, seed=14)

    def run():
        return directed_weighted_girth(g, backend="engine")

    res = benchmark(run)
    t0 = time.perf_counter()
    directed_weighted_girth(g, backend="engine")
    engine_s = max(time.perf_counter() - t0, 1e-9)
    t0 = time.perf_counter()
    legacy = directed_weighted_girth(g, leaf_size=max(10, g.diameter()))
    legacy_s = time.perf_counter() - t0
    assert legacy.value == res.value
    assert legacy.witness_edge == res.witness_edge
    benchmark.extra_info.update({
        "n": g.n, "girth": res.value,
        "legacy_s": round(legacy_s, 4),
        "speedup": round(legacy_s / engine_s, 1),
    })


def test_girth_engine_oracle_reuse(benchmark):
    """Repeated girth queries on one graph reuse the loaded cycle
    oracle (cached on the graph by the engine host, keyed on the
    weights) — the steady-state cost of a monitoring service
    re-checking the weakest ring."""
    g = randomize_weights(grid(8, 8), seed=15)
    ref = centralized_weighted_girth(g)

    def run():
        return [weighted_girth(g, backend="engine").value
                for _ in range(3)]

    values = benchmark(run)
    assert values == [ref] * 3


# ----------------------------------------------------------------------
# script mode
# ----------------------------------------------------------------------
def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--rows", type=int, default=24)
    ap.add_argument("--cols", type=int, default=24)
    ap.add_argument("--seed", type=int, default=7)
    add_json_arg(ap)
    args = ap.parse_args(argv)

    g = randomize_weights(grid(args.rows, args.cols), seed=args.seed)
    print(f"instance: {args.rows}x{args.cols} grid, n={g.n}, m={g.m}")

    t0 = time.perf_counter()
    eng = weighted_girth(g, backend="engine")
    engine_s = max(time.perf_counter() - t0, 1e-9)
    print(f"engine backend : girth={eng.value} "
          f"cycle={len(eng.cycle_edge_ids)} edges time={engine_s:.3f}s")

    t0 = time.perf_counter()
    ref = centralized_weighted_girth(g)
    print(f"oracle         : girth={ref} "
          f"time={time.perf_counter() - t0:.3f}s")
    assert eng.value == ref, "engine girth does not match the oracle"

    t0 = time.perf_counter()
    leg = weighted_girth(g)
    legacy_s = time.perf_counter() - t0
    assert leg.value == eng.value, "legacy girth value mismatch"
    identical = (leg.cycle_edge_ids == eng.cycle_edge_ids
                 and leg.cut_side_faces == eng.cut_side_faces)
    speedup = legacy_s / engine_s
    print(f"legacy backend : girth={leg.value} time={legacy_s:.2f}s")
    print(f"speedup        : {speedup:.1f}x (exact; outputs "
          f"{'bit-identical' if identical else 'value-equal'})")

    ok = speedup >= 2.0 and eng.value == leg.value
    print(f"acceptance (>= 2x, equal outputs): {'PASS' if ok else 'FAIL'}")
    emit_json(args.json, "girth_engine", {
        "instance": {"rows": args.rows, "cols": args.cols, "n": g.n,
                     "m": g.m, "seed": args.seed},
        "engine_s": engine_s,
        "legacy_s": legacy_s,
        "speedup": speedup,
        "exact": True,
        "girth": eng.value,
        "outputs_bit_identical": identical,
    }, ok)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
