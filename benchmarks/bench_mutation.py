"""Mutation benchmark: delta reprice vs full labeling rebuild
(DESIGN.md §11).

Two modes:

* under pytest (part of the benchmark suite): times a steady-state
  ``mutate_weights`` round through the catalog — each round really
  flips edge weights, so every iteration pays a genuine repair — and
  audits bit-parity against a from-scratch rebuild inline;

* as a script, the headline experiment of the incremental-repair
  subsystem —

      PYTHONPATH=src python benchmarks/bench_mutation.py \\
          [--rows 64] [--cols 64] [--edges 8] [--json out.json]

  measures, on a rows x cols grid at the default BDD leaf size:

  1. **full rebuild** — the Theorem 2.1 labeling built from scratch,
     which is what every ``set_weights`` reprice pays on the next
     distance query;
  2. **delta reprice** — ``mutate_weights`` of a contiguous run of
     edge ids (a *localized* weight change — the congestion-update
     shape incremental repair exists for): only the bags whose dual
     contains a touched dart recompute, the rest of the labeling is
     reused (p50/p99 over many rounds).  Scattering the same number
     of edges across the whole grid instead dirties most of the bag
     tree (every touched leaf drags in its ancestors) and correctly
     falls back to a rebuild — pass ``--scatter`` to see that.

  Acceptance: repricing <= ``--edges`` edges is >= 5x faster than the
  full rebuild, and ``audit_labeling`` confirms the repaired labels
  are *bit-identical* (values and Python types) to a fresh build.
"""

import argparse
import random
import time

from _json_out import add_json_arg, emit_json

from repro.planar.generators import grid, randomize_weights
from repro.service import DistanceQuery, GraphCatalog


# ----------------------------------------------------------------------
# pytest mode
# ----------------------------------------------------------------------
def test_catalog_mutation_reprice(benchmark, instances):
    """Steady-state few-edge reprice of a warm labeling."""
    g = instances["grid-large"]
    catalog = GraphCatalog()
    catalog.register("g", g)
    catalog.get("g").labeling(leaf_size=10)  # small leaf: multi-bag
    base = list(g.weights)
    eids = [0, 3, 11]

    def reprice_round():
        # flip between two weight sets so every iteration repairs
        edges = {e: (base[e] + 1 if g.weights[e] == base[e]
                     else base[e]) for e in eids}
        return catalog.mutate_weights("g", edges)

    report = benchmark(reprice_round)
    assert report["changed_edges"] == len(eids)
    rows = [r for r in report["labelings"] if r["leaf_size"] == 10]
    assert rows and all(r["action"] == "repaired" for r in rows)
    assert all(r["dirty_bags"] < r["total_bags"] for r in rows)
    # the repaired labels must be bit-identical to a fresh build
    audit = catalog.audit_labeling("g", leaf_size=10)
    assert audit["error"] is None and audit["labels"] > 0
    benchmark.extra_info.update(
        {"edges": len(eids), "dirty_bags": rows[0]["dirty_bags"],
         "total_bags": rows[0]["total_bags"]})


# ----------------------------------------------------------------------
# script mode
# ----------------------------------------------------------------------
def _percentile(sorted_vals, frac):
    return sorted_vals[min(len(sorted_vals) - 1,
                           int(frac * len(sorted_vals)))]


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--rows", type=int, default=64)
    ap.add_argument("--cols", type=int, default=64)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--leaf-size", type=int, default=None,
                    help="BDD leaf size (default: paper's "
                         "max(16, D log n))")
    ap.add_argument("--edges", type=int, default=8,
                    help="edges mutated per reprice round (a "
                         "contiguous id run: one grid locality)")
    ap.add_argument("--scatter", action="store_true",
                    help="mutate random edges across the whole grid "
                         "instead of one locality (expect the "
                         "over-threshold rebuild fallback)")
    ap.add_argument("--rounds", type=int, default=20,
                    help="reprice rounds (p50/p99 over these)")
    ap.add_argument("--rebuilds", type=int, default=3,
                    help="full labeling builds for the baseline")
    ap.add_argument("--min-speedup", type=float, default=5.0,
                    help="acceptance: rebuild/reprice ratio")
    ap.add_argument("--skip-audit", action="store_true",
                    help="skip the final bit-parity audit (it pays "
                         "one more from-scratch build)")
    add_json_arg(ap)
    args = ap.parse_args(argv)

    g = randomize_weights(grid(args.rows, args.cols), seed=args.seed,
                          directed_capacities=True)
    name = f"grid-{args.rows}x{args.cols}"
    leaf = args.leaf_size
    catalog = GraphCatalog()
    entry = catalog.register(name, g)
    print(f"instance: {args.rows}x{args.cols} grid, n={g.n}, m={g.m}, "
          f"faces={g.num_faces()}, leaf_size="
          f"{'default' if leaf is None else leaf}")

    # -- 1. full-rebuild baseline: the cold build plus set_weights
    #       teardown/rebuild cycles — what a reprice costs without §11
    rebuild_s = []
    t0 = time.perf_counter()
    entry.labeling(leaf_size=leaf)
    rebuild_s.append(time.perf_counter() - t0)
    for _ in range(max(0, args.rebuilds - 1)):
        catalog.set_weights(name, weights=[w + 1 for w in g.weights])
        t0 = time.perf_counter()
        entry.labeling(leaf_size=leaf)
        rebuild_s.append(time.perf_counter() - t0)
    rebuild_mean = sum(rebuild_s) / len(rebuild_s)
    print(f"full rebuild             : {rebuild_mean * 1e3:8.1f} ms "
          f"(mean of {len(rebuild_s)}; what set_weights pays on the "
          f"next distance query)")

    # -- 2. delta reprice: a localized edge run per round, repaired in
    #       place — every round verified to have taken the repair path
    rng = random.Random(args.seed)
    reprice_s = []
    dirty = total = 0
    for _ in range(args.rounds):
        if args.scatter:
            eids = rng.sample(range(g.m), args.edges)
        else:
            anchor = rng.randrange(g.m - args.edges)
            eids = range(anchor, anchor + args.edges)
        edges = {e: g.weights[e] + rng.randint(1, 9) for e in eids}
        t0 = time.perf_counter()
        report = catalog.mutate_weights(name, edges)
        reprice_s.append(time.perf_counter() - t0)
        (row,) = report["labelings"]
        if args.scatter and row["action"] == "rebuild":
            print(f"scattered mutation over threshold "
                  f"({row['dirty_bags']}/{row['total_bags']} bags "
                  f"dirty): rebuild fallback — as designed")
            entry.labeling(leaf_size=leaf)  # pay it, keep measuring
            reprice_s.pop()
            continue
        assert row["action"] == "repaired", \
            f"reprice fell back to a rebuild: {row}"
        dirty, total = row["dirty_bags"], row["total_bags"]
    if not reprice_s:
        print("no round took the repair path; nothing to report")
        return 1
    reprice_s.sort()
    reprice_mean = sum(reprice_s) / len(reprice_s)
    p50 = _percentile(reprice_s, 0.50)
    p99 = _percentile(reprice_s, 0.99)
    print(f"delta reprice ({args.edges} edges)  : "
          f"{reprice_mean * 1e3:8.1f} ms mean  "
          f"p50={p50 * 1e3:.1f} ms  p99={p99 * 1e3:.1f} ms  "
          f"({args.rounds} rounds, {dirty}/{total} bags dirty)")

    # -- 3. the repaired labeling must still answer correctly: audit
    #       against a from-scratch rebuild, bit for bit
    audit_row = None
    if not args.skip_audit:
        audit = catalog.audit_labeling(name, leaf_size=leaf)
        assert audit["error"] is None
        audit_row = {"labels": audit["labels"],
                     "entries": audit["entries"]}
        print(f"bit-parity audit         : PASS ({audit['labels']} "
              f"labels, {audit['entries']} entries)")
        catalog.serve(DistanceQuery(name, 0, g.num_faces() - 1,
                                    leaf_size=leaf))

    speedup = rebuild_mean / reprice_mean
    ok = speedup >= args.min_speedup
    print(f"acceptance (reprice >= {args.min_speedup:g}x rebuild) : "
          f"{'PASS' if ok else 'FAIL'} ({speedup:,.1f}x)")
    emit_json(args.json, "mutation", {
        "instance": {"rows": args.rows, "cols": args.cols, "n": g.n,
                     "m": g.m, "leaf_size": leaf},
        "edges_per_round": args.edges,
        "rounds": args.rounds,
        "rebuild_mean_s": rebuild_mean,
        "rebuild_samples": len(rebuild_s),
        "reprice_mean_s": reprice_mean,
        "reprice_p50_s": p50,
        "reprice_p99_s": p99,
        "dirty_bags": dirty,
        "total_bags": total,
        "speedup": speedup,
        "min_speedup": args.min_speedup,
        "audit": audit_row,
    }, ok)
    return 0 if ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
