"""Dual single-source shortest paths from the labels (Lemma 2.2,
Section 5.4).

Given the labeling, an SSSP from any dual node ``s`` costs one broadcast
of ``Label(s)`` (Õ(D) words over a BFS tree of G, hence Õ(D) rounds)
after which every vertex decodes the distance of each face containing
it; the shortest-path tree is then marked with one part-wise aggregation
on G* (each node keeps the incident arc minimizing
``dist(s, f) + w(f→g)``).

:func:`dual_sssp_engine` produces the same :class:`DualSsspResult`
(identical distances, tree darts and parent darts — the tree-marking
tie-break is replicated exactly) without a labeling: distances come
from one array Bellman–Ford on the compiled CSR dual of
:mod:`repro.engine`, with buffers reusable across calls via the
``workspace`` argument.  Use it when you need dual SSSPs fast and do
not need the round audit or the label data structures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import FlowWorkspace, compile_graph
from repro.labeling.labels import INF, decode_distance
from repro.planar.graph import rev


@dataclass
class DualSsspResult:
    source: int
    #: face id -> dist(s → face)
    dist: dict
    #: dart ids whose dual arcs form the SSSP tree (parent arcs)
    tree_darts: set
    #: face id -> parent dart (the arc entering it on the tree)
    parent_dart: dict


def dual_sssp(labeling, source, ledger=None):
    """Shortest-path tree from dual node ``source`` in G*.

    Returns a :class:`DualSsspResult`; negative cycles were already
    rejected during labeling.
    """
    graph = labeling.graph
    root = labeling.bdd.root.bag_id
    label_s = labeling.label(source)

    dist = {}
    for f in sorted(labeling.duals[root].nodes):
        dist[f] = decode_distance(label_s, labeling.label(f))

    if ledger is not None:
        depth = graph.eccentricity(0)
        ledger.charge_broadcast(label_s.words(), depth,
                                "dual-sssp/broadcast-source-label",
                                ref="Section 5.4")

    tree_darts, parent_dart = _mark_tree(graph, dist, labeling.lengths,
                                         source)

    if ledger is not None:
        ledger.charge(1, "dual-sssp/mark-tree",
                      detail="one PA task on G*", ref="Lemma 4.9 / §5.4")

    return DualSsspResult(source=source, dist=dist,
                          tree_darts=tree_darts, parent_dart=parent_dart)


def _mark_tree(graph, dist, lengths, source):
    """Tree marking: for every face g, the best incoming tight arc
    (deterministic ``(dist + length, dart)`` tie-break shared by both
    backends)."""
    best = {}
    for d in graph.darts():
        f = graph.face_of[d]
        g = graph.face_of[rev(d)]
        if dist.get(f, INF) == INF:
            continue
        cand = dist[f] + lengths[d]
        key = (cand, d)
        if g not in best or key < best[g]:
            best[g] = key

    tree_darts = set()
    parent_dart = {}
    for g, (cand, d) in best.items():
        if g == source:
            continue
        if dist.get(g, INF) < INF and abs(cand - dist[g]) < 1e-9:
            tree_darts.add(d)
            parent_dart[g] = d
    return tree_darts, parent_dart


def dual_sssp_engine(graph, lengths, source, workspace=None):
    """Array-backed shortest-path tree from dual node ``source`` in G*.

    Output-equivalent to :func:`dual_sssp` run on a
    :class:`~repro.labeling.scheme.DualDistanceLabeling` with the same
    ``lengths`` (dart -> arc length, negatives allowed), but computed on
    the compiled CSR dual.  Pass a
    :class:`~repro.engine.workspace.FlowWorkspace` to reuse buffers
    across calls; raises :class:`~repro.errors.NegativeCycleError` on a
    reachable negative cycle.
    """
    ws = workspace if workspace is not None \
        else FlowWorkspace(compile_graph(graph))
    ws.load_lengths(lengths)
    dist_row = ws.sssp(source)
    dist = {f: dist_row[f] for f in range(ws.compiled.num_faces)}
    tree_darts, parent_dart = _mark_tree(graph, dist, lengths, source)
    return DualSsspResult(source=source, dist=dist,
                          tree_darts=tree_darts, parent_dart=parent_dart)
