"""Distance labeling: dual (Section 5) and primal ([27] substrate)."""

from repro.labeling.labels import Label, LabelEntry, decode_distance
from repro.labeling.primal import (
    PrimalDistanceLabeling,
    decode_primal_distance,
)
from repro.labeling.scheme import DualDistanceLabeling
from repro.labeling.sssp import DualSsspResult, dual_sssp, dual_sssp_engine

__all__ = [
    "Label",
    "LabelEntry",
    "decode_distance",
    "DualDistanceLabeling",
    "DualSsspResult",
    "dual_sssp",
    "dual_sssp_engine",
    "PrimalDistanceLabeling",
    "decode_primal_distance",
]
