"""Primal distance labeling via the BDD — the Li-Parter [27] substrate.

The paper uses [27]'s Õ(D²)-round *primal* SSSP twice: as the template
its dual scheme generalizes (Section 2.2's "SSSP via distance labels"
sketch) and as the black-box solving the residual reachability of the
exact min st-cut (Theorem 6.1).  This module implements that primal
scheme with the same BDD: the label of a vertex ``v`` in bag ``X``
stores its distances to the separator vertices ``S_X`` (a vertex cut of
the bag) plus, recursively, its label in the child bag containing it.

Unlike the dual scheme there are no face-parts: vertices are atomic
(the contrast Section 2.2 highlights), which makes this a compact
reference implementation of the centralized recipe of [10] that the
dual machinery had to generalize.

Supports directed darts with nonnegative lengths (Dijkstra per bag;
the min-cut residual graph uses 0/1 lengths).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.bdd import build_bdd
from repro.errors import DecompositionError
from repro.planar.graph import rev

INF = math.inf


@dataclass
class PrimalLabelEntry:
    bag_id: int
    vertex: int
    is_leaf: bool
    #: separator vertex -> (dist v -> u, dist u -> v)
    dists: dict = field(default_factory=dict)

    def words(self):
        return 2 + 2 * len(self.dists)


@dataclass
class PrimalLabel:
    vertex: int
    entries: list

    def words(self):
        return sum(e.words() for e in self.entries)


def decode_primal_distance(label_a, label_b):
    """dist(a -> b) in the primal graph from the two labels."""
    if label_a.vertex == label_b.vertex:
        return 0
    best = INF
    for ea, eb in zip(label_a.entries, label_b.entries):
        if ea.bag_id != eb.bag_id:
            break
        if ea.is_leaf:
            if label_b.vertex in ea.dists:
                best = min(best, ea.dists[label_b.vertex][0])
            break
        for u, (d_au, _d_ua) in ea.dists.items():
            if u in eb.dists:
                cand = d_au + eb.dists[u][1]
                if cand < best:
                    best = cand
    return best


class PrimalDistanceLabeling:
    """Õ(D²)-round primal distance labels over a BDD.

    ``lengths``: dict dart -> nonnegative length of traversing the dart
    (directed); defaults to the edge weight in both directions.

    ``backend="engine"`` runs the same per-bag Dijkstras on one pooled
    :class:`~repro.engine.dijkstra.DijkstraWorkspace` (generation-stamp
    re-init, buffers shared across every bag and source) instead of
    dict-keyed heaps; labels are bit-identical.  Rounds are only
    charged on the legacy backend.
    """

    BACKENDS = ("legacy", "engine")

    def __init__(self, graph, lengths=None, bdd=None, leaf_size=None,
                 ledger=None, backend="legacy"):
        if backend not in self.BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"expected one of {self.BACKENDS}")
        self.graph = graph
        if lengths is None:
            lengths = {}
            for eid in range(graph.m):
                lengths[2 * eid] = graph.weights[eid]
                lengths[2 * eid + 1] = graph.weights[eid]
        self.lengths = lengths
        self.bdd = bdd if bdd is not None else build_bdd(
            graph, leaf_size=leaf_size, ledger=ledger)
        self.ledger = ledger
        self.backend = backend
        self._labels = {}
        if backend == "engine":
            from repro.engine.dijkstra import DijkstraWorkspace

            self._ws = DijkstraWorkspace(graph.n)
        self._compute()

    def label(self, v):
        return self._labels[(self.bdd.root.bag_id, v)]

    def distance(self, u, v):
        return decode_primal_distance(self.label(u), self.label(v))

    # ------------------------------------------------------------------
    def _compute(self):
        for level_bags in self.bdd.levels():
            cost = 0
            for bag in level_bags:
                cost = max(cost, self._label_bag(bag))
            if self.ledger is not None and level_bags \
                    and self.backend == "legacy":
                lvl = level_bags[0].level
                self.ledger.charge(2 * cost,
                                   f"primal-labeling/level{lvl}",
                                   ref="[27] via DESIGN.md substitution")

    def _vertex_child(self, bag):
        """(owner map, shared vertices).

        A vertex appearing in two children that is not on ``S_X`` (a cut
        vertex joining exterior components) plays the same role the
        split faces play in ``F_X``: it joins the label anchor set."""
        owner = {}
        shared = set()
        for c in bag.children:
            for v in c.view().vertices:
                if v in owner and owner[v] is not c:
                    shared.add(v)
                else:
                    owner[v] = c
        for v in shared:
            owner.pop(v, None)
        return owner, shared

    def _dijkstra(self, view, source, reverse=False):
        dist = {source: 0}
        heap = [(0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, INF):
                continue
            for dart in view.out_darts(u):
                ln = self.lengths[rev(dart)] if reverse \
                    else self.lengths[dart]
                w = view.head(dart)
                nd = d + ln
                if nd < dist.get(w, INF):
                    dist[w] = nd
                    heapq.heappush(heap, (nd, w))
        return dist

    def _bag_sssp(self, view, sources, reverse=False):
        """dict source -> dist dict over the bag's vertices, on the
        selected backend: per-source dict Dijkstra (legacy) or the one
        pooled array workspace, arcs loaded once per direction
        (engine).  Distances are canonical, so labels built from either
        are bit-identical."""
        if self.backend != "engine":
            return {u: self._dijkstra(view, u, reverse=reverse)
                    for u in sources}
        ws = self._ws
        lengths = self.lengths
        arcs = []
        for u in view.vertices:
            for dart in view.out_darts(u):
                ln = lengths[rev(dart)] if reverse else lengths[dart]
                arcs.append((dart, u, view.head(dart), ln))
        ws.load_arcs(arcs)
        out = {}
        verts = view.vertices
        for u in sources:
            ws.sssp(u)
            row = {}
            for v in verts:
                d = ws.distance(v)
                if d < INF:
                    row[v] = d
            out[u] = row
        return out

    def _label_bag(self, bag):
        view = bag.view()
        verts = sorted(view.vertices)
        if bag.is_leaf:
            fwd = self._bag_sssp(view, verts)
            for v in verts:
                entry = PrimalLabelEntry(
                    bag_id=bag.bag_id, vertex=v, is_leaf=True,
                    dists={u: (fwd[v].get(u, INF), fwd[u].get(v, INF))
                           for u in verts})
                self._labels[(bag.bag_id, v)] = PrimalLabel(
                    vertex=v, entries=[entry])
            return len(verts) + view.m + self._depth(bag)

        owner, shared = self._vertex_child(bag)
        sep = list(dict.fromkeys(list(bag.sx_vertices) + sorted(shared)))
        # distances inside the bag between every vertex and the anchor
        # set: two Dijkstras per anchor (forward + reverse), exactly the
        # information the broadcast step of [27] ships
        fwd = self._bag_sssp(view, sep)
        back = self._bag_sssp(view, sep, reverse=True)
        words = 0
        for v in verts:
            entry = PrimalLabelEntry(
                bag_id=bag.bag_id, vertex=v, is_leaf=False,
                dists={u: (back[u].get(v, INF), fwd[u].get(v, INF))
                       for u in sep})
            words += entry.words()
            entries = [entry]
            if v not in set(sep):
                child = owner.get(v)
                if child is None:
                    raise DecompositionError(
                        f"vertex {v} of bag {bag.bag_id} has no child")
                entries = [entry] + \
                    self._labels[(child.bag_id, v)].entries
            self._labels[(bag.bag_id, v)] = PrimalLabel(
                vertex=v, entries=entries)
        return words + self._depth(bag)

    def _depth(self, bag):
        if bag.bfs_depth:
            return bag.bfs_depth
        view = bag.view()
        return view.eccentricity(next(iter(view.vertices)))

    def max_label_bits(self, word_bits=32):
        root = self.bdd.root.bag_id
        return max(lbl.words() * word_bits
                   for (b, _v), lbl in self._labels.items() if b == root)
