"""Label data structures and decoding (Section 5.2).

A label is a chain of per-bag entries, root bag first.  An internal
entry stores, for its node ``g``, both-direction distances to every
``F_X`` node of the bag; a leaf entry stores both-direction distances to
*all* nodes of the leaf bag.  Decoding two labels walks the chains while
the bag ids agree, taking the best crossing candidate
``min_f dist(a→f) + dist(f→b)`` at every internal bag (Lemma 5.16) and
the direct entry at an aligned leaf.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

INF = math.inf


@dataclass
class LabelEntry:
    bag_id: int
    node: int
    is_leaf: bool
    #: face id -> distance node -> f   (for leaf entries: all bag nodes)
    dist_to: dict = field(default_factory=dict)
    #: face id -> distance f -> node
    dist_from: dict = field(default_factory=dict)

    def words(self):
        return 2 + len(self.dist_to) + len(self.dist_from)


@dataclass
class Label:
    node: int
    entries: list

    def words(self):
        return sum(e.words() for e in self.entries)

    def bits(self, word_bits=32):
        """Size in bits (Theorem 2.1 claims Õ(D))."""
        return self.words() * word_bits


def decode_distance(label_a, label_b):
    """dist(a → b) in the dual graph from the two labels alone
    (Lemma 5.16)."""
    if label_a.node == label_b.node:
        return 0
    best = INF
    for ea, eb in zip(label_a.entries, label_b.entries):
        if ea.bag_id != eb.bag_id:
            break
        if ea.is_leaf:
            cand = ea.dist_to.get(label_b.node, INF)
            best = min(best, cand)
            break
        for f, d_af in ea.dist_to.items():
            d_fb = eb.dist_from.get(f, INF)
            if d_af + d_fb < best:
                best = d_af + d_fb
    return best


def max_label_bits(labels, word_bits=32):
    return max((lbl.bits(word_bits) for lbl in labels), default=0)
