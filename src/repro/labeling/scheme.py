"""The dual distance labeling algorithm (Theorem 2.1, Algorithm 2).

Bottom-up over the BDD levels:

* **leaf bags** — the whole dual bag (Õ(D) nodes and arcs, property 10)
  is broadcast inside the bag; every vertex computes APSP locally
  (Bellman-Ford: lengths may be negative) and reads off the labels;

* **non-leaf bags** — the dual separator arcs and the child labels of
  all ``F_X`` node-parts are broadcast (the Õ(D²) term: Õ(D) labels of
  Õ(D) words over an Õ(D)-diameter bag), then each node ``g`` builds its
  dense distance graph ``DDG(g)`` — cliques of decoded child distances,
  dual ``S_X`` arcs, zero-weight links between parts of the same face —
  and extracts its distances to ``F_X`` (Section 5.3, Figure 13).

Negative cycles are detected in the leafmost bag containing them
(Lemma 5.19) and surface as :class:`NegativeCycleError`.

A labeling is built once and then *answers queries* (Lemma 2.2): the
serving layer caches one instance per graph weight fingerprint and
routes every :class:`~repro.service.queries.DistanceQuery` through
:meth:`DualDistanceLabeling.distance` — see
:mod:`repro.service` and DESIGN.md §8 for the amortization economics.

Construction has two backends: the legacy recursion below (the
round-audited reference) and ``backend="engine"``
(:mod:`repro.engine.labels`, DESIGN.md §9), which builds bit-identical
labels on compiled per-bag arrays and is what the serving layer uses
for cold :class:`~repro.service.queries.DistanceQuery` misses.
"""

from __future__ import annotations

import math
import time
from collections import deque

from repro import obs
from repro.bdd.dual_bags import build_all_dual_bags
from repro.errors import NegativeCycleError
from repro.labeling.labels import INF, Label, LabelEntry, decode_distance
from repro.planar.graph import rev


def _spfa(nodes, out_arcs, source):
    """Queue Bellman-Ford over hashable nodes.

    ``out_arcs``: dict node -> list of (head, length).  Returns dist
    dict; raises :class:`NegativeCycleError` on a reachable negative
    cycle (including negative self-loops).
    """
    dist = {v: INF for v in nodes}
    cnt = {v: 0 for v in nodes}
    dist[source] = 0
    q = deque([source])
    inq = {source}
    limit = len(nodes) + 1
    while q:
        u = q.popleft()
        inq.discard(u)
        du = dist[u]
        for (h, ln) in out_arcs.get(u, ()):
            nd = du + ln
            if nd < dist[h]:
                dist[h] = nd
                cnt[h] += 1
                if cnt[h] > limit:
                    raise NegativeCycleError(where="spfa")
                if h not in inq:
                    inq.add(h)
                    q.append(h)
    return dist


class DualDistanceLabeling:
    """Distance labels for the dual of an embedded planar graph.

    Parameters
    ----------
    bdd:
        A :class:`repro.bdd.bags.BDD` of the primal graph.
    lengths:
        dict dart -> length of the dual arc of that dart (arc goes from
        ``face(d)`` to ``face(rev d)``); lengths may be negative.
    duals:
        Optional precomputed dual bags (reused across the Miller-Naor
        binary search, whose topology never changes).
    ledger:
        Optional :class:`repro.congest.rounds.RoundLedger`.  Rounds are
        only charged on the legacy backend — the engine is a
        centralized fast path, so CONGEST accounting on it would be
        meaningless (same contract as
        :class:`repro.core.maxflow.PlanarMaxFlow`).
    backend:
        ``"legacy"`` (default) — the round-audited Algorithm 2
        simulation above; ``"engine"`` — the compiled-array builder of
        :mod:`repro.engine.labels`, which produces bit-identical labels
        (including :class:`NegativeCycleError` sites) from cached
        per-bag CSR slices and batched Bellman–Ford kernels.
    repair_state:
        Engine backend only.  Record the per-bag child SSSP matrices
        and DDG boundary rows during construction so that
        :meth:`reprice` can delta-repair the labels after a weight
        mutation instead of rebuilding from scratch (DESIGN.md §11).
        Costs O(total label words) extra memory.
    """

    BACKENDS = ("legacy", "engine")

    def __init__(self, bdd, lengths, duals=None, ledger=None,
                 backend="legacy", repair_state=False):
        if backend not in self.BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"expected one of {self.BACKENDS}")
        if repair_state and backend != "engine":
            raise ValueError("repair_state=True requires "
                             "backend='engine'")
        self.bdd = bdd
        self.graph = bdd.graph
        self.lengths = lengths
        self.duals = duals if duals is not None else build_all_dual_bags(bdd)
        self.ledger = ledger
        self.backend = backend
        #: (bag_id, face) -> Label (in that bag's dual)
        self._labels = {}
        self._decode_cache = {}
        #: bag_id -> engine repair state, or None (repair disabled)
        self._repair = {} if repair_state else None
        if backend == "engine":
            from repro.engine.labels import build_dual_labels_engine

            build_dual_labels_engine(self)
        else:
            self._compute()

    # ------------------------------------------------------------------
    def label(self, face, bag=None):
        """Label of a face in a bag's dual (default: the root, G*)."""
        bag_id = self.bdd.root.bag_id if bag is None else bag
        return self._labels[(bag_id, face)]

    def distance(self, f, g):
        """dist_{G*}(f → g) decoded from the two labels."""
        if not obs.enabled():
            return decode_distance(self.label(f), self.label(g))
        t0 = time.perf_counter()
        d = decode_distance(self.label(f), self.label(g))
        obs.observe("labeling.decode_seconds", time.perf_counter() - t0)
        return d

    def all_labels_root(self):
        root = self.bdd.root.bag_id
        return [self._labels[(root, f)]
                for f in sorted(self.duals[root].nodes)]

    # ------------------------------------------------------------------
    def reprice(self, changes, max_dirty_frac=None):
        """Delta-repair the labels after a dart-length mutation
        (DESIGN.md §11).  Requires ``repair_state=True``.

        ``changes`` maps global dart -> new length.  No-op entries
        (already at that length) are dropped; the remaining darts
        determine the dirty bag set, and only those bags are
        recomputed — reusing each clean child's recorded SSSP matrices
        and skipping its node labels outright when its DDG boundary
        rows come back unchanged.  The repaired labels are
        *bit-identical* to a from-scratch rebuild under the new
        lengths, including the first :class:`NegativeCycleError`
        (message and ``where``) — but after such a raise the labeling
        is corrupt (partially repriced) and must be discarded.

        ``max_dirty_frac``: when set and the dirty set exceeds that
        fraction of the bags, nothing is touched and the returned stats
        have ``repaired=False`` — the caller should do a full rebuild
        instead (the repair would not beat it).  Returns a stats dict
        (``repaired``, ``changed_darts``, ``dirty_bags``,
        ``total_bags``, and — after a repair — per-kind recompute
        counters).
        """
        if self._repair is None:
            raise ValueError("reprice() requires a labeling built "
                             "with repair_state=True")
        from repro.engine.labels import (
            compile_labeling_bags,
            dirty_bags,
            repair_dual_labels_engine,
        )

        changed = {d: v for d, v in changes.items()
                   if self.lengths.get(d) != v}
        compiled = compile_labeling_bags(self.bdd, self.duals)
        dirty = dirty_bags(compiled, changed)
        total = sum(len(lv) for lv in compiled.levels)
        if (max_dirty_frac is not None and total
                and len(dirty) > max_dirty_frac * total):
            return {"repaired": False, "changed_darts": len(changed),
                    "dirty_bags": len(dirty), "total_bags": total}
        stats = repair_dual_labels_engine(self, changed,
                                          compiled=compiled,
                                          dirty=dirty)
        self._decode_cache.clear()
        stats["repaired"] = True
        return stats

    # ------------------------------------------------------------------
    def _compute(self):
        copies = 1
        for level_bags in self.bdd.levels():
            level_cost = 0
            for bag in level_bags:
                cost = self._label_bag(bag)
                level_cost = max(level_cost, cost)
            if self.ledger is not None and level_bags:
                lvl = level_bags[0].level
                self.ledger.charge(
                    2 * level_cost, f"labeling/level{lvl}",
                    detail=f"{len(level_bags)} bags in parallel",
                    ref="Section 5.3 (property 7 parallelism)")

    def _label_bag(self, bag):
        if bag.is_leaf:
            return self._label_leaf(bag)
        return self._label_internal(bag)

    # ------------------------------------------------------------------
    def _label_leaf(self, bag):
        dual = self.duals[bag.bag_id]
        nodes = sorted(dual.nodes)
        out = {}
        rin = {}
        g = self.graph
        for d in dual.arc_darts:
            t, h = g.face_of[d], g.face_of[rev(d)]
            ln = self.lengths[d]
            out.setdefault(t, []).append((h, ln))
            rin.setdefault(h, []).append((t, ln))

        try:
            dist_to = {v: _spfa(nodes, out, v) for v in nodes}
        except NegativeCycleError:
            raise NegativeCycleError(
                f"negative cycle in leaf bag {bag.bag_id}",
                where=("leaf", bag.bag_id))

        for v in nodes:
            entry = LabelEntry(
                bag_id=bag.bag_id, node=v, is_leaf=True,
                dist_to={h: dist_to[v][h] for h in nodes},
                dist_from={h: dist_to[h][v] for h in nodes})
            self._labels[(bag.bag_id, v)] = Label(node=v, entries=[entry])

        # rounds: gather the whole bag (property 10): Õ(D) ids + arcs
        # pipelined over the bag's BFS tree
        return len(nodes) + len(dual.arc_darts) + self._bag_depth(bag)

    # ------------------------------------------------------------------
    def _label_internal(self, bag):
        g = self.graph
        dual = self.duals[bag.bag_id]
        f_x = sorted(dual.f_x)

        dart_child = {}
        for c in bag.children:
            for d in c.live_darts:
                dart_child[d] = c

        # parts: (child_bag_id, face) for every F_X face in every child
        parts = []
        parts_of_face = {f: [] for f in f_x}
        for f in f_x:
            for c in bag.children:
                if f in self.duals[c.bag_id].nodes:
                    key = (c.bag_id, f)
                    parts.append(key)
                    parts_of_face[f].append(key)

        # ---- shared DDG over the parts --------------------------------
        ddg_out = {p: [] for p in parts}
        ddg_in = {p: [] for p in parts}

        def add_arc(p, q, ln):
            ddg_out[p].append((q, ln))
            ddg_in[q].append((p, ln))

        # (i) per-child cliques of decoded distances
        fx_in_child = {}
        for c in bag.children:
            cf = [f for f in f_x if f in self.duals[c.bag_id].nodes]
            fx_in_child[c.bag_id] = cf
            for f1 in cf:
                for f2 in cf:
                    if f1 == f2:
                        continue
                    dd = self._child_dist(c.bag_id, f1, f2)
                    if dd < INF:
                        add_arc((c.bag_id, f1), (c.bag_id, f2), dd)

        # (ii) dual S_X arcs
        for d in dual.sx_arc_darts:
            fd, fr = g.face_of[d], g.face_of[rev(d)]
            cd = dart_child[d].bag_id
            cr = dart_child[rev(d)].bag_id
            add_arc((cd, fd), (cr, fr), self.lengths[d])

        # (iii) zero links between parts of the same face
        for f in f_x:
            plist = parts_of_face[f]
            for i in range(len(plist)):
                for j in range(len(plist)):
                    if i != j:
                        add_arc(plist[i], plist[j], 0)

        # ---- APSP over the shared DDG ----------------------------------
        try:
            ddg_dist = {p: _spfa(parts, ddg_out, p) for p in parts}
        except NegativeCycleError:
            raise NegativeCycleError(
                f"negative cycle crossing F_X of bag {bag.bag_id}",
                where=("ddg", bag.bag_id))

        # distances face-to-face across parts
        def face_dist(f1, f2):
            best = INF
            for p in parts_of_face[f1]:
                dp = ddg_dist[p]
                for q in parts_of_face[f2]:
                    if dp[q] < best:
                        best = dp[q]
            return best

        fx_dist = {}
        for f1 in f_x:
            for f2 in f_x:
                fx_dist[(f1, f2)] = 0 if f1 == f2 else face_dist(f1, f2)
        # negative self-reaching distance through the DDG = negative cycle
        for f in f_x:
            if face_dist(f, f) < 0:
                raise NegativeCycleError(
                    f"negative cycle through F_X node {f} of bag "
                    f"{bag.bag_id}", where=("ddg", bag.bag_id))

        # ---- labels ----------------------------------------------------
        label_words = 0
        for f in f_x:
            entry = LabelEntry(
                bag_id=bag.bag_id, node=f, is_leaf=False,
                dist_to={h: fx_dist[(f, h)] for h in f_x},
                dist_from={h: fx_dist[(h, f)] for h in f_x})
            self._labels[(bag.bag_id, f)] = Label(node=f, entries=[entry])
            label_words += entry.words()

        for f in sorted(dual.nodes):
            if f in dual.f_x:
                continue
            c = dual.child_of_node[f]
            if c is None:
                from repro.errors import DecompositionError

                raise DecompositionError(
                    f"node {f} of bag {bag.bag_id} has no owning child")
            cf = fx_in_child[c.bag_id]
            child_label = self._labels[(c.bag_id, f)]

            d_out = {}
            d_in = {}
            for fx in f_x:
                best_o = INF
                best_i = INF
                for f1 in cf:
                    d1 = self._child_dist_label(child_label, c.bag_id, f1,
                                                to_part=True)
                    d2 = self._child_dist_label(child_label, c.bag_id, f1,
                                                to_part=False)
                    if d1 < INF:
                        for q in parts_of_face[fx]:
                            cand = d1 + ddg_dist[(c.bag_id, f1)][q]
                            if cand < best_o:
                                best_o = cand
                    if d2 < INF:
                        for q in parts_of_face[fx]:
                            cand = ddg_dist[q][(c.bag_id, f1)] + d2
                            if cand < best_i:
                                best_i = cand
                # direct within-child distance when fx itself lives in c
                if fx in self.duals[c.bag_id].nodes:
                    cand = self._child_dist(c.bag_id, f, fx)
                    if cand < best_o:
                        best_o = cand
                    cand = self._child_dist(c.bag_id, fx, f)
                    if cand < best_i:
                        best_i = cand
                d_out[fx] = best_o
                d_in[fx] = best_i

            # negative cycle through g crossing F_X
            for fx in f_x:
                if d_out[fx] + d_in[fx] < 0:
                    raise NegativeCycleError(
                        f"negative cycle through node {f} of bag "
                        f"{bag.bag_id}", where=("node", bag.bag_id))

            entry = LabelEntry(bag_id=bag.bag_id, node=f, is_leaf=False,
                               dist_to=d_out, dist_from=d_in)
            self._labels[(bag.bag_id, f)] = Label(
                node=f, entries=[entry] + child_label.entries)
            label_words += entry.words()

        # rounds (Section 5.3 broadcast step): S_X arcs + F_X labels of
        # Õ(D) words each, pipelined over the bag
        return (len(dual.sx_arc_darts)
                + sum(self._labels[(c.bag_id, f)].words()
                      for c in bag.children
                      for f in fx_in_child[c.bag_id])
                + self._bag_depth(bag))

    # ------------------------------------------------------------------
    def _child_dist(self, child_bag_id, f1, f2):
        key = (child_bag_id, f1, f2)
        if key not in self._decode_cache:
            la = self._labels[(child_bag_id, f1)]
            lb = self._labels[(child_bag_id, f2)]
            self._decode_cache[key] = decode_distance(la, lb)
        return self._decode_cache[key]

    def _child_dist_label(self, child_label, child_bag_id, fx, to_part):
        """Distance between the label's node and F_X face ``fx`` inside
        the child bag, in the requested direction."""
        f = child_label.node
        if to_part:
            return self._child_dist(child_bag_id, f, fx)
        return self._child_dist(child_bag_id, fx, f)

    def _bag_depth(self, bag):
        if bag.bfs_depth:
            return bag.bfs_depth
        # leaf bags: measure a BFS depth once
        view = bag.view()
        v0 = next(iter(view.vertices))
        return view.eccentricity(v0)

    def max_label_bits(self, word_bits=32):
        root = self.bdd.root.bag_id
        return max(lbl.bits(word_bits)
                   for (b, _f), lbl in self._labels.items() if b == root)
