"""Centralized baselines, implemented from scratch.

These are the independent comparators the paper's algorithms are
validated against in tests and raced against in benchmarks.  Where the
test-suite wants a *second* independent opinion it additionally uses
networkx; the implementations here share no code with the distributed
pipeline.
"""

from __future__ import annotations

import heapq
import math
from collections import deque


def centralized_max_flow(graph, s, t, directed=True):
    """BFS-augmenting-path (Edmonds-Karp) max flow on the primal graph.

    Returns (value, flow dict eid -> signed flow)."""
    # residual capacities per dart
    resid = {}
    for eid in range(graph.m):
        c = graph.capacities[eid]
        resid[2 * eid] = c
        resid[2 * eid + 1] = 0 if directed else c

    def bfs_path():
        parent = {s: None}
        q = deque([s])
        while q:
            u = q.popleft()
            if u == t:
                break
            for d in graph.rotations[u]:
                if resid[d] <= 0:
                    continue
                w = graph.head(d)
                if w not in parent:
                    parent[w] = d
                    q.append(w)
        if t not in parent:
            return None
        darts = []
        v = t
        while v != s:
            d = parent[v]
            darts.append(d)
            v = graph.tail(d)
        return darts

    value = 0
    while True:
        path = bfs_path()
        if path is None:
            break
        aug = min(resid[d] for d in path)
        for d in path:
            resid[d] -= aug
            resid[d ^ 1] += aug
        value += aug

    flow = {}
    for eid in range(graph.m):
        c = graph.capacities[eid]
        if directed:
            flow[eid] = c - resid[2 * eid]
        else:
            # resid[2e] = c - x, resid[2e+1] = c + x
            flow[eid] = (resid[2 * eid + 1] - resid[2 * eid]) / 2
    return value, flow


def _dijkstra(adj, source, forbidden_eid=None):
    dist = {source: 0}
    heap = [(0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, math.inf):
            continue
        for (v, w, eid) in adj.get(u, ()):
            if eid == forbidden_eid:
                continue
            nd = d + w
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def centralized_weighted_girth(graph):
    """Exact min-weight cycle: for each edge, its weight plus the
    shortest path between its endpoints avoiding it.  O(m · Dijkstra)."""
    adj = {}
    for eid, (u, v) in enumerate(graph.edges):
        w = graph.weights[eid]
        adj.setdefault(u, []).append((v, w, eid))
        adj.setdefault(v, []).append((u, w, eid))
    best = math.inf
    for eid, (u, v) in enumerate(graph.edges):
        dist = _dijkstra(adj, u, forbidden_eid=eid)
        cand = dist.get(v, math.inf) + graph.weights[eid]
        best = min(best, cand)
    return best


def centralized_directed_global_mincut(graph):
    """Exact directed global min cut by n−1 max-flow pairs against a
    fixed root (both directions)."""
    best = math.inf
    for t in range(1, graph.n):
        v1, _ = _directed_flow(graph, 0, t)
        v2, _ = _directed_flow(graph, t, 0)
        best = min(best, v1, v2)
    return best


def _directed_flow(graph, s, t):
    saved = graph.capacities
    graph.capacities = graph.weights
    try:
        return centralized_max_flow(graph, s, t, directed=True)
    finally:
        graph.capacities = saved


def centralized_sssp(graph, source):
    """Dijkstra on the primal graph (undirected weights)."""
    adj = {}
    for eid, (u, v) in enumerate(graph.edges):
        w = graph.weights[eid]
        adj.setdefault(u, []).append((v, w, eid))
        adj.setdefault(v, []).append((u, w, eid))
    return _dijkstra(adj, source)
