"""Round-complexity models of the prior distributed algorithms.

The paper's introduction positions Õ(D²) against two prior shapes:

* de Vos [4]: exact directed planar max-flow in D·n^{1/2+o(1)} rounds;
* Ghaffari et al. [16]: (1+o(1))-approx flow for general undirected
  graphs in (√n + D)·n^{o(1)} rounds;
* the *naive* approach: dual SSSP by distributed Bellman-Ford over the
  face-disjoint scaffold, Θ(#dual nodes) rounds per SSSP.

These models (plus the executable naive Bellman-Ford in
:mod:`repro.congest.bellman_ford`) generate the crossover experiment
E10: for which (n, D) does the paper's algorithm win?
"""

from __future__ import annotations

import math


def no1(n):
    """n^{o(1)} proxy: 2^{√(log₂ n)}."""
    return 2 ** math.sqrt(math.log2(max(n, 2)))


def de_vos_round_model(n, d):
    """Round model of [4], exact directed planar max-flow:
    D · n^{1/2+o(1)}.  Lower-order factors normalized to log n so the
    three models are compared on equal footing."""
    return d * math.sqrt(n) * math.log2(max(n, 2))


def ghaffari_et_al_round_model(n, d):
    """Round model of [16]: (√n + D) · n^{o(1)}.  NOTE: solves a
    *different* problem — (1+o(1))-approximate flow on general
    undirected graphs — included because the introduction cites it as
    the general-graph state of the art."""
    return (math.sqrt(n) + d) * no1(n)


def paper_round_model(n, d):
    """The paper's Õ(D²), same log-normalization as the comparators."""
    return d * d * math.log2(max(n, 2))


def naive_dual_sssp_rounds(graph):
    """Rounds of one exact dual SSSP via distributed Bellman-Ford on Ĝ:
    Θ(number of dual nodes) — the diameter of G* can be linear even when
    D = O(1) (Section 2.2's first challenge)."""
    return 2 * graph.num_faces() + 2


def naive_maxflow_rounds(graph):
    """Naive exact max flow: log(total capacity) Bellman-Ford SSSPs."""
    lam = max(2, sum(graph.capacities))
    return int(math.log2(lam) + 1) * naive_dual_sssp_rounds(graph)
