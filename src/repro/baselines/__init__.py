"""Baselines the distributed algorithms are compared against."""

from repro.baselines.centralized import (
    centralized_directed_global_mincut,
    centralized_max_flow,
    centralized_weighted_girth,
)
from repro.baselines.distributed_naive import (
    de_vos_round_model,
    ghaffari_et_al_round_model,
    naive_dual_sssp_rounds,
)

__all__ = [
    "centralized_max_flow",
    "centralized_weighted_girth",
    "centralized_directed_global_mincut",
    "naive_dual_sssp_rounds",
    "de_vos_round_model",
    "ghaffari_et_al_round_model",
]
