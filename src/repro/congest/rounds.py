"""Round accounting for the CONGEST simulation — the audit behind
every Õ(D²) / Õ(D) claim the experiments reproduce.

The heavyweight algorithms of the paper are executed at the *knowledge
level* (see DESIGN.md §2): the code manipulates exactly the information
the distributed algorithm distributes, while a :class:`RoundLedger`
charges rounds computed from **measured instance quantities** — BFS-tree
depths, numbers of pipelined messages, shortcut congestion/dilation,
label bit sizes.  Each charge carries a phase tag and the paper reference
that justifies the formula, so ``ledger.report()`` reconstructs the round
complexity audibly: Theorem 1.2's Õ(D²) is the sum of O(log λ) labeling
constructions (Theorem 2.1), Theorem 1.7's Õ(D) is MA rounds × the
measured Theorem 4.10/4.14 conversion, Theorem 1.5's Õ(D²) is the
per-bag label broadcasts of Section 7.

Standard charging formulas (all primitives used by the paper, in the
synchronous CONGEST model of Peleg [37] — one O(log n)-bit message per
edge per round):

* ``broadcast(k messages, tree depth h)``  →  ``h + k`` rounds
  (pipelined broadcast over a BFS tree);
* ``convergecast`` — same bound;
* ``bfs(depth h)`` → ``h`` rounds;
* a part-wise aggregation (Definition 4.4) → measured
  ``congestion + dilation`` of the shortcuts used (Lemma 4.5);
* one minor-aggregation round on ``G*`` (Definition 4.7) → the PA cost
  on Ĝ times the constant Ĝ-to-G overhead (Theorem 4.10), times the
  virtual-node multiplier β when the extended model is in play
  (Lemma 4.13).

The ledger is only audited on the legacy backend: every
``backend="engine"`` entry point (flow family, DESIGN.md §6; girth /
global-min-cut family, DESIGN.md §7) leaves it untouched — a partial
audit would be worse than none.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class Charge:
    phase: str
    rounds: int
    detail: str = ""
    ref: str = ""


@dataclass
class RoundLedger:
    """Accumulates CONGEST round charges, grouped by phase."""

    charges: list = field(default_factory=list)
    enabled: bool = True

    def charge(self, rounds, phase, detail="", ref=""):
        """Record ``rounds`` rounds for ``phase``.  Rounds are clamped to
        at least 1 (every communication step costs a round)."""
        if not self.enabled:
            return
        r = max(1, int(rounds))
        self.charges.append(Charge(phase=phase, rounds=r,
                                   detail=detail, ref=ref))

    def charge_broadcast(self, num_messages, depth, phase, ref=""):
        """Pipelined broadcast of ``num_messages`` O(log n)-bit messages
        over a tree of the given depth."""
        self.charge(depth + num_messages, phase,
                    detail=f"pipelined broadcast {num_messages} msgs, "
                           f"depth {depth}", ref=ref)

    def charge_bfs(self, depth, phase, ref=""):
        self.charge(depth, phase, detail=f"BFS depth {depth}", ref=ref)

    def total(self):
        return sum(c.rounds for c in self.charges)

    def by_phase(self):
        acc = defaultdict(int)
        for c in self.charges:
            acc[c.phase] += c.rounds
        return dict(acc)

    def report(self):
        lines = ["round ledger:"]
        for phase, r in sorted(self.by_phase().items(),
                               key=lambda kv: -kv[1]):
            lines.append(f"  {phase:<40s} {r:>10d}")
        lines.append(f"  {'TOTAL':<40s} {self.total():>10d}")
        return "\n".join(lines)

    def scoped(self, prefix):
        """A view that prefixes every phase with ``prefix/``."""
        return _ScopedLedger(self, prefix)


class _ScopedLedger:
    def __init__(self, base, prefix):
        self._base = base
        self._prefix = prefix

    def charge(self, rounds, phase, detail="", ref=""):
        self._base.charge(rounds, f"{self._prefix}/{phase}", detail, ref)

    def charge_broadcast(self, num_messages, depth, phase, ref=""):
        self._base.charge_broadcast(num_messages, depth,
                                    f"{self._prefix}/{phase}", ref)

    def charge_bfs(self, depth, phase, ref=""):
        self._base.charge_bfs(depth, f"{self._prefix}/{phase}", ref)

    def scoped(self, prefix):
        return _ScopedLedger(self._base, f"{self._prefix}/{prefix}")

    def total(self):
        return self._base.total()
