"""Message-level CONGEST primitives: BFS, broadcast, convergecast.

These node programs run on :class:`~repro.congest.network.CongestNetwork`
and are the building blocks whose *costs* the knowledge-level round
charges reproduce: a BFS completes in ``depth+1`` rounds, a pipelined
broadcast of ``k`` messages in ``depth + k + O(1)`` rounds, etc.  The
test-suite asserts these counts, grounding the ledger formulas.
"""

from __future__ import annotations

from repro.congest.network import CongestNetwork, NodeProgram


class BfsProgram(NodeProgram):
    """Distributed BFS from ``root``; each node learns dist and parent."""

    def __init__(self, root):
        super().__init__()
        self.root = root
        self.dist = None
        self.parent = None
        self._announced = False

    def setup(self, ctx):
        if ctx.node == self.root:
            self.dist = 0
            self.parent = -1

    def step(self, ctx, inbox):
        for sender, msg in inbox.items():
            if msg[0] == "bfs" and self.dist is None:
                self.dist = msg[1] + 1
                self.parent = sender
        if self.dist is not None and not self._announced:
            self._announced = True
            self.halted = True
            return {w: ("bfs", self.dist) for w in ctx.neighbors}
        self.halted = True
        return {}


def run_bfs(adjacency, root):
    """Run distributed BFS; returns (dist dict, parent dict, stats)."""
    net = CongestNetwork(adjacency)
    programs = {v: BfsProgram(root) for v in net.nodes}
    programs, stats = net.run(programs)
    dist = {v: programs[v].dist for v in net.nodes}
    parent = {v: programs[v].parent for v in net.nodes}
    return dist, parent, stats


class PipelinedBroadcastProgram(NodeProgram):
    """Root floods ``k`` O(log n)-bit tokens down a known BFS tree,
    one token per round per edge (pipelining)."""

    def __init__(self, root, tokens, parent):
        super().__init__()
        self.root = root
        self.tokens = list(tokens) if root is not None else []
        self.parent = parent       # parent[v] or -1, known from BFS phase
        self.received = []
        self._queue = []
        self._sent = 0

    def setup(self, ctx):
        if ctx.node == self.root:
            self._queue = list(self.tokens)
            self.received = list(self.tokens)

    def step(self, ctx, inbox):
        for _sender, msg in inbox.items():
            if msg[0] == "tok":
                self.received.append(msg[1])
                self._queue.append(msg[1])
        if self._queue:
            tok = self._queue.pop(0)
            children = [w for w in ctx.neighbors
                        if self.parent.get(w) == ctx.node]
            self.halted = not self._queue
            return {w: ("tok", tok) for w in children}
        self.halted = True
        return {}


def run_pipelined_broadcast(adjacency, root, tokens):
    """BFS-tree broadcast of ``len(tokens)`` messages; returns
    (received dict, stats).  Completes in depth + k + O(1) rounds."""
    dist, parent, _ = run_bfs(adjacency, root)
    net = CongestNetwork(adjacency)
    programs = {
        v: PipelinedBroadcastProgram(root if v == root else None,
                                     tokens if v == root else (),
                                     parent)
        for v in net.nodes
    }
    programs, stats = net.run(programs)
    received = {v: programs[v].received for v in net.nodes}
    return received, stats


class ConvergecastSumProgram(NodeProgram):
    """Sum an integer input up a known BFS tree to the root."""

    def __init__(self, value, parent, children):
        super().__init__()
        self.value = value
        self.parent = parent
        self.children = children
        self._pending = set(children)
        self._acc = value
        self._sent = False
        self.total = None

    def step(self, ctx, inbox):
        for sender, msg in inbox.items():
            if msg[0] == "sum":
                self._acc += msg[1]
                self._pending.discard(sender)
        if not self._pending and not self._sent:
            self._sent = True
            self.halted = True
            if self.parent == -1:
                self.total = self._acc
                return {}
            return {self.parent: ("sum", self._acc)}
        self.halted = not self._pending
        return {}


def run_convergecast_sum(adjacency, root, values):
    """Aggregate ``sum(values)`` at ``root`` over a BFS tree."""
    dist, parent, _ = run_bfs(adjacency, root)
    children = {v: [] for v in parent}
    for v, p in parent.items():
        if p != -1:
            children[p].append(v)
    net = CongestNetwork(adjacency)
    programs = {v: ConvergecastSumProgram(values[v], parent[v], children[v])
                for v in net.nodes}
    programs, stats = net.run(programs)
    return programs[root].total, stats
