"""Distributed Bellman-Ford: the naive Θ(n)-round SSSP baseline.

This is the comparison point the paper's introduction sets up: without
planar-duality machinery, exact SSSP (and hence max-flow via Miller-Naor)
costs Θ(n) rounds on the dual communication scaffold, versus the Õ(D²)
of the labeling scheme.  The program runs at the message level.
"""

from __future__ import annotations

from repro.congest.network import CongestNetwork, NodeProgram


class BellmanFordProgram(NodeProgram):
    """Classic distributed Bellman-Ford with per-edge weights.

    Each node repeatedly announces its current distance; neighbors relax.
    Terminates via a round-count horizon supplied by the caller (the
    standard n-round schedule); negative cycles are reported when a
    distance keeps improving past the horizon.
    """

    def __init__(self, source, edge_weight, horizon):
        super().__init__()
        self.source = source
        self.edge_weight = edge_weight   # dict neighbor -> weight
        self.horizon = horizon
        self.dist = None
        self.changed = True
        self.negative_cycle = False

    def setup(self, ctx):
        if ctx.node == self.source:
            self.dist = 0

    def step(self, ctx, inbox):
        improved = False
        for sender, msg in inbox.items():
            if msg[0] != "bf":
                continue
            cand = msg[1] + self.edge_weight[sender]
            if self.dist is None or cand < self.dist:
                self.dist = cand
                improved = True
        if ctx.round_no > self.horizon:
            if improved:
                self.negative_cycle = True
            self.halted = True
            return {}
        if self.dist is not None and (improved or ctx.round_no == 1):
            return {w: ("bf", self.dist) for w in ctx.neighbors}
        return {}


def run_bellman_ford(adjacency, weights, source):
    """Run distributed Bellman-Ford.

    ``weights``: dict (u, v) -> weight of the directed edge u->v (must be
    present for both directions; use +inf to forbid one).  Returns
    (dist dict, negative_cycle flag, stats).
    """
    net = CongestNetwork(adjacency)
    horizon = net.n + 1
    programs = {}
    for v in net.nodes:
        ew = {u: weights[(u, v)] for u in net.adj[v]}
        programs[v] = BellmanFordProgram(source, ew, horizon)
    # force the run to last the full horizon: nodes halt themselves
    programs, stats = net.run(programs, max_rounds=horizon + 3)
    dist = {v: programs[v].dist for v in net.nodes}
    neg = any(p.negative_cycle for p in programs.values())
    return dist, neg, stats
