"""Message-level synchronous CONGEST simulator.

Implements the standard model of Peleg [37]: in each round every vertex
may send one O(log n)-bit message over each incident edge.  Node
behaviour is given by a :class:`NodeProgram`; the network runs all
programs in lock-step, delivers messages, counts rounds and bits, and
flags messages that exceed the bandwidth budget.

The basic primitives (BFS, broadcast, convergecast, Bellman-Ford) run at
this level in the test-suite, demonstrating that the model is real; the
heavyweight algorithms run at the knowledge level against
:class:`~repro.congest.rounds.RoundLedger` (see DESIGN.md §2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import SimulationError


class NodeProgram:
    """A vertex program.  Subclass and override the hooks.

    The simulator calls :meth:`setup` once, then :meth:`step` every round
    with the messages received at the *start* of the round.  ``step``
    returns a dict ``{neighbor: message}`` of messages to send this
    round.  A node signals completion by setting ``self.halted = True``;
    the network stops when every node has halted (halted nodes still
    receive and may be woken by messages).
    """

    def __init__(self):
        self.halted = False

    def setup(self, ctx):
        """``ctx``: a :class:`NodeContext` with ids/neighbors."""

    def step(self, ctx, inbox):
        """``inbox``: dict neighbor -> message.  Return outbox dict."""
        return {}


@dataclass
class NodeContext:
    node: int
    neighbors: tuple
    n: int
    round_no: int = 0


@dataclass
class RunStats:
    rounds: int = 0
    messages: int = 0
    max_message_bits: int = 0
    bandwidth_violations: int = 0


def _bit_size(msg):
    """Crude but monotone bit-size estimate of a message payload."""
    if msg is None:
        return 1
    if isinstance(msg, bool):
        return 1
    if isinstance(msg, int):
        return max(1, msg.bit_length() + 1)
    if isinstance(msg, float):
        return 64
    if isinstance(msg, str):
        return 8 * len(msg)
    if isinstance(msg, (tuple, list)):
        return sum(_bit_size(x) for x in msg) + len(msg)
    if isinstance(msg, dict):
        return sum(_bit_size(k) + _bit_size(v) for k, v in msg.items())
    raise SimulationError(f"unsupported message type {type(msg)!r}")


class CongestNetwork:
    """Synchronous message-passing network over an adjacency structure."""

    def __init__(self, adjacency, bandwidth_factor=8):
        """``adjacency``: list (or dict) mapping vertex -> neighbor list.
        ``bandwidth_factor``: messages above
        ``bandwidth_factor * ceil(log2 n)`` bits are counted as
        violations (the run still completes; tests assert zero)."""
        if isinstance(adjacency, dict):
            self.nodes = sorted(adjacency)
            self.adj = {v: tuple(adjacency[v]) for v in self.nodes}
        else:
            self.nodes = list(range(len(adjacency)))
            self.adj = {v: tuple(adjacency[v]) for v in self.nodes}
        self.n = len(self.nodes)
        self.bandwidth_bits = bandwidth_factor * max(
            1, math.ceil(math.log2(max(self.n, 2))))

    def run(self, programs, max_rounds=100000):
        """Run node programs to completion.

        ``programs``: dict vertex -> NodeProgram.  Returns
        ``(programs, RunStats)``.
        """
        stats = RunStats()
        ctxs = {}
        for v in self.nodes:
            ctx = NodeContext(node=v, neighbors=self.adj[v], n=self.n)
            ctxs[v] = ctx
            programs[v].setup(ctx)

        inboxes = {v: {} for v in self.nodes}
        for rnd in range(1, max_rounds + 1):
            if all(p.halted for p in programs.values()) and \
                    all(not box for box in inboxes.values()):
                break
            stats.rounds = rnd
            outboxes = {}
            for v in self.nodes:
                ctx = ctxs[v]
                ctx.round_no = rnd
                out = programs[v].step(ctx, inboxes[v]) or {}
                for w, msg in out.items():
                    if w not in self.adj[v]:
                        raise SimulationError(
                            f"node {v} sent to non-neighbor {w}")
                    bits = _bit_size(msg)
                    stats.messages += 1
                    stats.max_message_bits = max(stats.max_message_bits,
                                                 bits)
                    if bits > self.bandwidth_bits:
                        stats.bandwidth_violations += 1
                outboxes[v] = out
            inboxes = {v: {} for v in self.nodes}
            for v, out in outboxes.items():
                for w, msg in out.items():
                    inboxes[w][v] = msg
        else:
            raise SimulationError(f"did not converge in {max_rounds} rounds")
        return programs, stats
