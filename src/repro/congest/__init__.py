"""CONGEST model: message-level simulator, primitives, round ledger."""

from repro.congest.network import CongestNetwork, NodeProgram, RunStats
from repro.congest.rounds import RoundLedger

__all__ = ["CongestNetwork", "NodeProgram", "RunStats", "RoundLedger"]
