"""Minor-aggregation model stack: basic/extended model, dual simulation,
orientation, MST, min-cut, approximate SSSP, smoothing."""

from repro.aggregation.model import MinorAggregationGraph
from repro.aggregation.dual_sim import DualMAHost
from repro.aggregation.mst import boruvka_mst
from repro.aggregation.mincut_ma import minor_aggregate_mincut
from repro.aggregation.orientation import (
    deactivate_parallel_edges,
    low_outdegree_orientation,
)
from repro.aggregation.sssp_ma import ApproxSsspOracle
from repro.aggregation.smoothing import smooth_sssp

__all__ = [
    "MinorAggregationGraph",
    "DualMAHost",
    "boruvka_mst",
    "minor_aggregate_mincut",
    "deactivate_parallel_edges",
    "low_outdegree_orientation",
    "ApproxSsspOracle",
    "smooth_sssp",
]
