"""Smooth distance approximation (Rozhon-Haeupler-Martinsson-Grunau-Zuzic
[41]), as used by the approximate flow assignment of Section 6.1.

A distance estimate ``d`` from source ``s`` is *(1+ε)-smooth* when

    d(v) − d(u)  ≤  (1+ε)·dist(u, v)      for all u, v,

which (applied to edges) is exactly what turns Hassin's dual potentials
into a capacity-respecting flow assignment.  Plain (1+ε)-approximate SSSP
does not provide this; [41] fixes it with O(log n) oracle calls on *level
graphs* that attach a virtual source to every node with weights taken
from the previous estimate.

Our implementation keeps [41]'s two essential mechanisms — (i) a virtual
source connected to all nodes with previous-phase weights (the extended
minor-aggregation model makes this free, Theorem 4.14) and (ii) distances
computed against (1+ε̂)-scaled weights — and exploits the structural
guarantee of our oracle (estimates are exact distances of a perturbed
graph, hence triangle-consistent w.r.t. weights ≤ (1+ε')w) to get smooth
output from each phase directly.  Smoothness is *verified* on every edge
before the result is returned, so the downstream feasibility argument
never rests on an unchecked claim.
"""

from __future__ import annotations

import math

from repro.errors import SimulationError


def smooth_sssp(oracle, source, eps, num_phases=None):
    """Compute (1+ε)-smooth (1+ε)-approximate distances from ``source``.

    ``oracle``: an :class:`~repro.aggregation.sssp_ma.ApproxSsspOracle`
    built with accuracy ε' = O(ε / log n).  Returns a list of distances.
    Raises :class:`SimulationError` when the smoothness certificate fails
    (it cannot, per the argument above, but we check).
    """
    n = oracle.num_nodes
    if num_phases is None:
        num_phases = max(1, math.ceil(math.log2(max(n, 2))))

    # phase 0: plain oracle estimate
    d, _ = oracle.query(source)

    for _phase in range(num_phases):
        # level graph of [41]: a virtual source s* connected to every
        # node v with weight d(v) (the previous-phase estimate).  The
        # oracle's answer is a true distance function of the perturbed
        # graph, so it satisfies the triangle inequality with respect to
        # weights ≤ (1+ε')w — i.e. each phase's output is (1+ε)-smooth.
        # Estimates stay valid: d_new(v) ≤ d(v) via the direct virtual
        # edge, and d_new(v) ≥ dist(s,v) because every virtual offset
        # d(u) already dominates dist(s,u).
        extra = [(v, d[v]) for v in range(n) if d[v] < math.inf]
        d, _pw = oracle.query(source, extra_sources=extra)

    verify_smoothness(oracle, d, eps)
    return d


def verify_smoothness(oracle, d, eps):
    """Assert the per-edge smoothness certificate
    ``d(v) − d(u) ≤ (1+ε)·w(u,v)`` in both directions."""
    tol = 1e-9
    for eid, (u, v) in enumerate(oracle.edges):
        w = oracle.weights[eid]
        if d[v] - d[u] > (1.0 + eps) * w + tol or \
                d[u] - d[v] > (1.0 + eps) * w + tol:
            raise SimulationError(
                f"smoothness violated on edge {eid}: d({u})={d[u]}, "
                f"d({v})={d[v]}, w={w}")


def smoothness_defect(edges, weights, d):
    """Maximum relative smoothness violation of an estimate (diagnostic;
    the experiments report it for the raw oracle vs. the smoothed
    output)."""
    worst = 0.0
    for eid, (u, v) in enumerate(edges):
        w = weights[eid]
        if w <= 0 or d[u] is math.inf or d[v] is math.inf:
            continue
        gap = max(d[v] - d[u], d[u] - d[v])
        worst = max(worst, gap / w)
    return worst
