"""Low out-degree orientation and parallel-edge deactivation in Õ(1)
MA rounds (Lemma 4.15, Section 4.3).

``G*`` is a multigraph even when ``G`` is simple (Fact 3.1 creates a
parallel dual edge for every primal edge two faces share, and a
self-loop per bridge).  The girth pipeline (Theorem 1.7) feeds ``G*``
to a black-box min-cut (Theorem 4.16 substitute) that wants a simple
graph, so the paper deactivates parallel edges, exactly as Section 4.3:

1. self-loops deactivate locally (one consensus round);
2. a *low out-degree orientation* is computed by the Barenboim–Elkin
   [1] algorithm formulated in the minor-aggregation model
   (Definition 4.7): nodes turn black over ``2⌈log n⌉`` phases once at
   most ``3·arboricity`` white neighbors remain, and edges orient
   toward the later (or higher-id) endpoint — the underlying simple
   graph of a planar multigraph has arboricity ≤ 3 (Euler), so every
   node ends with O(1) out-*neighbors*;
3. each node folds its O(1) outgoing bundles with O(1) aggregations
   (min for shortest paths, sum for cuts — the girth uses sum, since a
   dual cut charges every parallel edge), leaving one *active*
   representative per adjacent pair.

Every phase charges its aggregate steps on the MA-round counter; the
host (Theorem 4.14) later converts them to CONGEST rounds, see
DESIGN.md §2.  The engine backend of the girth bypasses this machinery
entirely — it never needs the dual to be simple (DESIGN.md §7).
"""

from __future__ import annotations

import math

from repro.errors import SimulationError


def low_outdegree_orientation(ma, arboricity=3):
    """Compute the Barenboim-Elkin partition H_1..H_ℓ on the underlying
    simple graph of ``ma`` and orient edges.

    Runs on a :class:`MinorAggregationGraph`; costs Õ(arboricity) MA
    rounds (charged on the graph's counter through the consensus /
    aggregation calls it makes).

    Returns ``(phase_of_node, oriented)`` where ``oriented`` maps eid ->
    (tail, head) of the orientation.
    """
    n = max(2, len(ma.nodes))
    num_phases = 2 * math.ceil(math.log2(n)) + 1
    threshold = 3 * arboricity

    white = {v: True for v in ma.nodes}
    phase_of = {}

    # neighbor sets in the underlying simple graph
    nbrs = {v: set() for v in ma.nodes}
    for e in ma.active_edges():
        if e.u != e.v:
            nbrs[e.u].add(e.v)
            nbrs[e.v].add(e.u)

    for phase in range(1, num_phases + 1):
        if not any(white.values()):
            break
        # Each white node counts its distinct white neighbors; this is
        # implemented by <= 3*arboricity+1 aggregate steps in the MA
        # model (iteratively counting new white neighbor ids, Lemma 4.15
        # step 1); we consume the same budget on the round counter.
        ma.ma_rounds += threshold + 1
        to_black = []
        for v in ma.nodes:
            if not white[v]:
                continue
            white_deg = sum(1 for u in nbrs[v] if white[u])
            if white_deg <= threshold:
                to_black.append(v)
        if not to_black:
            raise SimulationError(
                "orientation stalled: arboricity bound violated")
        ma.ma_rounds += 1  # notify neighbors (consensus step)
        for v in to_black:
            white[v] = False
            phase_of[v] = phase
    if any(white.values()):
        raise SimulationError("orientation did not finish in 2 log n phases")

    oriented = {}
    for e in ma.active_edges():
        if e.u == e.v:
            continue
        pu, pv = phase_of[e.u], phase_of[e.v]
        if (pu, str(e.u)) < (pv, str(e.v)):
            oriented[e.eid] = (e.u, e.v)
        else:
            oriented[e.eid] = (e.v, e.u)
    return phase_of, oriented


def deactivate_parallel_edges(ma, op, arboricity=3, drop_self_loops=True):
    """Lemma 4.15: deactivate self-loops and parallel bundles.

    For every unordered pair of adjacent nodes, one edge stays active
    with weight ``op``-folded over the bundle.  Costs Õ(arboricity) MA
    rounds.  Returns dict eid(active) -> list of eids it represents.
    """
    if drop_self_loops:
        ma.ma_rounds += 1
        ma.deactivate([e.eid for e in ma.active_edges() if e.u == e.v])

    _, oriented = low_outdegree_orientation(ma, arboricity=arboricity)

    bundles = {}
    for e in ma.active_edges():
        tail, head = oriented[e.eid]
        bundles.setdefault((tail, head), []).append(e)
    # each node processes its O(arboricity) outgoing bundles (two
    # aggregations per bundle: fold weights, elect the min-id survivor)
    ma.ma_rounds += 2 * (3 * arboricity)

    representative = {}
    out_neighbor_count = {}
    for (tail, head), bundle in bundles.items():
        out_neighbor_count[tail] = out_neighbor_count.get(tail, 0) + 1
        keep = min(bundle, key=lambda e: e.eid)
        w = None
        for e in bundle:
            w = e.weight if w is None else op(w, e.weight)
        keep.weight = w
        representative[keep.eid] = [e.eid for e in bundle]
        ma.deactivate([e.eid for e in bundle if e.eid != keep.eid])

    if out_neighbor_count and \
            max(out_neighbor_count.values()) > 3 * arboricity:
        raise SimulationError("orientation produced too many out-neighbors")
    return representative
