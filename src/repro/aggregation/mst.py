"""Boruvka minimum spanning tree in the minor-aggregation model.

Used by the tree-packing min-cut (Theorem 4.16 substitute), by the
zero-weight-edge handling of the approximate flow (Section 6.1), and as a
standalone MA example.  O(log n) Boruvka phases; each phase is O(1) MA
rounds (aggregate the minimum outgoing edge, then contract), matching
[43]'s Example 4.4.
"""

from __future__ import annotations

from repro.errors import SimulationError


def boruvka_mst(ma, weight_fn=None, forbidden=None):
    """Compute an MST/minimum spanning forest of the active edges.

    ``ma``: a :class:`MinorAggregationGraph` (contraction state is used
    and reset afterwards).  ``weight_fn(edge) -> float`` overrides edge
    weights (the tree packing re-weights by load).  ``forbidden``: set of
    eids to ignore.  Returns list of chosen edge ids.
    """
    weight_fn = weight_fn or (lambda e: e.weight)
    forbidden = forbidden or ()
    ma.reset_contractions()
    chosen = []
    guard = 0
    while True:
        guard += 1
        if guard > 2 * len(ma.nodes) + 8:
            raise SimulationError("Boruvka did not converge")

        # aggregation step: each supernode learns its min outgoing edge
        def edge_fn(e, ru, rv):
            if e.eid in forbidden:
                return None
            key = (weight_fn(e), e.eid)
            return key, key

        best = ma.aggregate(edge_fn, min)
        picks = {v: best[v] for v in ma.nodes if best.get(v) is not None}
        if not picks:
            break
        flags = {}
        for v, (_w, eid) in picks.items():
            flags[eid] = True
        for eid in flags:
            chosen.append(eid)
        ma.contract(flags)
    ma.reset_contractions()
    return sorted(set(chosen))
