"""(1+ε)-approximate SSSP oracle in the minor-aggregation model.

Substitute for the minor-aggregation SSSP of Zuzic r Goranci r Ye r
Haeupler r Sun [43] (DESIGN.md §5 substitution 4).  The contract is
identical — given an undirected graph with weights in [1, n^O(1)] and a
source, return distance estimates ``d`` with

    dist(s, v)  ≤  d(v)  ≤  (1+ε)·dist(s, v)

in ``n^o(1)/ε²`` MA rounds — and, like the real algorithm, the estimates
may violate the triangle inequality (which is why the smoothing machinery
of [41] exists downstream).  We realize the contract by running Dijkstra
over independently perturbed weights ``w·(1+U[0,ε])``: the result is the
exact distance of a (1+ε)-close graph, hence a true (1+ε) approximation
with genuinely non-smooth errors.

A useful structural fact the smoothing step exploits: the estimates *do*
satisfy the triangle inequality with respect to the perturbed weights.
"""

from __future__ import annotations

import heapq
import math
import random


def no1_factor(n):
    """The standard n^{o(1)} proxy 2^{√(log n)} used for round charges."""
    return 2 ** math.sqrt(math.log2(max(n, 2)))


def oracle_ma_rounds(n, eps):
    """MA-round budget of one oracle call ([43]: 2^{Õ(log^{3/4} n)}/ε²)."""
    return max(1, int(no1_factor(n) / (eps * eps)))


def dijkstra(num_nodes, adj, sources, track_parents=False):
    """Plain Dijkstra; ``adj[u] = [(v, w, tag), ...]`` or ``[(v, w)]``,
    ``sources`` = [(node, initial_dist), ...].  Returns distances (inf =
    unreachable) and, when requested, per-node parent ``(u, tag)``."""
    dist = [math.inf] * num_nodes
    parent = [None] * num_nodes if track_parents else None
    heap = []
    for s, d0 in sources:
        if d0 < dist[s]:
            dist[s] = d0
            heapq.heappush(heap, (d0, s))
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for entry in adj[u]:
            v, w = entry[0], entry[1]
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                if track_parents:
                    parent[v] = (u, entry[2] if len(entry) > 2 else None)
                heapq.heappush(heap, (nd, v))
    if track_parents:
        return dist, parent
    return dist


class ApproxSsspOracle:
    """Perturbed-weight (1+ε)-approximate SSSP oracle.

    ``num_nodes``, ``edges``: (u, v) pairs with positive ``weights``.
    Each :meth:`query` draws fresh perturbations (deterministic per seed
    + call counter) and charges its MA-round budget onto ``ma_counter``.
    """

    def __init__(self, num_nodes, edges, weights, eps, seed=0):
        self.num_nodes = num_nodes
        self.edges = list(edges)
        self.weights = list(weights)
        self.eps = eps
        self._seed = seed
        self._calls = 0
        self.ma_rounds_spent = 0

    def _perturbed_adj(self, rng):
        adj = [[] for _ in range(self.num_nodes)]
        pw = {}
        for eid, (u, v) in enumerate(self.edges):
            w = self.weights[eid] * (1.0 + self.eps * rng.random())
            pw[eid] = w
            adj[u].append((v, w, eid))
            adj[v].append((u, w, eid))
        return adj, pw

    def query(self, source, extra_sources=None, return_parents=False):
        """Approximate distances from ``source``.

        ``extra_sources``: optional [(node, offset)] multi-source variant
        (used by the smoothing step's virtual source).  Returns
        ``(dist list, perturbed weights)`` or, with ``return_parents``,
        ``(dist list, perturbed weights, parent list)`` where a parent is
        ``(prev node, edge id)``.
        """
        self._calls += 1
        rng = random.Random(hash((self._seed, self._calls)))
        adj, pw = self._perturbed_adj(rng)
        sources = [(source, 0.0)]
        if extra_sources:
            sources = list(extra_sources)
        self.ma_rounds_spent += oracle_ma_rounds(self.num_nodes, self.eps)
        if return_parents:
            dist, parents = dijkstra(self.num_nodes, adj, sources,
                                     track_parents=True)
            return dist, pw, parents
        dist = dijkstra(self.num_nodes, adj, sources)
        return dist, pw
