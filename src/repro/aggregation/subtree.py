"""Subtree and ancestor aggregations in the minor-aggregation model.

These are the Õ(1)-MA-round tree primitives of Ghaffari-Zuzic [18]
(Lemma 16), used by the approximate flow pipeline (root the SSSP tree,
compute ancestor path sums = distances from the source) and by the
min-cut machinery.  The implementations are heavy-path-free: on a stored
rooted tree the values are computed directly and the standard MA-round
budget O(log² n) is charged to the graph's counter.
"""

from __future__ import annotations

import math

from repro.errors import SimulationError


def _rooted(tree_adj, root):
    parent = {root: None}
    order = [root]
    stack = [root]
    while stack:
        u = stack.pop()
        for v in tree_adj.get(u, ()):
            if v not in parent:
                parent[v] = u
                order.append(v)
                stack.append(v)
    return parent, order


def _ma_budget(ma, n):
    ma.ma_rounds += max(1, int(math.log2(max(n, 2))) ** 2)


def subtree_sums(ma, tree_edges, root, values):
    """For every node: sum of ``values`` over its subtree.

    ``tree_edges``: (u, v) pairs forming a tree over (a subset of) the
    MA graph's nodes.  Charges Õ(1) MA rounds ([18] Lemma 16).
    """
    tree_adj = {}
    for (u, v) in tree_edges:
        tree_adj.setdefault(u, []).append(v)
        tree_adj.setdefault(v, []).append(u)
    tree_adj.setdefault(root, [])
    parent, order = _rooted(tree_adj, root)
    if len(parent) != len(tree_adj):
        raise SimulationError("subtree_sums: edges do not form a tree "
                              "containing the root")
    out = {u: values.get(u, 0) for u in parent}
    for u in reversed(order):
        p = parent[u]
        if p is not None:
            out[p] += out[u]
    _ma_budget(ma, len(parent))
    return out


def ancestor_path_sums(ma, tree_edges, root, edge_values):
    """For every node: sum of ``edge_values`` along its root path.

    ``edge_values``: dict (u, v) [either orientation] -> value.  This is
    the primitive that turns a shortest-path tree into distances from
    the source (proof of Theorem 1.3).  Charges Õ(1) MA rounds.
    """
    tree_adj = {}
    for (u, v) in tree_edges:
        tree_adj.setdefault(u, []).append(v)
        tree_adj.setdefault(v, []).append(u)
    tree_adj.setdefault(root, [])
    parent, order = _rooted(tree_adj, root)
    if len(parent) != len(tree_adj):
        raise SimulationError("ancestor_path_sums: not a tree with root")
    out = {root: 0}
    for u in order:
        p = parent[u]
        if p is None:
            continue
        w = edge_values.get((p, u), edge_values.get((u, p)))
        if w is None:
            raise SimulationError(f"missing edge value for ({p},{u})")
        out[u] = out[p] + w
    _ma_budget(ma, len(parent))
    return out
