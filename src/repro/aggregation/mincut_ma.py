"""Exact weighted min-cut in the minor-aggregation model.

Substitute for the universally-optimal algorithm of Ghaffari-Zuzic [18]
(Theorem 4.16) with the same model, interface, output and Õ(1) MA-round
shape: greedy spanning-tree packing (Thorup/Karger) followed by exact
minimum 1-respecting and 2-respecting cut evaluation for every packed
tree, plus cut-edge marking (Lemma 4.17).

The 2-respecting evaluation uses the standard subtree-sum identities:

* ``C1(v)``  — weight crossing ``sub(v)``;
* unrelated pair:  ``cut = C1(v1) + C1(v2) − 2·X(v1,v2)`` with ``X`` the
  weight between the two subtrees;
* nested pair (v2 below v1): ``cut = C1(v1) + C1(v2) − 2·W(v1,v2)`` with
  ``W`` the weight between ``sub(v2)`` and the outside of ``sub(v1)``.

In the MA model these are subtree aggregations ([18] Lemma 16); here they
are evaluated with numpy when available and charged Õ(1) MA rounds per
tree.  A pure-Python evaluation with the same row-major first-minimum
tie-breaking covers numpy-free environments
(``REPRO_ENGINE_NO_NUMPY=1``, see :mod:`repro._compat`); weights are
the paper's polynomially-bounded integers, so the two paths produce
bit-identical cuts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._compat import np
from repro.aggregation.model import MinorAggregationGraph
from repro.aggregation.mst import boruvka_mst
from repro.errors import SimulationError


@dataclass
class MincutResult:
    value: float
    side_nodes: list
    cut_edge_ids: list
    ma_rounds: int
    respecting_tree: list
    respecting_edges: tuple


def minor_aggregate_mincut(nodes, edges, weights, num_trees=None):
    """Exact global min cut of a connected weighted graph.

    ``nodes``: hashable ids; ``edges``: (u, v) list; ``weights``:
    positive per-edge weights.  Returns :class:`MincutResult`.
    """
    nodes = list(nodes)
    n = len(nodes)
    if n < 2:
        raise SimulationError("min cut needs at least two nodes")
    if num_trees is None:
        num_trees = max(6, int(3 * math.log2(n) ** 1.5))

    ma = MinorAggregationGraph(nodes, edges, weights=weights)

    # --- greedy tree packing -----------------------------------------
    load = [0.0] * len(edges)
    trees = []
    for _ in range(num_trees):
        tree = boruvka_mst(
            ma, weight_fn=lambda e: (load[e.eid] + 1.0) / max(e.weight, 1e-12))
        if len(tree) != n - 1:
            raise SimulationError("graph is not connected")
        for eid in tree:
            load[eid] += 1.0
        trees.append(tree)

    # --- per-tree respecting cuts -------------------------------------
    best = None
    for tree in trees:
        ma.ma_rounds += int(math.log2(max(n, 2))) ** 2  # [18] Thms 18, 40
        cand = _min_respecting_cut(nodes, edges, weights, tree)
        if best is None or cand[0] < best[0]:
            best = cand + (tree,)

    value, side, marker = best[0], best[1], best[2]
    tree = best[3]

    # --- Lemma 4.17: mark cut edges (O(1) MA rounds) -------------------
    ma.ma_rounds += 3
    side_set = set(side)
    cut_edge_ids = [eid for eid, (u, v) in enumerate(edges)
                    if (u in side_set) != (v in side_set)]

    return MincutResult(value=value, side_nodes=sorted(side, key=str),
                        cut_edge_ids=cut_edge_ids, ma_rounds=ma.ma_rounds,
                        respecting_tree=tree, respecting_edges=marker)


def _min_respecting_cut(nodes, edges, weights, tree_eids):
    """Exact min cut among those 1- or 2-respecting the given tree.

    Returns (value, side_node_list, (tree_edge_markers)).
    """
    n = len(nodes)
    idx = {v: i for i, v in enumerate(nodes)}

    # rooted tree arrays
    tadj = [[] for _ in range(n)]
    for eid in tree_eids:
        u, v = edges[eid]
        tadj[idx[u]].append((idx[v], eid))
        tadj[idx[v]].append((idx[u], eid))
    root = 0
    parent = [-1] * n
    parent_eid = [-1] * n
    order = []
    seen = [False] * n
    stack = [root]
    seen[root] = True
    while stack:
        u = stack.pop()
        order.append(u)
        for (w, eid) in tadj[u]:
            if not seen[w]:
                seen[w] = True
                parent[w] = u
                parent_eid[w] = eid
                stack.append(w)
    if not all(seen):
        raise SimulationError("respecting tree does not span")

    # Euler intervals for ancestor tests
    tin = [0] * n
    tout = [0] * n
    timer = 0
    stack = [(root, False)]
    children = [[] for _ in range(n)]
    for u in order[1:]:
        children[parent[u]].append(u)
    while stack:
        u, done = stack.pop()
        if done:
            tout[u] = timer
            continue
        tin[u] = timer
        timer += 1
        stack.append((u, True))
        for w in children[u]:
            stack.append((w, False))

    def path_up(a, stop):
        """vertices from a up to (excluding) stop."""
        out = []
        while a != stop:
            out.append(a)
            a = parent[a]
        return out

    depth = [0] * n
    for u in order[1:]:
        depth[u] = depth[parent[u]] + 1

    def lca(a, b):
        while a != b:
            if depth[a] < depth[b]:
                a, b = b, a
            a = parent[a]
        return a

    # C1 via the +w/+w/-2w(lca) subtree-sum trick; the X/W pair matrices
    # accumulate per-edge path contributions (vectorized when numpy is
    # available, reference loops otherwise — identical values on the
    # paper's integral weights)
    if np is not None:
        delta = np.zeros(n)
        X = np.zeros((n, n))
        W = np.zeros((n, n))
        tri_masks = {}

        def tri(k):
            if k not in tri_masks:
                tri_masks[k] = np.tril(np.ones((k, k)))
            return tri_masks[k]
    else:
        delta = [0.0] * n
        X = [[0.0] * n for _ in range(n)]
        W = [[0.0] * n for _ in range(n)]

    for eid, (u, v) in enumerate(edges):
        a, b = idx[u], idx[v]
        if a == b:
            continue
        w = weights[eid]
        l = lca(a, b)
        delta[a] += w
        delta[b] += w
        delta[l] -= 2 * w
        pa = path_up(a, l)
        pb = path_up(b, l)
        if np is not None:
            if pa and pb:
                X[np.ix_(pa, pb)] += w
                X[np.ix_(pb, pa)] += w
            # nested: (v1=p[j], v2=p[i]) with i<=j along each path
            if pa:
                W[np.ix_(pa, pa)] += w * tri(len(pa))
            if pb:
                W[np.ix_(pb, pb)] += w * tri(len(pb))
        else:
            for x in pa:
                rx = X[x]
                for y in pb:
                    rx[y] += w
                    X[y][x] += w
            for p in (pa, pb):
                for i2 in range(len(p)):
                    rw = W[p[i2]]
                    for j2 in range(i2 + 1):
                        rw[p[j2]] += w

    if np is not None:
        c1 = delta.copy()
    else:
        c1 = list(delta)
    for u in reversed(order):
        if parent[u] != -1:
            c1[parent[u]] += c1[u]

    best_val = math.inf
    best_side = None
    best_marker = None

    # 1-respecting
    for u in range(n):
        if u == root:
            continue
        if c1[u] < best_val:
            best_val = c1[u]
            best_side = _subtree(u, tin, tout, order)
            best_marker = (parent_eid[u],)

    # 2-respecting, both variants: minimize over the masked (v1, v2)
    # matrices, first flat (row-major) minimum on ties
    if np is not None:
        # ancestor mask: anc[i, j] == i is an ancestor-or-self of j
        tin_a = np.array(tin)
        tout_a = np.array(tout)
        anc = (tin_a[:, None] <= tin_a[None, :]) & \
              (tin_a[None, :] < tout_a[:, None])
        eye = np.eye(n, dtype=bool)
        pairsum = c1[:, None] + c1[None, :]
        unrel = ~anc & ~anc.T
        m_unrel = np.where(unrel, pairsum - 2 * X, math.inf)
        np.fill_diagonal(m_unrel, math.inf)
        m_unrel[root, :] = math.inf
        m_unrel[:, root] = math.inf
        i, j = np.unravel_index(np.argmin(m_unrel), m_unrel.shape)
        unrel_best = (float(m_unrel[i, j]), int(i), int(j))

        nest = anc & ~eye
        # W is indexed [v1 (ancestor), v2 (descendant)]
        m_nest = np.where(nest, pairsum - 2 * W, math.inf)
        m_nest[root, :] = math.inf  # equals plain 1-respecting of v2
        i, j = np.unravel_index(np.argmin(m_nest), m_nest.shape)
        nest_best = (float(m_nest[i, j]), int(i), int(j))
    else:
        def is_anc(i2, j2):
            return tin[i2] <= tin[j2] < tout[i2]

        unrel_best = (math.inf, 0, 0)
        nest_best = (math.inf, 0, 0)
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                if is_anc(i, j):
                    if i != root:
                        val = c1[i] + c1[j] - 2 * W[i][j]
                        if val < nest_best[0]:
                            nest_best = (val, i, j)
                elif not is_anc(j, i) and i != root and j != root:
                    val = c1[i] + c1[j] - 2 * X[i][j]
                    if val < unrel_best[0]:
                        unrel_best = (val, i, j)

    val, i, j = unrel_best
    if val < best_val:
        best_val = val
        best_side = _subtree(i, tin, tout, order) + \
            _subtree(j, tin, tout, order)
        best_marker = (parent_eid[i], parent_eid[j])

    val, i, j = nest_best
    if val < best_val:
        best_val = val
        sub1 = set(_subtree(i, tin, tout, order))
        sub2 = set(_subtree(j, tin, tout, order))
        best_side = sorted(sub1 - sub2)
        best_marker = (parent_eid[i], parent_eid[j])

    side_nodes = [nodes[u] for u in best_side]
    return best_val, side_nodes, best_marker


def _subtree(u, tin, tout, order):
    return [w for w in order if tin[u] <= tin[w] < tout[u]]
