"""The minor-aggregation model (Definition 4.7) and its extension with
virtual nodes (Definition 4.11).

Algorithms are written against :class:`MinorAggregationGraph`; every
contraction / consensus / aggregation step increments the MA round
counter.  A *host* (e.g. :class:`repro.aggregation.dual_sim.DualMAHost`)
converts MA rounds into CONGEST rounds using its measured part-wise
aggregation cost (Theorem 4.10 / Lemma 4.8), so the same algorithm code
serves both the primal and the dual simulation.

Virtual nodes (extended model): up to Õ(1) nodes may be added or may
replace existing nodes, arbitrarily connected; per Lemma 4.13 an MA round
on the virtual graph costs O(β) basic MA rounds with β the number of
virtual nodes — hosts account for this via :meth:`virtual_overhead`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass
class MAEdge:
    eid: int
    u: int
    v: int
    weight: float = 1.0
    active: bool = True
    data: object = None


class MinorAggregationGraph:
    """Mutable minor of an input graph, with MA-round accounting."""

    def __init__(self, nodes, edges, weights=None, virtual_nodes=()):
        """``nodes``: iterable of hashable node ids.  ``edges``: list of
        (u, v) pairs (ids into ``nodes``); position = edge id.
        ``virtual_nodes``: subset of ``nodes`` that are virtual (extended
        model)."""
        self.nodes = list(nodes)
        self._node_set = set(self.nodes)
        self.edges = []
        for eid, (u, v) in enumerate(edges):
            if u not in self._node_set or v not in self._node_set:
                raise SimulationError(f"edge ({u},{v}) references unknown node")
            w = 1.0 if weights is None else weights[eid]
            self.edges.append(MAEdge(eid=eid, u=u, v=v, weight=w))
        self.virtual_nodes = set(virtual_nodes)
        self._uf = {v: v for v in self.nodes}
        self.ma_rounds = 0

    # ------------------------------------------------------------------
    # union-find over supernodes
    # ------------------------------------------------------------------
    def find(self, v):
        r = v
        while self._uf[r] != r:
            r = self._uf[r]
        while self._uf[v] != r:
            self._uf[v], v = r, self._uf[v]
        return r

    def supernode_members(self):
        groups = {}
        for v in self.nodes:
            groups.setdefault(self.find(v), []).append(v)
        return groups

    def supernodes(self):
        return sorted(self.supernode_members().keys(),
                      key=lambda x: str(x))

    # ------------------------------------------------------------------
    # the three MA steps
    # ------------------------------------------------------------------
    def contract(self, edge_flags):
        """Contraction step: union endpoints of active edges whose flag
        is 1.  ``edge_flags``: dict eid -> bool (missing = 0)."""
        self.ma_rounds += 1
        for e in self.edges:
            if not e.active:
                continue
            if edge_flags.get(e.eid):
                ru, rv = self.find(e.u), self.find(e.v)
                if ru != rv:
                    self._uf[ru] = rv

    def consensus(self, node_values, op, identity=None):
        """Consensus step: each supernode folds its members' values; all
        members learn the result.  Returns dict node -> supernode value."""
        self.ma_rounds += 1
        acc = {}
        for v in self.nodes:
            if v not in node_values:
                continue
            r = self.find(v)
            acc[r] = node_values[v] if r not in acc \
                else op(acc[r], node_values[v])
        if identity is not None:
            for r in self.supernode_members():
                acc.setdefault(r, identity)
        return {v: acc.get(self.find(v)) for v in self.nodes}

    def aggregate(self, edge_fn, op, identity=None):
        """Aggregation step: every active minor edge (between distinct
        supernodes) contributes values to its two endpoints.

        ``edge_fn(edge, super_u, super_v) -> (z_for_u, z_for_v) | None``.
        Returns dict node -> folded value over incident minor edges.
        """
        self.ma_rounds += 1
        acc = {}

        def push(r, z):
            if z is None:
                return
            acc[r] = z if r not in acc else op(acc[r], z)

        for e in self.edges:
            if not e.active:
                continue
            ru, rv = self.find(e.u), self.find(e.v)
            if ru == rv:
                continue
            res = edge_fn(e, ru, rv)
            if res is None:
                continue
            zu, zv = res
            push(ru, zu)
            push(rv, zv)
        if identity is not None:
            for r in self.supernode_members():
                acc.setdefault(r, identity)
        return {v: acc.get(self.find(v)) for v in self.nodes}

    # ------------------------------------------------------------------
    # bookkeeping helpers (free: purely local choices)
    # ------------------------------------------------------------------
    def deactivate(self, eids):
        for eid in eids:
            self.edges[eid].active = False

    def active_edges(self):
        return [e for e in self.edges if e.active]

    def minor_edges(self):
        """Active edges between distinct supernodes."""
        return [e for e in self.edges
                if e.active and self.find(e.u) != self.find(e.v)]

    def reset_contractions(self):
        """Undo all contractions (used between phases of multi-pass
        algorithms; a fresh contraction step re-establishes state)."""
        self._uf = {v: v for v in self.nodes}

    @property
    def virtual_overhead(self):
        """β of Lemma 4.13: MA-round multiplier for the extended model."""
        return max(1, len(self.virtual_nodes))

    def add_virtual_node(self, node_id, neighbor_edges, weights=None):
        """Extended model: add an arbitrarily-connected virtual node
        (Definition 4.11 / Lemma 4.12).  ``neighbor_edges``: list of
        existing node ids to connect to.  Returns the new edge ids."""
        if node_id in self._node_set:
            raise SimulationError(f"node {node_id} already present")
        self.nodes.append(node_id)
        self._node_set.add(node_id)
        self.virtual_nodes.add(node_id)
        self._uf[node_id] = node_id
        new_ids = []
        for i, u in enumerate(neighbor_edges):
            eid = len(self.edges)
            w = 1.0 if weights is None else weights[i]
            self.edges.append(MAEdge(eid=eid, u=node_id, v=u, weight=w))
            new_ids.append(eid)
        self.ma_rounds += 1  # storing the virtual graph (Lemma 4.12)
        return new_ids

    def replace_with_virtual(self, node_id):
        """Extended model: mark an existing node as virtual (its role is
        simulated by the remaining real nodes)."""
        if node_id not in self._node_set:
            raise SimulationError(f"unknown node {node_id}")
        self.virtual_nodes.add(node_id)
        self.ma_rounds += 1
