"""Simulating minor-aggregation algorithms on the dual graph G*
(Theorems 4.10 and 4.14).

:class:`DualMAHost` owns the face-disjoint graph Ĝ, its measured
shortcut quality, and the conversion rate between MA rounds on ``G*``
(or a virtual ``G*_virt``) and CONGEST rounds on ``G``:

    CONGEST rounds  =  MA rounds × PA-cost(Ĝ) × Ĝ-overhead × β

with β the virtual-node multiplier of Lemma 4.13.  Algorithms obtain a
:class:`~repro.aggregation.model.MinorAggregationGraph` over the dual
nodes from the host and run unchanged; on completion the host charges
the ledger.
"""

from __future__ import annotations

from repro.aggregation.model import MinorAggregationGraph
from repro.shortcuts.partwise import DualPartwiseHost


class DualMAHost:
    """Host for minor-aggregation algorithms on G*."""

    def __init__(self, primal, ledger=None):
        self.primal = primal
        self.ledger = ledger
        self.pa = DualPartwiseHost(primal, ledger=ledger)
        self.dual = self.pa.dual

    @property
    def pa_rounds(self):
        return self.pa.pa_rounds

    def ma_graph(self, weights=None, directed_reversals=False):
        """A fresh MA graph over the dual nodes.

        Edges are the undirected dual edges (one per primal edge), with
        ``weights`` defaulting to primal edge weights.  Each node/edge of
        the MA graph is simulated by the corresponding face cycle / E_C
        endpoints of Ĝ (Theorem 4.10); the identification costs one
        component-detection pass on Ĝ[E_R] (Property 4)."""
        if self.ledger is not None:
            self.ledger.charge(self.pa_rounds, "dual-ma/identify-faces",
                               ref="Ĝ Property 4 / Thm 4.10")
        faces = list(range(self.primal.num_faces()))
        edges = []
        w = []
        for eid in range(self.primal.m):
            f = self.primal.face_of[2 * eid]
            g = self.primal.face_of[2 * eid + 1]
            edges.append((f, g))
            w.append(self.primal.weights[eid]
                     if weights is None else weights[eid])
        return MinorAggregationGraph(faces, edges, weights=w)

    def charge(self, ma_graph, phase, extra_detail=""):
        """Convert the MA rounds consumed so far into CONGEST rounds on
        G and charge the ledger (Theorem 4.10 / 4.14)."""
        if self.ledger is None:
            return 0
        beta = ma_graph.virtual_overhead
        rounds = ma_graph.ma_rounds * self.pa_rounds * beta
        self.ledger.charge(
            rounds, f"dual-ma/{phase}",
            detail=f"{ma_graph.ma_rounds} MA rounds x {self.pa_rounds} "
                   f"PA cost x beta={beta} {extra_detail}",
            ref="Theorem 4.10 / Theorem 4.14")
        ma_graph.ma_rounds = 0
        return rounds
