"""Simulating minor-aggregation algorithms on the dual graph G*
(Theorems 4.10 and 4.14).

:class:`DualMAHost` owns the face-disjoint graph Ĝ, its measured
shortcut quality, and the conversion rate between MA rounds on ``G*``
(or a virtual ``G*_virt``) and CONGEST rounds on ``G``:

    CONGEST rounds  =  MA rounds × PA-cost(Ĝ) × Ĝ-overhead × β

with β the virtual-node multiplier of Lemma 4.13.  Algorithms obtain a
:class:`~repro.aggregation.model.MinorAggregationGraph` over the dual
nodes from the host and run unchanged; on completion the host charges
the ledger.

``backend="engine"`` builds the *array-backed* host instead
(DESIGN.md §7): no shortcut machinery, no Ĝ, no round conversion — the
host compiles the primal topology once and serves the dart-level cycle
oracle that the engine paths of girth (Theorem 1.7) and directed global
min-cut (Theorem 1.5) extract dual cuts from, by cycle-cut duality
(Fact 3.1).  On this backend :meth:`charge` is a no-op and
``pa_rounds`` is 0: the engine leaves the ledger unaudited, exactly
like the flow engine (DESIGN.md §2/§6).
"""

from __future__ import annotations

from repro._artifacts import graph_fingerprint, shared_cache
from repro.aggregation.model import MinorAggregationGraph

BACKENDS = ("legacy", "engine")


class DualMAHost:
    """Host for minor-aggregation algorithms on G*."""

    def __init__(self, primal, ledger=None, backend="legacy"):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"expected one of {BACKENDS}")
        self.primal = primal
        self.ledger = ledger
        self.backend = backend
        if backend == "legacy":
            from repro.shortcuts.partwise import DualPartwiseHost

            self.pa = DualPartwiseHost(primal, ledger=ledger)
            self.dual = self.pa.dual
            self._oracle = None
        else:
            self.pa = None
            self.dual = None
            # shared-cached like compile_graph, so repeated engine hosts
            # reuse one loaded oracle; keyed on the weight fingerprint
            # (arc lengths are baked in, unlike the topology-only CSR
            # cache), so in-place weight mutation misses rather than
            # serving a stale oracle
            fp = graph_fingerprint(primal)
            self._oracle = shared_cache().get_or_build(
                ("cycle-oracle", fp.topo, fp.weights),
                lambda: self._build_oracle(primal))

    @staticmethod
    def _build_oracle(primal):
        from repro.engine.cycles import DartCycleOracle, primal_cycle_arcs

        oracle = DartCycleOracle(primal.n)
        oracle.load_arcs(primal_cycle_arcs(primal))
        return oracle

    @property
    def pa_rounds(self):
        return self.pa.pa_rounds if self.pa is not None else 0

    def ma_graph(self, weights=None, directed_reversals=False):
        """A fresh MA graph over the dual nodes.

        Edges are the undirected dual edges (one per primal edge), with
        ``weights`` defaulting to primal edge weights.  Each node/edge of
        the MA graph is simulated by the corresponding face cycle / E_C
        endpoints of Ĝ (Theorem 4.10); the identification costs one
        component-detection pass on Ĝ[E_R] (Property 4)."""
        if self.ledger is not None and self.backend == "legacy":
            self.ledger.charge(self.pa_rounds, "dual-ma/identify-faces",
                               ref="Ĝ Property 4 / Thm 4.10")
        faces = list(range(self.primal.num_faces()))
        edges = []
        w = []
        for eid in range(self.primal.m):
            f = self.primal.face_of[2 * eid]
            g = self.primal.face_of[2 * eid + 1]
            edges.append((f, g))
            w.append(self.primal.weights[eid]
                     if weights is None else weights[eid])
        return MinorAggregationGraph(faces, edges, weights=w)

    def engine_cycle_oracle(self):
        """The compiled-primal cycle oracle of the engine backend.

        Minimum cuts of G* are minimum dart-simple cycles of the primal
        (Fact 3.1); the oracle is loaded once per host and its buffers
        are shared by every candidate-vertex query."""
        if self._oracle is None:
            raise ValueError("engine_cycle_oracle requires "
                             "backend='engine'")
        return self._oracle

    def charge(self, ma_graph, phase, extra_detail=""):
        """Convert the MA rounds consumed so far into CONGEST rounds on
        G and charge the ledger (Theorem 4.10 / 4.14).  No-op on the
        engine backend (unaudited fast path)."""
        if self.ledger is None or self.backend == "engine":
            return 0
        beta = ma_graph.virtual_overhead
        rounds = ma_graph.ma_rounds * self.pa_rounds * beta
        self.ledger.charge(
            rounds, f"dual-ma/{phase}",
            detail=f"{ma_graph.ma_rounds} MA rounds x {self.pa_rounds} "
                   f"PA cost x beta={beta} {extra_detail}",
            ref="Theorem 4.10 / Theorem 4.14")
        ma_graph.ma_rounds = 0
        return rounds
