"""Keyed artifact caching shared by the engine and the serving layer.

Before the serving subsystem existed, every expensive derived object
hid in an ad-hoc attribute on the graph instance it was built from
(``graph._engine_compiled`` for the CSR arrays,
``primal._engine_cycle_cache`` for the girth oracle).  That worked for
one graph and one caller, but it scatters ownership, offers no memory
bound, no hit/miss observability, and a stale-cache hazard the moment
two kinds of artifact disagree about what invalidates them.

This module is the one shared primitive underneath all of it:

* :class:`ArtifactCache` — an ordered-dict LRU keyed by plain tuples,
  with prefix/predicate invalidation and hit/miss/eviction counters;
* :func:`topo_token` — a process-unique id for a graph's *topology*
  (structural edits build a new ``PlanarGraph``, so a per-instance
  token is exactly as stable as the rotation system itself);
* :func:`graph_fingerprint` — ``(topo, weights, capacities)`` where the
  weight/capacity components hash the *current* lists, so artifacts
  keyed by a fingerprint go stale-proof against in-place mutation: a
  mutated graph simply stops matching its old keys.

The module sits at the bottom of the layer stack (next to
:mod:`repro._compat`) and imports nothing, so both
:func:`repro.engine.csr.compile_graph` (below the service layer) and
:class:`repro.service.catalog.GraphCatalog` (above it) can share it
without a dependency cycle.  :func:`shared_cache` is the process-wide
instance the engine uses; catalogs own private instances.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict, namedtuple

_MISSING = object()

#: weight/capacity components are hashes of the current value lists;
#: ``topo`` is the per-instance topology token.
Fingerprint = namedtuple("Fingerprint", ["topo", "weights", "capacities"])

_topo_counter = itertools.count()


def topo_token(graph):
    """Process-unique token for the topology of ``graph``.

    Assigned on first use and stored on the instance.  Safe because the
    library's structural contract (see :mod:`repro.engine.csr`) is that
    topology edits construct a new ``PlanarGraph``; only weights and
    capacities may mutate in place, and those are covered by the other
    two fingerprint components.
    """
    token = getattr(graph, "_artifact_topo_token", None)
    if token is None:
        token = next(_topo_counter)
        graph._artifact_topo_token = token
    return token


def graph_fingerprint(graph):
    """Current :class:`Fingerprint` of ``graph``.

    O(m) per call (the weight and capacity lists are re-hashed), which
    is what makes fingerprint-keyed caching sound under in-place weight
    mutation — and is negligible against the cost of any artifact worth
    caching.
    """
    return Fingerprint(topo=topo_token(graph),
                       weights=hash(tuple(graph.weights)),
                       capacities=hash(tuple(graph.capacities)))


class ArtifactCache:
    """LRU cache of derived artifacts keyed by plain tuples.

    ``maxsize=None`` means unbounded.  Keys are compared exactly;
    :meth:`invalidate` removes by key-tuple prefix or by predicate.
    Counters (``hits`` / ``misses`` / ``evictions``) are cumulative for
    the cache's lifetime — :meth:`stats` snapshots them.
    """

    def __init__(self, maxsize=None):
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be None or >= 1")
        self.maxsize = maxsize
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def get(self, key, default=None):
        """The cached value (refreshing its LRU position) or ``default``."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value):
        """Insert/overwrite ``key``, evicting LRU entries over ``maxsize``."""
        entries = self._entries
        entries[key] = value
        entries.move_to_end(key)
        if self.maxsize is not None:
            while len(entries) > self.maxsize:
                entries.popitem(last=False)
                self.evictions += 1
        return value

    def get_or_build(self, key, build):
        """The cached value for ``key``, building (and caching) on a miss."""
        value = self.get(key, _MISSING)
        if value is _MISSING:
            value = self.put(key, build())
        return value

    # ------------------------------------------------------------------
    def discard(self, key):
        """Remove one key if present; True when something was removed."""
        return self._entries.pop(key, _MISSING) is not _MISSING

    def invalidate(self, match=()):
        """Remove entries by key prefix or predicate; returns the count.

        ``match`` is either a tuple prefix (``()`` clears everything) or
        a callable ``key -> bool``.
        """
        if callable(match):
            doomed = [k for k in self._entries if match(k)]
        else:
            prefix = tuple(match)
            n = len(prefix)
            doomed = [k for k in self._entries if k[:n] == prefix]
        for k in doomed:
            del self._entries[k]
        return len(doomed)

    def clear(self):
        self._entries.clear()

    # ------------------------------------------------------------------
    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def keys(self):
        return list(self._entries.keys())

    def items(self):
        """Snapshot of the ``(key, value)`` pairs, LRU-oldest first —
        read-only iteration that touches neither the counters nor the
        recency order (used by the catalog snapshot hooks)."""
        return list(self._entries.items())

    def stats(self):
        """Snapshot: size, maxsize and the cumulative counters."""
        return {"size": len(self._entries), "maxsize": self.maxsize,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}


#: default bound of the process-wide cache; generous for test suites
#: that churn through hundreds of small graphs (evictions just mean a
#: recompile) while capping memory on long-lived serving processes.
#: Entries hold strong references (a compiled CSR keeps its source
#: graph alive), so up to this many graphs outlive their last user
#: reference until LRU eviction — ``GraphCatalog.unregister`` and
#: ``shared_cache().invalidate`` free eagerly when that matters.
SHARED_CACHE_MAXSIZE = 64

_shared = ArtifactCache(maxsize=SHARED_CACHE_MAXSIZE)


def shared_cache():
    """The process-wide :class:`ArtifactCache` of the engine layer.

    Holds the compiled CSR topologies (:func:`repro.engine.csr.
    compile_graph`), the girth cycle oracles (:class:`repro.
    aggregation.dual_sim.DualMAHost`) and the compiled labeling bag
    arrays (:func:`repro.engine.labels.compile_labeling_bags` — keyed
    by topology token so weight-only repricings reuse them); a
    :class:`repro.service.catalog.GraphCatalog` layers its own private
    cache on top for named-graph artifacts and query results.

    Every entry's key carries the owning graph's topology token in
    position 1 — that convention is what lets
    :meth:`~repro.service.catalog.GraphCatalog.unregister` free all of
    a graph's shared entries with one predicate sweep.
    """
    return _shared


__all__ = [
    "ArtifactCache",
    "Fingerprint",
    "graph_fingerprint",
    "shared_cache",
    "topo_token",
    "SHARED_CACHE_MAXSIZE",
]
