"""Replay a :class:`~repro.workload.scenario.Scenario` against a
serving surface and prove bit-parity against a reference replay
(DESIGN.md §12).

The replay driver walks a scenario's event schedule in timestamp
order — registrations, weight mutations, repricings, query bursts —
against any *executor*:

* :class:`CatalogExecutor` — a hot in-process
  :class:`~repro.service.catalog.GraphCatalog` (the single-threaded
  reference surface);
* :class:`PoolExecutor` — a running
  :class:`~repro.server.pool.WarmWorkerPool` (multi-process, no
  sockets);
* :class:`ClientExecutor` — a :class:`~repro.server.client.
  ServiceClient` talking NDJSON to a :class:`~repro.server.app.
  QueryServer` (the full over-the-wire stack).

Every query outcome (result *or* typed error) and every
``audit_labeling`` checkpoint lands in a :class:`ReplayLog` as a
canonical JSON record, and :meth:`ReplayLog.signature` renders the log
as canonical bytes — so "the pool served exactly what a single
catalog would have served" is checkable as *byte equality*:

    scenario = evacuation_scenario(rows=16, cols=16)
    reference = reference_replay(scenario)
    served = replay_scenario(scenario, ClientExecutor(client))
    assert_replay_parity(served, reference)   # ReplayDivergenceError

What is (and is not) signed: query outcomes travel through the wire
codecs (:func:`~repro.server.wire.result_to_wire` /
:func:`~repro.server.wire.exception_to_wire`), which round-trip every
result type exactly, so a served ``int`` vs reference ``float`` is a
divergence.  Audit checkpoints sign the deterministic report fields
(label/entry counts, error site) — and a pool audit must agree across
the master *and every worker* before it signs at all.  Mutation and
registration records sign their event content only: timings, cache
hit/miss flags and repair-vs-rebuild actions are execution details
that legitimately differ between a cold reference and a warm pool.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import (
    NegativeCycleError,
    ReplayDivergenceError,
    ServiceError,
)
from repro.workload.scenario import (
    MutateWeights,
    QueryBurst,
    Register,
    Scenario,
    SetWeights,
    event_to_wire,
)


def _canonical_line(obj):
    return (json.dumps(obj, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


@dataclass(frozen=True)
class ReplayRecord:
    """One signed step of a replay: ``kind`` in {"register", "mutate",
    "set-weights", "query", "audit"}, ``payload`` the canonical
    JSON-safe dict that enters the signature."""

    kind: str
    payload: dict


@dataclass
class ReplayLog:
    """The ordered record stream one replay produced."""

    scenario: Scenario
    records: list = field(default_factory=list)

    def add(self, kind, payload):
        self.records.append(ReplayRecord(kind, payload))

    def signature(self):
        """Canonical bytes of the whole replay — byte-equal across any
        two replays that served bit-identical responses."""
        return b"".join(_canonical_line(r.payload) for r in self.records)

    def digest(self):
        """sha256 hex digest of :meth:`signature` (log-friendly)."""
        return hashlib.sha256(self.signature()).hexdigest()

    def query_outcomes(self):
        return [r.payload for r in self.records if r.kind == "query"]

    def audit_checkpoints(self):
        return [r.payload for r in self.records if r.kind == "audit"]


# ----------------------------------------------------------------------
# executors — one protocol, three serving surfaces
# ----------------------------------------------------------------------
def _query_outcome(query, ok, value):
    """The canonical signed payload of one served query: the query
    itself plus its result or typed error, through the wire codecs."""
    from repro.server import wire

    out = {"record": "query", "query": wire.query_to_wire(query)}
    if ok:
        out["outcome"] = {"ok": True,
                          "result": wire.result_to_wire(value)}
    else:
        out["outcome"] = {"ok": False,
                          "error": wire.exception_to_wire(value)}
    return out


def _audit_signature(report):
    """The deterministic slice of one ``audit_labeling`` report (counts
    and error site; backends and timings are execution details)."""
    return {"graph": report["graph"], "labels": report["labels"],
            "entries": report["entries"], "error": report["error"]}


class CatalogExecutor:
    """Replay against a hot in-process
    :class:`~repro.service.catalog.GraphCatalog` — the single-threaded
    reference surface every other executor is measured against."""

    def __init__(self, catalog):
        self.catalog = catalog

    def names(self):
        return self.catalog.names()

    def register(self, name, graph):
        self.catalog.register(name, graph)

    def run(self, queries):
        out = []
        for q in queries:
            try:
                out.append((True, self.catalog.serve(q).result))
            except Exception as exc:
                out.append((False, exc))
        return out

    def mutate(self, name, edges):
        # a negative dual cycle surfaces *here* only on a surface that
        # holds the labeling at mutate time (this catalog does; a
        # forked pool's master does not) — swallow it so the asymmetry
        # never enters the signature: the weights are applied either
        # way, and every subsequent query outcome and audit checkpoint
        # signs the identical error site on both surfaces
        try:
            self.catalog.mutate_weights(name, dict(edges))
        except NegativeCycleError:
            pass

    def set_weights(self, name, weights=None, capacities=None):
        self.catalog.set_weights(name, weights=weights,
                                 capacities=capacities)

    def audit(self, name, leaf_size=None):
        report = self.catalog.audit_labeling(name, leaf_size=leaf_size)
        return _audit_signature(report)


class PoolExecutor:
    """Replay against a running :class:`~repro.server.pool.
    WarmWorkerPool` (multi-process dispatch, no sockets).  Mutations
    go through the pool's broadcast + :meth:`~repro.server.pool.
    WarmWorkerPool.drain` barrier, so every signed query outcome is
    served under the weights the schedule says it should see."""

    def __init__(self, pool):
        self.pool = pool

    def names(self):
        return self.pool.catalog.names()

    def register(self, name, graph):
        self.pool.register(name, graph)

    def run(self, queries):
        futures = [self.pool.submit(q) for q in queries]
        out = []
        for f in futures:
            try:
                out.append((True, f.result().result))
            except Exception as exc:
                out.append((False, exc))
        return out

    def mutate(self, name, edges):
        try:
            self.pool.mutate_weights(name, dict(edges))
        except NegativeCycleError:
            pass  # same contract as CatalogExecutor.mutate
        self.pool.drain()

    def set_weights(self, name, weights=None, capacities=None):
        self.pool.set_weights(name, weights=weights,
                              capacities=capacities)
        self.pool.drain()

    def audit(self, name, leaf_size=None):
        report = self.pool.audit_labeling(name, leaf_size=leaf_size)
        return _merged_audit(report)


class ClientExecutor:
    """Replay over the wire through a :class:`~repro.server.client.
    ServiceClient` — the full stack (client codec, NDJSON frames,
    server dispatch, pool, worker catalogs) under one signature."""

    def __init__(self, client):
        self.client = client

    def names(self):
        return self.client.graphs()

    def register(self, name, graph):
        self.client.register(name, graph)

    def run(self, queries):
        report = self.client.run(queries, on_error="return")
        return [(env.error is None,
                 env.result if env.error is None else env.error)
                for env in report.results]

    def mutate(self, name, edges):
        try:
            self.client.mutate_weights(name, dict(edges))
        except NegativeCycleError:
            pass  # same contract as CatalogExecutor.mutate

    def set_weights(self, name, weights=None, capacities=None):
        self.client.set_weights(name, weights=weights,
                                capacities=capacities)

    def audit(self, name, leaf_size=None):
        report = self.client.audit_labeling(name, leaf_size=leaf_size)
        return _merged_audit(report)


def _merged_audit(report):
    """Collapse a pool-wide audit report (``{"master": ..., "workers":
    {wid: ...}}``) to one signature — after asserting the master and
    every worker agree on it.  A worker whose labels drifted from the
    master is itself a replay divergence, even though each copy passed
    its own rebuild audit."""
    if "master" not in report:        # bare catalog report
        return _audit_signature(report)
    sigs = [("master", _audit_signature(report["master"]))]
    for wid, wrep in sorted(report.get("workers", {}).items(),
                            key=lambda kv: str(kv[0])):
        sigs.append((f"worker {wid}", _audit_signature(wrep)))
    first = sigs[0][1]
    for who, sig in sigs[1:]:
        if sig != first:
            raise ReplayDivergenceError(
                f"pool audit disagreement: {who} reports {sig!r} but "
                f"master reports {first!r}", record=sig)
    return first


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
def replay_scenario(scenario, executor, audit=True, leaf_size=None):
    """Run ``scenario`` through ``executor`` in schedule order;
    returns the :class:`ReplayLog`.

    Pre-scenario graphs (``scenario.graphs``) are registered first if
    the executor does not already serve them — a pool that registered
    and prewarmed them *before* forking keeps its warmth.  With
    ``audit=True`` (the default) every mutation event is followed by an
    ``audit_labeling`` checkpoint on the mutated graph, signed into the
    log; ``leaf_size`` is threaded through to the audits so they check
    the same BDD the queries use.
    """
    log = ReplayLog(scenario)
    known = set(executor.names())
    for name, spec in scenario.graphs:
        if name not in known:
            executor.register(name, spec.build())
            known.add(name)

    for event in scenario.events:
        if isinstance(event, Register):
            executor.register(event.name, event.spec.build())
            payload = event_to_wire(event)
            payload["record"] = "register"
            del payload["at"]
            log.add("register", payload)
        elif isinstance(event, MutateWeights):
            executor.mutate(event.graph, event.edges)
            log.add("mutate", {"record": "mutate",
                               "graph": event.graph,
                               "epoch": event.epoch,
                               "edges": [[eid, w]
                                         for eid, w in event.edges]})
            if audit:
                sig = executor.audit(event.graph, leaf_size=leaf_size)
                log.add("audit", {"record": "audit",
                                  "epoch": event.epoch, "audit": sig})
        elif isinstance(event, SetWeights):
            executor.set_weights(
                event.graph,
                weights=None if event.weights is None
                else list(event.weights),
                capacities=None if event.capacities is None
                else list(event.capacities))
            payload = event_to_wire(event)
            payload["record"] = "set-weights"
            del payload["at"]
            log.add("set-weights", payload)
            if audit:
                sig = executor.audit(event.graph, leaf_size=leaf_size)
                log.add("audit", {"record": "audit",
                                  "epoch": event.epoch, "audit": sig})
        elif isinstance(event, QueryBurst):
            for query, (ok, value) in zip(event.queries,
                                          executor.run(event.queries)):
                log.add("query", _query_outcome(query, ok, value))
        else:
            raise ServiceError(f"unknown event type "
                               f"{type(event).__name__}")
    return log


def reference_replay(scenario, audit=True, leaf_size=None,
                     planner=None):
    """The single-threaded ground truth: replay against a fresh
    private :class:`~repro.service.catalog.GraphCatalog`."""
    from repro.service.catalog import GraphCatalog

    catalog = GraphCatalog(planner=planner)
    return replay_scenario(scenario, CatalogExecutor(catalog),
                           audit=audit, leaf_size=leaf_size)


def assert_replay_parity(served, reference):
    """Byte-compare two replay logs record by record; raises
    :class:`~repro.errors.ReplayDivergenceError` naming the first
    diverging record, returns the number of compared records
    otherwise."""
    a, b = served.records, reference.records
    if len(a) != len(b):
        raise ReplayDivergenceError(
            f"replay lengths differ: served {len(a)} records vs "
            f"reference {len(b)}")
    for i, (ra, rb) in enumerate(zip(a, b)):
        if _canonical_line(ra.payload) != _canonical_line(rb.payload):
            raise ReplayDivergenceError(
                f"record {i} ({ra.kind}) diverged: served "
                f"{ra.payload!r} vs reference {rb.payload!r}",
                record=ra.payload)
    if served.signature() != reference.signature():
        raise ReplayDivergenceError(
            "record payloads match but signatures differ "
            "(canonical encoding bug)")
    return len(a)


__all__ = [
    "ReplayRecord",
    "ReplayLog",
    "CatalogExecutor",
    "PoolExecutor",
    "ClientExecutor",
    "replay_scenario",
    "reference_replay",
    "assert_replay_parity",
]
