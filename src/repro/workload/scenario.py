"""Deterministic dynamic-workload scenarios (DESIGN.md §12).

Every benchmark before this module measured a *static* grid: fix the
weights, fire queries, read the clock.  Production traffic on a planar
network is nothing like that — tolls change, lines trip, rivers rise —
and PR 6's ``mutate_weights``/``audit_labeling`` machinery exists
precisely to serve it.  A :class:`Scenario` is the missing workload
object: a seeded, fully deterministic schedule of timestamped events
(weight mutations, capacity repricing, graph registrations, query
bursts) that :mod:`repro.workload.replay` can run against any serving
surface and compare bit-for-bit against a single-threaded reference.

Determinism is the load-bearing property: the same constructor
arguments always produce the same scenario, and :meth:`Scenario.encode`
renders it as canonical newline-delimited JSON so "same seed → same
workload" is checkable as *byte equality*, not just structural
equality (``tests/test_workload.py`` enforces this with hypothesis).
Graphs are therefore described by :class:`GraphSpec` values (family +
seed), never by live objects.

Three generators extend the matching ``examples/`` stories into time:

* :func:`evacuation_scenario` — congestion waves sweeping a road grid
  (``examples/road_network_evacuation.py``): each epoch reprices the
  road segments under the moving front and relieves the segments the
  wave has passed, under mixed flow/cut/distance traffic;
* :func:`outage_scenario` — cascading line trips on the power-grid
  ring (``examples/power_grid_weak_ring.py``): every epoch trips lines
  adjacent to already-tripped ones, and girth queries track the
  weakest ring as it migrates;
* :func:`flood_scenario` — flood-stage channel capacities on the river
  delta (``examples/river_barrier_approx_flow.py``): stage-wide
  ``SetWeights`` repricing as the water rises and recedes, under
  flow/cut traffic.

:func:`random_scenario` draws a structurally random schedule from a
seed — the hypothesis fuzz surface.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field

from repro.errors import ServiceError
from repro.service.queries import (
    CutQuery,
    DistanceQuery,
    FlowQuery,
    GirthQuery,
)

#: graph families a :class:`GraphSpec` may name (generator lookup)
SPEC_FAMILIES = ("grid", "cylinder")


@dataclass(frozen=True)
class GraphSpec:
    """A graph described by construction, not by object identity.

    ``build()`` is a pure function of the spec's fields, so two
    processes (or two replays) constructing from the same spec get
    value-identical graphs — the property that lets a scenario travel
    as plain data while its replays stay bit-comparable.
    """

    family: str
    rows: int
    cols: int
    seed: int = 0
    low: int = 1
    high: int = 20
    directed_capacities: bool = True

    def build(self):
        """The :class:`~repro.planar.graph.PlanarGraph` this spec
        names (weights/capacities included)."""
        from repro.planar.generators import (
            cylinder,
            grid,
            randomize_weights,
        )

        makers = {"grid": grid, "cylinder": cylinder}
        if self.family not in makers:
            raise ServiceError(f"unknown graph family {self.family!r}; "
                               f"expected one of {SPEC_FAMILIES}")
        base = makers[self.family](self.rows, self.cols)
        return randomize_weights(
            base, low=self.low, high=self.high, seed=self.seed,
            directed_capacities=self.directed_capacities)


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Register:
    """Register a late graph mid-scenario (pre-scenario graphs live in
    ``Scenario.graphs`` instead)."""

    at: float
    name: str
    spec: GraphSpec


@dataclass(frozen=True)
class MutateWeights:
    """Delta-reprice a few edges — the
    :meth:`~repro.service.catalog.GraphCatalog.mutate_weights` path.
    ``edges`` holds absolute ``(eid, new_weight)`` pairs; ``epoch``
    labels the mutation epoch the event closes (audit checkpoints
    attach per epoch)."""

    at: float
    graph: str
    edges: tuple
    epoch: int = 0


@dataclass(frozen=True)
class SetWeights:
    """Whole-graph reprice — the
    :meth:`~repro.service.catalog.GraphCatalog.set_weights` teardown
    path (``weights`` / ``capacities`` are full per-edge tuples or
    ``None``)."""

    at: float
    graph: str
    weights: tuple | None = None
    capacities: tuple | None = None
    epoch: int = 0


@dataclass(frozen=True)
class QueryBurst:
    """A batch of typed queries arriving together at ``at``."""

    at: float
    queries: tuple


EVENT_TYPES = (Register, MutateWeights, SetWeights, QueryBurst)


def event_to_wire(event):
    """Canonical JSON-safe payload of one event (the unit of
    :meth:`Scenario.encode`)."""
    from repro.server.wire import query_to_wire

    if isinstance(event, Register):
        return {"event": "register", "at": event.at,
                "name": event.name, "spec": asdict(event.spec)}
    if isinstance(event, MutateWeights):
        return {"event": "mutate", "at": event.at,
                "graph": event.graph, "epoch": event.epoch,
                "edges": [[eid, w] for eid, w in event.edges]}
    if isinstance(event, SetWeights):
        return {"event": "set-weights", "at": event.at,
                "graph": event.graph, "epoch": event.epoch,
                "weights": None if event.weights is None
                else list(event.weights),
                "capacities": None if event.capacities is None
                else list(event.capacities)}
    if isinstance(event, QueryBurst):
        return {"event": "queries", "at": event.at,
                "queries": [query_to_wire(q) for q in event.queries]}
    raise ServiceError(f"unknown event type {type(event).__name__}")


def _canonical_line(obj):
    return (json.dumps(obj, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


@dataclass(frozen=True)
class Scenario:
    """A named, seeded, timestamp-ordered event schedule.

    ``graphs`` are the pre-scenario registrations (name → spec, as an
    ordered tuple of pairs); ``events`` must be sorted by ``at`` (ties
    keep construction order).  The object is frozen and all payloads
    are value types, so scenarios hash, pickle, and compare by value.
    """

    name: str
    seed: int
    graphs: tuple = field(default_factory=tuple)
    events: tuple = field(default_factory=tuple)

    def __post_init__(self):
        times = [e.at for e in self.events]
        if times != sorted(times):
            raise ServiceError(
                f"scenario {self.name!r} events must be sorted by "
                f"timestamp")
        for ev in self.events:
            if not isinstance(ev, EVENT_TYPES):
                raise ServiceError(f"unknown event type "
                                   f"{type(ev).__name__}")

    # ------------------------------------------------------------------
    def build_graphs(self):
        """name → freshly built :class:`~repro.planar.graph.
        PlanarGraph` for the pre-scenario registrations."""
        return {name: spec.build() for name, spec in self.graphs}

    def query_count(self):
        return sum(len(e.queries) for e in self.events
                   if isinstance(e, QueryBurst))

    def mutation_epochs(self):
        """Number of mutation events (each closes one audit epoch)."""
        return sum(1 for e in self.events
                   if isinstance(e, (MutateWeights, SetWeights)))

    def encode(self):
        """Canonical NDJSON rendering, as bytes.

        Same scenario value → same bytes, across processes and runs
        (keys sorted, compact separators, queries rendered through the
        wire codec) — the replay-determinism contract is checked
        against this encoding.
        """
        lines = [_canonical_line({"scenario": self.name,
                                  "seed": self.seed, "v": 1})]
        for name, spec in self.graphs:
            lines.append(_canonical_line({"graph": name,
                                          "spec": asdict(spec)}))
        for event in self.events:
            lines.append(_canonical_line(event_to_wire(event)))
        return b"".join(lines)


# ----------------------------------------------------------------------
# shared generator plumbing
# ----------------------------------------------------------------------
def _rng(kind, seed):
    # string seeding runs through sha512 in CPython's random.seed, so
    # the stream is stable across processes and PYTHONHASHSEED values
    return random.Random(f"repro-workload-{kind}-{seed}")


def _query_mix(rng, name, g, count, mix):
    """``count`` typed queries drawn from ``mix`` — a list of
    ``(kind, share)`` pairs over {"flow", "cut", "distance", "girth"}
    — against graph ``name``."""
    nf = g.num_faces()
    kinds = [k for k, _ in mix]
    weights = [share for _, share in mix]
    out = []
    for _ in range(count):
        kind = rng.choices(kinds, weights=weights)[0]
        if kind == "distance":
            out.append(DistanceQuery(name, rng.randrange(nf),
                                     rng.randrange(nf)))
        elif kind == "flow":
            s = rng.randrange(g.n)
            t = rng.randrange(g.n - 1)
            out.append(FlowQuery(name, s, t if t < s else t + 1))
        elif kind == "cut":
            s = rng.randrange(g.n)
            t = rng.randrange(g.n - 1)
            out.append(CutQuery(name, s, t if t < s else t + 1))
        else:
            out.append(GirthQuery(name))
    return tuple(out)


# ----------------------------------------------------------------------
# the three ROADMAP scenarios
# ----------------------------------------------------------------------
def evacuation_scenario(rows=64, cols=64, seed=7, epochs=4,
                        queries_per_epoch=24, edges_per_epoch=10,
                        name=None):
    """Evacuation waves on a road grid (the dynamic sequel to
    ``examples/road_network_evacuation.py``).

    A congestion front sweeps the grid left to right: epoch ``e``
    reprices ``edges_per_epoch`` road segments inside the moving
    column band to wave-congested weights and relieves the previous
    band back to its base weight — a contiguous dirty set, which is
    exactly the delta-repair sweet spot of DESIGN.md §11.  Between
    mutations, bursts of mixed traffic ask for evacuation capacity
    (flow), bottlenecks (cut) and dual distances.
    """
    graph_name = name or f"evac-{rows}x{cols}"
    spec = GraphSpec("grid", rows, cols, seed=seed, low=1, high=6)
    g = spec.build()
    rng = _rng("evacuation", seed)
    base = list(g.weights)
    current = list(g.weights)

    def band_edges(e):
        lo = (e * cols) // max(epochs, 1)
        hi = ((e + 1) * cols) // max(epochs, 1)
        eids = []
        for eid, (u, v) in enumerate(g.edges):
            if lo <= u % cols < hi and lo <= v % cols < hi:
                eids.append(eid)
        return eids

    events = [QueryBurst(0.0, _query_mix(
        rng, graph_name, g, queries_per_epoch,
        [("distance", 5), ("flow", 3), ("cut", 2)]))]
    t = 1.0
    for epoch in range(1, epochs + 1):
        congested = band_edges(epoch - 1)
        rng.shuffle(congested)
        updates = []
        for eid in congested[:edges_per_epoch]:
            current[eid] = base[eid] * (4 + epoch % 3)   # wave arrives
            updates.append((eid, current[eid]))
        if epoch >= 2:
            relieved = band_edges(epoch - 2)
            for eid in relieved:
                if current[eid] != base[eid]:            # wave passed
                    current[eid] = base[eid]
                    updates.append((eid, current[eid]))
        events.append(MutateWeights(t, graph_name, tuple(updates),
                                    epoch=epoch))
        events.append(QueryBurst(t + 0.5, _query_mix(
            rng, graph_name, g, queries_per_epoch,
            [("distance", 5), ("flow", 3), ("cut", 2)])))
        t += 1.0
    return Scenario(name=f"evacuation-{rows}x{cols}-s{seed}",
                    seed=seed, graphs=((graph_name, spec),),
                    events=tuple(events))


def outage_scenario(rows=5, cols=12, seed=13, epochs=4,
                    queries_per_epoch=16, name=None):
    """Cascading outages on the power-grid ring (the dynamic sequel to
    ``examples/power_grid_weak_ring.py``).

    Epoch 1 trips one line (its upgrade cost jumps 40×); every later
    epoch trips lines *adjacent* to already-tripped ones — a cascade.
    Girth queries track the weakest redundant ring as it migrates,
    with dual-distance and flow traffic mixed in.
    """
    graph_name = name or f"ring-{rows}x{cols}"
    spec = GraphSpec("cylinder", rows, cols, seed=seed, low=3, high=40)
    g = spec.build()
    rng = _rng("outage", seed)
    current = list(g.weights)
    tripped = set()

    events = [QueryBurst(0.0, _query_mix(
        rng, graph_name, g, queries_per_epoch,
        [("girth", 2), ("distance", 4), ("flow", 2)]))]
    t = 1.0
    for epoch in range(1, epochs + 1):
        if not tripped:
            candidates = list(range(g.m))
        else:
            hot = {v for eid in tripped for v in g.edges[eid]}
            candidates = [eid for eid, (u, v) in enumerate(g.edges)
                          if eid not in tripped
                          and (u in hot or v in hot)]
            candidates = candidates or [eid for eid in range(g.m)
                                        if eid not in tripped]
        trips = rng.sample(candidates, min(2, len(candidates)))
        updates = []
        for eid in trips:
            tripped.add(eid)
            current[eid] = current[eid] * 40
            updates.append((eid, current[eid]))
        events.append(MutateWeights(t, graph_name, tuple(updates),
                                    epoch=epoch))
        events.append(QueryBurst(t + 0.5, _query_mix(
            rng, graph_name, g, queries_per_epoch,
            [("girth", 2), ("distance", 4), ("flow", 2)])))
        t += 1.0
    return Scenario(name=f"outage-{rows}x{cols}-s{seed}",
                    seed=seed, graphs=((graph_name, spec),),
                    events=tuple(events))


def flood_scenario(rows=8, cols=12, seed=21, stages=(2, 3, 2, 1),
                   queries_per_epoch=16, name=None):
    """Flood-stage capacities on the river delta (the dynamic sequel
    to ``examples/river_barrier_approx_flow.py``).

    Each stage multiplies every channel's capacity by the stage factor
    (the river rising, cresting, receding) via whole-graph
    ``SetWeights`` events — the teardown-reprice path — under
    flow-heavy traffic asking how much water the delta passes and
    which channels form the barrier.
    """
    graph_name = name or f"delta-{rows}x{cols}"
    spec = GraphSpec("grid", rows, cols, seed=seed, low=1, high=15,
                     directed_capacities=False)
    g = spec.build()
    rng = _rng("flood", seed)
    base_caps = list(g.capacities)

    events = [QueryBurst(0.0, _query_mix(
        rng, graph_name, g, queries_per_epoch,
        [("flow", 4), ("cut", 3), ("distance", 2)]))]
    t = 1.0
    for epoch, factor in enumerate(stages, start=1):
        caps = tuple(c * factor for c in base_caps)
        events.append(SetWeights(t, graph_name, capacities=caps,
                                 epoch=epoch))
        events.append(QueryBurst(t + 0.5, _query_mix(
            rng, graph_name, g, queries_per_epoch,
            [("flow", 4), ("cut", 3), ("distance", 2)])))
        t += 1.0
    return Scenario(name=f"flood-{rows}x{cols}-s{seed}",
                    seed=seed, graphs=((graph_name, spec),),
                    events=tuple(events))


#: name → generator, the CLI/benchmark selection surface
SCENARIO_KINDS = {
    "evacuation": evacuation_scenario,
    "outage": outage_scenario,
    "flood": flood_scenario,
}


def make_scenario(kind, **kwargs):
    """Build one of the named ROADMAP scenarios."""
    gen = SCENARIO_KINDS.get(kind)
    if gen is None:
        raise ServiceError(f"unknown scenario kind {kind!r}; expected "
                           f"one of {sorted(SCENARIO_KINDS)}")
    return gen(**kwargs)


def random_scenario(seed, max_rows=5, max_cols=6, max_epochs=3,
                    max_queries=8):
    """A structurally random (but fully seed-determined) scenario —
    the hypothesis fuzz surface of ``tests/test_workload.py``.

    Draws the family, size, epoch count, query mix and mutation edges
    from one seeded stream, so the same seed always yields the same
    scenario value (and therefore the same :meth:`Scenario.encode`
    bytes).
    """
    rng = _rng("random", seed)
    kind = rng.choice(sorted(SCENARIO_KINDS))
    rows = rng.randint(3, max_rows)
    cols = rng.randint(4, max_cols)
    epochs = rng.randint(1, max_epochs)
    q = rng.randint(2, max_queries)
    if kind == "flood":
        stages = tuple(rng.randint(1, 4) for _ in range(epochs))
        return flood_scenario(rows=rows, cols=cols, seed=seed,
                              stages=stages, queries_per_epoch=q)
    if kind == "outage":
        return outage_scenario(rows=rows, cols=cols + 1, seed=seed,
                               epochs=epochs, queries_per_epoch=q)
    return evacuation_scenario(rows=rows, cols=cols, seed=seed,
                               epochs=epochs, queries_per_epoch=q,
                               edges_per_epoch=rng.randint(1, 4))


__all__ = [
    "GraphSpec",
    "Register",
    "MutateWeights",
    "SetWeights",
    "QueryBurst",
    "Scenario",
    "event_to_wire",
    "evacuation_scenario",
    "outage_scenario",
    "flood_scenario",
    "random_scenario",
    "make_scenario",
    "SCENARIO_KINDS",
]
