"""Open-loop load generator for the query server (DESIGN.md §12).

A *closed-loop* driver (issue, wait, issue) measures a server that is
never actually saturated: each connection politely waits for its
previous answer, so a slow response throttles the offered load and the
latency numbers look flat right up to the cliff.  The workload engine
instead drives **open-loop**: arrival times are fixed up front by
:func:`arrival_schedule` — a seeded, deterministic schedule independent
of completions — and every connection fires at its scheduled instants
whether or not earlier answers came back.  Latency is measured from
the *scheduled arrival* to completion, so queueing delay the server
caused is charged to the server (no coordinated omission).

:func:`run_load` fans a query mix across ``connections`` worker
threads (round-robin by arrival index), each driving its own target —
anything with a ``query(q)`` method, usually a fresh
:class:`~repro.server.client.ServiceClient` per connection — and folds
the samples into a :class:`LoadReport`: p50/p95/p99 latency,
throughput and error counts *per query type*, JSON-ready for
``benchmarks/_json_out.py``.  Failures never abort the run: each error
is counted under its exception type (a worker death mid-run shows up
as ``ServiceError`` frames, not a crashed benchmark).

Percentiles use the nearest-rank definition (the sample at index
``ceil(p/100 * n)`` of the sorted latencies) — exact, monotone, and
trivially checkable against a hand-computed fixture
(``tests/test_loadgen.py``).
"""

from __future__ import annotations

import math
import random
import threading
import time
from dataclasses import dataclass, field

from repro import obs


def arrival_schedule(rate, count, seed=None):
    """``count`` arrival offsets (seconds from start) at ``rate``
    arrivals/second.

    ``seed=None`` gives a uniform (paced) schedule — arrival ``i`` at
    ``i / rate``.  With a seed, interarrivals are exponential draws
    from a :class:`random.Random` seeded by the string
    ``"repro-loadgen-<seed>"`` (sha512 string seeding, so the schedule
    is byte-stable across processes): a Poisson arrival process of the
    same mean rate, the standard open-loop traffic model.
    """
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    if count < 0:
        raise ValueError(f"arrival count must be >= 0, got {count}")
    if seed is None:
        return tuple(i / rate for i in range(count))
    rng = random.Random(f"repro-loadgen-{seed}")
    t = 0.0
    out = []
    for _ in range(count):
        t += rng.expovariate(rate)
        out.append(t)
    return tuple(out)


def percentile(samples, p):
    """Nearest-rank percentile: the ``ceil(p/100 * n)``-th smallest
    sample (1-indexed).  ``p=0`` is the minimum, ``p=100`` the
    maximum."""
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(samples)
    rank = max(1, math.ceil(p / 100 * len(ordered)))
    return ordered[rank - 1]


_PCTS = (50, 95, 99)


@dataclass
class KindStats:
    """Latency/throughput/error accounting for one query kind."""

    kind: str
    latencies: list = field(default_factory=list)
    errors: dict = field(default_factory=dict)
    #: successful round-trips that were replayed over a fresh
    #: connection after a transport drop (``QueryResult.retried``)
    retried: int = 0

    @property
    def count(self):
        return len(self.latencies) + sum(self.errors.values())

    def row(self, seconds):
        """JSON-safe metrics row (latencies in seconds; throughput
        counts successes only)."""
        row = {"count": self.count,
               "ok": len(self.latencies),
               "errors": dict(sorted(self.errors.items())),
               "retried": self.retried,
               "throughput_qps": (len(self.latencies) / seconds
                                  if seconds > 0 else 0.0)}
        if self.latencies:
            for p in _PCTS:
                row[f"p{p}_s"] = percentile(self.latencies, p)
            row["mean_s"] = sum(self.latencies) / len(self.latencies)
        return row


@dataclass
class LoadReport:
    """The outcome of one :func:`run_load` run."""

    seconds: float
    connections: int
    rate: float
    by_kind: dict = field(default_factory=dict)

    @property
    def total(self):
        merged = KindStats("total")
        for stats in self.by_kind.values():
            merged.latencies.extend(stats.latencies)
            merged.retried += stats.retried
            for name, n in stats.errors.items():
                merged.errors[name] = merged.errors.get(name, 0) + n
        return merged

    @property
    def error_count(self):
        return sum(self.total.errors.values())

    def p99(self):
        lat = self.total.latencies
        return percentile(lat, 99) if lat else math.inf

    def rows(self):
        """The ``rows`` mapping for ``benchmarks/_json_out.py`` — one
        metrics row per query kind plus the merged total."""
        rows = {kind: stats.row(self.seconds)
                for kind, stats in sorted(self.by_kind.items())}
        rows["total"] = self.total.row(self.seconds)
        rows["total"].update({"connections": self.connections,
                              "offered_rate_qps": self.rate,
                              "seconds": self.seconds})
        return rows


def _kind_of(query):
    from repro.server.wire import _KIND_OF_QUERY

    return _KIND_OF_QUERY.get(type(query), type(query).__name__)


def run_load(queries, make_target, rate=200.0, connections=4,
             seed=None, on_result=None):
    """Drive ``queries`` open-loop at ``rate`` arrivals/second across
    ``connections`` independent targets; returns a :class:`LoadReport`.

    ``make_target(i)`` builds connection ``i``'s target — an object
    with ``query(q)`` (and optionally ``close()``), e.g. a fresh
    :class:`~repro.server.client.ServiceClient` per connection so each
    thread owns a socket.  Arrivals come from
    :func:`arrival_schedule(rate, len(queries), seed)` and are dealt
    round-robin to connections; each connection sleeps to its next
    scheduled instant and fires regardless of outstanding answers.
    Exceptions are counted per type under the query's kind; with
    ``on_result`` set, each successful envelope is also passed to it
    (called from connection threads).
    """
    queries = list(queries)
    schedule = arrival_schedule(rate, len(queries), seed=seed)
    by_kind = {}
    lock = threading.Lock()

    def stats_for(kind):
        with lock:
            if kind not in by_kind:
                by_kind[kind] = KindStats(kind)
            return by_kind[kind]

    def connection(idx):
        target = make_target(idx)
        try:
            for j in range(idx, len(queries), connections):
                query, at = queries[j], schedule[j]
                delay = start + at - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                arrived = start + at
                kind = _kind_of(query)
                stats = stats_for(kind)
                try:
                    envelope = target.query(query)
                except Exception as exc:
                    name = type(exc).__name__
                    with lock:
                        stats.errors[name] = \
                            stats.errors.get(name, 0) + 1
                    if obs.enabled():
                        obs.inc(f"loadgen.errors.{kind}")
                else:
                    latency = time.perf_counter() - arrived
                    retried = bool(getattr(envelope, "retried", False))
                    with lock:
                        stats.latencies.append(latency)
                        if retried:
                            stats.retried += 1
                    if obs.enabled():
                        obs.observe(f"loadgen.latency_seconds.{kind}",
                                    latency)
                        if retried:
                            obs.inc(f"loadgen.retried.{kind}")
                    if on_result is not None:
                        on_result(envelope)
        finally:
            close = getattr(target, "close", None)
            if close is not None:
                close()

    threads = [threading.Thread(target=connection, args=(i,),
                                name=f"repro-loadgen-{i}", daemon=True)
               for i in range(max(1, connections))]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seconds = time.perf_counter() - start
    return LoadReport(seconds=seconds,
                      connections=max(1, connections),
                      rate=rate, by_kind=by_kind)


__all__ = [
    "arrival_schedule",
    "percentile",
    "KindStats",
    "LoadReport",
    "run_load",
]
