"""Dynamic-scenario workload engine (DESIGN.md §12).

Three layers, strictly stacked:

* :mod:`repro.workload.scenario` — deterministic, seedable schedules of
  timestamped events (weight mutations, repricings, registrations,
  query bursts), with generators for the three ROADMAP scenarios:
  evacuation waves, cascading outages, flood-stage capacities;
* :mod:`repro.workload.replay` — replay a scenario against an
  in-process catalog, a warm worker pool, or the full socket stack,
  and prove every response and audit checkpoint bit-identical to a
  single-threaded reference replay;
* :mod:`repro.workload.loadgen` — open-loop (fixed-arrival-rate)
  multi-connection load generation with p50/p95/p99/throughput/error
  reporting per query type.

``benchmarks/bench_workload.py`` combines all three into the standing
acceptance gate for serving-path performance work.
"""

from repro.workload.loadgen import (
    LoadReport,
    arrival_schedule,
    percentile,
    run_load,
)
from repro.workload.replay import (
    CatalogExecutor,
    ClientExecutor,
    PoolExecutor,
    ReplayLog,
    assert_replay_parity,
    reference_replay,
    replay_scenario,
)
from repro.workload.scenario import (
    GraphSpec,
    MutateWeights,
    QueryBurst,
    Register,
    Scenario,
    SetWeights,
    evacuation_scenario,
    flood_scenario,
    make_scenario,
    outage_scenario,
    random_scenario,
)

__all__ = [
    "GraphSpec",
    "Register",
    "MutateWeights",
    "SetWeights",
    "QueryBurst",
    "Scenario",
    "evacuation_scenario",
    "outage_scenario",
    "flood_scenario",
    "random_scenario",
    "make_scenario",
    "ReplayLog",
    "CatalogExecutor",
    "PoolExecutor",
    "ClientExecutor",
    "replay_scenario",
    "reference_replay",
    "assert_replay_parity",
    "arrival_schedule",
    "percentile",
    "run_load",
    "LoadReport",
]
