"""Serving-layer demo: ``python -m repro.service``.

Registers a weighted grid in a :class:`~repro.service.catalog.
GraphCatalog`, runs a mixed query batch (st-flows, st-cuts, girth, dual
distances) cold, replays it warm, and prints a throughput table — the
zero-to-aha tour of what the catalog's artifact and result caches buy.

    PYTHONPATH=src python -m repro.service [--rows 12 --cols 16 ...]
"""

from __future__ import annotations

import argparse
import random

from repro.planar.generators import grid, randomize_weights
from repro.service import (
    CutQuery,
    DistanceQuery,
    FlowQuery,
    GirthQuery,
    GraphCatalog,
    run_batch,
)


def build_queries(g, name, pairs, seed):
    """A deterministic mixed batch over ``pairs`` random st-pairs."""
    rng = random.Random(seed)
    queries = []
    nf = g.num_faces()
    for _ in range(pairs):
        s = rng.randrange(g.n)
        t = rng.randrange(g.n)
        while t == s:
            t = rng.randrange(g.n)
        queries.append(FlowQuery(name, s, t))
        queries.append(DistanceQuery(name, rng.randrange(nf),
                                     rng.randrange(nf)))
    for _ in range(max(1, pairs // 4)):
        s = rng.randrange(g.n)
        t = rng.randrange(g.n)
        while t == s:
            t = rng.randrange(g.n)
        queries.append(CutQuery(name, s, t))
    queries.append(GirthQuery(name))
    return queries


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="repro.service demo: mixed query batch, cold vs "
                    "warm, through one GraphCatalog")
    ap.add_argument("--rows", type=int, default=12)
    ap.add_argument("--cols", type=int, default=16)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--pairs", type=int, default=10,
                    help="random st-pairs per query kind")
    ap.add_argument("--repeat", type=int, default=4,
                    help="times the batch is replayed warm")
    args = ap.parse_args(argv)

    g = randomize_weights(grid(args.rows, args.cols), seed=args.seed,
                          directed_capacities=True)
    name = f"grid-{args.rows}x{args.cols}"
    catalog = GraphCatalog()
    catalog.register(name, g)
    print(f"registered {name!r}: n={g.n} m={g.m} faces={g.num_faces()}")

    queries = build_queries(g, name, args.pairs, args.seed)
    print(f"mixed batch: {len(queries)} queries "
          f"({args.repeat}x warm replay)\n")

    cold = run_batch(catalog, queries)
    warm = run_batch(catalog, queries * args.repeat)

    kinds = cold.by_kind()
    warm_kinds = warm.by_kind()
    print(f"{'query':<16}{'count':>6}{'cold qps':>12}{'warm qps':>12}"
          f"{'speedup':>10}")
    for kind, row in kinds.items():
        w = warm_kinds[kind]
        print(f"{kind:<16}{row['count']:>6}{row['qps']:>12.1f}"
              f"{w['qps']:>12.1f}{w['qps'] / row['qps']:>9.1f}x")
    print(f"\ncold batch: {cold.seconds:.3f}s "
          f"({cold.warm_hits} warm / {cold.cold_misses} cold)")
    print(f"warm batch: {warm.seconds:.3f}s "
          f"({warm.warm_hits} warm / {warm.cold_misses} cold)")

    stats = catalog.stats()
    a, r = stats["artifacts"], stats["results"]
    print(f"\nartifact cache: {a['size']} entries, {a['hits']} hits / "
          f"{a['misses']} misses")
    print(f"result cache  : {r['size']} entries, {r['hits']} hits / "
          f"{r['misses']} misses")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
