"""repro.service — the query-serving layer (DESIGN.md §8).

Everything below this package treats a call as a cold start; everything
above a production workload is *queries against graphs that were
registered once*.  This layer closes the gap:

* :class:`~repro.service.catalog.GraphCatalog` — named graphs plus
  owned, LRU-bounded :class:`~repro._artifacts.ArtifactCache`\\ s of the
  expensive derived objects (compiled CSR topology, flow solvers with
  their reusable workspaces, BDDs, Theorem 2.1 labelings, workspace
  pools) and of memoized query results, keyed by weight/capacity
  fingerprints so in-place mutation can never serve stale answers;
* :mod:`~repro.service.queries` — typed requests (:class:`FlowQuery`,
  :class:`CutQuery`, :class:`GirthQuery`, :class:`DistanceQuery`), one
  :class:`QueryPlanner` resolving each to the legacy or engine backend,
  and :func:`execute_query`;
* :mod:`~repro.service.batch` — :func:`run_batch` for many queries over
  one hot catalog, :func:`run_sharded` for multi-graph fan-out over
  worker processes.

Results are bit-identical to the per-call entry points of
:mod:`repro.core` and :mod:`repro.labeling` on both backends
(``tests/test_service.py``); ``benchmarks/bench_service.py`` measures
the warm-over-cold throughput the amortization buys.  ``python -m
repro.service`` runs a self-contained demo.
"""

from repro._artifacts import ArtifactCache, Fingerprint, graph_fingerprint
from repro.service.batch import BatchReport, run_batch, run_sharded
from repro.service.catalog import (
    CatalogEntry,
    CatalogSnapshot,
    GraphCatalog,
    WorkspacePool,
    default_dual_lengths,
)
from repro.service.queries import (
    CutQuery,
    DistanceQuery,
    FlowQuery,
    GirthQuery,
    QueryPlanner,
    QueryResult,
    execute_query,
)

__all__ = [
    "ArtifactCache",
    "Fingerprint",
    "graph_fingerprint",
    "GraphCatalog",
    "CatalogEntry",
    "CatalogSnapshot",
    "WorkspacePool",
    "default_dual_lengths",
    "FlowQuery",
    "CutQuery",
    "GirthQuery",
    "DistanceQuery",
    "QueryPlanner",
    "QueryResult",
    "execute_query",
    "BatchReport",
    "run_batch",
    "run_sharded",
]
