"""Typed queries, the backend planner, and single-query execution
(DESIGN.md §8).

A query is a frozen (hashable) dataclass naming a registered graph plus
the parameters of one theorem entry point:

* :class:`FlowQuery`   → :func:`repro.core.max_st_flow` (Theorem 1.2)
* :class:`CutQuery`    → :func:`repro.core.min_st_cut` (Theorem 6.1)
* :class:`GirthQuery`  → :func:`repro.core.weighted_girth` (Theorem 1.7)
* :class:`DistanceQuery` → dual distance decoded straight from the
  cached :class:`~repro.labeling.DualDistanceLabeling` (Lemma 2.2)

Execution goes through one :class:`QueryPlanner` that resolves each
query to a backend (``legacy`` — the round-audited reference, or
``engine`` — the compiled-array fast path; for a distance query the
backend selects how the cold Theorem 2.1 labeling build runs — the
warm path always decodes from the cached labels), then
:func:`execute_query` dispatches with every level of amortization the
catalog offers:

1. **result memoization** — the resolved ``(query, backend)`` pair plus
   the graph's current weight/capacity fingerprint keys a result cache,
   so a repeated query is a dictionary lookup;
2. **artifact reuse** — a cold result still reuses the cached solver /
   labeling / compiled topology of every previous query on that graph.

Results are *bit-identical* to the corresponding per-call entry point
on both backends (``tests/test_service.py``): the dispatch constructs
exactly the objects the one-shot functions construct, just cached.

**Ownership**: memoization means a warm hit returns the *same* result
object every caller of that query sees (that sharing is the speedup).
Treat served results as immutable; a caller that wants to edit e.g. a
flow assignment dict must copy it first — unlike the per-call entry
points, which build a fresh object per call.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import obs
from repro.errors import ServiceError

#: backends a query may request; ``auto`` defers to the planner
QUERY_BACKENDS = ("auto", "legacy", "engine")

_MISS = object()


@dataclass(frozen=True)
class FlowQuery:
    """Exact max st-flow (Theorem 1.2) against a registered graph."""

    graph: str
    s: int
    t: int
    directed: bool = True
    backend: str = "auto"
    validate: bool = True
    #: legacy-backend BDD knob (ignored by the engine)
    leaf_size: int | None = None


@dataclass(frozen=True)
class CutQuery:
    """Exact min st-cut (Theorem 6.1) against a registered graph."""

    graph: str
    s: int
    t: int
    directed: bool = True
    backend: str = "auto"
    leaf_size: int | None = None


@dataclass(frozen=True)
class GirthQuery:
    """Exact weighted girth (Theorem 1.7) of a registered graph."""

    graph: str
    backend: str = "auto"
    #: tree-packing knob of the legacy Theorem 4.16 substitute
    num_trees: int | None = None


@dataclass(frozen=True)
class DistanceQuery:
    """dist_{G*}(f → g) under :func:`~repro.service.catalog.
    default_dual_lengths`, decoded from the cached labels (Lemma 2.2).

    The warm path is always the label decode — that is what the
    labeling scheme exists for.  ``backend`` selects how the *cold*
    Theorem 2.1 construction runs on a miss (and after a
    ``set_weights`` reprice): the compiled-array builder of
    :mod:`repro.engine.labels` or the round-audited legacy recursion,
    resolved by the planner exactly like every other query type.
    """

    graph: str
    f: int
    g: int
    backend: str = "auto"
    leaf_size: int | None = None


@dataclass
class QueryResult:
    """Envelope for one served query."""

    query: object
    #: resolved backend ("legacy" / "engine"; for a DistanceQuery this
    #: is the backend the cold labeling build runs on)
    backend: str
    #: the underlying result object (MaxFlowResult, MinCutResult,
    #: GirthResult or None, or a plain distance number).  Shared with
    #: every other caller of the same query via the result cache —
    #: treat as immutable, copy before editing
    result: object
    #: True when the result came from the catalog's result cache
    warm: bool
    seconds: float = field(repr=False, default=0.0)
    #: the exception this query raised server-side, or None on
    #: success (only populated by error-returning batch surfaces, e.g.
    #: ``ServiceClient.run(on_error="return")``).  Each envelope owns
    #: a *fresh* exception instance — raising it, attaching context to
    #: it, or retrying the query never affects another envelope that
    #: answered the same query
    error: object = None
    #: True when the round-trip that served this envelope was replayed
    #: over a fresh connection after a transport drop (set client-side
    #: by :class:`~repro.server.client.ServiceClient`; always False for
    #: in-process serving).  Lets latency consumers — e.g. the load
    #: generator's percentile tables — distinguish queue wait from
    #: transport recovery
    retried: bool = False


class QueryPlanner:
    """Resolves each query to an execution backend.

    ``auto`` routes queries to the engine once the graph has at least
    ``engine_min_n`` vertices (default 0: always engine — it is
    output-identical, and the legacy backend exists for round audits,
    which a serving path does not produce).  The engine wins by growing
    factors as instances grow; on very small graphs its setup overhead
    can lose to legacy (e.g. the labeling build at n ≲ 100, see
    EXPERIMENTS.md E12), which is exactly what ``engine_min_n`` is for.
    The rule is uniform across *every* query type — flow, cut, girth,
    and the cold labeling build behind a :class:`DistanceQuery` — and
    an explicit ``backend=`` on the query always wins, so callers can
    pin the reference path per query.
    """

    def __init__(self, default_backend="engine", engine_min_n=0):
        if default_backend not in ("legacy", "engine"):
            raise ServiceError(f"unknown default backend "
                               f"{default_backend!r}")
        self.default_backend = default_backend
        self.engine_min_n = engine_min_n

    def plan(self, query, graph):
        """The backend ``query`` runs on against ``graph``."""
        backend = query.backend
        if backend not in QUERY_BACKENDS:
            raise ServiceError(f"unknown backend {backend!r}; expected "
                               f"one of {QUERY_BACKENDS}")
        if backend != "auto":
            return backend
        if self.default_backend == "engine" \
                and graph.n >= self.engine_min_n:
            return "engine"
        return "legacy"


def execute_query(catalog, query, planner=None):
    """Serve one typed query from a :class:`~repro.service.catalog.
    GraphCatalog`; returns a :class:`QueryResult`.

    The result cache key embeds the resolved backend and the graph's
    current weight/capacity hashes, so repeats are warm hits and
    in-place weight mutation is never served stale.

    With :mod:`repro.obs` enabled, each call runs inside a
    ``query.execute`` span — the per-query root when no trace context
    is active (this is where a trace id is minted), a child span when
    one arrived over the wire or a pool command queue — and feeds the
    ``service.result.hit``/``miss`` counters, a per-kind latency
    histogram, and the rolling ``health.query_seconds.<kind>`` /
    ``health.error_seconds.<kind>`` windows that
    :mod:`repro.obs.health` evaluates SLOs against.
    """
    if not obs.enabled():
        entry = catalog.get(query.graph)
        if planner is None:
            planner = catalog.planner
        backend = planner.plan(query, entry.graph)
        return _serve(catalog, entry, query, backend)
    kind = type(query).__name__
    with obs.span("query.execute", kind=kind,
                  graph=query.graph) as sp:
        t0 = time.perf_counter()
        try:
            entry = catalog.get(query.graph)
            if planner is None:
                planner = catalog.planner
            backend = planner.plan(query, entry.graph)
            sp.tag(backend=backend)
            r = _serve(catalog, entry, query, backend)
        except Exception:
            obs.inc(f"health.errors.{kind}")
            obs.observe_windowed(f"health.error_seconds.{kind}",
                                 time.perf_counter() - t0)
            raise
        sp.tag(warm=r.warm)
        obs.inc("service.result.hit" if r.warm
                else "service.result.miss")
        obs.observe(f"service.query_seconds.{kind}", r.seconds)
        obs.observe_windowed(f"health.query_seconds.{kind}", r.seconds)
        return r


def _serve(catalog, entry, query, backend):
    """The uninstrumented serving core (cache probe + dispatch)."""
    fp = entry.fingerprint()

    t0 = time.perf_counter()
    key = ("result", query.graph, query, backend, fp.weights,
           fp.capacities)
    cached = catalog.results.get(key, _MISS)
    if cached is not _MISS:
        return QueryResult(query=query, backend=backend, result=cached,
                           warm=True, seconds=time.perf_counter() - t0)

    result = _dispatch(entry, query, backend)
    catalog.results.put(key, result)
    return QueryResult(query=query, backend=backend, result=result,
                       warm=False, seconds=time.perf_counter() - t0)


def _dispatch(entry, query, backend):
    """Run the underlying entry point with the catalog's artifacts."""
    if isinstance(query, FlowQuery):
        solver = entry.flow_solver(directed=query.directed,
                                   backend=backend,
                                   leaf_size=query.leaf_size)
        return solver.solve(query.s, query.t, validate=query.validate)

    if isinstance(query, CutQuery):
        from repro.core import min_st_cut

        solver = entry.flow_solver(directed=query.directed,
                                   backend=backend,
                                   leaf_size=query.leaf_size)
        return min_st_cut(entry.graph, query.s, query.t,
                          directed=query.directed, backend=backend,
                          solver=solver)

    if isinstance(query, GirthQuery):
        from repro.core import weighted_girth

        # the engine's cycle oracle is shared-cached per weight
        # fingerprint (repro._artifacts), so repeats are warm there too
        return weighted_girth(entry.graph, num_trees=query.num_trees,
                              backend=backend)

    if isinstance(query, DistanceQuery):
        labeling = entry.labeling(leaf_size=query.leaf_size,
                                  backend=backend)
        return labeling.distance(query.f, query.g)

    raise ServiceError(f"unknown query type {type(query).__name__}")
