"""Graph catalog: named graphs plus the artifacts that make queries
cheap (DESIGN.md §8).

The paper's central data structure — the Õ(D)-bit dual distance
labeling of Theorem 2.1 — is *built once and then answers queries*; the
same shape holds for every other expensive object in the stack (the
compiled CSR topology, the BDD and its dual bags, loaded flow solvers,
Dijkstra workspaces).  A :class:`GraphCatalog` makes that amortization
explicit: register a graph under a name, and every query served against
that name reuses the artifacts of all previous queries.

Ownership and invalidation:

* each catalog owns a private keyed :class:`~repro._artifacts.
  ArtifactCache` (``catalog.artifacts``) for named-graph artifacts and
  a second one (``catalog.results``) for memoized query results, both
  with LRU bounds;
* every *weight- or capacity-dependent* artifact key embeds the hash
  components of the graph's current :func:`~repro._artifacts.
  graph_fingerprint`, so mutating weights in place can never serve a
  stale artifact — the old key simply stops matching.  Explicit
  :meth:`GraphCatalog.invalidate` additionally frees the dead entries
  instead of waiting for LRU eviction;
* topology-only artifacts (compiled CSR) stay in the engine's
  process-wide shared cache — the catalog does not duplicate them.
"""

from __future__ import annotations

import pickle

from repro._artifacts import (
    ArtifactCache,
    Fingerprint,
    graph_fingerprint,
    shared_cache,
    topo_token,
)
from repro.errors import ServiceError


def default_dual_lengths(graph):
    """The dual arc lengths a :class:`~repro.service.queries.
    DistanceQuery` is answered under: the primal edge weight on plus
    darts and 0 on reverse darts — the directed capacity convention of
    Sections 6–7, matching ``DualGraph.arcs(lengths=None)``."""
    lengths = {}
    for eid in range(graph.m):
        lengths[2 * eid] = graph.weights[eid]
        lengths[2 * eid + 1] = 0
    return lengths


class WorkspacePool:
    """A free-list of reusable workspaces for one compiled graph.

    Sequential callers lease the same instance over and over (zero
    allocation in steady state); concurrent callers each get their own,
    returned to the pool on release.  Use :meth:`lease` as a context
    manager, or :meth:`acquire` / :meth:`release` directly.
    """

    def __init__(self, factory):
        self._factory = factory
        self._free = []
        #: total workspaces ever constructed (observability)
        self.created = 0

    def acquire(self):
        if self._free:
            return self._free.pop()
        self.created += 1
        return self._factory()

    def release(self, workspace):
        self._free.append(workspace)

    def lease(self):
        return _Lease(self)

    def __len__(self):
        """Workspaces currently idle in the pool."""
        return len(self._free)


class _Lease:
    def __init__(self, pool):
        self._pool = pool
        self._ws = None

    def __enter__(self):
        self._ws = self._pool.acquire()
        return self._ws

    def __exit__(self, *exc):
        self._pool.release(self._ws)
        self._ws = None
        return False


class CatalogEntry:
    """One registered graph and accessors for its cached artifacts.

    Accessors build on first use and hit ``catalog.artifacts``
    afterwards; keys embed the entry name plus whichever fingerprint
    components the artifact depends on (see the module docstring).
    """

    def __init__(self, catalog, name, graph):
        self.catalog = catalog
        self.name = name
        self.graph = graph
        #: fingerprint at registration/invalidation time (observability
        #: only — cache keys always use the *current* fingerprint)
        self.registered_fingerprint = graph_fingerprint(graph)

    def fingerprint(self) -> Fingerprint:
        """The graph's current fingerprint (re-hashes weights, O(m))."""
        return graph_fingerprint(self.graph)

    # ------------------------------------------------------------------
    # artifacts
    # ------------------------------------------------------------------
    def compiled(self):
        """The compiled CSR topology (engine shared cache; topology
        only, so it survives weight mutation)."""
        from repro.engine import compile_graph

        return compile_graph(self.graph)

    def flow_solver(self, directed=True, backend="engine",
                    leaf_size=None):
        """A reusable :class:`~repro.core.maxflow.PlanarMaxFlow` bound
        to the current capacities.

        The engine solver owns the reusable
        :class:`~repro.engine.workspace.FlowWorkspace`; the legacy
        solver owns the BDD and dual bags.  Either way, this is the
        artifact that turns thousands of ``(s, t)`` probes into
        amortized work.
        """
        fp = self.fingerprint()
        key = ("flow-solver", self.name, fp.capacities, directed,
               backend, leaf_size)

        def build():
            from repro.core import PlanarMaxFlow

            return PlanarMaxFlow(self.graph, directed=directed,
                                 leaf_size=leaf_size, backend=backend)

        return self.catalog.artifacts.get_or_build(key, build)

    def bdd(self, leaf_size=None):
        """The bounded-diameter decomposition (topology only)."""
        key = ("bdd", self.name, leaf_size)

        def build():
            from repro.bdd import build_bdd

            return build_bdd(self.graph, leaf_size=leaf_size)

        return self.catalog.artifacts.get_or_build(key, build)

    def labeling(self, leaf_size=None, backend="engine"):
        """The dual distance labeling under :func:`default_dual_lengths`
        (Theorem 2.1) — build once, then every
        :class:`~repro.service.queries.DistanceQuery` decodes from the
        cached labels in label-size time (Lemma 2.2).

        ``backend`` selects the construction path (the labels are
        bit-identical either way): ``"engine"`` (default) builds on the
        compiled bag arrays of :mod:`repro.engine.labels`, which live
        in the engine's *shared* cache keyed by topology token — so a
        :meth:`GraphCatalog.set_weights` reprice drops this labeling
        artifact but reuses the bag compilation for the rebuild.
        """
        fp = self.fingerprint()
        key = ("labeling", self.name, fp.weights, leaf_size, backend)

        def build():
            from repro.bdd import build_all_dual_bags
            from repro.labeling import DualDistanceLabeling

            bdd = self.bdd(leaf_size=leaf_size)
            duals_key = ("dual-bags", self.name, leaf_size)
            duals = self.catalog.artifacts.get_or_build(
                duals_key, lambda: build_all_dual_bags(bdd))
            return DualDistanceLabeling(bdd,
                                        default_dual_lengths(self.graph),
                                        duals=duals, backend=backend)

        return self.catalog.artifacts.get_or_build(key, build)

    def flow_workspace_pool(self):
        """Pool of :class:`~repro.engine.workspace.FlowWorkspace` over
        the compiled dual (for kernel-level callers running their own
        length schedules)."""
        key = ("flow-pool", self.name)

        def build():
            from repro.engine import FlowWorkspace

            compiled = self.compiled()
            return WorkspacePool(lambda: FlowWorkspace(compiled))

        return self.catalog.artifacts.get_or_build(key, build)

    def dijkstra_workspace_pool(self, num_ids=None):
        """Pool of :class:`~repro.engine.dijkstra.DijkstraWorkspace`
        over an id universe (default: the primal vertices)."""
        n = self.graph.n if num_ids is None else num_ids
        key = ("dijkstra-pool", self.name, n)

        def build():
            from repro.engine import DijkstraWorkspace

            return WorkspacePool(lambda: DijkstraWorkspace(n))

        return self.catalog.artifacts.get_or_build(key, build)


class GraphCatalog:
    """Named graphs + owned artifact/result caches + query dispatch.

    The serving facade: ``register`` a graph, then ``serve`` typed
    queries (:mod:`repro.service.queries`) or hand batches to
    :func:`repro.service.batch.run_batch`.  ``max_artifacts`` bounds
    heavyweight derived objects (solvers, labelings, BDDs);
    ``max_results`` bounds the memoized query results.
    """

    def __init__(self, max_artifacts=64, max_results=4096, planner=None):
        self._entries = {}
        self.artifacts = ArtifactCache(maxsize=max_artifacts)
        self.results = ArtifactCache(maxsize=max_results)
        if planner is None:
            from repro.service.queries import QueryPlanner

            planner = QueryPlanner()
        self.planner = planner

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, name, graph, overwrite=False):
        """Register ``graph`` under ``name``; returns the entry.

        Re-registering an existing name requires ``overwrite=True`` and
        drops the old name's artifacts and results.
        """
        if name in self._entries:
            if not overwrite:
                raise ServiceError(f"graph {name!r} is already "
                                   f"registered (overwrite=True to "
                                   f"replace)")
            self.invalidate(name)
        entry = CatalogEntry(self, name, graph)
        self._entries[name] = entry
        return entry

    def get(self, name):
        entry = self._entries.get(name)
        if entry is None:
            raise ServiceError(f"unknown graph {name!r}; registered: "
                               f"{sorted(self._entries)}")
        return entry

    def __contains__(self, name):
        return name in self._entries

    def names(self):
        return sorted(self._entries)

    def unregister(self, name):
        """Forget ``name`` and free everything cached for it —
        including the graph's entries in the engine's process-wide
        shared cache (compiled CSR, cycle oracles), which would
        otherwise keep the graph alive until LRU eviction."""
        entry = self.get(name)
        self.invalidate(name)
        topo = topo_token(entry.graph)
        shared_cache().invalidate(lambda k: len(k) > 1 and k[1] == topo)
        del self._entries[name]

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate(self, name):
        """Explicitly drop every artifact and memoized result of
        ``name``.

        Fingerprint-keyed lookups are already stale-proof (mutated
        weights miss); this frees the dead entries immediately and
        refreshes the entry's recorded fingerprint.  Returns the number
        of cache entries removed.
        """
        entry = self._entries.get(name)
        removed = self.artifacts.invalidate(
            lambda k: len(k) > 1 and k[1] == name)
        removed += self.results.invalidate(
            lambda k: len(k) > 1 and k[1] == name)
        if entry is not None:
            entry.registered_fingerprint = graph_fingerprint(entry.graph)
        return removed

    def set_weights(self, name, weights=None, capacities=None):
        """Mutate a registered graph's weights/capacities in place and
        invalidate its dead artifacts in one step — the supported way to
        reprice a served graph."""
        g = self.get(name).graph
        weights = None if weights is None else list(weights)
        capacities = None if capacities is None else list(capacities)
        for label, values in (("weights", weights),
                              ("capacities", capacities)):
            if values is not None and len(values) != g.m:
                raise ServiceError(
                    f"{label} for {name!r} must have one entry per "
                    f"edge (got {len(values)}, graph has m={g.m})")
        if weights is not None:
            g.weights[:] = weights
        if capacities is not None:
            g.capacities[:] = capacities
        return self.invalidate(name)

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def serve(self, query, planner=None):
        """Execute one typed query; returns a
        :class:`~repro.service.queries.QueryResult`."""
        from repro.service.queries import execute_query

        return execute_query(self, query, planner=planner)

    def serve_batch(self, queries, planner=None):
        """Execute a query batch; returns a
        :class:`~repro.service.batch.BatchReport`."""
        from repro.service.batch import run_batch

        return run_batch(self, queries, planner=planner)

    def stats(self):
        """Cache observability: artifact/result cache counters plus the
        engine's shared cache."""
        return {"artifacts": self.artifacts.stats(),
                "results": self.results.stats(),
                "shared": shared_cache().stats(),
                "graphs": self.names()}

    # ------------------------------------------------------------------
    # warm-state handoff
    # ------------------------------------------------------------------
    def snapshot(self, include_results=True):
        """Capture the catalog's warm state as a picklable
        :class:`CatalogSnapshot` — the pre-fork handoff of the
        :class:`~repro.server.pool.WarmWorkerPool` (DESIGN.md §10).

        Captured: the registered graphs, the planner, every picklable
        artifact and (optionally) memoized result, and the graphs'
        entries in the engine's process-wide shared cache (compiled CSR,
        compiled labeling bags, cycle oracles).  *Not* captured —
        recorded under ``snapshot.skipped`` instead:

        * workspace pools (their factories are process-local closures
          and their buffers are cheap) — a restored catalog rebuilds
          them on first use, which is exactly the per-worker-buffers
          contract of :mod:`repro.engine`;
        * any artifact that fails a pickle probe.

        The snapshot holds *live references*; pickling it (what a
        ``spawn`` worker handoff does) copies everything in one payload,
        so object sharing survives — e.g. a cached solver's graph stays
        the very object registered under its name.
        """
        graphs = {name: e.graph for name, e in self._entries.items()}
        tokens = {name: topo_token(g) for name, g in graphs.items()}
        known_topos = set(tokens.values())
        skipped = []

        def capture(cache):
            kept = []
            for key, value in cache.items():
                if isinstance(value, WorkspacePool) or not _picklable(value):
                    skipped.append(key)
                else:
                    kept.append((key, value))
            return kept

        shared = []
        for key, value in shared_cache().items():
            if len(key) < 2 or key[1] not in known_topos:
                continue
            if _picklable(value):
                shared.append((key, value))
            else:
                skipped.append(key)

        return CatalogSnapshot(
            graphs=graphs,
            tokens=tokens,
            planner=self.planner if _picklable(self.planner) else None,
            artifacts=capture(self.artifacts),
            results=capture(self.results) if include_results else [],
            shared=shared,
            skipped=skipped,
            max_artifacts=self.artifacts.maxsize,
            max_results=self.results.maxsize,
        )


def _picklable(value):
    try:
        pickle.dumps(value)
        return True
    except Exception:
        return False


class CatalogSnapshot:
    """Picklable warm-state capture of a :class:`GraphCatalog` (see
    :meth:`GraphCatalog.snapshot`).

    :meth:`restore` rebuilds a working catalog around whatever the
    snapshot holds.  Restoring the *same* (unpickled) snapshot object in
    the process that made it shares the live graph objects with the
    source catalog — fine for read-only use; pickle the snapshot first
    (or hand it to another process, which does the same) when the two
    catalogs must not see each other's weight mutations.
    """

    def __init__(self, graphs, tokens, planner, artifacts, results,
                 shared, skipped, max_artifacts, max_results):
        self.graphs = graphs
        #: name -> topology token at snapshot time (process-local ids;
        #: :meth:`restore` re-keys shared entries to the tokens the
        #: receiving process assigns)
        self.tokens = tokens
        self.planner = planner
        self.artifacts = artifacts
        self.results = results
        self.shared = shared
        #: keys present in the source caches but not captured
        #: (workspace pools by design, plus pickle-probe failures)
        self.skipped = skipped
        self.max_artifacts = max_artifacts
        self.max_results = max_results

    def restore(self):
        """A new :class:`GraphCatalog` warmed with the captured state.

        Shared-cache entries are re-inserted under the topology tokens
        *this* process assigns to the snapshot's graphs (tokens never
        survive a pickle, by design — see ``PlanarGraph.__getstate__``),
        so the restored compiled CSR / labeling bags / cycle oracles are
        found by every engine code path exactly as if they had been
        built here.
        """
        catalog = GraphCatalog(max_artifacts=self.max_artifacts,
                               max_results=self.max_results,
                               planner=self.planner)
        for name, graph in self.graphs.items():
            catalog.register(name, graph)
        remap = {old: topo_token(self.graphs[name])
                 for name, old in self.tokens.items()}
        cache = shared_cache()
        for key, value in self.shared:
            cache.put((key[0], remap[key[1]]) + tuple(key[2:]), value)
        for key, value in self.artifacts:
            catalog.artifacts.put(key, value)
        for key, value in self.results:
            catalog.results.put(key, value)
        return catalog
