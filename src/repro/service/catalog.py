"""Graph catalog: named graphs plus the artifacts that make queries
cheap (DESIGN.md §8).

The paper's central data structure — the Õ(D)-bit dual distance
labeling of Theorem 2.1 — is *built once and then answers queries*; the
same shape holds for every other expensive object in the stack (the
compiled CSR topology, the BDD and its dual bags, loaded flow solvers,
Dijkstra workspaces).  A :class:`GraphCatalog` makes that amortization
explicit: register a graph under a name, and every query served against
that name reuses the artifacts of all previous queries.

Ownership and invalidation:

* each catalog owns a private keyed :class:`~repro._artifacts.
  ArtifactCache` (``catalog.artifacts``) for named-graph artifacts and
  a second one (``catalog.results``) for memoized query results, both
  with LRU bounds;
* every *weight- or capacity-dependent* artifact key embeds the hash
  components of the graph's current :func:`~repro._artifacts.
  graph_fingerprint`, so mutating weights in place can never serve a
  stale artifact — the old key simply stops matching.  Explicit
  :meth:`GraphCatalog.invalidate` additionally frees the dead entries
  instead of waiting for LRU eviction;
* topology-only artifacts (compiled CSR, and — since the engine BDD
  backend — the decomposition and its dual bags, keyed by topology
  token) stay in the engine's process-wide shared cache: the catalog
  does not duplicate them, weight repricing leaves them warm, and
  snapshots ship them to pool workers.
"""

from __future__ import annotations

import math
import pickle

from repro import obs
from repro._artifacts import (
    ArtifactCache,
    Fingerprint,
    graph_fingerprint,
    shared_cache,
    topo_token,
)
from repro.errors import AuditError, NegativeCycleError, ServiceError


def default_dual_lengths(graph):
    """The dual arc lengths a :class:`~repro.service.queries.
    DistanceQuery` is answered under: the primal edge weight on plus
    darts and 0 on reverse darts — the directed capacity convention of
    Sections 6–7, matching ``DualGraph.arcs(lengths=None)``."""
    lengths = {}
    for eid in range(graph.m):
        lengths[2 * eid] = graph.weights[eid]
        lengths[2 * eid + 1] = 0
    return lengths


class WorkspacePool:
    """A free-list of reusable workspaces for one compiled graph.

    Sequential callers lease the same instance over and over (zero
    allocation in steady state); concurrent callers each get their own,
    returned to the pool on release.  Use :meth:`lease` as a context
    manager, or :meth:`acquire` / :meth:`release` directly.
    """

    def __init__(self, factory):
        self._factory = factory
        self._free = []
        #: total workspaces ever constructed (observability)
        self.created = 0

    def acquire(self):
        if self._free:
            return self._free.pop()
        self.created += 1
        return self._factory()

    def release(self, workspace):
        self._free.append(workspace)

    def lease(self):
        return _Lease(self)

    def __len__(self):
        """Workspaces currently idle in the pool."""
        return len(self._free)


class _Lease:
    def __init__(self, pool):
        self._pool = pool
        self._ws = None

    def __enter__(self):
        self._ws = self._pool.acquire()
        return self._ws

    def __exit__(self, *exc):
        self._pool.release(self._ws)
        self._ws = None
        return False


class CatalogEntry:
    """One registered graph and accessors for its cached artifacts.

    Accessors build on first use and hit ``catalog.artifacts``
    afterwards; keys embed the entry name plus whichever fingerprint
    components the artifact depends on (see the module docstring).
    """

    def __init__(self, catalog, name, graph):
        self.catalog = catalog
        self.name = name
        self.graph = graph
        #: fingerprint at registration/invalidation time (observability
        #: only — cache keys always use the *current* fingerprint)
        self.registered_fingerprint = graph_fingerprint(graph)

    def fingerprint(self) -> Fingerprint:
        """The graph's current fingerprint (re-hashes weights, O(m))."""
        return graph_fingerprint(self.graph)

    # ------------------------------------------------------------------
    # artifacts
    # ------------------------------------------------------------------
    def compiled(self):
        """The compiled CSR topology (engine shared cache; topology
        only, so it survives weight mutation)."""
        from repro.engine import compile_graph

        return compile_graph(self.graph)

    def flow_solver(self, directed=True, backend="engine",
                    leaf_size=None):
        """A reusable :class:`~repro.core.maxflow.PlanarMaxFlow` bound
        to the current capacities.

        The engine solver owns the reusable
        :class:`~repro.engine.workspace.FlowWorkspace`; the legacy
        solver owns the BDD and dual bags.  Either way, this is the
        artifact that turns thousands of ``(s, t)`` probes into
        amortized work.
        """
        fp = self.fingerprint()
        key = ("flow-solver", self.name, fp.capacities, directed,
               backend, leaf_size)

        def build():
            from repro.core import PlanarMaxFlow

            return PlanarMaxFlow(self.graph, directed=directed,
                                 leaf_size=leaf_size, backend=backend)

        return self.catalog._artifact(key, build)

    def bdd(self, leaf_size=None, backend="engine"):
        """The bounded-diameter decomposition.

        The BDD depends only on topology, so it lives in the engine's
        process-wide *shared* cache keyed by topology token — alongside
        the compiled CSR and labeling bags.  A
        :meth:`GraphCatalog.set_weights` / :meth:`GraphCatalog.
        mutate_weights` reprice (which sweeps the name-keyed private
        caches) and a :meth:`GraphCatalog.snapshot` restore therefore
        reuse the finished decomposition instead of re-running the
        Lemma 5.1 recursion; :meth:`GraphCatalog.unregister` frees it.

        ``backend`` selects the construction path of a *cold* build —
        ``"engine"`` (default, array kernels) or ``"legacy"`` — and is
        deliberately not part of the cache key: the two backends are
        bit-identical (tests/test_engine_bdd_parity.py).
        """
        key = ("bdd", topo_token(self.graph), leaf_size)

        def build():
            from repro.bdd import build_bdd

            return build_bdd(self.graph, leaf_size=leaf_size,
                             backend=backend)

        return self.catalog._shared_artifact(key, build)

    def labeling(self, leaf_size=None, backend="engine"):
        """The dual distance labeling under :func:`default_dual_lengths`
        (Theorem 2.1) — build once, then every
        :class:`~repro.service.queries.DistanceQuery` decodes from the
        cached labels in label-size time (Lemma 2.2).

        ``backend`` selects the construction path (the labels are
        bit-identical either way): ``"engine"`` (default) builds on the
        compiled bag arrays of :mod:`repro.engine.labels`, which live
        in the engine's *shared* cache keyed by topology token — so a
        :meth:`GraphCatalog.set_weights` reprice drops this labeling
        artifact but reuses the BDD, the dual bags and the bag
        compilation for the rebuild: the repricing rebuild pays zero
        decomposition cost (zero separator calls — gated in
        ``benchmarks/bench_bdd.py`` via the obs counters).
        """
        fp = self.fingerprint()
        key = ("labeling", self.name, fp.weights, leaf_size, backend)

        def build():
            from repro.bdd import build_all_dual_bags
            from repro.labeling import DualDistanceLabeling

            bdd = self.bdd(leaf_size=leaf_size)
            duals_key = ("dual-bags", topo_token(self.graph), leaf_size)
            duals = self.catalog._shared_artifact(
                duals_key, lambda: build_all_dual_bags(bdd))
            return DualDistanceLabeling(bdd,
                                        default_dual_lengths(self.graph),
                                        duals=duals, backend=backend,
                                        repair_state=(backend
                                                      == "engine"))

        return self.catalog._artifact(key, build)

    def flow_workspace_pool(self):
        """Pool of :class:`~repro.engine.workspace.FlowWorkspace` over
        the compiled dual (for kernel-level callers running their own
        length schedules)."""
        key = ("flow-pool", self.name)

        def build():
            from repro.engine import FlowWorkspace

            compiled = self.compiled()
            return WorkspacePool(lambda: FlowWorkspace(compiled))

        return self.catalog._artifact(key, build)

    def dijkstra_workspace_pool(self, num_ids=None):
        """Pool of :class:`~repro.engine.dijkstra.DijkstraWorkspace`
        over an id universe (default: the primal vertices)."""
        n = self.graph.n if num_ids is None else num_ids
        key = ("dijkstra-pool", self.name, n)

        def build():
            from repro.engine import DijkstraWorkspace

            return WorkspacePool(lambda: DijkstraWorkspace(n))

        return self.catalog._artifact(key, build)


class GraphCatalog:
    """Named graphs + owned artifact/result caches + query dispatch.

    The serving facade: ``register`` a graph, then ``serve`` typed
    queries (:mod:`repro.service.queries`) or hand batches to
    :func:`repro.service.batch.run_batch`.  ``max_artifacts`` bounds
    heavyweight derived objects (solvers, labelings, BDDs);
    ``max_results`` bounds the memoized query results.
    """

    def __init__(self, max_artifacts=64, max_results=4096, planner=None):
        self._entries = {}
        self.artifacts = ArtifactCache(maxsize=max_artifacts)
        self.results = ArtifactCache(maxsize=max_results)
        if planner is None:
            from repro.service.queries import QueryPlanner

            planner = QueryPlanner()
        self.planner = planner

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, name, graph, overwrite=False):
        """Register ``graph`` under ``name``; returns the entry.

        Re-registering an existing name requires ``overwrite=True`` and
        drops the old name's artifacts and results.
        """
        if name in self._entries:
            if not overwrite:
                raise ServiceError(f"graph {name!r} is already "
                                   f"registered (overwrite=True to "
                                   f"replace)")
            self.invalidate(name)
        entry = CatalogEntry(self, name, graph)
        self._entries[name] = entry
        return entry

    def get(self, name):
        entry = self._entries.get(name)
        if entry is None:
            raise ServiceError(f"unknown graph {name!r}; registered: "
                               f"{sorted(self._entries)}")
        return entry

    def _artifact(self, key, build):
        """``artifacts.get_or_build`` with per-kind hit/miss counters
        (``catalog.artifact.{hit,miss}.<kind>``, where the kind is the
        key's leading component — ``flow-solver``, ``bdd``,
        ``labeling``, ...) when :mod:`repro.obs` is enabled."""
        if obs.enabled():
            hit = key in self.artifacts
            obs.inc(f"catalog.artifact."
                    f"{'hit' if hit else 'miss'}.{key[0]}")
        return self.artifacts.get_or_build(key, build)

    def _shared_artifact(self, key, build):
        """Like :meth:`_artifact` (same ``catalog.artifact.{hit,miss}.
        <kind>`` counters) but against the engine's process-wide
        :func:`~repro._artifacts.shared_cache` — for topology-only
        artifacts keyed by topology token (``bdd``, ``dual-bags``) that
        must survive weight repricing and ship with snapshots."""
        cache = shared_cache()
        if obs.enabled():
            hit = key in cache
            obs.inc(f"catalog.artifact."
                    f"{'hit' if hit else 'miss'}.{key[0]}")
        return cache.get_or_build(key, build)

    def __contains__(self, name):
        return name in self._entries

    def names(self):
        return sorted(self._entries)

    def unregister(self, name):
        """Forget ``name`` and free everything cached for it —
        including the graph's entries in the engine's process-wide
        shared cache (compiled CSR, cycle oracles), which would
        otherwise keep the graph alive until LRU eviction."""
        entry = self.get(name)
        self.invalidate(name)
        topo = topo_token(entry.graph)
        shared_cache().invalidate(lambda k: len(k) > 1 and k[1] == topo)
        del self._entries[name]

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate(self, name):
        """Explicitly drop every artifact and memoized result of
        ``name``.

        Fingerprint-keyed lookups are already stale-proof (mutated
        weights miss); this frees the dead entries immediately and
        refreshes the entry's recorded fingerprint.  Returns the number
        of cache entries removed.
        """
        entry = self._entries.get(name)
        removed = self.artifacts.invalidate(
            lambda k: len(k) > 1 and k[1] == name)
        removed += self.results.invalidate(
            lambda k: len(k) > 1 and k[1] == name)
        if entry is not None:
            entry.registered_fingerprint = graph_fingerprint(entry.graph)
        return removed

    def set_weights(self, name, weights=None, capacities=None):
        """Mutate a registered graph's weights/capacities in place and
        invalidate its dead artifacts in one step — the supported way to
        reprice a served graph."""
        g = self.get(name).graph
        weights = None if weights is None else list(weights)
        capacities = None if capacities is None else list(capacities)
        for label, values in (("weights", weights),
                              ("capacities", capacities)):
            if values is not None and len(values) != g.m:
                raise ServiceError(
                    f"{label} for {name!r} must have one entry per "
                    f"edge (got {len(values)}, graph has m={g.m})")
        if weights is not None:
            g.weights[:] = weights
        if capacities is not None:
            g.capacities[:] = capacities
        if obs.enabled():
            obs.inc("catalog.set_weights")
        return self.invalidate(name)

    def mutate_weights(self, name, edges, max_dirty_frac=0.5):
        """Reprice a few edges of a registered graph by *delta repair*
        instead of the full :meth:`set_weights` teardown (DESIGN.md
        §11).

        ``edges`` maps edge id -> new weight (or is an iterable of
        ``(eid, weight)`` pairs).  The graph's weights are mutated in
        place; then, instead of invalidating, the catalog

        * **repairs** every cached engine labeling of ``name`` in
          place via :meth:`~repro.labeling.DualDistanceLabeling.
          reprice` — only the bags whose dual contains a touched dart
          are recomputed — and re-keys it under the new weight
          fingerprint (falling back to *drop + rebuild on next query*
          when the dirty set exceeds ``max_dirty_frac`` of the bags,
          or when a labeling carries no repair state);
        * **migrates** memoized flow/cut results to the new weight
          hash (they read capacities, not weights — still warm) and
          drops the weight-dependent distance/girth results;
        * leaves capacity-keyed flow solvers and the topology-only
          BDD / dual-bag / compiled-bag artifacts untouched.

        Returns a JSON-safe report dict.  When the new weights create
        a negative dual cycle, every labeling of ``name`` is dropped
        and the :class:`~repro.errors.NegativeCycleError` of the
        (bit-identical) detection site is re-raised — the weights stay
        applied, exactly as a fresh build would find them.
        """
        if not obs.enabled():
            return self._mutate_weights(name, edges, max_dirty_frac)
        with obs.span("catalog.mutate_weights", graph=name) as sp:
            report = self._mutate_weights(name, edges, max_dirty_frac)
            dirty = sum(row.get("dirty_bags", 0)
                        for row in report["labelings"])
            obs.inc("catalog.mutations")
            if dirty:
                obs.inc("catalog.reprice.dirty_bags", dirty)
            sp.tag(changed=report["changed_edges"], dirty_bags=dirty)
            return report

    def _mutate_weights(self, name, edges, max_dirty_frac):
        entry = self.get(name)
        g = entry.graph
        updates = _edge_updates(name, g, edges)
        old_fp = entry.fingerprint()
        labelings = [(key, lab) for key, lab in self.artifacts.items()
                     if key[0] == "labeling" and key[1] == name
                     and key[2] == old_fp.weights]
        changed = {}
        for eid, w in updates.items():
            if g.weights[eid] != w:
                changed[2 * eid] = w
            g.weights[eid] = w
        new_fp = entry.fingerprint()
        report = {"graph": name, "edges": len(updates),
                  "changed_edges": len(changed),
                  "results_migrated": 0, "results_dropped": 0,
                  "labelings": []}
        if new_fp.weights == old_fp.weights:
            return report  # value-identical weights: nothing is stale
        migrated, dropped = self._migrate_results(name, old_fp, new_fp)
        report["results_migrated"] = migrated
        report["results_dropped"] = dropped
        entry.registered_fingerprint = new_fp
        for key, lab in labelings:
            self.artifacts.discard(key)
            row = {"leaf_size": key[3], "backend": key[4]}
            report["labelings"].append(row)
            if key[4] != "engine" \
                    or getattr(lab, "_repair", None) is None:
                row["action"] = "dropped"
                continue
            try:
                stats = lab.reprice(changed,
                                    max_dirty_frac=max_dirty_frac)
            except NegativeCycleError:
                # the partial repair left ``lab`` corrupt, and a fresh
                # build would raise the same error anyway: make every
                # labeling of the name a rebuild
                self.artifacts.invalidate(
                    lambda k: k[0] == "labeling" and k[1] == name)
                raise
            if stats.pop("repaired"):
                row["action"] = "repaired"
                row.update(stats)
                self.artifacts.put(
                    ("labeling", name, new_fp.weights, key[3], key[4]),
                    lab)
            else:
                row["action"] = "rebuild"  # over threshold: next query
                row.update(stats)          # builds from scratch
        return report

    def _migrate_results(self, name, old_fp, new_fp):
        """Move weight-independent memoized results of ``name`` to the
        new weight hash; drop the weight-dependent ones."""
        from repro.service.queries import CutQuery, FlowQuery

        migrated = dropped = 0
        for key, value in self.results.items():
            if key[0] != "result" or key[1] != name \
                    or key[4] != old_fp.weights \
                    or key[5] != old_fp.capacities:
                continue
            self.results.discard(key)
            if isinstance(key[2], (FlowQuery, CutQuery)):
                self.results.put((key[0], key[1], key[2], key[3],
                                  new_fp.weights, new_fp.capacities),
                                 value)
                migrated += 1
            else:
                dropped += 1
        return migrated, dropped

    # ------------------------------------------------------------------
    # integrity audit
    # ------------------------------------------------------------------
    def audit_labeling(self, name, leaf_size=None, backend="engine",
                       reference_backend=None):
        """Bit-parity audit of the labeling served for ``name`` against
        a from-scratch rebuild — the contract that makes
        :meth:`mutate_weights` safe (DESIGN.md §11).

        The served side goes through :meth:`CatalogEntry.labeling`
        (cache hit or cold build); the reference side builds a *fresh*
        BDD + dual bags + labeling from the graph's current weights on
        ``reference_backend`` (default: same as ``backend``).  The two
        must agree bit for bit: same label keys, same entry chains,
        same distance values *and Python types* — or, when the weights
        contain a negative dual cycle, the same
        :class:`~repro.errors.NegativeCycleError` type, message and
        ``where`` site.  Any divergence raises
        :class:`~repro.errors.AuditError`; otherwise a JSON-safe
        report dict is returned.
        """
        entry = self.get(name)
        if reference_backend is None:
            reference_backend = backend

        served = served_err = None
        try:
            served = entry.labeling(leaf_size=leaf_size,
                                    backend=backend)
        except NegativeCycleError as e:
            served_err = e

        ref = ref_err = None
        try:
            from repro.bdd import build_bdd
            from repro.bdd.dual_bags import build_all_dual_bags
            from repro.labeling import DualDistanceLabeling

            bdd = build_bdd(entry.graph, leaf_size=leaf_size)
            ref = DualDistanceLabeling(
                bdd, default_dual_lengths(entry.graph),
                duals=build_all_dual_bags(bdd),
                backend=reference_backend)
        except NegativeCycleError as e:
            ref_err = e

        report = {"graph": name, "backend": backend,
                  "reference_backend": reference_backend,
                  "leaf_size": leaf_size, "labels": 0, "entries": 0,
                  "error": None}

        def fail(message):
            report["divergence"] = message
            raise AuditError(f"labeling audit of {name!r} diverged: "
                             f"{message}", report=report)

        if (served_err is None) != (ref_err is None):
            got = served_err if served_err is not None else ref_err
            side = "served" if served_err is not None else "reference"
            fail(f"only the {side} build raised "
                 f"{type(got).__name__}: {got} (where={got.where!r})")
        if served_err is not None:
            a = (type(served_err), str(served_err), served_err.where)
            b = (type(ref_err), str(ref_err), ref_err.where)
            if a != b:
                fail(f"error sites differ: served {a!r} vs "
                     f"reference {b!r}")
            report["error"] = {"type": type(served_err).__name__,
                               "message": str(served_err),
                               "where": list(served_err.where)
                               if isinstance(served_err.where, tuple)
                               else served_err.where}
            return report

        # a stale lengths map would *serve* wrong distances even with
        # internally consistent labels — check it against the graph
        expected = default_dual_lengths(entry.graph)
        if served.lengths != expected:
            bad = sorted(d for d in expected
                         if served.lengths.get(d) != expected[d])[:5]
            fail(f"served labeling lengths disagree with the graph's "
                 f"current weights at darts {bad}")

        mismatch = _label_divergence(served._labels, ref._labels)
        if mismatch is not None:
            fail(mismatch)
        report["labels"] = len(served._labels)
        report["entries"] = sum(len(lbl.entries)
                                for lbl in served._labels.values())
        return report

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def serve(self, query, planner=None):
        """Execute one typed query; returns a
        :class:`~repro.service.queries.QueryResult`."""
        from repro.service.queries import execute_query

        return execute_query(self, query, planner=planner)

    def serve_batch(self, queries, planner=None):
        """Execute a query batch; returns a
        :class:`~repro.service.batch.BatchReport`."""
        from repro.service.batch import run_batch

        return run_batch(self, queries, planner=planner)

    def stats(self):
        """Cache observability: artifact/result cache counters plus the
        engine's shared cache."""
        return {"artifacts": self.artifacts.stats(),
                "results": self.results.stats(),
                "shared": shared_cache().stats(),
                "graphs": self.names()}

    # ------------------------------------------------------------------
    # warm-state handoff
    # ------------------------------------------------------------------
    def snapshot(self, include_results=True):
        """Capture the catalog's warm state as a picklable
        :class:`CatalogSnapshot` — the pre-fork handoff of the
        :class:`~repro.server.pool.WarmWorkerPool` (DESIGN.md §10).

        Captured: the registered graphs, the planner, every picklable
        artifact and (optionally) memoized result, and the graphs'
        entries in the engine's process-wide shared cache (compiled CSR,
        compiled labeling bags, cycle oracles).  *Not* captured —
        recorded under ``snapshot.skipped`` instead:

        * workspace pools (their factories are process-local closures
          and their buffers are cheap) — a restored catalog rebuilds
          them on first use, which is exactly the per-worker-buffers
          contract of :mod:`repro.engine`;
        * any artifact that fails a pickle probe.

        The snapshot holds *live references*; pickling it (what a
        ``spawn`` worker handoff does) copies everything in one payload,
        so object sharing survives — e.g. a cached solver's graph stays
        the very object registered under its name.
        """
        graphs = {name: e.graph for name, e in self._entries.items()}
        tokens = {name: topo_token(g) for name, g in graphs.items()}
        known_topos = set(tokens.values())
        skipped = []

        def capture(cache):
            kept = []
            for key, value in cache.items():
                if isinstance(value, WorkspacePool) or not _picklable(value):
                    skipped.append(key)
                else:
                    kept.append((key, value))
            return kept

        shared = []
        for key, value in shared_cache().items():
            if len(key) < 2 or key[1] not in known_topos:
                continue
            if _picklable(value):
                shared.append((key, value))
            else:
                skipped.append(key)

        return CatalogSnapshot(
            graphs=graphs,
            tokens=tokens,
            planner=self.planner if _picklable(self.planner) else None,
            artifacts=capture(self.artifacts),
            results=capture(self.results) if include_results else [],
            shared=shared,
            skipped=skipped,
            max_artifacts=self.artifacts.maxsize,
            max_results=self.results.maxsize,
        )


def _edge_updates(name, graph, edges):
    """Validate a ``mutate_weights`` edge mapping -> {eid: weight}."""
    items = edges.items() if hasattr(edges, "items") else edges
    updates = {}
    for item in items:
        try:
            eid, w = item
        except (TypeError, ValueError):
            raise ServiceError(
                f"mutate_weights({name!r}) edges must map edge id -> "
                f"weight (or be (eid, weight) pairs); got {item!r}")
        if not isinstance(eid, int) or isinstance(eid, bool) \
                or not 0 <= eid < graph.m:
            raise ServiceError(
                f"mutate_weights({name!r}): bad edge id {eid!r} "
                f"(graph has m={graph.m})")
        if isinstance(w, bool) or not isinstance(w, (int, float)) \
                or not math.isfinite(w):
            raise ServiceError(
                f"mutate_weights({name!r}): edge {eid} weight must be "
                f"a finite number, got {w!r}")
        updates[eid] = w
    return updates


def _label_divergence(served, reference):
    """First bit-level difference between two label dicts, or None.

    "Bit-level" means values must compare equal *and* share a Python
    type — ``5`` vs ``5.0`` is a divergence, because a serialized or
    hashed label would differ.
    """
    if set(served) != set(reference):
        extra = sorted(set(served) - set(reference))[:3]
        missing = sorted(set(reference) - set(served))[:3]
        return (f"label key sets differ (extra={extra}, "
                f"missing={missing})")
    for key in served:
        a, b = served[key], reference[key]
        if a.node != b.node or len(a.entries) != len(b.entries):
            return (f"label chain at {key} differs: node {a.node} vs "
                    f"{b.node}, {len(a.entries)} vs {len(b.entries)} "
                    f"entries")
        for ea, eb in zip(a.entries, b.entries):
            if (ea.bag_id, ea.node, ea.is_leaf) \
                    != (eb.bag_id, eb.node, eb.is_leaf):
                return f"entry identity at {key} differs"
            for attr in ("dist_to", "dist_from"):
                da, db = getattr(ea, attr), getattr(eb, attr)
                if set(da) != set(db):
                    return (f"{attr} key set at {key} entry bag "
                            f"{ea.bag_id} differs")
                for h, va in da.items():
                    vb = db[h]
                    if va != vb or type(va) is not type(vb):
                        return (f"{attr}[{h}] at {key} entry bag "
                                f"{ea.bag_id}: served {va!r} "
                                f"({type(va).__name__}) vs reference "
                                f"{vb!r} ({type(vb).__name__})")
    return None


def _picklable(value):
    try:
        pickle.dumps(value)
        return True
    except Exception:
        return False


class CatalogSnapshot:
    """Picklable warm-state capture of a :class:`GraphCatalog` (see
    :meth:`GraphCatalog.snapshot`).

    :meth:`restore` rebuilds a working catalog around whatever the
    snapshot holds.  Restoring the *same* (unpickled) snapshot object in
    the process that made it shares the live graph objects with the
    source catalog — fine for read-only use; pickle the snapshot first
    (or hand it to another process, which does the same) when the two
    catalogs must not see each other's weight mutations.
    """

    def __init__(self, graphs, tokens, planner, artifacts, results,
                 shared, skipped, max_artifacts, max_results):
        self.graphs = graphs
        #: name -> topology token at snapshot time (process-local ids;
        #: :meth:`restore` re-keys shared entries to the tokens the
        #: receiving process assigns)
        self.tokens = tokens
        self.planner = planner
        self.artifacts = artifacts
        self.results = results
        self.shared = shared
        #: keys present in the source caches but not captured
        #: (workspace pools by design, plus pickle-probe failures)
        self.skipped = skipped
        self.max_artifacts = max_artifacts
        self.max_results = max_results

    def restore(self):
        """A new :class:`GraphCatalog` warmed with the captured state.

        Shared-cache entries are re-inserted under the topology tokens
        *this* process assigns to the snapshot's graphs (tokens never
        survive a pickle, by design — see ``PlanarGraph.__getstate__``),
        so the restored compiled CSR / labeling bags / cycle oracles are
        found by every engine code path exactly as if they had been
        built here.
        """
        catalog = GraphCatalog(max_artifacts=self.max_artifacts,
                               max_results=self.max_results,
                               planner=self.planner)
        for name, graph in self.graphs.items():
            catalog.register(name, graph)
        remap = {old: topo_token(self.graphs[name])
                 for name, old in self.tokens.items()}
        cache = shared_cache()
        for key, value in self.shared:
            cache.put((key[0], remap[key[1]]) + tuple(key[2:]), value)
        for key, value in self.artifacts:
            catalog.artifacts.put(key, value)
        for key, value in self.results:
            catalog.results.put(key, value)
        return catalog
