"""Batched query execution: many queries against cached artifacts, and
an optional process-shard path for multi-graph fan-out (DESIGN.md §8).

:func:`run_batch` serves a sequence of typed queries through one
catalog.  Amortization is automatic — the catalog's artifact cache
means the first flow query pays for the solver (compiled CSR +
workspace on the engine backend; BDD + dual bags on legacy) and every
later ``(s, t)`` pair against the same graph reuses it; the first
distance query pays for the Theorem 2.1 labeling and every later pair
decodes in label-size time (Lemma 2.2).  Results come back in input
order and are bit-identical to the per-call entry points.

:func:`run_sharded` fans a multi-graph batch out over a
:class:`concurrent.futures.ProcessPoolExecutor`, one shard per graph:
each worker process builds a private single-graph catalog, serves its
shard warm, and ships the (picklable) results back.  Artifact caches
are per-process, so sharding by graph — never splitting one graph's
queries across workers — is what keeps every worker's cache hot.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.service.queries import execute_query


@dataclass
class BatchReport:
    """Results (input order) plus serving statistics for one batch."""

    results: list
    seconds: float
    #: result-cache hits / cold executions
    warm_hits: int = 0
    cold_misses: int = 0

    def values(self):
        """The bare result objects, in input order."""
        return [r.result for r in self.results]

    def by_kind(self):
        """Per query-type aggregates: count, warm hits, total seconds,
        queries/sec — the rows of the CLI throughput table."""
        rows = OrderedDict()
        for r in self.results:
            kind = type(r.query).__name__
            row = rows.setdefault(kind, {"count": 0, "warm": 0,
                                         "seconds": 0.0})
            row["count"] += 1
            row["warm"] += bool(r.warm)
            row["seconds"] += r.seconds
        for row in rows.values():
            row["qps"] = row["count"] / max(row["seconds"], 1e-9)
        return rows


def run_batch(catalog, queries, planner=None):
    """Serve ``queries`` (any mix of types/graphs) through ``catalog``.

    Returns a :class:`BatchReport`; ``report.results[i]`` answers
    ``queries[i]``.
    """
    t0 = time.perf_counter()
    results = []
    warm = 0
    for q in queries:
        r = execute_query(catalog, q, planner=planner)
        warm += bool(r.warm)
        results.append(r)
    return BatchReport(results=results,
                       seconds=time.perf_counter() - t0,
                       warm_hits=warm,
                       cold_misses=len(results) - warm)


# ----------------------------------------------------------------------
# process-shard fan-out
# ----------------------------------------------------------------------
@dataclass
class _Shard:
    """One worker's payload: a graph and its (index, query) slice."""

    name: str
    graph: object
    indexed_queries: list = field(default_factory=list)


def _shard_worker(shard):
    """Worker entry point (top-level for pickling): serve one graph's
    queries in a fresh private catalog."""
    from repro.service.catalog import GraphCatalog

    catalog = GraphCatalog()
    catalog.register(shard.name, shard.graph)
    out = []
    for idx, query in shard.indexed_queries:
        out.append((idx, execute_query(catalog, query)))
    return out


def run_sharded(graphs, queries, max_workers=None):
    """Fan a multi-graph batch out over worker processes.

    ``graphs`` maps name -> :class:`~repro.planar.graph.PlanarGraph`
    (plain picklable data — workers rebuild their own artifacts);
    every ``query.graph`` must name a key of ``graphs``.  Returns a
    :class:`BatchReport` with results in input order.  ``max_workers``
    defaults to ``min(#graphs, os.cpu_count())``.

    Use this when the batch spans several graphs and each shard is
    heavy enough to amortize a worker's cold start (one compile /
    labeling per graph per process); for single-graph batches
    :func:`run_batch` in-process is strictly better.
    """
    from concurrent.futures import ProcessPoolExecutor

    from repro.errors import ServiceError

    queries = list(queries)
    shards = OrderedDict()
    for idx, q in enumerate(queries):
        if q.graph not in graphs:
            raise ServiceError(f"query names unknown graph "
                               f"{q.graph!r}; provided: "
                               f"{sorted(graphs)}")
        shard = shards.get(q.graph)
        if shard is None:
            shard = shards[q.graph] = _Shard(name=q.graph,
                                             graph=graphs[q.graph])
        shard.indexed_queries.append((idx, q))

    t0 = time.perf_counter()
    results = [None] * len(queries)
    if max_workers is None:
        import os

        max_workers = max(1, min(len(shards), os.cpu_count() or 1))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        for pairs in pool.map(_shard_worker, shards.values()):
            for idx, r in pairs:
                results[idx] = r
    warm = sum(bool(r.warm) for r in results)
    return BatchReport(results=results,
                       seconds=time.perf_counter() - t0,
                       warm_hits=warm,
                       cold_misses=len(results) - warm)
