"""Batched query execution: many queries against cached artifacts, and
an optional process-shard path for multi-graph fan-out (DESIGN.md §8).

:func:`run_batch` serves a sequence of typed queries through one
catalog.  Amortization is automatic — the catalog's artifact cache
means the first flow query pays for the solver (compiled CSR +
workspace on the engine backend; BDD + dual bags on legacy) and every
later ``(s, t)`` pair against the same graph reuses it; the first
distance query pays for the Theorem 2.1 labeling and every later pair
decodes in label-size time (Lemma 2.2).  Results come back in input
order and are bit-identical to the per-call entry points.

:func:`run_sharded` fans a multi-graph batch out over the pre-warmed
worker pool of :mod:`repro.server.pool`: artifacts are built once in
the parent (per the query mix), the workers inherit them copy-on-write,
and every query is load-balanced over *all* workers — so a skewed mix
(10⁴ queries on one graph, 3 on another) no longer serializes behind
the one worker that owns the hot graph, which is what the original
one-shard-per-graph fan-out did.  That older path (each worker process
builds a private single-graph catalog cold) survives behind
``fork_per_graph=True`` with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.service.queries import execute_query


@dataclass
class BatchReport:
    """Results (input order) plus serving statistics for one batch."""

    results: list
    seconds: float
    #: result-cache hits / cold executions
    warm_hits: int = 0
    cold_misses: int = 0

    def values(self):
        """The bare result objects, in input order."""
        return [r.result for r in self.results]

    def by_kind(self):
        """Per query-type aggregates: count, warm hits, total seconds,
        queries/sec — the rows of the CLI throughput table."""
        rows = OrderedDict()
        for r in self.results:
            kind = type(r.query).__name__
            row = rows.setdefault(kind, {"count": 0, "warm": 0,
                                         "seconds": 0.0})
            row["count"] += 1
            row["warm"] += bool(r.warm)
            row["seconds"] += r.seconds
        for row in rows.values():
            row["qps"] = row["count"] / max(row["seconds"], 1e-9)
        return rows


def run_batch(catalog, queries, planner=None):
    """Serve ``queries`` (any mix of types/graphs) through ``catalog``.

    Returns a :class:`BatchReport`; ``report.results[i]`` answers
    ``queries[i]``.
    """
    t0 = time.perf_counter()
    results = []
    warm = 0
    for q in queries:
        r = execute_query(catalog, q, planner=planner)
        warm += bool(r.warm)
        results.append(r)
    return BatchReport(results=results,
                       seconds=time.perf_counter() - t0,
                       warm_hits=warm,
                       cold_misses=len(results) - warm)


# ----------------------------------------------------------------------
# multi-process fan-out
# ----------------------------------------------------------------------
@dataclass
class _Shard:
    """One worker's payload on the deprecated fork-per-graph path: a
    graph and its (index, query) slice."""

    name: str
    graph: object
    indexed_queries: list = field(default_factory=list)


def _shard_worker(shard):
    """Deprecated-path worker entry point (top-level for pickling):
    serve one graph's queries in a fresh private catalog — every worker
    pays its own cold compile/labeling before the first answer."""
    from repro.service.catalog import GraphCatalog

    catalog = GraphCatalog()
    catalog.register(shard.name, shard.graph)
    out = []
    for idx, query in shard.indexed_queries:
        out.append((idx, execute_query(catalog, query)))
    return out


def _prewarm_queries(queries):
    """One representative query per distinct *artifact signature* —
    what :func:`run_sharded` executes in the parent, pre-fork, so the
    workers inherit exactly the artifacts the mix will hit.

    The signature is the set of query fields the catalog's artifact
    keys depend on (graph, query type, direction, backend, knobs) —
    never the endpoints — so 10⁴ flow pairs warm one solver, while a
    ``leaf_size=9`` or ``backend="legacy"`` query warms *that* variant
    instead of an unused default build."""
    reps = OrderedDict()
    for q in queries:
        sig = (q.graph, type(q).__name__,
               getattr(q, "directed", None), q.backend,
               getattr(q, "leaf_size", None),
               getattr(q, "num_trees", None))
        reps.setdefault(sig, q)
    return list(reps.values())


def run_sharded(graphs, queries, max_workers=None, prewarm=True,
                fork_per_graph=False):
    """Fan a multi-graph batch out over worker processes.

    ``graphs`` maps name -> :class:`~repro.planar.graph.PlanarGraph`;
    every ``query.graph`` must name a key of ``graphs``.  Returns a
    :class:`BatchReport` with results in input order.

    Since the :class:`~repro.server.pool.WarmWorkerPool` rewrite this
    registers every graph in one master catalog, builds the artifacts
    the query mix needs **once** in the parent (``prewarm=True``: one
    representative query per distinct artifact signature — graph, type,
    direction, backend, knobs — runs pre-fork), forks ``max_workers``
    workers that inherit them copy-on-write, and load-balances the
    queries over all workers — so no query count skew between graphs
    can idle a worker, and no artifact is ever built twice.
    ``max_workers`` defaults to ``min(os.cpu_count(), #queries, 8)``.

    ``warm`` accounting in the report is per *worker* catalog: a
    repeated query may land on different workers and be cold in each
    until every copy has seen it.

    ``fork_per_graph=True`` runs the pre-pool implementation (one cold
    single-graph process per shard) and warns: it exists only as a
    migration escape hatch and as the baseline that
    ``benchmarks/bench_server.py`` races.
    """
    from repro.errors import ServiceError

    queries = list(queries)
    for q in queries:
        if q.graph not in graphs:
            raise ServiceError(f"query names unknown graph "
                               f"{q.graph!r}; provided: "
                               f"{sorted(graphs)}")
    if fork_per_graph:
        import warnings

        warnings.warn(
            "run_sharded(fork_per_graph=True) forks one cold process "
            "per graph and is deprecated; the default warm-pool path "
            "builds artifacts once and load-balances every query",
            DeprecationWarning, stacklevel=2)
        return _run_fork_per_graph(graphs, queries, max_workers)

    # lazy import: repro.server builds on repro.service, so the service
    # layer only reaches up from inside this call, never at import time
    from repro.server.pool import WarmWorkerPool

    if max_workers is None:
        import os

        max_workers = max(1, min(os.cpu_count() or 1, len(queries), 8))
    t0 = time.perf_counter()
    from repro._artifacts import shared_cache

    # topology tokens with shared-cache entries predating this call —
    # their graphs belong to the caller's own serving state and must
    # survive the cleanup below
    pre_shared_topos = {key[1] for key in shared_cache().keys()
                        if len(key) > 1}
    pool = WarmWorkerPool(workers=max_workers)
    try:
        for name, graph in graphs.items():
            pool.register(name, graph)
        if prewarm:
            for rep in _prewarm_queries(queries):
                try:
                    execute_query(pool.catalog, rep)
                except Exception:
                    # best-effort warming; the real serve reports the
                    # failure on the query that owns it
                    pass
        pool.start()
        report = pool.run(queries)
    finally:
        pool.close()
        # the old fork-per-graph path left the parent process clean
        # (all builds happened in throwaway children); the warm pool
        # builds in the parent, so free the shared-cache entries
        # (compiled CSR, bags, oracles) of graphs this call introduced
        # — but never those of a graph the caller was already serving
        # engine queries from before this call
        from repro._artifacts import topo_token

        for name, graph in graphs.items():
            if topo_token(graph) not in pre_shared_topos \
                    and name in pool.catalog:
                pool.catalog.unregister(name)
    report.seconds = time.perf_counter() - t0
    return report


def _run_fork_per_graph(graphs, queries, max_workers):
    """The deprecated one-shard-per-graph fan-out."""
    from concurrent.futures import ProcessPoolExecutor

    shards = OrderedDict()
    for idx, q in enumerate(queries):
        shard = shards.get(q.graph)
        if shard is None:
            shard = shards[q.graph] = _Shard(name=q.graph,
                                             graph=graphs[q.graph])
        shard.indexed_queries.append((idx, q))

    t0 = time.perf_counter()
    results = [None] * len(queries)
    if max_workers is None:
        import os

        max_workers = max(1, min(len(shards), os.cpu_count() or 1))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        for pairs in pool.map(_shard_worker, shards.values()):
            for idx, r in pairs:
                results[idx] = r
    warm = sum(bool(r.warm) for r in results)
    return BatchReport(results=results,
                       seconds=time.perf_counter() - t0,
                       warm_hits=warm,
                       cold_misses=len(results) - warm)
