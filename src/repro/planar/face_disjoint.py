"""The face-disjoint graph Ĝ of Ghaffari-Parter, with the paper's E_C
extension (Section 3).

Ĝ is the communication scaffold for simulating computations on the dual
graph ``G*``: faces of ``G`` map to vertex- and edge-disjoint cycles of
Ĝ, and two such cycles are connected by an ``E_C`` edge exactly when the
corresponding dual nodes are adjacent in ``G*``.

Vertex set (paper notation):

* *star centers* ``V_S`` — one per vertex of ``G``;
* *corner copies* — one per corner (local region) of each vertex: corner
  ``(v, k)`` sits between consecutive darts ``rot[v][k]`` and
  ``rot[v][k+1]`` and belongs to the face whose traversal leaves ``v``
  via ``rot[v][k+1]``.

Edge set  ``E(Ĝ) = E_S ∪ E_R ∪ E_C``:

* ``E_S`` — star edges ``(v, v_k)`` for every corner ``k`` of ``v``;
* ``E_R`` — one edge per dart ``d=(u→v)``: connects the corner of ``u``
  *before* ``d`` and the corner of ``v`` at ``rev(d)`` — both lie on
  ``face(d)``, so the components of ``Ĝ[E_R]`` are exactly the face
  cycles of ``G`` (Property 4);
* ``E_C`` — one edge per edge ``e`` of ``G``, placed at the higher-id
  endpoint, joining its two corners on either side of ``e``; the map
  ``E_C → E(G*)`` is a bijection (Property 5).

Properties 1-3 of Section 3 (planarity, diameter ≤ 3D+O(1), 2x CONGEST
simulation overhead) are checked in the test-suite and reflected in the
round charges of the hosts that communicate over Ĝ.
"""

from __future__ import annotations

from collections import deque

from repro.planar.graph import rev


class FaceDisjointGraph:
    """The graph Ĝ built from an embedded planar graph ``G``."""

    def __init__(self, primal):
        self.primal = primal
        n = primal.n

        # vertex layout: star centers 0..n-1, then corner copies
        self._corner_offset = [0] * (n + 1)
        for v in range(n):
            self._corner_offset[v + 1] = \
                self._corner_offset[v] + max(primal.degree(v), 0)
        self.num_vertices = n + self._corner_offset[n]
        self._n = n

        self.adj = [[] for _ in range(self.num_vertices)]
        self.es_edges = []
        self.er_edge_of_dart = {}
        self.ec_edge_of_edge = {}

        self._build()

    # ------------------------------------------------------------------
    # vertex naming
    # ------------------------------------------------------------------
    def star_center(self, v):
        return v

    def corner_copy(self, v, k):
        """Ĝ-vertex of the corner at ``v`` after rotation position ``k``."""
        deg = self.primal.degree(v)
        return self._n + self._corner_offset[v] + (k % deg)

    def is_star_center(self, x):
        return x < self._n

    def owner_vertex(self, x):
        """The G-vertex that simulates Ĝ-vertex ``x``."""
        if x < self._n:
            return x
        x -= self._n
        lo, hi = 0, self._n
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if self._corner_offset[mid] <= x:
                lo = mid
            else:
                hi = mid
        return lo

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self):
        p = self.primal

        def add(a, b, kind):
            self.adj[a].append(b)
            self.adj[b].append(a)
            if kind == "S":
                self.es_edges.append((a, b))

        # E_S
        for v in range(p.n):
            for k in range(p.degree(v)):
                add(self.star_center(v), self.corner_copy(v, k), "S")

        # E_R: per dart d (tail u at position i, head v, rev at position j):
        # corner (u, i-1) and corner (v, j) both lie on face(d).
        for d in p.darts():
            u = p.tail(d)
            v = p.head(d)
            i = p._dart_pos[d]
            j = p._dart_pos[rev(d)]
            a = self.corner_copy(u, i - 1)
            b = self.corner_copy(v, j)
            self.er_edge_of_dart[d] = (a, b)
            add(a, b, "R")

        # E_C: one per edge, at the higher-id endpoint x; joins the two
        # corners of x on either side of the edge.
        for eid, (u, v) in enumerate(p.edges):
            x = max(u, v)
            d_x = 2 * eid if p.edges[eid][0] == x else 2 * eid + 1
            ppos = p._dart_pos[d_x]
            a = self.corner_copy(x, ppos - 1)   # on face(d_x)
            b = self.corner_copy(x, ppos)       # on face(rev(d_x))
            self.ec_edge_of_edge[eid] = (a, b)
            add(a, b, "C")

    # ------------------------------------------------------------------
    # Property 4: face identification
    # ------------------------------------------------------------------
    def face_cycle_vertices(self, fid):
        """Corner copies lying on the Ĝ-cycle of face ``fid`` of G."""
        p = self.primal
        out = []
        for d in p.faces[fid]:
            u = p.tail(d)
            i = p._dart_pos[d]
            out.append(self.corner_copy(u, i - 1))
        return out

    def face_of_corner(self, x):
        """G-face id whose cycle contains corner copy ``x``."""
        v = self.owner_vertex(x)
        k = x - self._n - self._corner_offset[v]
        return self.primal.corner_face(v, k)

    def face_leader(self, fid):
        """Deterministic leader (min corner id) of the face's Ĝ-cycle."""
        return min(self.face_cycle_vertices(fid))

    def er_components(self):
        """Connected components of Ĝ[E_R]; one per face of G."""
        comp = {}
        comps = []
        adj = {}
        for d, (a, b) in self.er_edge_of_dart.items():
            adj.setdefault(a, []).append(b)
            adj.setdefault(b, []).append(a)
        for x0 in adj:
            if x0 in comp:
                continue
            cid = len(comps)
            members = []
            q = deque([x0])
            comp[x0] = cid
            while q:
                x = q.popleft()
                members.append(x)
                for y in adj[x]:
                    if y not in comp:
                        comp[y] = cid
                        q.append(y)
            comps.append(members)
        return comps

    # ------------------------------------------------------------------
    # communication-related measurements
    # ------------------------------------------------------------------
    def bfs(self, root):
        dist = [-1] * self.num_vertices
        dist[root] = 0
        q = deque([root])
        while q:
            x = q.popleft()
            for y in self.adj[x]:
                if dist[y] == -1:
                    dist[y] = dist[x] + 1
                    q.append(y)
        return dist

    def eccentricity(self, root=0):
        return max(d for d in self.bfs(root) if d >= 0)

    def diameter_upper_bound(self):
        """2-approximation: double one eccentricity."""
        ecc = self.eccentricity(0)
        return 2 * ecc

    def to_networkx(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_vertices))
        for x in range(self.num_vertices):
            for y in self.adj[x]:
                g.add_edge(x, y)
        return g

    @property
    def congest_overhead(self):
        """Rounds of G needed to simulate one round of Ĝ (Property 3)."""
        return 2
