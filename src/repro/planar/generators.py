"""Generators for embedded planar graph families.

Every generator builds the rotation system directly (no planarity solver
in the loop), and each family offers a different diameter regime, which
is what the round-complexity experiments sweep over:

=====================  =============================  ==================
family                 n                              hop diameter D
=====================  =============================  ==================
``grid``               rows*cols                      rows+cols-2
``cylinder``           rows*cols                      rows-1 + cols//2
``ladder``             2*k                            k   (max-D family)
``wheel``              k+1                            2   (min-D family)
``triangulated_disk``  arbitrary                      Θ(√n)
``random_planar``      arbitrary                      Θ(√n) typically
``outerplanar_fan``    k                              2
=====================  =============================  ==================

Weights and capacities are assigned by ``weight_fn`` hooks or the
``randomize_*`` helpers, always with integral polynomially-bounded values
as the paper assumes (Section 3).
"""

from __future__ import annotations

import math
import random

from repro.planar.graph import PlanarGraph


def _build(n, edges, neighbor_order):
    """Assemble rotations from, per vertex, the desired cw neighbor order
    given as a list of edge ids (tail implied)."""
    rotations = [[] for _ in range(n)]
    for v in range(n):
        for eid in neighbor_order[v]:
            u, w = edges[eid]
            dart = 2 * eid if u == v else 2 * eid + 1
            rotations[v].append(dart)
    return PlanarGraph(n, edges, rotations)


def grid(rows, cols):
    """rows x cols grid, embedded in the plane.

    Vertex (r, c) has id ``r*cols + c``.  Clockwise neighbor order at each
    vertex: up, right, down, left (consistent with a planar drawing with
    row 0 at the top).
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid needs rows, cols >= 1")
    n = rows * cols

    def vid(r, c):
        return r * cols + c

    edges = []
    eid_of = {}
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                eid_of[(vid(r, c), vid(r, c + 1))] = len(edges)
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                eid_of[(vid(r, c), vid(r + 1, c))] = len(edges)
                edges.append((vid(r, c), vid(r + 1, c)))

    def eid(a, b):
        return eid_of.get((a, b), eid_of.get((b, a)))

    order = [[] for _ in range(n)]
    for r in range(rows):
        for c in range(cols):
            v = vid(r, c)
            cw = []
            if r > 0:
                cw.append(eid(v, vid(r - 1, c)))      # up
            if c + 1 < cols:
                cw.append(eid(v, vid(r, c + 1)))      # right
            if r + 1 < rows:
                cw.append(eid(v, vid(r + 1, c)))      # down
            if c > 0:
                cw.append(eid(v, vid(r, c - 1)))      # left
            order[v] = cw
    return _build(n, edges, order)


def cylinder(rows, cols):
    """Grid with the columns wrapped into a cycle (rows x cols tube).

    Planar (it is a subgraph of the sphere grid); diameter about
    ``rows + cols//2``.
    """
    if cols < 3:
        raise ValueError("cylinder needs cols >= 3")
    n = rows * cols

    def vid(r, c):
        return r * cols + (c % cols)

    edges = []
    eid_of = {}

    def add(a, b):
        eid_of[(a, b)] = len(edges)
        edges.append((a, b))

    for r in range(rows):
        for c in range(cols):
            add(vid(r, c), vid(r, c + 1))
            if r + 1 < rows:
                add(vid(r, c), vid(r + 1, c))

    def eid(a, b):
        return eid_of.get((a, b), eid_of.get((b, a)))

    order = [[] for _ in range(n)]
    for r in range(rows):
        for c in range(cols):
            v = vid(r, c)
            cw = []
            if r > 0:
                cw.append(eid(v, vid(r - 1, c)))
            cw.append(eid(v, vid(r, c + 1)))
            if r + 1 < rows:
                cw.append(eid(v, vid(r + 1, c)))
            cw.append(eid(v, vid(r, c - 1)))
            order[v] = cw
    return _build(n, edges, order)


def ladder(k):
    """2 x k grid: the maximum-diameter planar family (D = k)."""
    return grid(2, k)


def path(k):
    """Path on k vertices (a tree: one face; duals become self-loops)."""
    return grid(1, k)


def wheel(k):
    """Wheel: a k-cycle plus a hub joined to every rim vertex (D = 2)."""
    if k < 3:
        raise ValueError("wheel needs k >= 3")
    n = k + 1
    hub = k
    edges = []
    rim_eid = {}
    spoke_eid = {}
    for i in range(k):
        rim_eid[i] = len(edges)
        edges.append((i, (i + 1) % k))
    for i in range(k):
        spoke_eid[i] = len(edges)
        edges.append((hub, i))

    order = [[] for _ in range(n)]
    for i in range(k):
        # at rim vertex i (cw, hub inside): next rim, spoke, prev rim
        order[i] = [rim_eid[i], spoke_eid[i], rim_eid[(i - 1) % k]]
    order[hub] = [spoke_eid[i] for i in range(k)]
    return _build(n, edges, order)


def outerplanar_fan(k):
    """Fan: path 0-1-...-(k-2) plus vertex k-1 joined to all (D = 2)."""
    if k < 3:
        raise ValueError("fan needs k >= 3")
    n = k
    apex = k - 1
    edges = []
    path_eid = {}
    spoke_eid = {}
    for i in range(k - 2):
        path_eid[i] = len(edges)
        edges.append((i, i + 1))
    for i in range(k - 1):
        spoke_eid[i] = len(edges)
        edges.append((apex, i))

    order = [[] for _ in range(n)]
    for i in range(k - 1):
        cw = []
        if i > 0:
            cw.append(path_eid[i - 1])
        cw.append(spoke_eid[i])
        if i < k - 2:
            cw.append(path_eid[i])
        order[i] = cw
    order[apex] = [spoke_eid[i] for i in range(k - 2, -1, -1)]
    return _build(n, edges, order)


def triangulated_disk(layers):
    """Triangulated disk: Delaunay triangulation of a hexagonal-lattice
    disk with ``layers`` rings around the center (Θ(√n) diameter).
    """
    if layers < 1:
        raise ValueError("need layers >= 1")
    import numpy as np
    from scipy.spatial import Delaunay

    pts = [(0.0, 0.0)]
    s3 = math.sqrt(3.0) / 2.0
    for q in range(-layers, layers + 1):
        for r in range(-layers, layers + 1):
            if q == 0 and r == 0:
                continue
            if abs(q + r) > layers:
                continue
            x = q + r / 2.0
            y = r * s3
            pts.append((x, y))
    pts = np.array(pts)
    tri = Delaunay(pts)
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(len(pts)))
    for simplex in tri.simplices:
        a, b, c = (int(x) for x in simplex)
        g.add_edge(a, b)
        g.add_edge(b, c)
        g.add_edge(a, c)
    from repro.planar.embedding import planar_graph_from_networkx

    pg, _ = planar_graph_from_networkx(g)
    return pg


def random_planar(n, seed=0, keep=1.0):
    """Random planar graph: Delaunay triangulation of random points,
    optionally sparsified by keeping each non-bridging edge with
    probability ``keep`` (the graph stays connected).
    """
    import numpy as np
    from scipy.spatial import Delaunay

    rng = random.Random(seed)
    npr = np.random.default_rng(seed)
    pts = npr.random((n, 2))
    tri = Delaunay(pts)
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(n))
    for simplex in tri.simplices:
        a, b, c = (int(x) for x in simplex)
        g.add_edge(a, b)
        g.add_edge(b, c)
        g.add_edge(a, c)
    if not nx.is_connected(g):  # degenerate point sets
        comps = list(nx.connected_components(g))
        for i in range(len(comps) - 1):
            g.add_edge(next(iter(comps[i])), next(iter(comps[i + 1])))
    if keep < 1.0:
        edges = list(g.edges())
        rng.shuffle(edges)
        for u, v in edges:
            if rng.random() < keep:
                continue
            g.remove_edge(u, v)
            if not nx.has_path(g, u, v):
                g.add_edge(u, v)
    from repro.planar.embedding import planar_graph_from_networkx

    pg, _ = planar_graph_from_networkx(g)
    return pg


def randomize_weights(pg, low=1, high=20, seed=0, directed_capacities=False):
    """Assign random integral weights/capacities in ``[low, high]``.

    Returns a copy; the paper assumes polynomially-bounded integers.
    """
    rng = random.Random(seed)
    w = [rng.randint(low, high) for _ in range(pg.m)]
    c = [rng.randint(low, high) for _ in range(pg.m)] \
        if directed_capacities else list(w)
    return pg.copy(weights=w, capacities=c)


def bidirect(pg, reverse_weights=None, seed=0):
    """Double every edge with an antiparallel twin (embedded alongside).

    Turns any planar digraph into a strongly-connected planar digraph —
    the instances the directed global-min-cut experiments need.  The
    twin of edge ``e`` gets weight ``reverse_weights[e]`` (default: a
    fresh random weight in the same range as the originals).
    """
    import random as _random

    rng = _random.Random(seed)
    m = pg.m
    lo = min(pg.weights)
    hi = max(pg.weights)
    edges = list(pg.edges)
    weights = list(pg.weights)
    caps = list(pg.capacities)
    for eid in range(m):
        u, v = pg.edges[eid]
        edges.append((v, u))
        if reverse_weights is not None:
            w = reverse_weights[eid]
        else:
            w = rng.randint(lo, hi)
        weights.append(w)
        caps.append(w)

    # twin dart ids: edge m+eid has darts 2(m+eid) (v->u), 2(m+eid)+1.
    # The twin is drawn alongside the original, so the pair appears in
    # opposite cw order at the two endpoints.
    rotations = [[] for _ in range(pg.n)]
    for x in range(pg.n):
        for d in pg.rotations[x]:
            eid = d >> 1
            twin = m + eid
            u, v = pg.edges[eid]
            twin_dart = 2 * twin if x == v else 2 * twin + 1
            if x == u:
                rotations[x].append(d)
                rotations[x].append(twin_dart)
            else:
                rotations[x].append(twin_dart)
                rotations[x].append(d)
    out = PlanarGraph(pg.n, edges, rotations, weights=weights,
                      capacities=caps)
    out.check_euler()
    return out
