"""Planar graph substrate: embeddings, darts, faces, duals, separators."""

from repro.planar.graph import PlanarGraph, SubgraphView, rev, edge_of, is_plus
from repro.planar.dual import DualGraph
from repro.planar.embedding import planar_graph_from_networkx

__all__ = [
    "PlanarGraph",
    "SubgraphView",
    "DualGraph",
    "planar_graph_from_networkx",
    "rev",
    "edge_of",
    "is_plus",
]
