"""Construct rotation systems for arbitrary planar graphs via networkx.

The paper assumes every vertex knows a combinatorial embedding of the
network; distributively this is computed in Õ(D) rounds by the planar
embedding algorithm of Ghaffari and Haeupler [13].  In the library, graphs
produced by :mod:`repro.planar.generators` come with an embedding by
construction; for arbitrary input graphs we substitute the distributed
embedding algorithm with ``networkx.check_planarity`` (documented in
DESIGN.md §5) and charge Õ(D) rounds at the call sites that need it.
"""

from __future__ import annotations

from repro.errors import EmbeddingError
from repro.planar.graph import PlanarGraph


def planar_graph_from_networkx(g, weight_attr="weight",
                               capacity_attr="capacity"):
    """Embed an arbitrary planar ``networkx`` graph.

    Accepts an (undirected or directed) simple networkx graph; returns a
    :class:`PlanarGraph` whose edge directions follow the iteration order
    (for directed inputs, the stored direction).  Raises
    :class:`EmbeddingError` if the graph is not planar.
    """
    import networkx as nx

    und = g.to_undirected() if g.is_directed() else g
    ok, emb = nx.check_planarity(und)
    if not ok:
        raise EmbeddingError("input graph is not planar")

    nodes = sorted(g.nodes())
    index = {v: i for i, v in enumerate(nodes)}

    edges = []
    weights = []
    capacities = []
    eid_of = {}
    for u, v, data in g.edges(data=True):
        eid = len(edges)
        edges.append((index[u], index[v]))
        weights.append(data.get(weight_attr, 1))
        capacities.append(data.get(capacity_attr, data.get(weight_attr, 1)))
        key = frozenset((u, v))
        eid_of.setdefault(key, []).append((u, eid))

    rotations = [[] for _ in nodes]
    used = set()
    for v in nodes:
        order = list(emb.neighbors_cw_order(v)) if emb.degree(v) else []
        for w in order:
            key = frozenset((v, w))
            # pick an unused parallel edge instance (simple graphs: one)
            for stored_u, eid in eid_of[key]:
                if (eid, v) in used:
                    continue
                used.add((eid, v))
                dart = 2 * eid if edges[eid][0] == index[v] else 2 * eid + 1
                rotations[index[v]].append(dart)
                break
    pg = PlanarGraph(len(nodes), edges, rotations,
                     weights=weights, capacities=capacities)
    pg.check_euler()
    return pg, index
