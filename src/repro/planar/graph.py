"""Embedded planar graphs: rotation systems, darts, faces.

The central data structure of the library.  A planar graph is stored as a
*combinatorial embedding* (rotation system): for every vertex, the cyclic
clockwise order of its incident darts.  Every edge ``e = (u, v)`` owns two
darts:

* dart ``2*e``   — tail ``u``, head ``v`` (the *plus* dart, agreeing with
  the direction of the edge when the graph is directed);
* dart ``2*e+1`` — tail ``v``, head ``u`` (the *reverse* dart).

``rev(d) == d ^ 1``.  Faces are the orbits of the permutation
``next(d) = cw_successor_at_head(rev(d))``; with this convention every dart
belongs to exactly one face (the face on one fixed side of the dart), which
is precisely the dart/face formalism the paper uses in Section 5
("each face of G is a cycle of darts", Figure 10).

Both the full graph and edge-subset *views* (used for the bags of the
bounded-diameter decomposition) expose the same traversal interface, and
views never relabel vertices or darts — identities are global, which is
what makes face-part tracking across the decomposition straightforward.
"""

from __future__ import annotations

from collections import deque

from repro.errors import EmbeddingError, NotConnectedError


def rev(dart):
    """Reverse dart: the same edge traversed in the opposite direction."""
    return dart ^ 1


def edge_of(dart):
    """Edge id that the dart belongs to."""
    return dart >> 1


def is_plus(dart):
    """True when the dart agrees with the stored direction of its edge."""
    return (dart & 1) == 0


class PlanarGraph:
    """An embedded planar (multi)graph.

    Parameters
    ----------
    n:
        Number of vertices, labelled ``0 .. n-1``.
    edges:
        List of ``(u, v)`` pairs; the position in the list is the edge id.
        Parallel edges and self-loops are allowed (the dual graph needs
        them), although the standard generators produce simple graphs.
    rotations:
        ``rotations[v]`` is the list of darts whose tail is ``v``, in
        clockwise cyclic order.  Every dart must appear exactly once over
        all rotations.
    weights:
        Optional per-edge weights (lengths); defaults to 1 for every edge.
    capacities:
        Optional per-edge capacities; defaults to ``weights``.
    """

    def __init__(self, n, edges, rotations, weights=None, capacities=None,
                 validate=True):
        self.n = n
        self.edges = [tuple(e) for e in edges]
        self.rotations = [list(r) for r in rotations]
        m = len(self.edges)
        self.weights = list(weights) if weights is not None else [1] * m
        if capacities is not None:
            self.capacities = list(capacities)
        else:
            self.capacities = list(self.weights)

        # Position of each dart inside the rotation of its tail.
        self._dart_pos = [-1] * (2 * m)
        for v, rot in enumerate(self.rotations):
            for i, d in enumerate(rot):
                self._dart_pos[d] = i

        self._faces = None
        self._face_of = None

        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # basic dart arithmetic
    # ------------------------------------------------------------------
    @property
    def m(self):
        """Number of edges."""
        return len(self.edges)

    @property
    def num_darts(self):
        return 2 * len(self.edges)

    def tail(self, dart):
        u, v = self.edges[dart >> 1]
        return u if (dart & 1) == 0 else v

    def head(self, dart):
        u, v = self.edges[dart >> 1]
        return v if (dart & 1) == 0 else u

    def endpoints(self, eid):
        return self.edges[eid]

    def darts(self):
        """Iterate over all dart ids."""
        return range(2 * len(self.edges))

    def degree(self, v):
        return len(self.rotations[v])

    def neighbors(self, v):
        """Heads of darts leaving ``v`` (with multiplicity)."""
        return [self.head(d) for d in self.rotations[v]]

    def out_darts(self, v):
        return self.rotations[v]

    # ------------------------------------------------------------------
    # rotation / face structure
    # ------------------------------------------------------------------
    def cw_successor(self, dart):
        """The next dart clockwise around ``tail(dart)``."""
        v = self.tail(dart)
        rot = self.rotations[v]
        i = self._dart_pos[dart]
        return rot[(i + 1) % len(rot)]

    def cw_predecessor(self, dart):
        v = self.tail(dart)
        rot = self.rotations[v]
        i = self._dart_pos[dart]
        return rot[(i - 1) % len(rot)]

    def next_in_face(self, dart):
        """Successor of ``dart`` along its face cycle."""
        return self.cw_successor(rev(dart))

    @property
    def faces(self):
        """List of faces; each face is a tuple of darts in traversal order."""
        if self._faces is None:
            self._compute_faces()
        return self._faces

    @property
    def face_of(self):
        """``face_of[d]`` is the face id containing dart ``d``."""
        if self._face_of is None:
            self._compute_faces()
        return self._face_of

    def num_faces(self):
        return len(self.faces)

    def _compute_faces(self):
        nd = self.num_darts
        face_of = [-1] * nd
        faces = []
        for d0 in range(nd):
            if face_of[d0] != -1:
                continue
            cycle = []
            d = d0
            while face_of[d] == -1:
                face_of[d] = len(faces)
                cycle.append(d)
                d = self.next_in_face(d)
            if d != d0:
                raise EmbeddingError(
                    "face traversal did not return to the starting dart; "
                    "the rotation system is inconsistent")
            faces.append(tuple(cycle))
        self._faces = faces
        self._face_of = face_of

    def corner_face(self, v, i):
        """Face occupying the corner at ``v`` after rotation position ``i``.

        The corner between consecutive darts ``rotations[v][i]`` and
        ``rotations[v][i+1]`` belongs to the face whose traversal leaves
        ``v`` via ``rotations[v][(i+1) % deg]``.
        """
        rot = self.rotations[v]
        return self.face_of[rot[(i + 1) % len(rot)]]

    # ------------------------------------------------------------------
    # global checks
    # ------------------------------------------------------------------
    def _validate(self):
        seen = [False] * self.num_darts
        for v, rot in enumerate(self.rotations):
            for d in rot:
                if d < 0 or d >= self.num_darts:
                    raise EmbeddingError(f"dart {d} out of range")
                if self.tail(d) != v:
                    raise EmbeddingError(
                        f"dart {d} appears in rotation of {v} but its tail "
                        f"is {self.tail(d)}")
                if seen[d]:
                    raise EmbeddingError(f"dart {d} appears twice")
                seen[d] = True
        if not all(seen):
            missing = seen.index(False)
            raise EmbeddingError(f"dart {missing} missing from rotations")

    def check_euler(self):
        """Verify Euler's formula ``n - m + f = 1 + c`` (c components).

        Holds for every valid embedding of a planar graph in the sphere
        with one face set per component; raises otherwise.
        """
        comps = self.connected_components()
        c = len(comps)
        f = self.num_faces()
        # For a disconnected plane graph each extra component shares the
        # outer face, so n - m + f = 1 + c.
        if self.n - self.m + f != 1 + c:
            raise EmbeddingError(
                f"Euler check failed: n={self.n} m={self.m} f={f} c={c}")
        return True

    # ------------------------------------------------------------------
    # traversals
    # ------------------------------------------------------------------
    def bfs(self, root, weights=None):
        """Unweighted BFS.  Returns (dist list, parent-dart list).

        ``parent[v]`` is the dart by which ``v`` was discovered (head v).
        """
        dist = [-1] * self.n
        parent = [-1] * self.n
        dist[root] = 0
        q = deque([root])
        while q:
            u = q.popleft()
            for d in self.rotations[u]:
                w = self.head(d)
                if dist[w] == -1:
                    dist[w] = dist[u] + 1
                    parent[w] = d
                    q.append(w)
        return dist, parent

    def connected_components(self):
        comp = [-1] * self.n
        comps = []
        for s in range(self.n):
            if comp[s] != -1 or (self.degree(s) == 0 and self.n > 1):
                # isolated vertices form their own components below
                pass
            if comp[s] != -1:
                continue
            cur = len(comps)
            comp[s] = cur
            members = [s]
            q = deque([s])
            while q:
                u = q.popleft()
                for d in self.rotations[u]:
                    w = self.head(d)
                    if comp[w] == -1:
                        comp[w] = cur
                        members.append(w)
                        q.append(w)
            comps.append(members)
        self._component_of = comp
        return comps

    def is_connected(self):
        return len(self.connected_components()) == 1

    def diameter(self):
        """Exact unweighted hop diameter (over the largest component)."""
        if self.n == 0:
            return 0
        best = 0
        comps = self.connected_components()
        big = max(comps, key=len)
        # Exact: BFS from every vertex of the component.  Fine for the
        # instance sizes the simulator targets.
        for s in big:
            dist, _ = self.bfs(s)
            best = max(best, max(dist[v] for v in big))
        return best

    def eccentricity(self, root):
        dist, _ = self.bfs(root)
        return max(d for d in dist if d >= 0)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_networkx(self, directed=False):
        import networkx as nx

        g = nx.MultiDiGraph() if directed else nx.MultiGraph()
        g.add_nodes_from(range(self.n))
        for eid, (u, v) in enumerate(self.edges):
            g.add_edge(u, v, key=eid, weight=self.weights[eid],
                       capacity=self.capacities[eid])
        return g

    def copy(self, weights=None, capacities=None):
        return PlanarGraph(
            self.n, self.edges, self.rotations,
            weights=self.weights if weights is None else weights,
            capacities=self.capacities if capacities is None else capacities,
            validate=False)

    def __getstate__(self):
        # the artifact-cache topology token (repro._artifacts) is
        # process-local: carrying it across a pickle would let a
        # receiving process collide two different graphs in its own
        # caches, so a pickled copy must earn a fresh token there
        state = self.__dict__.copy()
        state.pop("_artifact_topo_token", None)
        return state


class SubgraphView:
    """A live-edge view of a :class:`PlanarGraph`.

    Vertex and dart identities are *global* (those of the parent graph);
    only edges in ``edge_ids`` are visible.  The view supports rotation
    successor queries (skipping dead darts), face traversal — which yields
    the faces of the sub-embedding, i.e. the faces of the bag — and BFS.

    Used for the bags of the bounded-diameter decomposition.
    """

    def __init__(self, parent, edge_ids):
        self.parent = parent
        self.edge_ids = sorted(set(edge_ids))
        self._edge_set = set(self.edge_ids)
        # live rotations: per vertex, the parent's rotation restricted to
        # live darts (preserving cyclic order).
        self._rot = {}
        self._pos = {}
        for eid in self.edge_ids:
            for d in (2 * eid, 2 * eid + 1):
                v = parent.tail(d)
                if v not in self._rot:
                    self._rot[v] = []
        for v in self._rot:
            live = [d for d in parent.rotations[v] if (d >> 1) in self._edge_set]
            self._rot[v] = live
            for i, d in enumerate(live):
                self._pos[d] = i
        self._faces = None
        self._face_of = None

    # -- basic ----------------------------------------------------------
    @property
    def vertices(self):
        return self._rot.keys()

    def has_edge(self, eid):
        return eid in self._edge_set

    def has_dart(self, dart):
        return (dart >> 1) in self._edge_set

    @property
    def m(self):
        return len(self.edge_ids)

    def tail(self, dart):
        return self.parent.tail(dart)

    def head(self, dart):
        return self.parent.head(dart)

    def degree(self, v):
        return len(self._rot.get(v, ()))

    def out_darts(self, v):
        return self._rot.get(v, ())

    def darts(self):
        for eid in self.edge_ids:
            yield 2 * eid
            yield 2 * eid + 1

    # -- rotation / faces -------------------------------------------------
    def cw_successor(self, dart):
        v = self.parent.tail(dart)
        rot = self._rot[v]
        i = self._pos[dart]
        return rot[(i + 1) % len(rot)]

    def next_in_face(self, dart):
        return self.cw_successor(rev(dart))

    @property
    def faces(self):
        if self._faces is None:
            self._compute_faces()
        return self._faces

    @property
    def face_of(self):
        """dict: dart -> local face index of the view."""
        if self._face_of is None:
            self._compute_faces()
        return self._face_of

    def _compute_faces(self):
        face_of = {}
        faces = []
        for d0 in self.darts():
            if d0 in face_of:
                continue
            cycle = []
            d = d0
            while d not in face_of:
                face_of[d] = len(faces)
                cycle.append(d)
                d = self.next_in_face(d)
            if d != d0:
                raise EmbeddingError("inconsistent sub-rotation system")
            faces.append(tuple(cycle))
        self._faces = faces
        self._face_of = face_of

    # -- traversals -------------------------------------------------------
    def bfs(self, root):
        """BFS inside the view.  Returns (dist dict, parent-dart dict)."""
        if root not in self._rot:
            raise NotConnectedError(f"vertex {root} not in view")
        dist = {root: 0}
        parent = {root: -1}
        q = deque([root])
        while q:
            u = q.popleft()
            for d in self._rot[u]:
                w = self.parent.head(d)
                if w not in dist:
                    dist[w] = dist[u] + 1
                    parent[w] = d
                    q.append(w)
        return dist, parent

    def connected_edge_components(self):
        """Partition of live edges into connected components (edge id lists)."""
        seen_v = set()
        comps = []
        for v0 in self._rot:
            if v0 in seen_v or not self._rot[v0]:
                continue
            comp_edges = set()
            seen_v.add(v0)
            q = deque([v0])
            while q:
                u = q.popleft()
                for d in self._rot[u]:
                    comp_edges.add(d >> 1)
                    w = self.parent.head(d)
                    if w not in seen_v:
                        seen_v.add(w)
                        q.append(w)
            comps.append(sorted(comp_edges))
        return comps

    def is_connected(self):
        return len(self.connected_edge_components()) <= 1

    def eccentricity(self, root):
        dist, _ = self.bfs(root)
        return max(dist.values())

    def weak_diameter_estimate(self):
        """2-approximate diameter of the view: eccentricity from one vertex,
        doubled by the triangle inequality bound."""
        v0 = next(iter(self._rot))
        return self.eccentricity(v0)
