"""Balanced fundamental-cycle separators with at most one virtual edge.

This is the library's substitute for the distributed cycle-separator
algorithm of Ghaffari and Parter [17] used inside the BDD of Li and
Parter [27] (see DESIGN.md §5, substitution 2).  The *object* produced is
identical to the paper's: a cycle ``S_X`` consisting of two BFS-tree paths
plus one closing edge ``e_X`` which is either a real edge of the bag or a
*virtual* edge drawn inside one face of the bag (the *critical* face).

Construction (classical interdigitating-trees method):

1. build a BFS tree ``T`` of the bag (so tree paths have length at most
   twice the bag's BFS depth — the Õ(D) bound of BDD property 4);
2. triangulate every face walk combinatorially by ear clipping; each
   diagonal is a *virtual chord* between two distinct vertices on the
   face;
3. the duals of non-tree edges and of the chords form a spanning tree of
   the triangulated dual (*interdigitation*; asserted at runtime);
4. root the dual tree, compute subtree dart-weights, and pick the
   non-tree edge / chord whose fundamental cycle is most balanced.

Because the separating cycle is a closed curve that passes through the
interior of *at most one* face (where the chosen chord lives), all other
faces keep their darts on a single side — exactly the "few face-parts"
behaviour (Lemma 5.3) that the dual decomposition relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DecompositionError, NotConnectedError
from repro.planar.graph import rev


@dataclass
class SeparatorResult:
    """Output of :func:`fundamental_cycle_separator`."""

    #: vertices of the cycle, in path order u .. lca .. v (endpoints of e_X)
    cycle_vertices: list
    #: real edge ids of the two tree paths composing the cycle
    cycle_edge_ids: list
    #: endpoints of the closing edge e_X
    chord_endpoints: tuple
    #: True when e_X is a virtual edge (not an edge of the bag)
    chord_virtual: bool
    #: edge id of e_X when it is a real edge
    chord_eid: int
    #: view-face id inside which a virtual e_X is embedded
    critical_view_face: int
    #: darts of the view strictly enclosed by the cycle
    inside_darts: set
    #: darts of the view strictly outside
    outside_darts: set
    #: max(|inside|, |outside|) / total darts
    balance: float
    #: BFS tree used (dict vertex -> parent dart)
    tree_parent: dict = field(repr=False, default=None)
    #: depth of the BFS tree
    tree_depth: int = 0


def ear_clip(face_darts, tails):
    """Triangulate one face walk by ear clipping.

    Parameters: the dart list of the face and ``tails[i] = tail of dart i``.
    Returns ``(num_triangles, triangle_of_dart, chords)`` where
    ``triangle_of_dart`` maps each dart of the walk to a local triangle
    index and ``chords`` is a list of
    ``(u, v, triangle_a, triangle_b)`` tuples — the two triangles on
    either side of each diagonal.

    Shared reference kernel: the engine decomposition backend
    (:mod:`repro.engine.decomp`) triangulates its array-built face walks
    with this exact function, so chord endpoints and triangle ids — and
    therefore the chosen separator — agree bit for bit with the legacy
    path by construction.
    """
    k = len(face_darts)
    if k <= 2:
        return 1, {d: 0 for d in face_darts}, []

    # sides: ("dart", d) or ("chord", chord_index)
    sides = [("dart", d) for d in face_darts]
    occ = list(tails)           # occ[i] = vertex before side i
    triangle_of_dart = {}
    chords = []                 # [u, v, tri_a, tri_b]
    chord_owner = {}            # chord idx -> first owning triangle
    num_tri = 0

    def settle_side(side, tri):
        kind, val = side
        if kind == "dart":
            triangle_of_dart[val] = tri
        else:
            if val in chord_owner:
                chords[val][3] = tri
            else:
                chord_owner[val] = tri
                chords[val][2] = tri

    # Clip ears at occurrences 1..len-1 only (avoids wrap-around index
    # bookkeeping; those corners always suffice for simple-graph walks).
    i = 1
    stuck = 0
    while len(sides) > 3:
        kk = len(sides)
        if i >= kk:
            i = 1
        a = occ[i - 1]
        b = occ[(i + 1) % kk]
        if a == b:
            i += 1
            stuck += 1
            if stuck > kk + 1:
                raise DecompositionError(
                    "ear clipping stuck: face walk alternates between two "
                    "vertices (parallel edges in a supposedly simple bag)")
            continue
        stuck = 0
        tri = num_tri
        num_tri += 1
        settle_side(sides[i - 1], tri)
        settle_side(sides[i], tri)
        cidx = len(chords)
        chords.append([a, b, tri, -1])
        chord_owner[cidx] = tri
        sides[i - 1:i + 1] = [("chord", cidx)]
        occ.pop(i)
        i = max(i - 1, 1)

    tri = num_tri
    num_tri += 1
    for side in sides:
        settle_side(side, tri)
    fixed = [(u, v, ta, tb) for (u, v, ta, tb) in chords]
    return num_tri, triangle_of_dart, fixed


#: backwards-compatible alias (the helper predates its public role)
_ear_clip = ear_clip


def fundamental_cycle_paths(parent, tail_of, u, v):
    """The fundamental cycle of chord ``(u, v)`` in a BFS tree.

    ``parent`` maps a vertex to its parent dart (head = the vertex,
    ``-1`` at the root) — a dict for the legacy
    :class:`~repro.planar.graph.SubgraphView` path, a flat list for the
    engine kernels; ``tail_of`` resolves a dart to its tail vertex.
    Returns ``(cycle_vertices, cycle_edge_ids)`` in the path order
    ``u .. lca .. v`` that :class:`SeparatorResult` documents.

    Shared reference kernel of the two decomposition backends (see
    :func:`ear_clip`).
    """
    def path_to_root(x):
        p = [x]
        while parent[x] != -1:
            x = tail_of(parent[x])
            p.append(x)
        return p

    pu = path_to_root(u)
    pv = path_to_root(v)
    su = set(pu)
    lca = next(x for x in pv if x in su)
    path_u = pu[:pu.index(lca) + 1]
    path_v = pv[:pv.index(lca) + 1]
    cycle_vertices = path_u + path_v[-2::-1]  # u..lca..v (v last)

    cycle_edge_ids = []
    for x in path_u[:-1]:
        cycle_edge_ids.append(parent[x] >> 1)
    for x in path_v[:-1]:
        cycle_edge_ids.append(parent[x] >> 1)
    return cycle_vertices, cycle_edge_ids


def fundamental_cycle_separator(view, dart_weights=None, root=None):
    """Compute a balanced cycle separator of a connected subgraph view.

    ``dart_weights``: optional map dart -> weight for the balance
    criterion (defaults to 1 per live dart).  ``root``: BFS root.
    Returns a :class:`SeparatorResult`.
    """
    if view.m == 0:
        raise NotConnectedError("empty view")
    verts = list(view.vertices)
    if root is None:
        root = verts[0]
    dist, parent = view.bfs(root)
    if len(dist) != len(verts):
        raise NotConnectedError("view is not connected")
    depth = max(dist.values())
    tree_edges = {d >> 1 for d in parent.values() if d != -1}

    # --- triangulate all faces, build triangle table --------------------
    tri_base = []               # global triangle id base per face
    tri_of_dart = {}
    all_chords = []             # (u, v, gtri_a, gtri_b, view_face_id)
    total_tris = 0
    for fid, fdarts in enumerate(view.faces):
        tails = [view.tail(d) for d in fdarts]
        ntri, tod, chords = ear_clip(list(fdarts), tails)
        tri_base.append(total_tris)
        for d, t in tod.items():
            tri_of_dart[d] = total_tris + t
        for (u, v, ta, tb) in chords:
            all_chords.append((u, v, total_tris + ta, total_tris + tb, fid))
        total_tris += ntri

    # --- dual tree: chords + duals of non-tree edges --------------------
    # candidate id: ("chord", idx) or ("edge", eid)
    dual_adj = [[] for _ in range(total_tris)]
    candidates = []
    for idx, (u, v, ta, tb, fid) in enumerate(all_chords):
        cid = len(candidates)
        candidates.append(("chord", idx))
        dual_adj[ta].append((tb, cid))
        dual_adj[tb].append((ta, cid))
    for eid in view.edge_ids:
        if eid in tree_edges:
            continue
        ta = tri_of_dart[2 * eid]
        tb = tri_of_dart[2 * eid + 1]
        cid = len(candidates)
        candidates.append(("edge", eid))
        dual_adj[ta].append((tb, cid))
        dual_adj[tb].append((ta, cid))

    if len(candidates) != total_tris - 1:
        raise DecompositionError(
            f"interdigitating dual graph is not a tree: {total_tris} "
            f"triangles vs {len(candidates)} dual edges")

    # --- subtree weights -------------------------------------------------
    if dart_weights is None:
        tri_weight = [0.0] * total_tris
        for d in view.darts():
            tri_weight[tri_of_dart[d]] += 1.0
        total_weight = float(2 * view.m)
    else:
        tri_weight = [0.0] * total_tris
        total_weight = 0.0
        for d in view.darts():
            w = dart_weights.get(d, 0.0)
            tri_weight[tri_of_dart[d]] += w
            total_weight += w

    # root the dual tree at the triangle of the first dart of the largest
    # face (a stand-in for the outer face; any choice is sound).
    outer_face = max(range(len(view.faces)), key=lambda f: len(view.faces[f]))
    dual_root = tri_of_dart[view.faces[outer_face][0]]

    order = []                  # DFS preorder
    par = [(-1, -1)] * total_tris   # (parent tri, candidate id)
    seen = [False] * total_tris
    stack = [dual_root]
    seen[dual_root] = True
    while stack:
        t = stack.pop()
        order.append(t)
        for (t2, cid) in dual_adj[t]:
            if not seen[t2]:
                seen[t2] = True
                par[t2] = (t, cid)
                stack.append(t2)
    if not all(seen):
        raise DecompositionError("dual tree is disconnected")

    sub = list(tri_weight)
    for t in reversed(order):
        pt, _ = par[t]
        if pt != -1:
            sub[pt] += sub[t]

    # --- choose the most balanced candidate -----------------------------
    best = None
    for t in range(total_tris):
        pt, cid = par[t]
        if pt == -1:
            continue
        inside = sub[t]
        score = max(inside, total_weight - inside)
        if best is None or score < best[0]:
            best = (score, cid, t)
    if best is None:
        raise DecompositionError("no separator candidate (single triangle)")
    score, cid, sub_root = best
    kind, val = candidates[cid]

    if kind == "chord":
        u, v, _ta, _tb, crit_face = all_chords[val]
        chord_virtual = True
        chord_eid = -1
    else:
        eid = val
        u, v = view.parent.edges[eid]
        chord_virtual = False
        chord_eid = eid
        crit_face = -1

    # --- tree path u -> lca -> v ----------------------------------------
    cycle_vertices, cycle_edge_ids = fundamental_cycle_paths(
        parent, view.tail, u, v)

    # --- dart sides -------------------------------------------------------
    in_sub = [False] * total_tris
    stack = [sub_root]
    in_sub[sub_root] = True
    while stack:
        t = stack.pop()
        for (t2, cid2) in dual_adj[t]:
            if not in_sub[t2] and par[t2] == (t, cid2):
                in_sub[t2] = True
                stack.append(t2)
    inside_darts = {d for d in view.darts() if in_sub[tri_of_dart[d]]}
    outside_darts = {d for d in view.darts() if not in_sub[tri_of_dart[d]]}

    # sanity: non-cycle edges keep both darts on one side
    cyc = set(cycle_edge_ids)
    if not chord_virtual:
        cyc.add(chord_eid)
    for eid in view.edge_ids:
        if eid in cyc:
            continue
        a = (2 * eid) in inside_darts
        b = (2 * eid + 1) in inside_darts
        if a != b:
            raise DecompositionError(
                f"edge {eid} off the cycle has darts on both sides")

    return SeparatorResult(
        cycle_vertices=cycle_vertices,
        cycle_edge_ids=cycle_edge_ids,
        chord_endpoints=(u, v),
        chord_virtual=chord_virtual,
        chord_eid=chord_eid,
        critical_view_face=crit_face,
        inside_darts=inside_darts,
        outside_darts=outside_darts,
        balance=score / total_weight if total_weight else 1.0,
        tree_parent=parent,
        tree_depth=depth,
    )
