"""The dual graph G* of an embedded planar graph.

The dual has a node per face of ``G`` and, following the dart formalism of
the paper (Sections 3 and 6), an *arc per dart*: the arc of dart ``d``
goes from the face containing ``d`` to the face containing ``rev(d)``
("from the face on the left of e to the face on the right of e").  The
undirected dual edge ``e*`` of edge ``e`` is the arc of the plus dart
``2e``; the arc of ``2e+1`` is its reversal dart.

``G*`` may be a multigraph with self-loops even when ``G`` is simple
(parallel dual edges for faces sharing several edges; self-loops for
bridges), and the library preserves this faithfully — Lemma 4.15's
parallel-edge deactivation is implemented in
:mod:`repro.aggregation.orientation`, not hidden here.

This module also contains the *centralized* shortest-path and cycle-space
reference routines that the distributed algorithms are verified against.
"""

from __future__ import annotations

from collections import deque

from repro.errors import NegativeCycleError
from repro.planar.graph import rev


class DualGraph:
    """Dual of an embedded :class:`~repro.planar.graph.PlanarGraph`."""

    def __init__(self, primal):
        self.primal = primal
        self.num_nodes = primal.num_faces()
        self.face_of = primal.face_of
        self._workspace = None

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def arc(self, dart):
        """Dual arc of ``dart``: (tail face, head face)."""
        return self.face_of[dart], self.face_of[rev(dart)]

    def arcs(self, lengths=None):
        """All dual arcs as ``(dart, tail_face, head_face, length)``.

        ``lengths`` maps dart -> length; defaults to the primal edge
        weight on plus darts and 0 on reverse darts (the directed
        capacity convention of Sections 6-7).
        """
        out = []
        for d in self.primal.darts():
            t, h = self.arc(d)
            if lengths is not None:
                ln = lengths[d]
            else:
                ln = self.primal.weights[d >> 1] if (d & 1) == 0 else 0
            out.append((d, t, h, ln))
        return out

    def undirected_edges(self):
        """One undirected dual edge per primal edge: (eid, f, g, weight)."""
        out = []
        for eid in range(self.primal.m):
            f, g = self.arc(2 * eid)
            out.append((eid, f, g, self.primal.weights[eid]))
        return out

    def node_of_face(self, face_id):
        return face_id

    def degree(self, face_id):
        return len(self.primal.faces[face_id])

    # ------------------------------------------------------------------
    # centralized references (used by tests and leaf-bag computations)
    # ------------------------------------------------------------------
    def bellman_ford(self, source, lengths, backend="legacy"):
        """Exact SSSP on the dual arcs with arbitrary (± integral) lengths.

        ``lengths``: dart -> length.  Returns dict face -> distance.
        Raises :class:`NegativeCycleError` if a negative cycle is
        reachable from ``source``.

        ``backend="engine"`` runs on the compiled CSR dual with a
        workspace cached on this instance (same distances, reusable
        buffers — the fast path for repeated queries on one graph).
        """
        if backend == "engine":
            return {f: d for f, d in
                    enumerate(self.workspace(lengths).sssp(source))}
        if backend != "legacy":
            raise ValueError(f"unknown backend {backend!r}; "
                             f"expected one of ('legacy', 'engine')")
        arcs = [(self.face_of[d], self.face_of[rev(d)], lengths[d])
                for d in self.primal.darts()]
        return bellman_ford_arcs(self.num_nodes, arcs, source)

    def workspace(self, lengths=None):
        """The cached :class:`~repro.engine.workspace.FlowWorkspace`
        over this dual's compiled topology, optionally loaded with
        per-dart ``lengths``."""
        if self._workspace is None:
            from repro.engine import FlowWorkspace, compile_graph

            self._workspace = FlowWorkspace(compile_graph(self.primal))
        if lengths is not None:
            self._workspace.load_lengths(lengths)
        return self._workspace

    def all_faces_of_vertex(self, v):
        """Face ids of all faces containing vertex ``v``."""
        p = self.primal
        return sorted({p.face_of[d] for d in p.rotations[v]}
                      | {p.face_of[rev(d)] for d in p.rotations[v]})


def bellman_ford_arcs(num_nodes, arcs, source):
    """Centralized Bellman-Ford over an arc list with negative lengths.

    SPFA-style queue implementation with a relaxation counter for
    negative-cycle detection.  Reference implementation: the distributed
    algorithms are validated against it.
    """
    inf = float("inf")
    dist = [inf] * num_nodes
    cnt = [0] * num_nodes
    dist[source] = 0
    out = [[] for _ in range(num_nodes)]
    for t, h, ln in arcs:
        out[t].append((h, ln))
    q = deque([source])
    inq = [False] * num_nodes
    inq[source] = True
    while q:
        u = q.popleft()
        inq[u] = False
        du = dist[u]
        for h, ln in out[u]:
            nd = du + ln
            if nd < dist[h]:
                dist[h] = nd
                cnt[h] += 1
                if cnt[h] > num_nodes:
                    raise NegativeCycleError(where="bellman_ford_arcs")
                if not inq[h]:
                    inq[h] = True
                    q.append(h)
    return {v: dist[v] for v in range(num_nodes)}


def cut_edges_of_dual_cut(primal, side_faces):
    """Primal edges dual to the cut (side_faces, rest) in G*.

    By cycle-cut duality (Fact 3.1) these form a cycle in ``G`` when the
    cut is simple.  Used by the girth algorithm and its tests.
    """
    side = set(side_faces)
    out = []
    for eid in range(primal.m):
        f = primal.face_of[2 * eid]
        g = primal.face_of[2 * eid + 1]
        if (f in side) != (g in side):
            out.append(eid)
    return out


def is_simple_cycle(primal, edge_ids):
    """Check that ``edge_ids`` form a simple cycle in the primal graph."""
    if not edge_ids:
        return False
    deg = {}
    verts = set()
    for eid in edge_ids:
        u, v = primal.edges[eid]
        deg[u] = deg.get(u, 0) + 1
        deg[v] = deg.get(v, 0) + 1
        verts.add(u)
        verts.add(v)
    if any(d != 2 for d in deg.values()):
        return False
    # connectivity of the cycle edges
    adj = {v: [] for v in verts}
    for eid in edge_ids:
        u, v = primal.edges[eid]
        adj[u].append(v)
        adj[v].append(u)
    seen = set()
    stack = [next(iter(verts))]
    while stack:
        u = stack.pop()
        if u in seen:
            continue
        seen.add(u)
        stack.extend(adj[u])
    return seen == verts
