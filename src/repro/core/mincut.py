"""Minimum st-cut: exact directed (Theorem 6.1) and approximate
st-planar (Theorem 6.2).

Exact: run the max-flow algorithm, then find the source side of the
residual graph.  The paper reduces residual reachability to an SSSP with
0/∞ weights solved by the Õ(D²)-round primal SSSP of [27]; the library
substitutes a direct reachability sweep and charges the same Õ(D²)
(DESIGN.md §2) — the *output* (bisection + marked cut edges) is
identical.

Approximate: Reif's duality [39] — an st-separating cycle in the dual is
an st-cut; the (1+ε)-approximate shortest f₁-to-f₂ path found by the
Hassin pipeline closes such a cycle with the virtual dual edge, so its
primal edges are a genuine st-cut of near-minimum capacity (the
validity is exact; only the value is approximate).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.maxflow import PlanarMaxFlow
from repro.errors import InfeasibleFlowError


@dataclass
class MinCutResult:
    value: float
    #: vertices on the source side
    source_side: list
    #: edge ids crossing the cut (directed: from side to complement)
    cut_edge_ids: list
    flow: dict


def min_st_cut(graph, s, t, directed=True, leaf_size=None, ledger=None,
               backend="legacy", solver=None):
    """Exact minimum st-cut (Theorem 6.1).

    ``backend="engine"`` runs the underlying max-flow on the compiled
    array kernel of :mod:`repro.engine` (identical output, no round
    audit); the residual sweep below is backend-independent.

    ``solver`` lets batched callers (the serving layer of
    :mod:`repro.service`) reuse one prebuilt :class:`PlanarMaxFlow` —
    and hence its probe-invariant BDD / compiled-CSR / workspace
    structures — across many ``(s, t)`` pairs.  The solver must have
    been built for the same graph and direction convention, and it
    *carries its own* backend, leaf size and (absent) ledger — passing
    ``ledger`` alongside ``solver`` raises rather than silently
    recording an empty audit.  The result is identical to the per-call
    path because ``min_st_cut`` without a solver builds exactly this
    object.
    """
    if solver is None:
        solver = PlanarMaxFlow(graph, directed=directed,
                               leaf_size=leaf_size, ledger=ledger,
                               backend=backend)
    else:
        if solver.graph is not graph or solver.directed != directed:
            raise ValueError("prebuilt solver does not match the "
                             "requested graph/directedness")
        if ledger is not None:
            raise ValueError("a prebuilt solver carries its own "
                             "(ledger-free) configuration; drop "
                             "ledger= or drop solver= for an audited "
                             "run")
        backend = solver.backend
    res = solver.solve(s, t)

    # residual capacities per dart
    resid = {}
    for eid in range(graph.m):
        x = res.flow[eid]
        resid[2 * eid] = solver.cap[2 * eid] - x
        resid[2 * eid + 1] = solver.cap[2 * eid + 1] + x

    # source side = residual reachability from s (the R' SSSP of §6.2,
    # charged as one more labeling-scale computation)
    if ledger is not None and backend == "legacy":
        ledger.charge(graph.eccentricity(s) ** 2 + 1, "mincut/residual-sssp",
                      ref="Theorem 6.1 via [27] SSSP")
    side = {s}
    q = deque([s])
    while q:
        u = q.popleft()
        for d in graph.rotations[u]:
            if resid[d] > 1e-9:
                w = graph.head(d)
                if w not in side:
                    side.add(w)
                    q.append(w)
    if t in side:
        raise InfeasibleFlowError("sink reachable in residual graph; "
                                  "flow was not maximum")

    cut = []
    val = 0
    for eid, (u, v) in enumerate(graph.edges):
        if directed:
            if u in side and v not in side:
                cut.append(eid)
                val += graph.capacities[eid]
        else:
            if (u in side) != (v in side):
                cut.append(eid)
                val += graph.capacities[eid]
    if val != res.value:
        raise InfeasibleFlowError(
            f"min-cut {val} does not match max-flow {res.value}")
    return MinCutResult(value=val, source_side=sorted(side),
                        cut_edge_ids=cut, flow=res.flow)


def verify_st_cut(graph, s, t, cut_edge_ids, directed=True):
    """Check that removing the cut edges disconnects t from s (in the
    directed sense when ``directed``)."""
    removed = set(cut_edge_ids)
    seen = {s}
    q = deque([s])
    while q:
        u = q.popleft()
        for d in graph.rotations[u]:
            eid = d >> 1
            if eid in removed:
                continue
            if directed and (d & 1):  # dart against edge direction
                continue
            w = graph.head(d)
            if w not in seen:
                seen.add(w)
                q.append(w)
    return t not in seen
