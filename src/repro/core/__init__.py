"""The paper's contributions: max st-flow (Thm 1.2), approximate
st-planar flow (Thm 1.3), min st-cut (Thms 6.1/6.2), directed global
min-cut (Thm 1.5), weighted girth (Thm 1.7)."""

from repro.core.approx_maxflow import ApproxFlowResult, approx_max_st_flow
from repro.core.flow_utils import flow_value_networkx, validate_flow
from repro.core.girth import GirthResult, weighted_girth
from repro.core.global_mincut import (
    GlobalMinCutResult,
    directed_global_mincut,
)
from repro.core.maxflow import MaxFlowResult, PlanarMaxFlow, max_st_flow
from repro.core.mincut import MinCutResult, min_st_cut, verify_st_cut

__all__ = [
    "ApproxFlowResult",
    "approx_max_st_flow",
    "GirthResult",
    "weighted_girth",
    "GlobalMinCutResult",
    "directed_global_mincut",
    "MaxFlowResult",
    "PlanarMaxFlow",
    "max_st_flow",
    "MinCutResult",
    "min_st_cut",
    "verify_st_cut",
    "validate_flow",
    "flow_value_networkx",
]

from repro.core.directed_girth import (  # noqa: E402
    DirectedGirthResult,
    directed_weighted_girth,
)

__all__ += ["DirectedGirthResult", "directed_weighted_girth"]
