"""Weighted girth of undirected planar graphs in Õ(D) rounds
(Theorem 1.7).

Legacy pipeline, exactly as Section 4.3:

1. make the dual simple — deactivate self-loops and collapse parallel
   dual edges, summing their weights (Lemma 4.15, via the low
   out-degree orientation);
2. run the minor-aggregation exact min-cut on G* (Theorem 4.16
   substitute) through the dual simulation host (Theorem 4.14);
3. mark the cut edges (Lemma 4.17); by cycle-cut duality (Fact 3.1)
   they form a minimum-weight cycle of G.

``backend="engine"`` is the centralized fast path (DESIGN.md §7): by
the same duality, the minimum cut of G* *is* a minimum-weight simple
cycle of G, extracted directly as the minimum dart-simple cycle of the
compiled primal (one pruned two-best Dijkstra per vertex,
:mod:`repro.engine.cycles`) — no simulation host, no tree packing, no
round audit.  Both backends canonicalize ``cut_side_faces`` to the dual
side not containing face 0, so on instances with a unique minimum cycle
the results are bit-identical (``tests/test_engine_girth_parity.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.aggregation.dual_sim import DualMAHost
from repro.aggregation.mincut_ma import minor_aggregate_mincut
from repro.aggregation.orientation import deactivate_parallel_edges
from repro.planar.dual import is_simple_cycle

BACKENDS = ("legacy", "engine")


@dataclass
class GirthResult:
    value: float
    #: primal edge ids of a minimum-weight cycle
    cycle_edge_ids: list
    #: dual-side faces of the corresponding cut (canonical: the side
    #: not containing face 0)
    cut_side_faces: list
    ma_rounds: int
    congest_rounds: int


def weighted_girth(graph, ledger=None, num_trees=None, backend="legacy"):
    """Minimum-weight cycle of an undirected weighted planar graph.

    Returns None when the graph is a forest (no cycle).  The round
    ledger is audited on the legacy backend only; ``num_trees`` (the
    tree-packing knob of the Theorem 4.16 substitute) has no effect on
    the engine backend.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; "
                         f"expected one of {BACKENDS}")
    if graph.num_faces() < 2:
        return None
    if backend == "engine":
        return _weighted_girth_engine(graph)

    host = DualMAHost(graph, ledger=ledger)
    ma = host.ma_graph()

    # Lemma 4.15: self-loops out, parallel bundles summed
    representative = deactivate_parallel_edges(ma, lambda a, b: a + b)
    host.charge(ma, "girth/simplify-dual")

    active = ma.active_edges()
    nodes = sorted({e.u for e in active} | {e.v for e in active})
    edges = [(e.u, e.v) for e in active]
    weights = [e.weight for e in active]
    eids = [e.eid for e in active]

    res = minor_aggregate_mincut(nodes, edges, weights,
                                 num_trees=num_trees)
    congest = 0
    if ledger is not None:
        congest = ledger.total()
        ledger.charge(res.ma_rounds * host.pa_rounds, "girth/ma-mincut",
                      detail=f"{res.ma_rounds} MA rounds",
                      ref="Theorem 4.16 via Theorem 4.14")
        congest = ledger.total()

    # map the simple-graph cut edges back through the parallel bundles
    # to primal edge ids (Fact 3.1: they are a cycle of G)
    cycle = []
    for i in res.cut_edge_ids:
        for orig_eid in representative[eids[i]]:
            cycle.append(orig_eid)
    cycle.sort()

    value = sum(graph.weights[e] for e in cycle)
    assert value == res.value, "bundled cut weight mismatch"
    return _girth_result(graph, value, cycle, ma_rounds=res.ma_rounds,
                         congest_rounds=congest)


def _weighted_girth_engine(graph):
    """Engine backend: minimum dart-simple cycle of the compiled primal
    (cycle-cut duality makes it the minimum cut of G*)."""
    from repro.engine.cycles import min_dart_simple_cycle

    host = DualMAHost(graph, backend="engine")
    best = min_dart_simple_cycle(host.engine_cycle_oracle(),
                                 range(graph.n))
    if best is None:  # connected graph with >= 2 faces always has one
        return None
    value, darts = best
    cycle = sorted({d >> 1 for d in darts})
    assert value == sum(graph.weights[e] for e in cycle), \
        "cycle weight mismatch"
    return _girth_result(graph, value, cycle, ma_rounds=0,
                         congest_rounds=0)


def _girth_result(graph, value, cycle, ma_rounds, congest_rounds):
    from repro.engine.cycles import cycle_side_faces

    assert is_simple_cycle(graph, cycle), \
        "dual min cut did not dualize to a simple cycle"
    return GirthResult(value=value, cycle_edge_ids=cycle,
                       cut_side_faces=cycle_side_faces(graph, cycle),
                       ma_rounds=ma_rounds,
                       congest_rounds=congest_rounds)
