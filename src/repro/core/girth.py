"""Weighted girth of undirected planar graphs in Õ(D) rounds
(Theorem 1.7).

Pipeline, exactly as Section 4.3:

1. make the dual simple — deactivate self-loops and collapse parallel
   dual edges, summing their weights (Lemma 4.15, via the low
   out-degree orientation);
2. run the minor-aggregation exact min-cut on G* (Theorem 4.16
   substitute) through the dual simulation host (Theorem 4.14);
3. mark the cut edges (Lemma 4.17); by cycle-cut duality (Fact 3.1)
   they form a minimum-weight cycle of G.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.aggregation.dual_sim import DualMAHost
from repro.aggregation.mincut_ma import minor_aggregate_mincut
from repro.aggregation.orientation import deactivate_parallel_edges
from repro.planar.dual import is_simple_cycle


@dataclass
class GirthResult:
    value: float
    #: primal edge ids of a minimum-weight cycle
    cycle_edge_ids: list
    #: dual-side faces of the corresponding cut
    cut_side_faces: list
    ma_rounds: int
    congest_rounds: int


def weighted_girth(graph, ledger=None, num_trees=None):
    """Minimum-weight cycle of an undirected weighted planar graph.

    Returns None when the graph is a forest (no cycle).
    """
    if graph.num_faces() < 2:
        return None

    host = DualMAHost(graph, ledger=ledger)
    ma = host.ma_graph()

    # Lemma 4.15: self-loops out, parallel bundles summed
    representative = deactivate_parallel_edges(ma, lambda a, b: a + b)
    host.charge(ma, "girth/simplify-dual")

    active = ma.active_edges()
    nodes = sorted({e.u for e in active} | {e.v for e in active})
    edges = [(e.u, e.v) for e in active]
    weights = [e.weight for e in active]
    eids = [e.eid for e in active]

    res = minor_aggregate_mincut(nodes, edges, weights,
                                 num_trees=num_trees)
    congest = 0
    if ledger is not None:
        congest = ledger.total()
        ledger.charge(res.ma_rounds * host.pa_rounds, "girth/ma-mincut",
                      detail=f"{res.ma_rounds} MA rounds",
                      ref="Theorem 4.16 via Theorem 4.14")
        congest = ledger.total()

    # map the simple-graph cut edges back through the parallel bundles
    # to primal edge ids (Fact 3.1: they are a cycle of G)
    cycle = []
    for i in res.cut_edge_ids:
        for orig_eid in representative[eids[i]]:
            cycle.append(orig_eid)
    cycle.sort()

    value = sum(graph.weights[e] for e in cycle)
    assert value == res.value, "bundled cut weight mismatch"
    assert is_simple_cycle(graph, cycle), \
        "dual min cut did not dualize to a simple cycle"

    return GirthResult(value=value, cycle_edge_ids=cycle,
                       cut_side_faces=list(res.side_nodes),
                       ma_rounds=res.ma_rounds,
                       congest_rounds=congest)
