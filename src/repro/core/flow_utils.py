"""Flow validation and conversion utilities.

Every flow the library outputs is validated against the standard
definitions (capacity constraints, conservation, value at the source)
by :func:`validate_flow`; the independent value oracle for tests is
:func:`flow_value_networkx`.
"""

from __future__ import annotations

from repro.errors import InfeasibleFlowError


def validate_flow(graph, s, t, flow, value, directed=True, tol=1e-6):
    """Check that ``flow`` (dict eid -> signed flow along the stored edge
    direction) is a feasible s-t flow of the given value.

    Raises :class:`InfeasibleFlowError` on violation; returns True.
    """
    net = [0.0] * graph.n
    for eid, (u, v) in enumerate(graph.edges):
        x = flow.get(eid, 0.0)
        cap = graph.capacities[eid]
        if directed:
            if x < -tol or x > cap + tol:
                raise InfeasibleFlowError(
                    f"edge {eid}: flow {x} outside [0, {cap}]")
        else:
            if abs(x) > cap + tol:
                raise InfeasibleFlowError(
                    f"edge {eid}: |flow| {x} exceeds capacity {cap}")
        net[u] -= x
        net[v] += x
    for v in range(graph.n):
        if v in (s, t):
            continue
        if abs(net[v]) > tol:
            raise InfeasibleFlowError(
                f"conservation violated at vertex {v}: net {net[v]}")
    if abs(net[s] + value) > tol:
        raise InfeasibleFlowError(
            f"source imbalance {net[s]} != -value {-value}")
    if abs(net[t] - value) > tol:
        raise InfeasibleFlowError(
            f"sink imbalance {net[t]} != value {value}")
    return True


def flow_value_networkx(graph, s, t, directed=True):
    """Independent max-flow value via networkx (tests/benchmark oracle)."""
    import networkx as nx

    if directed:
        g = nx.DiGraph()
        g.add_nodes_from(range(graph.n))
        for eid, (u, v) in enumerate(graph.edges):
            cap = graph.capacities[eid]
            if g.has_edge(u, v):
                g[u][v]["capacity"] += cap
            else:
                g.add_edge(u, v, capacity=cap)
    else:
        g = nx.Graph()
        g.add_nodes_from(range(graph.n))
        for eid, (u, v) in enumerate(graph.edges):
            cap = graph.capacities[eid]
            if g.has_edge(u, v):
                g[u][v]["capacity"] += cap
            else:
                g.add_edge(u, v, capacity=cap)
    return nx.maximum_flow_value(g, s, t)


def undirected_st_path_darts(graph, s, t):
    """A path of darts from s to t ignoring edge directions (the path P
    of Miller-Naor; found by BFS in O(D) rounds)."""
    dist, parent = graph.bfs(s)
    if dist[t] == -1:
        raise InfeasibleFlowError(f"no undirected path {s} -> {t}")
    darts = []
    v = t
    while v != s:
        d = parent[v]
        darts.append(d)
        v = graph.tail(d)
    darts.reverse()
    return darts
