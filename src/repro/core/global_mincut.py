"""Directed global minimum cut in Õ(D²) rounds (Theorem 1.5, Section 7).

Cycle-cut duality with darts: a directed cut (S, V∖S) corresponds to a
*dart-simple* directed cycle in the dual where crossing edge ``e`` along
its direction costs ``w(e)`` and crossing it against costs 0 (the
reversal darts the paper adds).  The minimum-weight dart-simple directed
dual cycle therefore equals the minimum directed cut.

Recursion over the BDD (Section 7): a shortest cycle is either entirely
inside a child bag (handled recursively — every bag is visited) or
crosses the dual separator ``F_X``; in the latter case it passes through
some ``f ∈ F_X`` and is found by a constrained SSSP from ``f``:

    V_f = min over in-arcs b=(g→f) of
          dist(f→g; first dart ≠ rev(b)) + w(b),

plus dual self-loops at ``f``.  Tracking the best and second-best
distance with *distinct first darts* (one Dijkstra per F_X node; weights
are nonnegative) makes the constraint exact: the paper's "two options"
repair of dart-simplicity (DESIGN.md §5 substitution 6 proves safety and
achievability of this candidate set).

The primal bisection is recovered by removing the cycle's primal edges
and splitting G into components.

``backend="engine"`` runs the same recursion with the array kernels of
DESIGN.md §7: per bag the dual arcs are loaded once into a reusable
:class:`~repro.engine.cycles.DartCycleOracle`, and each ``f ∈ F_X``
query is the batched two-best Dijkstra of
:class:`~repro.engine.dijkstra.TwoBestDijkstra` pruned by the running
best value.  The kernel replicates this module's reference
:func:`_min_cycle_through` tuple for tuple, so the result — value,
side, cut edges and witness cycle darts — is bit-identical to the
legacy backend on every instance, ties included
(``tests/test_engine_girth_parity.py``); the ledger stays unaudited on
the engine path.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass

from repro.bdd import build_bdd, build_all_dual_bags
from repro.errors import SimulationError
from repro.planar.graph import rev

BACKENDS = ("legacy", "engine")


@dataclass
class GlobalMinCutResult:
    value: float
    #: vertices of the S side (edges S -> V∖S have total weight = value)
    side: list
    #: primal edge ids charged by the cut (directed S -> complement)
    cut_edge_ids: list
    #: darts of the dual cycle witnessing the cut
    cycle_darts: list


def directed_global_mincut(graph, leaf_size=None, ledger=None,
                           backend="legacy"):
    """Directed global min cut of a positively-weighted planar digraph.

    The round ledger is audited on the legacy backend only."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; "
                         f"expected one of {BACKENDS}")
    engine = backend == "engine"
    bdd = build_bdd(graph, leaf_size=leaf_size,
                    ledger=None if engine else ledger)
    duals = build_all_dual_bags(bdd)

    lengths = {}
    for eid in range(graph.m):
        lengths[2 * eid] = graph.weights[eid]
        lengths[2 * eid + 1] = 0

    oracle = None
    if engine:
        from repro.engine.cycles import (
            DartCycleOracle,
            min_dart_simple_cycle,
        )

        oracle = DartCycleOracle(graph.num_faces())

    best = None  # (value, cycle darts)
    for bag in bdd.bags:
        dual = duals[bag.bag_id]
        if bag.is_leaf:
            candidates = sorted(dual.nodes)
        else:
            candidates = sorted(dual.f_x)
        if not candidates:
            continue
        if engine:
            # same arcs in the same order as _arc_index, loaded into the
            # reusable buffers; queries prune at the running best value
            oracle.load_arcs(
                [(d, graph.face_of[d], graph.face_of[rev(d)], lengths[d])
                 for d in dual.arc_darts])
            best = min_dart_simple_cycle(oracle, candidates, best=best)
            continue
        arcs = _arc_index(graph, dual, lengths)
        if ledger is not None:
            ledger.charge(len(candidates) + bag.bfs_depth + 1,
                          f"global-mincut/level{bag.level}",
                          ref="Section 7 (labels broadcast reuse)")
        for f in candidates:
            cand = _min_cycle_through(graph, arcs, f, lengths)
            if cand is not None and (best is None or cand[0] < best[0]):
                best = cand

    if best is None:
        raise SimulationError("no directed cycle in the dual: graph has "
                              "no directed cut witness (not connected?)")
    value, cycle_darts = best

    side, cut_edges = _bisection(graph, cycle_darts, value)
    return GlobalMinCutResult(value=value, side=sorted(side),
                              cut_edge_ids=sorted(cut_edges),
                              cycle_darts=cycle_darts)


def _arc_index(graph, dual, lengths):
    """out-arc adjacency of the dual bag: face -> [(dart, head, w)]."""
    out = {}
    for d in dual.arc_darts:
        t = graph.face_of[d]
        h = graph.face_of[rev(d)]
        out.setdefault(t, []).append((d, h, lengths[d]))
        out.setdefault(h, out.get(h, []))
    return out


def _min_cycle_through(graph, arcs, f, lengths):
    """Min-weight dart-simple directed cycle through dual node ``f``.

    Two-best Dijkstra: per node keep up to two settled labels with
    distinct first darts.  Returns (value, cycle dart list) or None.

    This is the *reference* kernel: the engine backend
    (:meth:`repro.engine.cycles.DartCycleOracle.min_cycle_through`)
    replicates its heap tuples and scan orders exactly and is parity-
    tested against it bit for bit.
    """
    best_val = math.inf
    best_cycle = None

    # self-loops at f are valid one-dart cycles (bridge cuts)
    for (d, h, w) in arcs.get(f, ()):
        if h == f and w < best_val:
            best_val = w
            best_cycle = [d]

    # Two-best Dijkstra states: (node, first_dart); the first dart of a
    # path never changes as it extends, so each state's predecessor is
    # (prev_node, same first_dart).
    labels = {}    # node -> list of (dist, first_dart), settle order
    parent = {}    # (node, first_dart) -> (prev_node, arc_dart)
    heap = []
    for (d, h, w) in arcs.get(f, ()):
        if h == f:
            continue
        heapq.heappush(heap, (w, h, d, f, d))

    while heap:
        dist, u, fd, pu, pd = heapq.heappop(heap)
        lab = labels.setdefault(u, [])
        if any(x[1] == fd for x in lab) or len(lab) >= 2:
            continue
        lab.append((dist, fd))
        parent[(u, fd)] = (pu, pd)
        for (d, h, w) in arcs.get(u, ()):
            if h == f:
                continue  # arcs back into f close cycles, handled below
            heapq.heappush(heap, (dist + w, h, fd, u, d))

    # close cycles with in-arcs of f
    for g, out in arcs.items():
        if g == f:
            continue
        for (b, h, wb) in out:
            if h != f:
                continue
            for (dist, fd) in labels.get(g, ()):
                if fd == rev(b):
                    continue
                if dist + wb < best_val:
                    best_val = dist + wb
                    darts = [b]
                    node = g
                    while node != f:
                        pu, pd = parent[(node, fd)]
                        darts.append(pd)
                        node = pu
                    darts.reverse()
                    best_cycle = darts
                break  # labels are in settle order: first valid is best
    if best_cycle is None:
        return None
    return best_val, best_cycle


def _bisection(graph, cycle_darts, value):
    """Primal bisection: remove the cycle's primal edges, split into
    components, orient by charged weight (Section 7)."""
    removed = {d >> 1 for d in cycle_darts}
    comp = [-1] * graph.n
    for v0 in range(graph.n):
        if comp[v0] != -1:
            continue
        comp[v0] = v0
        q = deque([v0])
        while q:
            u = q.popleft()
            for d in graph.rotations[u]:
                if (d >> 1) in removed:
                    continue
                w = graph.head(d)
                if comp[w] == -1:
                    comp[w] = v0
                    q.append(w)

    # candidate sides: components grouped; the dual cycle separates the
    # plane into two regions, so components merge into exactly two sides
    # (choose the orientation whose charged weight matches)
    groups = {}
    for v in range(graph.n):
        groups.setdefault(comp[v], set()).add(v)
    sides = list(groups.values())
    # try every union of components as S; with two components this is
    # direct, otherwise greedily match by charged weight
    best = None
    if len(sides) == 2:
        trials = [sides[0], sides[1]]
    else:
        trials = _side_candidates(sides)
    for side in trials:
        cut_edges = []
        w = 0
        for eid, (u, v) in enumerate(graph.edges):
            if u in side and v not in side:
                cut_edges.append(eid)
                w += graph.weights[eid]
        if abs(w - value) < 1e-9:
            best = (side, cut_edges)
            break
    if best is None:
        raise SimulationError("could not orient the bisection to match "
                              "the dual cycle weight")
    return best


def _side_candidates(sides):
    """All unions of components (exponential fallback; the dual cycle
    yields two regions so len(sides) is small in practice)."""
    out = []
    k = len(sides)
    if k > 16:
        raise SimulationError("too many components for bisection recovery")
    for mask in range(1, (1 << k) - 1):
        s = set()
        for i in range(k):
            if mask & (1 << i):
                s |= sides[i]
        out.append(s)
    return out
