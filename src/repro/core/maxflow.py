"""Exact maximum st-flow in directed planar graphs (Theorem 1.2).

Implements the Miller-Naor reduction [31]: binary search on the flow
value λ; for each candidate, push λ units along a fixed undirected
s-to-t dart path ``P``, set the dual arc lengths to the residual dart
capacities

    len_λ(d)  =  cap(d) − λ·[d ∈ P] + λ·[rev(d) ∈ P],

and test feasibility = "no negative cycle in G*" via the dual distance
labeling (Theorem 2.1).  The maximum feasible λ is the max-flow value;
an SSSP from an arbitrary face then yields the flow assignment

    f(d) = dist(face(rev d)) − dist(face(d)) + λ·[d∈P] − λ·[rev(d)∈P].

Each feasibility probe is one labeling construction (Õ(D²) rounds); the
binary search adds the log λ factor the paper absorbs into Õ(·).

The per-dart capacity convention covers both variants:
directed edges carry (c(e), 0); undirected edges carry (c(e), c(e)).

Two execution backends share this driver (DESIGN.md §6):

* ``backend="legacy"`` (default) — the round-audited reference path:
  each probe is one :class:`~repro.labeling.scheme.DualDistanceLabeling`
  construction over the BDD, exactly as the distributed algorithm works.
* ``backend="engine"`` — the centralized fast path: probes are
  negative-cycle sweeps on the compiled CSR dual
  (:mod:`repro.engine`), with all buffers reused across the O(log λ)
  probes.  Outputs (value, flow assignment, probe count) are identical;
  CONGEST round accounting is only meaningful on the legacy backend.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bdd import build_bdd, build_all_dual_bags
from repro.core.flow_utils import undirected_st_path_darts, validate_flow
from repro.engine import FlowWorkspace, compile_graph
from repro.errors import InfeasibleFlowError, NegativeCycleError
from repro.labeling import DualDistanceLabeling, dual_sssp
from repro.planar.graph import rev

BACKENDS = ("legacy", "engine")


@dataclass
class MaxFlowResult:
    value: int
    #: eid -> signed flow along the stored edge direction
    flow: dict
    #: number of dual SSSP / labeling constructions used
    probes: int
    path_darts: list


def dart_capacities(graph, directed=True):
    """cap per dart: directed edges (c, 0); undirected (c, c)."""
    cap = {}
    for eid in range(graph.m):
        c = graph.capacities[eid]
        cap[2 * eid] = c
        cap[2 * eid + 1] = 0 if directed else c
    return cap


class PlanarMaxFlow:
    """Reusable max-flow solver: the probe-invariant structures (legacy:
    BDD and dual bags; engine: compiled CSR dual and workspace buffers)
    are built once per graph and shared by all probes — the dual
    topology never depends on λ."""

    def __init__(self, graph, directed=True, leaf_size=None, ledger=None,
                 backend="legacy"):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"expected one of {BACKENDS}")
        self.graph = graph
        self.directed = directed
        self.ledger = ledger
        self.backend = backend
        self.cap = dart_capacities(graph, directed=directed)
        if backend == "legacy":
            self.bdd = build_bdd(graph, leaf_size=leaf_size, ledger=ledger)
            self.duals = build_all_dual_bags(self.bdd)
            self.workspace = None
        else:
            self.bdd = None
            self.duals = None
            self.workspace = FlowWorkspace(compile_graph(graph))

    # ------------------------------------------------------------------
    def _lengths(self, path_darts, lam):
        on_path = set(path_darts)
        lengths = {}
        for d in self.graph.darts():
            ln = self.cap[d]
            if d in on_path:
                ln -= lam
            if rev(d) in on_path:
                ln += lam
            lengths[d] = ln
        return lengths

    def _feasible(self, path_darts, lam):
        """λ units of s-t flow exist iff the λ-residual dual has no
        negative cycle [31].  Returns a truthy witness (the labeling on
        the legacy backend) or None."""
        if self.backend == "engine":
            self.workspace.set_lambda(lam)
            return None if self.workspace.has_negative_cycle() else True
        try:
            lab = DualDistanceLabeling(self.bdd, self._lengths(path_darts,
                                                               lam),
                                       duals=self.duals, ledger=self.ledger)
        except NegativeCycleError:
            return None
        return lab

    # ------------------------------------------------------------------
    def solve(self, s, t, validate=True):
        if s == t:
            raise InfeasibleFlowError("s == t")
        g = self.graph
        path = undirected_st_path_darts(g, s, t)
        # round accounting is audited on the legacy backend only; a
        # partial audit would be worse than none (DESIGN.md §2)
        if self.ledger is not None and self.backend == "legacy":
            self.ledger.charge_bfs(g.eccentricity(s), "maxflow/find-path",
                                   ref="Theorem 1.2")
        if self.backend == "engine":
            self.workspace.bind_flow_problem(self.cap, path)

        # binary search the max feasible λ; λ=0 is feasible (lengths are
        # the nonnegative capacities)
        probes = 0
        lo, hi = 0, sum(g.capacities) + 1
        lab_lo = self._feasible(path, 0)
        probes += 1
        if lab_lo is None:
            raise InfeasibleFlowError("capacities produce a negative "
                                      "dual cycle at λ=0")
        while lo < hi:
            mid = (lo + hi + 1) // 2
            lab = self._feasible(path, mid)
            probes += 1
            if lab is not None:
                lo = mid
                lab_lo = lab
            else:
                hi = mid - 1

        lam = lo
        flow = self._assignment(lab_lo, path, lam)
        if validate:
            validate_flow(g, s, t, flow, lam, directed=self.directed)
        return MaxFlowResult(value=lam, flow=flow, probes=probes,
                             path_darts=path)

    # ------------------------------------------------------------------
    def _assignment(self, lab, path_darts, lam):
        """Flow from the dual SSSP distances [31] (Section 6.1).

        Both backends compute the exact distances from face 0, so the
        assignment is identical: shortest-path distances are unique even
        when the trees are not.
        """
        g = self.graph
        if self.backend == "engine":
            self.workspace.set_lambda(lam)
            dist = self.workspace.sssp(0)
        else:
            dist = dual_sssp(lab, source=0, ledger=self.ledger).dist
        on_path = set(path_darts)
        flow = {}
        for eid in range(g.m):
            d = 2 * eid
            fd = g.face_of[d]
            fr = g.face_of[rev(d)]
            x = dist[fr] - dist[fd]
            if d in on_path:
                x += lam
            if rev(d) in on_path:
                x -= lam
            flow[eid] = x
        return flow


def max_st_flow(graph, s, t, directed=True, leaf_size=None, ledger=None,
                validate=True, backend="legacy"):
    """One-shot exact maximum st-flow (Theorem 1.2)."""
    solver = PlanarMaxFlow(graph, directed=directed, leaf_size=leaf_size,
                           ledger=ledger, backend=backend)
    return solver.solve(s, t, validate=validate)
