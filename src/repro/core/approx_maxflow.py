"""(1−ε)-approximate maximum st-flow for undirected st-planar graphs
(Theorem 1.3) and the matching approximate min st-cut (Theorem 6.2).

Hassin's reduction [20]: when ``s`` and ``t`` share a face ``f``, adding
a virtual edge ``(t, s)`` inside ``f`` splits it into ``f₁`` and ``f₂``,
and the max-flow value equals ``dist(f₁, f₂)`` in the dual with lengths
= capacities.  The split dual node is exactly the virtual-node feature
of the extended minor-aggregation model (Theorem 4.14, β = 2).

The SSSP is approximate ([43] substitute), so its raw distances do not
respect the triangle inequality and cannot be used as flow potentials;
the smoothing machinery of [41] (:mod:`repro.aggregation.smoothing`)
repairs this, after which the potentials

    φ(e) = δ(node(rev d)) − δ(node(d)),   δ = (1−ε)·d

form a *feasible* flow: capacity via the per-edge smoothness
certificate, conservation via the circulation property of face
potentials, and value δ(f₂) ≥ (1−ε)·OPT.

Zero-capacity edges are handled as in Section 6.1: contract zero-weight
dual components (Boruvka MST in the MA model completes the tree), run
the oracle on the minor, expand.

``backend="engine"`` swaps the MA-model oracle + smoothing for one
exact Dijkstra on the flat quotient arrays
(:func:`repro.engine.workspace.dijkstra_undirected`): the potentials
are then exact dual distances, so the same assignment formulas produce
the *exact* max flow and min cut (trivially within every (1±ε) bound).
Use it for production workloads; the legacy backend remains the
round-audited reproduction of the paper's pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.aggregation.smoothing import smooth_sssp, verify_smoothness
from repro.aggregation.sssp_ma import ApproxSsspOracle
from repro.core.flow_utils import validate_flow
from repro.core.mincut import verify_st_cut
from repro.engine import dijkstra_undirected
from repro.errors import InfeasibleFlowError, SimulationError
from repro.planar.graph import rev
from repro.shortcuts.partwise import DualPartwiseHost


@dataclass
class ApproxFlowResult:
    #: (1−ε)-approximate flow value (never exceeds the optimum)
    value: float
    #: eid -> signed flow along the stored edge direction
    flow: dict
    #: primal edges of a valid st-cut with capacity ≤ (1+ε)·optimum
    cut_edge_ids: list
    cut_capacity: float
    eps: float
    ma_rounds: int


def common_face(graph, s, t):
    """A face whose walk touches both s and t, or None."""
    for fid, walk in enumerate(graph.faces):
        tails = {graph.tail(d) for d in walk}
        if s in tails and t in tails:
            return fid
    return None


def split_dual(graph, s, t, f):
    """Node set and edges of the dual with face ``f`` split into f₁/f₂
    at one s-corner and one t-corner (Hassin's construction).

    Returns ``(num_nodes, node_of_dart, f1, f2)``; f₁ carries the walk
    darts from the s-corner to the t-corner.
    """
    walk = graph.faces[f]
    pos_s = next(i for i, d in enumerate(walk) if graph.tail(d) == s)
    pos_t = next(i for i, d in enumerate(walk) if graph.tail(d) == t)

    f1 = f
    f2 = graph.num_faces()

    side = {}
    k = len(walk)
    i = pos_s
    while i != pos_t:
        side[walk[i]] = f1
        i = (i + 1) % k
    while i != pos_s:
        side[walk[i]] = f2
        i = (i + 1) % k

    def node_of_dart(d):
        fo = graph.face_of[d]
        if fo != f:
            return fo
        return side[d]

    return graph.num_faces() + 1, node_of_dart, f1, f2


def approx_max_st_flow(graph, s, t, eps=0.25, seed=0, ledger=None,
                       validate=True, backend="legacy"):
    """Theorem 1.3 + Theorem 6.2 pipeline.

    ``graph`` must be undirected-capacity planar (capacities used in
    both directions) with s, t on a common face.
    """
    if backend not in ("legacy", "engine"):
        raise ValueError(f"unknown backend {backend!r}; "
                         f"expected one of ('legacy', 'engine')")
    f = common_face(graph, s, t)
    if f is None:
        raise InfeasibleFlowError(
            f"vertices {s} and {t} share no face: the graph is not "
            f"st-planar for this pair")

    host = DualPartwiseHost(graph, ledger=ledger) \
        if backend == "legacy" else None

    num_nodes, node_of_dart, f1, f2 = split_dual(graph, s, t, f)
    edges = []
    weights = []
    for eid in range(graph.m):
        a = node_of_dart(2 * eid)
        b = node_of_dart(2 * eid + 1)
        edges.append((a, b))
        weights.append(graph.capacities[eid])

    # ---- zero-capacity contraction (Section 6.1) ----------------------
    uf = list(range(num_nodes))

    def find(x):
        while uf[x] != x:
            uf[x] = uf[uf[x]]
            x = uf[x]
        return x

    has_zero = any(w == 0 for w in weights)
    if has_zero:
        for (a, b), w in zip(edges, weights):
            if w == 0:
                ra, rb = find(a), find(b)
                if ra != rb:
                    uf[ra] = rb
        if find(f1) == find(f2):
            # a zero-capacity cut separates nothing: max flow 0
            return ApproxFlowResult(value=0.0, flow={}, cut_edge_ids=[
                eid for eid in range(graph.m)
                if graph.capacities[eid] == 0], cut_capacity=0.0,
                eps=eps, ma_rounds=0)

    quotient = {}
    q_nodes = []
    for v in range(num_nodes):
        r = find(v)
        if r not in quotient:
            quotient[r] = len(q_nodes)
            q_nodes.append(r)
    q_edges = []
    q_weights = []
    q_eids = []
    for eid, ((a, b), w) in enumerate(zip(edges, weights)):
        qa, qb = quotient[find(a)], quotient[find(b)]
        if qa == qb:
            continue
        q_edges.append((qa, qb))
        q_weights.append(max(w, 1e-12))
        q_eids.append(eid)

    # ---- dual SSSP: approximate + smoothed, or engine-exact -------------
    src = quotient[find(f1)]
    dst = quotient[find(f2)]
    if backend == "engine":
        oracle = None
        d_q, q_parents = dijkstra_undirected(len(q_nodes), q_edges,
                                             q_weights, src)
        # exact distances satisfy the triangle inequality, so the
        # potentials need no (1−ε) shrink to stay flow-feasible
        scale = 1.0
    else:
        eps_oracle = eps / 4.0
        oracle = ApproxSsspOracle(len(q_nodes), q_edges, q_weights,
                                  eps_oracle, seed=seed)
        d_q = smooth_sssp(oracle, src, eps)
        verify_smoothness(oracle, d_q, eps)
        scale = 1.0 - eps
    if math.isinf(d_q[dst]):
        raise SimulationError("split dual disconnected: no st-cut exists")

    def d_node(v):
        return d_q[quotient[find(v)]]

    # ---- flow assignment ------------------------------------------------
    delta = {v: scale * d_node(v) for v in range(num_nodes)}
    value = delta[f2] - delta[f1]

    flow = {}
    for eid in range(graph.m):
        a = node_of_dart(2 * eid)
        b = node_of_dart(2 * eid + 1)
        flow[eid] = delta[b] - delta[a]

    # the sign of the imbalance at s depends on the f1/f2 naming; flip
    # globally if the flow leaves t instead of s
    net_s = 0.0
    for eid, (u, v) in enumerate(graph.edges):
        if u == s:
            net_s -= flow[eid]
        if v == s:
            net_s += flow[eid]
    if net_s > 0:
        flow = {eid: -x for eid, x in flow.items()}

    if validate:
        validate_flow(graph, s, t, flow, abs(value), directed=False)

    # ---- approximate min st-cut (Theorem 6.2) ---------------------------
    if backend == "engine":
        parents = q_parents
    else:
        _dist, _pw, parents = oracle.query(src, return_parents=True)
    cut_eids = []
    node = dst
    guard = 0
    while node != src:
        if parents[node] is None:
            raise SimulationError("no f1-f2 path for the cut")
        prev, q_eid = parents[node]
        cut_eids.append(q_eids[q_eid])
        node = prev
        guard += 1
        if guard > len(q_nodes) + 1:
            raise SimulationError("cut path reconstruction looped")
    cut_capacity = sum(graph.capacities[e] for e in cut_eids)
    if validate and not verify_st_cut(graph, s, t, cut_eids,
                                      directed=False):
        raise SimulationError("dual f1-f2 path did not dualize to an "
                              "st-cut")

    ma_rounds = oracle.ma_rounds_spent if oracle is not None else 0
    if ledger is not None and backend == "legacy":
        # β=2 virtual-node overhead of the split node (Theorem 4.14)
        ledger.charge(ma_rounds * host.pa_rounds * 2,
                      "approx-flow/ma-simulation",
                      detail=f"{ma_rounds} MA rounds x {host.pa_rounds} "
                             f"PA x beta=2",
                      ref="Theorems 1.3, 4.14")

    return ApproxFlowResult(value=abs(value), flow=flow,
                            cut_edge_ids=sorted(set(cut_eids)),
                            cut_capacity=cut_capacity, eps=eps,
                            ma_rounds=ma_rounds)
