"""Directed weighted girth in Õ(D²) rounds — the prior-work route of
Parter [36] that Theorem 1.7 improves upon for the undirected case.

Minimum-weight directed cycle of a directed planar graph with
nonnegative integral weights: with distance labels in hand, every edge
``e = (u, v)`` proposes the candidate ``w(e) + dist(v → u)``; the global
minimum over edges is exact (any closed walk decomposes into simple
cycles, and on the optimal cycle the proposing edge sees exactly the
rest of the cycle as its return path).  One labeling (Õ(D²) rounds) +
one aggregation — the primal labeling substrate of [27], cf. the dual
labels of Theorem 2.1 and DESIGN.md §3.

Serves double duty in the experiments: correctness target for the
primal labeling, and the executable Õ(D²) comparator that E4 contrasts
with the Õ(D)-round minor-aggregation girth (DESIGN.md §4).

``backend="engine"`` computes the same minimum centrally
(DESIGN.md §7): one pruned array-backed Dijkstra
(:class:`~repro.engine.dijkstra.DijkstraWorkspace`) per cycle-closing
vertex over the forward darts of the compiled primal, buffers reused
across all sources, with the running best value as the pruning bound.
The minimum value and the winning edge are bit-identical to the
labeling route — every candidate that could win or tie is an exact
integer distance, scanned in edge-id order; non-competitive candidates
are masked to inf by the pruning bound rather than carrying their
legacy finite values.  The ledger stays unaudited.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.labeling.primal import PrimalDistanceLabeling

BACKENDS = ("legacy", "engine")


@dataclass
class DirectedGirthResult:
    value: float
    #: the proposing edge of the winning cycle
    witness_edge: int
    label_rounds_phase: str = "primal-labeling"


def directed_weighted_girth(graph, leaf_size=None, ledger=None,
                            backend="legacy", labeling_backend=None):
    """Minimum weight of a directed cycle, or None if the graph is a
    DAG.  Edge directions follow the stored orientation; weights must
    be nonnegative.

    ``labeling_backend`` selects how the labeling route builds its
    :class:`~repro.labeling.primal.PrimalDistanceLabeling`:
    ``"engine"`` runs the per-bag Dijkstras on the pooled array
    workspace of DESIGN.md §9 (labels — and hence the girth value and
    witness — bit-identical), ``"legacy"``/None keeps the dict-keyed
    reference.  It only applies to ``backend="legacy"`` (the [36]
    comparator's per-source phase is already engine-backed under
    ``backend="engine"``); the labeling substrate charges rounds on the
    legacy labeling only, so the aggregation charge below follows suit
    — an engine-labeled run audits only the (backend-independent) BDD
    construction.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; "
                         f"expected one of {BACKENDS}")
    if labeling_backend not in (None,) + BACKENDS:
        raise ValueError(f"unknown labeling backend "
                         f"{labeling_backend!r}; expected None or one "
                         f"of {BACKENDS}")
    if backend == "engine":
        if labeling_backend is not None:
            raise ValueError("labeling_backend applies to the legacy "
                             "(labeling) route only; backend='engine' "
                             "does not build a labeling")
        return _directed_girth_engine(graph)
    labeling_backend = labeling_backend or "legacy"
    lengths = {}
    for eid in range(graph.m):
        lengths[2 * eid] = graph.weights[eid]
        lengths[2 * eid + 1] = math.inf   # darts only along direction
    lab = PrimalDistanceLabeling(graph, lengths=lengths,
                                 leaf_size=leaf_size, ledger=ledger,
                                 backend=labeling_backend)

    best = math.inf
    witness = -1
    for eid, (u, v) in enumerate(graph.edges):
        back = lab.distance(v, u)
        cand = graph.weights[eid] + back
        if cand < best:
            best = cand
            witness = eid
    if ledger is not None and labeling_backend == "legacy":
        ledger.charge(graph.eccentricity(0) + 1, "directed-girth/aggregate",
                      ref="[36] via one PA task")
    if math.isinf(best):
        return None
    return DirectedGirthResult(value=best, witness_edge=witness)


def _directed_girth_engine(graph):
    """Engine backend: per-source pruned Dijkstra over forward darts."""
    from repro.engine.dijkstra import DijkstraWorkspace

    ws = DijkstraWorkspace(graph.n)
    ws.load_arcs((2 * eid, u, v, graph.weights[eid])
                 for eid, (u, v) in enumerate(graph.edges))
    # group the proposing edges by the vertex their cycle closes at
    in_edges = [[] for _ in range(graph.n)]
    for eid, (u, v) in enumerate(graph.edges):
        in_edges[v].append((eid, u, graph.weights[eid]))

    # running minimum over exact-int (candidate, eid) pairs — the same
    # lowest-eid-on-ties outcome as the legacy edge-order scan, in any
    # source order (pruned candidates exceed every later bound, so they
    # can neither win nor tie)
    best = None  # (value, eid)
    for v in range(graph.n):
        if not in_edges[v]:
            continue
        ws.sssp(v, bound=best[0] if best is not None else math.inf)
        for (eid, u, w) in in_edges[v]:
            c = w + ws.distance(u)
            if not math.isinf(c) and (best is None or (c, eid) < best):
                best = (c, eid)
    if best is None:
        return None
    return DirectedGirthResult(value=best[0], witness_edge=best[1],
                               label_rounds_phase="engine-dijkstra")
