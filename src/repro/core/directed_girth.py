"""Directed weighted girth in Õ(D²) rounds — the prior-work route of
Parter [36] that Theorem 1.7 improves upon for the undirected case.

Minimum-weight directed cycle of a directed planar graph with
nonnegative integral weights: with distance labels in hand, every edge
``e = (u, v)`` proposes the candidate ``w(e) + dist(v → u)``; the global
minimum over edges is exact (any closed walk decomposes into simple
cycles, and on the optimal cycle the proposing edge sees exactly the
rest of the cycle as its return path).  One labeling (Õ(D²) rounds) +
one aggregation.

Serves double duty in the experiments: correctness target for the
primal labeling, and the executable Õ(D²) comparator that E4 contrasts
with the Õ(D)-round minor-aggregation girth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.labeling.primal import PrimalDistanceLabeling


@dataclass
class DirectedGirthResult:
    value: float
    #: the proposing edge of the winning cycle
    witness_edge: int
    label_rounds_phase: str = "primal-labeling"


def directed_weighted_girth(graph, leaf_size=None, ledger=None):
    """Minimum weight of a directed cycle, or None if the graph is a
    DAG.  Edge directions follow the stored orientation; weights must
    be nonnegative."""
    lengths = {}
    for eid in range(graph.m):
        lengths[2 * eid] = graph.weights[eid]
        lengths[2 * eid + 1] = math.inf   # darts only along direction
    lab = PrimalDistanceLabeling(graph, lengths=lengths,
                                 leaf_size=leaf_size, ledger=ledger)

    best = math.inf
    witness = -1
    for eid, (u, v) in enumerate(graph.edges):
        back = lab.distance(v, u)
        cand = graph.weights[eid] + back
        if cand < best:
            best = cand
            witness = eid
    if ledger is not None:
        ledger.charge(graph.eccentricity(0) + 1, "directed-girth/aggregate",
                      ref="[36] via one PA task")
    if math.isinf(best):
        return None
    return DirectedGirthResult(value=best, witness_edge=witness)
