"""Guarded numpy import shared by every optional-numpy kernel.

The paper's toolchain assumes numpy for the vectorized kernels (the
engine's Bellman–Ford passes, the tree-packing min-cut's respecting-cut
matrices), but none of the algorithms *need* it: each numeric kernel
keeps a pure-Python fallback that produces bit-identical results on the
paper's polynomially-bounded integral weights.  This module is the one
switch they all share:

* ``np`` is the numpy module, or ``None`` when numpy is missing;
* setting ``REPRO_ENGINE_NO_NUMPY=1`` in the environment *before import*
  forces ``np = None`` everywhere, which is how the test-suite and CI
  exercise the fallbacks on a machine that does have numpy.

Keeping the toggle in one place means "numpy-free" is a global property
of the process, never a per-module accident: either every kernel runs
vectorized or every kernel runs its reference fallback.
"""

from __future__ import annotations

import os

try:
    if os.environ.get("REPRO_ENGINE_NO_NUMPY"):
        raise ImportError("numpy disabled via REPRO_ENGINE_NO_NUMPY")
    import numpy as np
except ImportError:  # pragma: no cover - exercised via the env toggle
    np = None

__all__ = ["np"]
