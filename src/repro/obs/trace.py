"""Lightweight tracing: monotonic-clock spans, contextvar nesting and
cross-process trace propagation (DESIGN.md §13).

A span is a timed, named, tagged interval::

    with obs.span("labeling.build", graph="g", bags=41) as sp:
        ...
        sp.tag(repaired=7)

Spans nest through a :mod:`contextvars` context: the span open when a
new one starts becomes its parent, so one query's work — client call,
server dispatch, worker execution, per-site kernels — renders as a
tree.  Each span carries a ``trace_id`` minted at the root (or adopted
from an incoming wire frame / pool command, which is how one query's
spans stitch across client → server thread → forked worker: see
:func:`current_trace` / :func:`activate_trace`).

**The disabled path is the design center.**  The whole layer sits
behind :func:`enabled` — a module-global bool read — and
:func:`span` returns one shared no-op context manager when tracing is
off, so an instrumented hot site costs a function call and a branch
(``benchmarks/bench_obs.py`` gates the warm-query overhead at ≤ 2%).

Finished spans are plain JSON-safe dicts handed to the registered
sinks (:mod:`repro.obs.sink`).  A worker process runs in *shipping
mode* instead (:func:`configure_shipping`): finished spans buffer
locally and :func:`ship_delta` drains them — plus the metrics delta
since the last drain — for the master to :func:`ingest`.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time

from repro.obs.metrics import MetricsRegistry, snapshot_delta

# ----------------------------------------------------------------------
# runtime state (process-global; the trace context is per-task)
# ----------------------------------------------------------------------
_enabled = False
_sinks = []
_lock = threading.Lock()
_registry = MetricsRegistry()

#: shipping mode (worker processes): finished spans buffer here instead
#: of going to sinks, and metric deltas are cut against ``_ship_base``
_shipping = False
_ship_spans = []
_ship_base = {}

#: (trace_id, span_id) of the innermost open span, or None
_ctx = contextvars.ContextVar("repro_obs_trace", default=None)

_span_counter = itertools.count(1)
_trace_counter = itertools.count(1)


def enabled():
    """Whether tracing + metrics collection are on (cheap: one global
    read — this is the gate every instrumentation site checks first)."""
    return _enabled


def enable(*sinks):
    """Turn the observability layer on, optionally registering sinks
    (idempotent; sinks add to the existing set)."""
    global _enabled
    for s in sinks:
        add_sink(s)
    _enabled = True


def disable():
    """Turn collection off.  Sinks stay registered (re-``enable`` picks
    them back up); the registry keeps its values."""
    global _enabled
    _enabled = False


def registry():
    """The process-global :class:`~repro.obs.metrics.MetricsRegistry`
    every instrumentation site writes to."""
    return _registry


def add_sink(sink):
    with _lock:
        if sink not in _sinks:
            _sinks.append(sink)
    return sink


def remove_sink(sink):
    with _lock:
        if sink in _sinks:
            _sinks.remove(sink)


def sinks():
    with _lock:
        return list(_sinks)


def reset(registry_too=True):
    """Test helper: disable, drop sinks and shipping state, and
    (optionally) clear the global registry."""
    global _enabled, _shipping
    _enabled = False
    _shipping = False
    with _lock:
        _sinks.clear()
    _ship_spans.clear()
    _ship_base.clear()
    if registry_too:
        _registry.clear()


# ----------------------------------------------------------------------
# metric write helpers (gated by the caller via enabled())
# ----------------------------------------------------------------------
def inc(name, n=1):
    _registry.inc(name, n)


def observe(name, value):
    _registry.observe(name, value)


def observe_windowed(name, value, now=None):
    _registry.observe_windowed(name, value, now)


def set_gauge(name, value):
    _registry.set_gauge(name, value)


# ----------------------------------------------------------------------
# trace ids and context
# ----------------------------------------------------------------------
def new_trace_id():
    """A fresh trace id: unique across the processes of one serving
    stack (pid-qualified counter plus entropy for cross-host logs)."""
    return (f"{os.getpid():x}-{next(_trace_counter):x}-"
            f"{os.urandom(4).hex()}")


def _new_span_id():
    return f"{os.getpid():x}.{next(_span_counter):x}"


def current_trace():
    """``(trace_id, span_id)`` of the innermost open span, or ``None``
    — the context to propagate into a wire frame or pool command."""
    return _ctx.get()


def activate_trace(ctx):
    """Adopt a propagated ``(trace_id, parent_span_id)`` pair (list or
    tuple, e.g. straight off a wire frame) as the current trace
    context; returns a token for :func:`deactivate_trace`.  ``None``
    (or a malformed value) activates nothing and returns ``None``."""
    if (not isinstance(ctx, (list, tuple)) or len(ctx) != 2
            or not all(isinstance(x, str) for x in ctx)):
        return None
    return _ctx.set((ctx[0], ctx[1]))


def deactivate_trace(token):
    """Undo :func:`activate_trace` (no-op for a ``None`` token)."""
    if token is not None:
        _ctx.reset(token)


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class Span:
    """One open span; use via :func:`span`.  ``tag()`` adds fields
    mid-flight; the finished record is a JSON-safe dict shipped to the
    sinks (or the shipping buffer) on ``__exit__``."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "tags",
                 "_t0", "_start", "_token", "seconds")

    def __init__(self, name, tags):
        self.name = name
        self.tags = tags
        parent = _ctx.get()
        if parent is None:
            self.trace_id = new_trace_id()
            self.parent_id = None
        else:
            self.trace_id, self.parent_id = parent
        self.span_id = _new_span_id()
        self._token = None
        self._t0 = 0.0
        self._start = 0.0
        self.seconds = 0.0

    def tag(self, **tags):
        self.tags.update(tags)
        return self

    def __enter__(self):
        self._token = _ctx.set((self.trace_id, self.span_id))
        self._start = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.seconds = time.perf_counter() - self._t0
        _ctx.reset(self._token)
        if exc_type is not None:
            self.tags["error"] = exc_type.__name__
        record = {"trace": self.trace_id, "span": self.span_id,
                  "parent": self.parent_id, "name": self.name,
                  "pid": os.getpid(), "start": self._start,
                  "seconds": self.seconds}
        if self.tags:
            record["tags"] = self.tags
        record_span(record)
        return False


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()
    trace_id = span_id = parent_id = None
    seconds = 0.0

    def tag(self, **tags):
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


NOOP_SPAN = _NoopSpan()


def span(name, **tags):
    """A context-managed :class:`Span` named ``name`` — or the shared
    no-op when the layer is disabled."""
    if not _enabled:
        return NOOP_SPAN
    return Span(name, tags)


def record_span(record):
    """Route one finished span dict to the sinks (or, in a worker's
    shipping mode, the ship buffer)."""
    if _shipping:
        with _lock:
            _ship_spans.append(record)
        return
    for sink in sinks():
        sink.record_span(record)


# ----------------------------------------------------------------------
# worker shipping protocol
# ----------------------------------------------------------------------
def configure_shipping(on=True):
    """Enter (or leave) shipping mode: finished spans buffer for
    :func:`ship_delta` instead of hitting sinks, and the metrics
    baseline resets so the first delta is everything since now.  Called
    by pool workers right after fork/spawn."""
    global _shipping, _ship_base
    _shipping = on
    _ship_spans.clear()
    _ship_base = _registry.snapshot() if on else {}


def ship_delta():
    """Drain the shipping buffer: ``{"spans": [...], "metrics": {...}}``
    with only what happened since the previous call, or ``None`` when
    disabled / nothing happened.  Piggybacked by pool workers on every
    result-queue message."""
    global _ship_base
    if not _enabled:
        return None
    with _lock:
        spans = list(_ship_spans)
        _ship_spans.clear()
    now = _registry.snapshot()
    delta = snapshot_delta(now, _ship_base)
    _ship_base = now
    if not spans and not delta:
        return None
    return {"spans": spans, "metrics": delta}


def ingest(payload):
    """Fold a worker's :func:`ship_delta` payload into this process:
    spans go to the local sinks, the metrics delta merges into the
    local registry.  Tolerant of ``None``."""
    if not payload:
        return
    for record in payload.get("spans", ()):
        record_span(record)
    metrics = payload.get("metrics")
    if metrics:
        _registry.merge(metrics)


__all__ = [
    "Span",
    "NOOP_SPAN",
    "span",
    "enabled",
    "enable",
    "disable",
    "registry",
    "add_sink",
    "remove_sink",
    "sinks",
    "reset",
    "inc",
    "observe",
    "observe_windowed",
    "set_gauge",
    "new_trace_id",
    "current_trace",
    "activate_trace",
    "deactivate_trace",
    "record_span",
    "configure_shipping",
    "ship_delta",
    "ingest",
]
