"""Process-local metrics registry: counters, gauges and fixed-bucket
histograms with mergeable snapshots (DESIGN.md §13).

Every metric lives in a :class:`MetricsRegistry` under a dotted string
name (``"service.result.hit"``, ``"pool.queue_wait_seconds"``); the
registry is the unit of aggregation — a snapshot is a plain JSON-safe
dict, two snapshots of the same metric merge by addition (counters,
histogram buckets) or replacement (gauges), and
:func:`snapshot_delta` subtracts a baseline so a worker process can
ship only what changed since its last report.  That delta/merge pair is
the cross-process protocol of the serving stack: workers piggyback
deltas on the existing result queue and the pool master folds them into
its own registry (see ``repro.server.pool``), so one ``metrics`` wire
verb sees the whole pool.

Everything here is stdlib-only and import-free within the library —
the module can be (and is) imported from the lowest layers without
dependency cycles.
"""

from __future__ import annotations

import math
import threading
import time

#: default histogram bucket upper bounds (seconds): exponential from
#: 10 µs to ~42 s, the range of everything the stack times — a warm
#: label decode sits in the first buckets, a cold 64×64 labeling build
#: in the last.  The implicit final bucket is +inf.
DEFAULT_BUCKETS = tuple(1e-5 * 4 ** i for i in range(12))


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n=1):
        self.value += n

    def to_dict(self):
        return {"type": "counter", "value": self.value}

    def merge_dict(self, d):
        self.value += d["value"]


class Gauge:
    """Last-write-wins instantaneous value."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, v):
        self.value = v

    def to_dict(self):
        return {"type": "gauge", "value": self.value}

    def merge_dict(self, d):
        self.value = d["value"]


class Histogram:
    """Fixed-bucket latency histogram (cumulative-free bucket counts).

    ``buckets`` are the finite upper bounds, ascending; an implicit
    final bucket catches everything above the last bound.  Tracks
    count, sum, min and max alongside, so a merged histogram still
    reports exact mean and range.
    """

    kind = "histogram"
    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets=DEFAULT_BUCKETS):
        self.buckets = tuple(buckets)
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be ascending")
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, v):
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        for i, bound in enumerate(self.buckets):
            if v <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q):
        """Upper bound of the bucket holding the ``q``-quantile sample
        (``math.inf`` for the overflow bucket); ``None`` when empty.
        Bucket-resolution only — exact percentiles stay the job of
        :func:`repro.workload.loadgen.percentile`."""
        if not self.count:
            return None
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return (self.buckets[i] if i < len(self.buckets)
                        else math.inf)
        return math.inf

    def to_dict(self):
        return {"type": "histogram", "buckets": list(self.buckets),
                "counts": list(self.counts), "count": self.count,
                "sum": self.sum, "min": self.min, "max": self.max}

    def merge_dict(self, d):
        if list(d["buckets"]) != list(self.buckets):
            raise ValueError(
                f"cannot merge histograms with different buckets "
                f"({len(d['buckets'])} vs {len(self.buckets)} bounds)")
        for i, c in enumerate(d["counts"]):
            self.counts[i] += c
        self.count += d["count"]
        self.sum += d["sum"]
        self.min = min(self.min, d["min"])
        self.max = max(self.max, d["max"])


class WindowedHistogram:
    """Rolling time-window histogram: a ring of fixed-bucket slots
    keyed by the *absolute* slot index ``floor(monotonic / slot_seconds)``.

    Absolute slot keys are the whole trick (DESIGN.md §15): because
    ``CLOCK_MONOTONIC`` is shared by every process of one serving stack
    on one host, a worker and the pool master bucket the same instant
    into the same slot — so per-slot addition is associative and
    commutative, and merge-of-shipped-deltas reproduces local
    aggregation *bit-exactly* (``tests/test_health.py`` proves it with
    hypothesis).  Min/max per slot merge by extremum, which is likewise
    exact because a later delta's slot extremes always dominate the
    earlier ones it extends.

    Expiry is deterministic in the data, not the wall clock: a slot is
    dropped once the *highest slot index ever seen* moves more than
    ``slots`` ahead of it, so two registries fed the same observations
    prune identically regardless of when they look.  Reads
    (:meth:`window`, :meth:`quantile`, :meth:`error_free_rate`-style
    rollups in ``repro.obs.health``) aggregate only slots inside the
    last ``window_seconds`` relative to ``now``.
    """

    kind = "windowed"
    __slots__ = ("buckets", "slot_seconds", "slots", "_slots",
                 "_max_slot")

    def __init__(self, buckets=DEFAULT_BUCKETS, slot_seconds=1.0,
                 slots=60):
        self.buckets = tuple(buckets)
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be ascending")
        if slot_seconds <= 0 or slots < 1:
            raise ValueError("slot_seconds must be > 0 and slots >= 1")
        self.slot_seconds = float(slot_seconds)
        self.slots = int(slots)
        #: {absolute slot index: [counts, count, sum, min, max]}
        self._slots = {}
        self._max_slot = None

    @property
    def window_seconds(self):
        return self.slot_seconds * self.slots

    def _slot_index(self, now=None):
        if now is None:
            now = time.monotonic()
        return int(now // self.slot_seconds)

    def observe(self, v, now=None):
        idx = self._slot_index(now)
        slot = self._slots.get(idx)
        if slot is None:
            slot = self._slots[idx] = [
                [0] * (len(self.buckets) + 1), 0, 0.0, math.inf,
                -math.inf]
        counts = slot[0]
        for i, bound in enumerate(self.buckets):
            if v <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
        slot[1] += 1
        slot[2] += v
        if v < slot[3]:
            slot[3] = v
        if v > slot[4]:
            slot[4] = v
        self._advance(idx)

    def _advance(self, idx):
        """Record a newly seen slot index and expire what it pushes out
        of the retention horizon (``slots`` live slots ending at the
        max index ever seen)."""
        if self._max_slot is None or idx > self._max_slot:
            self._max_slot = idx
        cutoff = self._max_slot - self.slots
        if any(k <= cutoff for k in self._slots):
            self._slots = {k: s for k, s in self._slots.items()
                           if k > cutoff}

    # ------------------------------------------------------------------
    def window(self, seconds=None, now=None):
        """Aggregate the slots covering the last ``seconds`` (default:
        the full window) into one plain dict: ``{"counts", "count",
        "sum", "min", "max", "mean", "buckets", "seconds"}``."""
        if seconds is None:
            seconds = self.window_seconds
        lo = self._slot_index(now) - int(math.ceil(
            seconds / self.slot_seconds)) + 1
        counts = [0] * (len(self.buckets) + 1)
        count, total = 0, 0.0
        vmin, vmax = math.inf, -math.inf
        for idx, slot in self._slots.items():
            if idx < lo:
                continue
            for i, c in enumerate(slot[0]):
                counts[i] += c
            count += slot[1]
            total += slot[2]
            vmin = min(vmin, slot[3])
            vmax = max(vmax, slot[4])
        return {"counts": counts, "count": count, "sum": total,
                "min": vmin, "max": vmax,
                "mean": total / count if count else 0.0,
                "buckets": list(self.buckets), "seconds": seconds}

    def quantile(self, q, seconds=None, now=None):
        """Bucket-resolution ``q``-quantile of the last ``seconds``
        (``None`` when the window is empty) — same contract as
        :meth:`Histogram.quantile`."""
        w = self.window(seconds, now)
        if not w["count"]:
            return None
        rank = max(1, math.ceil(q * w["count"]))
        seen = 0
        for i, c in enumerate(w["counts"]):
            seen += c
            if seen >= rank:
                return (self.buckets[i] if i < len(self.buckets)
                        else math.inf)
        return math.inf

    # ------------------------------------------------------------------
    def to_dict(self):
        return {"type": "windowed", "buckets": list(self.buckets),
                "slot_seconds": self.slot_seconds, "slots": self.slots,
                "data": {str(idx): {"counts": list(s[0]),
                                    "count": s[1], "sum": s[2],
                                    "min": s[3], "max": s[4]}
                         for idx, s in self._slots.items()}}

    def merge_dict(self, d):
        if (list(d["buckets"]) != list(self.buckets)
                or d["slot_seconds"] != self.slot_seconds
                or d["slots"] != self.slots):
            raise ValueError("cannot merge windowed histograms with "
                             "different buckets or window geometry")
        top = None
        for key, rec in d["data"].items():
            idx = int(key)
            slot = self._slots.get(idx)
            if slot is None:
                slot = self._slots[idx] = [
                    [0] * (len(self.buckets) + 1), 0, 0.0, math.inf,
                    -math.inf]
            for i, c in enumerate(rec["counts"]):
                slot[0][i] += c
            slot[1] += rec["count"]
            slot[2] += rec["sum"]
            slot[3] = min(slot[3], rec["min"])
            slot[4] = max(slot[4], rec["max"])
            if top is None or idx > top:
                top = idx
        if top is not None:
            self._advance(top)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram,
          "windowed": WindowedHistogram}


class MetricsRegistry:
    """Thread-safe name -> metric mapping with snapshot/merge/delta.

    ``counter(name)`` / ``gauge(name)`` / ``histogram(name)`` create on
    first use and return the live metric; asking for an existing name
    as a different kind raises ``ValueError`` (one name, one meaning).
    """

    def __init__(self):
        self._metrics = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get(self, name, cls, *args):
        m = self._metrics.get(name)
        if m is None:
            with self._lock:
                m = self._metrics.get(name)
                if m is None:
                    m = cls(*args)
                    self._metrics[name] = m
        if type(m) is not cls:
            raise ValueError(f"metric {name!r} is a {type(m).kind}, "
                             f"not a {cls.kind}")
        return m

    def counter(self, name) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name, buckets=DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, buckets)

    def windowed(self, name, buckets=DEFAULT_BUCKETS, slot_seconds=1.0,
                 slots=60) -> WindowedHistogram:
        return self._get(name, WindowedHistogram, buckets,
                         slot_seconds, slots)

    # convenience write paths (what the instrumentation sites call)
    def inc(self, name, n=1):
        self.counter(name).inc(n)

    def observe(self, name, value, buckets=DEFAULT_BUCKETS):
        self.histogram(name, buckets).observe(value)

    def observe_windowed(self, name, value, now=None,
                         buckets=DEFAULT_BUCKETS, slot_seconds=1.0,
                         slots=60):
        self.windowed(name, buckets, slot_seconds,
                      slots).observe(value, now)

    def set_gauge(self, name, value):
        self.gauge(name).set(value)

    # ------------------------------------------------------------------
    def get(self, name):
        """The live metric registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def names(self):
        return sorted(self._metrics)

    def clear(self):
        with self._lock:
            self._metrics.clear()

    def __len__(self):
        return len(self._metrics)

    # ------------------------------------------------------------------
    # snapshot / merge / delta — the cross-process protocol
    # ------------------------------------------------------------------
    def snapshot(self):
        """JSON-safe ``{name: metric dict}`` copy of every metric."""
        with self._lock:
            return {name: m.to_dict()
                    for name, m in self._metrics.items()}

    def merge(self, snap):
        """Fold a snapshot (or delta) produced by another registry into
        this one — counters and histogram buckets add, gauges replace.
        """
        for name, d in snap.items():
            cls = _KINDS.get(d.get("type"))
            if cls is None:
                raise ValueError(f"unknown metric type in snapshot "
                                 f"entry {name!r}: {d.get('type')!r}")
            if cls is Histogram:
                m = self.histogram(name, tuple(d["buckets"]))
            elif cls is WindowedHistogram:
                m = self.windowed(name, tuple(d["buckets"]),
                                  d["slot_seconds"], d["slots"])
            else:
                m = self._get(name, cls)
            m.merge_dict(d)


def snapshot_delta(now, baseline):
    """What changed in ``now`` since ``baseline`` (both snapshots of
    the *same* registry): counters and histograms subtract, gauges pass
    through as-is, unchanged metrics are dropped.  The result merges
    into an aggregating registry without double counting — the worker
    shipping protocol of ``repro.server.pool``."""
    delta = {}
    for name, d in now.items():
        base = baseline.get(name)
        t = d["type"]
        if base is None or base["type"] != t:
            delta[name] = d
            continue
        if t == "counter":
            diff = d["value"] - base["value"]
            if diff:
                delta[name] = {"type": "counter", "value": diff}
        elif t == "gauge":
            if d["value"] != base["value"]:
                delta[name] = d
        elif t == "windowed":
            if (list(d["buckets"]) != list(base["buckets"])
                    or d["slot_seconds"] != base["slot_seconds"]
                    or d["slots"] != base["slots"]):
                delta[name] = d  # geometry change: ship whole
                continue
            data = {}
            for key, rec in d["data"].items():
                brec = base["data"].get(key)
                if brec is None:
                    data[key] = rec
                elif rec["count"] != brec["count"]:
                    data[key] = {
                        "counts": [a - b for a, b in
                                   zip(rec["counts"], brec["counts"])],
                        "count": rec["count"] - brec["count"],
                        "sum": rec["sum"] - brec["sum"],
                        # like plain histograms: the current slot
                        # extremes dominate what already shipped
                        "min": rec["min"], "max": rec["max"]}
            if data:
                delta[name] = {
                    "type": "windowed", "buckets": list(d["buckets"]),
                    "slot_seconds": d["slot_seconds"],
                    "slots": d["slots"], "data": data}
        else:  # histogram
            if d["count"] == base["count"] \
                    or list(d["buckets"]) != list(base["buckets"]):
                if d["count"] != base["count"]:
                    delta[name] = d  # bucket change: ship whole
                continue
            delta[name] = {
                "type": "histogram", "buckets": list(d["buckets"]),
                "counts": [a - b for a, b in zip(d["counts"],
                                                 base["counts"])],
                "count": d["count"] - base["count"],
                "sum": d["sum"] - base["sum"],
                # min/max are not subtractable; the new extremes are
                # correct for the merged view, which is what ships
                "min": d["min"], "max": d["max"]}
    return delta


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "WindowedHistogram",
    "MetricsRegistry",
    "snapshot_delta",
    "DEFAULT_BUCKETS",
]
