"""Span/metric sinks: where finished observability records go
(DESIGN.md §13).

A sink is anything with ``record_span(dict)`` and (optionally)
``record_metrics(snapshot)``.  Two concrete sinks ship with the
library:

* :class:`RingBufferSink` — bounded in-memory deque; the test and
  debugging sink (``sink.spans()`` hands back what happened);
* :class:`NdjsonFileSink` — one JSON object per line, append-only,
  flushed per record so a crashed process loses at most the partial
  last line; the format ``python -m repro.obs tail/summarize`` reads.

Sinks are registered process-wide via :func:`repro.obs.add_sink`;
worker processes never need one — their spans ship to the pool master
(see :mod:`repro.obs.trace`) and land in *its* sinks.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque


class Sink:
    """Base class (also usable as a null sink)."""

    def record_span(self, record):
        pass

    def record_metrics(self, snapshot):
        pass

    def close(self):
        pass


class RingBufferSink(Sink):
    """Keep the last ``capacity`` spans (and metric snapshots) in
    memory — the sink the tests and the benchmark assert against."""

    def __init__(self, capacity=4096):
        self._spans = deque(maxlen=capacity)
        self._metrics = deque(maxlen=16)
        self._lock = threading.Lock()

    def record_span(self, record):
        with self._lock:
            self._spans.append(record)

    def record_metrics(self, snapshot):
        with self._lock:
            self._metrics.append(snapshot)

    def spans(self, trace=None, name=None):
        """Recorded span dicts, optionally filtered by trace id and/or
        span name."""
        with self._lock:
            out = list(self._spans)
        if trace is not None:
            out = [s for s in out if s.get("trace") == trace]
        if name is not None:
            out = [s for s in out if s.get("name") == name]
        return out

    def traces(self):
        """Distinct trace ids, in first-seen order."""
        seen = {}
        for s in self.spans():
            seen.setdefault(s.get("trace"), None)
        return list(seen)

    def clear(self):
        with self._lock:
            self._spans.clear()
            self._metrics.clear()

    def __len__(self):
        return len(self._spans)


class NdjsonFileSink(Sink):
    """Append observability records to ``path`` as NDJSON.

    Span lines are ``{"type": "span", ...record}``; metric lines are
    ``{"type": "metrics", "at": epoch, "metrics": snapshot}``.  The
    file is opened lazily and flushed per record.
    """

    def __init__(self, path):
        self.path = path
        self._fh = None
        self._lock = threading.Lock()

    def _file(self):
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def _write(self, payload):
        line = json.dumps(payload, separators=(",", ":"))
        with self._lock:
            fh = self._file()
            fh.write(line + "\n")
            fh.flush()

    def record_span(self, record):
        self._write({"type": "span", **record})

    def record_metrics(self, snapshot):
        self._write({"type": "metrics", "at": time.time(),
                     "metrics": snapshot})

    def close(self):
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


def read_ndjson(path):
    """Parse an :class:`NdjsonFileSink` file back into record dicts,
    skipping blank/truncated lines (a crashed writer may leave one)."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue
    return records


__all__ = ["Sink", "RingBufferSink", "NdjsonFileSink", "read_ndjson"]
