"""CLI for the observability layer (DESIGN.md §13/§15)::

    python -m repro.obs tail obs.ndjson [--limit 20] [--trace ID]
    python -m repro.obs summarize obs.ndjson
    python -m repro.obs tree obs.ndjson [--trace ID]
    python -m repro.obs scrape HOST:PORT [--format prometheus]
    python -m repro.obs health HOST:PORT [--format prometheus]
    python -m repro.obs exemplars HOST:PORT [--limit K] [--trees]

``tail`` pretty-prints the last spans of an
:class:`~repro.obs.sink.NdjsonFileSink` log, ``summarize`` rolls the
log up per site, ``tree`` reassembles one trace's stitched span tree,
and ``scrape`` fetches the live ``metrics`` wire verb from a running
``repro.server`` and prints the snapshot (or Prometheus text).
``health`` fetches the liveness/SLO report (exit code 0 on ``ok``, 1
on ``warn``, 2 on ``breach`` — scriptable as a probe) and
``exemplars`` dumps the server flight recorder's retained span trees.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.export import (
    build_span_tree,
    format_span_tree,
    summarize_spans,
)
from repro.obs.sink import read_ndjson


def _load_spans(path, trace=None):
    spans = [r for r in read_ndjson(path) if r.get("type") == "span"]
    if trace is not None:
        spans = [s for s in spans if s.get("trace") == trace]
    return spans


def _cmd_tail(args):
    spans = _load_spans(args.path, args.trace)
    for s in spans[-args.limit:]:
        tags = s.get("tags") or {}
        tag_text = " ".join(f"{k}={v}" for k, v in sorted(tags.items()))
        print(f"{s.get('start', 0):.6f} {s.get('trace', '-'):<28} "
              f"{s.get('name', '?'):<28} {s.get('seconds', 0) * 1e3:9.3f} ms "
              f"pid={s.get('pid', '?')}"
              + (f" {tag_text}" if tag_text else ""))
    return 0


def _cmd_summarize(args):
    spans = _load_spans(args.path, args.trace)
    rows = summarize_spans(spans)
    if not rows:
        print("no spans")
        return 0
    width = max(len(name) for name in rows)
    print(f"{'site':<{width}}  {'count':>7}  {'total':>10}  "
          f"{'mean':>10}  {'max':>10}")
    for name, row in rows.items():
        print(f"{name:<{width}}  {row['count']:>7}  "
              f"{row['total_s'] * 1e3:>8.3f}ms  "
              f"{row['mean_s'] * 1e3:>8.3f}ms  "
              f"{row['max_s'] * 1e3:>8.3f}ms")
    return 0


def _cmd_tree(args):
    spans = _load_spans(args.path, args.trace)
    if not spans:
        print("no spans")
        return 0
    trace = args.trace
    if trace is None:
        trace = spans[-1]["trace"]  # default: the most recent trace
    roots, children = build_span_tree(spans, trace=trace)
    print(f"trace {trace}:")
    for line in format_span_tree(roots, children):
        print(line)
    return 0


def _cmd_scrape(args):
    from repro.server.client import ServiceClient

    host, _, port = args.address.rpartition(":")
    with ServiceClient(host or "127.0.0.1", int(port),
                       timeout=args.timeout) as client:
        payload = client.metrics(format=args.format)
    if args.format == "prometheus":
        sys.stdout.write(payload)
    else:
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    return 0


def _cmd_health(args):
    from repro.server.client import ServiceClient

    host, _, port = args.address.rpartition(":")
    with ServiceClient(host or "127.0.0.1", int(port),
                       timeout=args.timeout) as client:
        payload = client.health(format=args.format)
    if args.format == "prometheus":
        sys.stdout.write(payload)
        return 0
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return {"ok": 0, "warn": 1, "breach": 2}.get(
        payload.get("status"), 2)


def _cmd_exemplars(args):
    from repro.obs.export import build_span_tree, format_span_tree
    from repro.server.client import ServiceClient

    host, _, port = args.address.rpartition(":")
    with ServiceClient(host or "127.0.0.1", int(port),
                       timeout=args.timeout) as client:
        dump = client.exemplars(limit=args.limit)
    if not args.trees:
        json.dump(dump, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return 0
    for entry in dump.get("exemplars", []):
        print(f"trace {entry['trace']}  [{entry['reason']}]  "
              f"{entry['seconds'] * 1e3:.3f} ms  "
              f"kind={entry.get('kind')}")
        roots, children = build_span_tree(entry["spans"],
                                          trace=entry["trace"])
        for line in format_span_tree(roots, children, indent=1):
            print(line)
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="tail/summarize observability logs and scrape a "
                    "live server's metrics")
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("tail", help="print the last spans of an "
                                    "NDJSON span log")
    p.add_argument("path")
    p.add_argument("--limit", type=int, default=20)
    p.add_argument("--trace", default=None)
    p.set_defaults(fn=_cmd_tail)

    p = sub.add_parser("summarize", help="per-site rollup of a span log")
    p.add_argument("path")
    p.add_argument("--trace", default=None)
    p.set_defaults(fn=_cmd_summarize)

    p = sub.add_parser("tree", help="stitched span tree of one trace")
    p.add_argument("path")
    p.add_argument("--trace", default=None)
    p.set_defaults(fn=_cmd_tree)

    p = sub.add_parser("scrape", help="fetch the metrics verb from a "
                                      "running repro.server")
    p.add_argument("address", metavar="HOST:PORT")
    p.add_argument("--format", choices=("snapshot", "prometheus"),
                   default="prometheus")
    p.add_argument("--timeout", type=float, default=10.0)
    p.set_defaults(fn=_cmd_scrape)

    p = sub.add_parser("health", help="fetch the health verb from a "
                                      "running repro.server (exit "
                                      "0=ok 1=warn 2=breach)")
    p.add_argument("address", metavar="HOST:PORT")
    p.add_argument("--format", choices=("report", "prometheus"),
                   default="report")
    p.add_argument("--timeout", type=float, default=10.0)
    p.set_defaults(fn=_cmd_health)

    p = sub.add_parser("exemplars", help="dump the server flight "
                                         "recorder's exemplar traces")
    p.add_argument("address", metavar="HOST:PORT")
    p.add_argument("--limit", type=int, default=None)
    p.add_argument("--trees", action="store_true",
                   help="render each exemplar as an indented span "
                        "tree instead of JSON")
    p.add_argument("--timeout", type=float, default=10.0)
    p.set_defaults(fn=_cmd_exemplars)

    args = ap.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
