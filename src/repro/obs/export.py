"""Exporters: Prometheus text rendering and span-log summarization
(DESIGN.md §13).

:func:`render_prometheus` turns a registry snapshot into the Prometheus
text exposition format (the payload of the ``metrics`` wire verb with
``format="prometheus"``); :func:`summarize_spans` folds a span stream
into a per-site table and :func:`build_span_tree` reassembles one
trace's parent/child structure — the analyses behind
``python -m repro.obs summarize`` and the benchmark's stitched-tree
acceptance gate.
"""

from __future__ import annotations

import math
import re

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name, prefix="repro_"):
    return prefix + _NAME_RE.sub("_", name)


def _prom_num(v):
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    return repr(v) if isinstance(v, float) else str(v)


def render_prometheus(snapshot, prefix="repro_"):
    """Prometheus text format for a
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dict.

    Metric names sanitize dots to underscores under ``prefix``;
    histograms expose cumulative ``_bucket{le=...}`` series plus
    ``_sum`` and ``_count``, counters get the conventional ``_total``
    suffix.
    """
    lines = []
    for name in sorted(snapshot):
        d = snapshot[name]
        pname = _prom_name(name, prefix)
        t = d.get("type")
        if t == "counter":
            lines.append(f"# TYPE {pname}_total counter")
            lines.append(f"{pname}_total {_prom_num(d['value'])}")
        elif t == "gauge":
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_prom_num(d['value'])}")
        elif t == "histogram":
            lines.append(f"# TYPE {pname} histogram")
            cumulative = 0
            bounds = list(d["buckets"]) + [math.inf]
            for bound, c in zip(bounds, d["counts"]):
                cumulative += c
                lines.append(f'{pname}_bucket{{le="{_prom_num(bound)}"}}'
                             f' {cumulative}')
            lines.append(f"{pname}_sum {_prom_num(d['sum'])}")
            lines.append(f"{pname}_count {d['count']}")
        elif t == "windowed":
            # aggregate the retained slots into one histogram series
            # plus a gauge advertising the window length
            counts = [0] * (len(d["buckets"]) + 1)
            count, total = 0, 0.0
            for rec in d["data"].values():
                for i, c in enumerate(rec["counts"]):
                    counts[i] += c
                count += rec["count"]
                total += rec["sum"]
            lines.append(f"# TYPE {pname} histogram")
            cumulative = 0
            bounds = list(d["buckets"]) + [math.inf]
            for bound, c in zip(bounds, counts):
                cumulative += c
                lines.append(f'{pname}_bucket{{le="{_prom_num(bound)}"}}'
                             f' {cumulative}')
            lines.append(f"{pname}_sum {_prom_num(total)}")
            lines.append(f"{pname}_count {count}")
            lines.append(f"# TYPE {pname}_window_seconds gauge")
            lines.append(f"{pname}_window_seconds "
                         f"{_prom_num(d['slot_seconds'] * d['slots'])}")
        else:
            raise ValueError(f"unknown metric type {t!r} for {name!r}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# span analysis
# ----------------------------------------------------------------------
def summarize_spans(spans):
    """Per-site rollup of an iterable of span dicts:
    ``{name: {"count", "total_s", "mean_s", "max_s"}}``, insertion
    sorted by total time descending."""
    rows = {}
    for s in spans:
        if "name" not in s or "seconds" not in s:
            continue
        row = rows.setdefault(s["name"], {"count": 0, "total_s": 0.0,
                                          "max_s": 0.0})
        row["count"] += 1
        row["total_s"] += s["seconds"]
        row["max_s"] = max(row["max_s"], s["seconds"])
    for row in rows.values():
        row["mean_s"] = row["total_s"] / row["count"]
    return dict(sorted(rows.items(),
                       key=lambda kv: -kv[1]["total_s"]))


def build_span_tree(spans, trace=None):
    """Reassemble one trace's spans into ``(roots, children)``:
    ``roots`` are the span dicts whose parent is absent from the trace
    (normally exactly one — the client/root span) and ``children`` maps
    span id -> list of child span dicts.

    With ``trace=None`` and several trace ids present, raises
    ``ValueError`` — pass the id to disambiguate.
    """
    spans = [s for s in spans if s.get("trace") is not None]
    traces = {s["trace"] for s in spans}
    if trace is None:
        if len(traces) > 1:
            raise ValueError(f"{len(traces)} traces present; pass "
                             f"trace=... to pick one")
    else:
        spans = [s for s in spans if s["trace"] == trace]
    ids = {s["span"] for s in spans}
    roots = []
    children = {}
    for s in spans:
        parent = s.get("parent")
        if parent is None or parent not in ids:
            roots.append(s)
        else:
            children.setdefault(parent, []).append(s)
    for kids in children.values():
        kids.sort(key=lambda s: s.get("start", 0.0))
    roots.sort(key=lambda s: s.get("start", 0.0))
    return roots, children


def format_span_tree(roots, children, indent=0):
    """Human-readable indented rendering of :func:`build_span_tree`."""
    lines = []
    for s in roots:
        tags = s.get("tags") or {}
        tag_text = " ".join(f"{k}={v}" for k, v in sorted(tags.items()))
        lines.append("  " * indent
                     + f"{s['name']}  {s['seconds'] * 1e3:.3f} ms"
                     + f"  [pid {s.get('pid', '?')}]"
                     + (f"  {tag_text}" if tag_text else ""))
        lines.extend(format_span_tree(children.get(s["span"], []),
                                      children, indent + 1))
    return lines


__all__ = [
    "render_prometheus",
    "summarize_spans",
    "build_span_tree",
    "format_span_tree",
]
