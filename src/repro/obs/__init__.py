"""``repro.obs`` — end-to-end tracing, metrics and profiling hooks for
the serving stack (DESIGN.md §13).

Three pillars, all stdlib-only and off by default:

* **tracing** (:mod:`repro.obs.trace`): ``span("site", **tags)``
  context managers with monotonic timing and contextvar nesting; a
  per-query trace id minted at the root and propagated through wire
  frames and pool command/result queues, so one served query's spans
  stitch across client → server thread → forked worker;
* **metrics** (:mod:`repro.obs.metrics`): a process-local registry of
  counters, gauges and fixed-bucket histograms whose snapshots merge
  across processes — workers ship deltas back on the existing result
  queue and the pool master aggregates;
* **export** (:mod:`repro.obs.sink` / :mod:`repro.obs.export`): ring
  buffer and NDJSON file sinks, a Prometheus text renderer behind the
  ``metrics`` wire verb, and a ``python -m repro.obs`` tail/summarize
  CLI.

Quick start::

    from repro import obs

    ring = obs.RingBufferSink()
    obs.enable(ring)                     # before pool.start(): forked
    ...serve queries...                  # workers inherit the switch
    for line in obs.format_span_tree(
            *obs.build_span_tree(ring.spans(trace=ring.traces()[-1]))):
        print(line)
    print(obs.render_prometheus(obs.registry().snapshot()))

Every instrumentation site in the library is gated on
:func:`enabled` — ``benchmarks/bench_obs.py`` holds the disabled-mode
overhead of the warm query path under 2%.
"""

from repro.obs.export import (
    build_span_tree,
    format_span_tree,
    render_prometheus,
    summarize_spans,
)
from repro.obs.health import (
    DEFAULT_POLICY,
    FlightRecorder,
    SloPolicy,
    discover_kinds,
    evaluate_slo,
    evaluate_slos,
    render_health_prometheus,
    worst_status,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    WindowedHistogram,
    snapshot_delta,
)
from repro.obs.sink import NdjsonFileSink, RingBufferSink, Sink, read_ndjson
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    activate_trace,
    add_sink,
    configure_shipping,
    current_trace,
    deactivate_trace,
    disable,
    enable,
    enabled,
    inc,
    ingest,
    new_trace_id,
    observe,
    observe_windowed,
    record_span,
    registry,
    remove_sink,
    reset,
    set_gauge,
    ship_delta,
    sinks,
    span,
)

__all__ = [
    # trace
    "span",
    "Span",
    "NOOP_SPAN",
    "enabled",
    "enable",
    "disable",
    "reset",
    "new_trace_id",
    "current_trace",
    "activate_trace",
    "deactivate_trace",
    "record_span",
    "configure_shipping",
    "ship_delta",
    "ingest",
    # metrics
    "registry",
    "inc",
    "observe",
    "observe_windowed",
    "set_gauge",
    "Counter",
    "Gauge",
    "Histogram",
    "WindowedHistogram",
    "MetricsRegistry",
    "snapshot_delta",
    "DEFAULT_BUCKETS",
    # health
    "SloPolicy",
    "DEFAULT_POLICY",
    "evaluate_slo",
    "evaluate_slos",
    "discover_kinds",
    "worst_status",
    "FlightRecorder",
    "render_health_prometheus",
    # sinks + export
    "Sink",
    "RingBufferSink",
    "NdjsonFileSink",
    "read_ndjson",
    "add_sink",
    "remove_sink",
    "sinks",
    "render_prometheus",
    "summarize_spans",
    "build_span_tree",
    "format_span_tree",
]
