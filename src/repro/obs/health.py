"""Continuous health evaluation: SLO policies over rolling windows and
a flight recorder for exemplar traces (DESIGN.md §15).

Two pieces sit on top of the raw observability layer:

* :class:`SloPolicy` — a declarative latency + error budget for one
  query kind, evaluated by :func:`evaluate_slo` against the rolling
  ``health.query_seconds.<kind>`` / ``health.error_seconds.<kind>``
  windows that :func:`repro.service.execute_query` feeds.  The verdict
  is ``ok`` / ``warn`` / ``breach`` plus a *burn rate* (how fast the
  budget is being consumed: 1.0 means exactly at budget, 2.0 means
  burning twice the allowance).
* :class:`FlightRecorder` — a :class:`~repro.obs.sink.Sink` that
  tail-samples full span trees: it buffers each trace until its
  ``query.execute`` root lands, then retains the tree only if the
  query errored or ranks among the slowest ``K`` of its time window.
  Everything else is dropped, so the recorder stays bounded while the
  interesting one-in-a-thousand query keeps its complete
  cross-process tree for ``python -m repro.obs exemplars``.

The pool watchdog (``repro.server.pool``) combines these with worker
liveness into the ``health`` wire verb's report;
:func:`render_health_prometheus` turns that report into gauges for
scraping.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.obs import trace as _trace
from repro.obs.export import _prom_name, _prom_num
from repro.obs.metrics import WindowedHistogram
from repro.obs.sink import Sink

#: metric-name prefixes the serving instrumentation writes and
#: :func:`evaluate_slo` reads
LATENCY_PREFIX = "health.query_seconds."
ERROR_PREFIX = "health.error_seconds."

_STATUS_RANK = {"ok": 0, "warn": 1, "breach": 2}


def worst_status(statuses):
    """The most severe of an iterable of ``ok``/``warn``/``breach``
    strings (``ok`` when empty)."""
    worst = "ok"
    for s in statuses:
        if _STATUS_RANK.get(s, 0) > _STATUS_RANK[worst]:
            worst = s
    return worst


@dataclass(frozen=True)
class SloPolicy:
    """Latency + error budget for one query kind.

    ``latency_budget_s`` bounds the ``latency_quantile`` (default p99)
    of the rolling window; ``error_budget`` bounds the fraction of
    queries that may error.  ``warn_fraction`` is the early-warning
    threshold: burning more than that fraction of either budget is a
    ``warn`` before it becomes a ``breach``.  ``kind`` is the query
    class name (``"FlowQuery"``) or ``"*"`` to apply to every kind
    observed in the window that has no kind-specific policy.
    """

    kind: str
    latency_budget_s: float = 1.0
    latency_quantile: float = 0.99
    error_budget: float = 0.01
    window_seconds: float = 60.0
    warn_fraction: float = 0.8

    def __post_init__(self):
        if not 0.0 < self.latency_quantile < 1.0:
            raise ValueError("latency_quantile must be in (0, 1)")
        if self.latency_budget_s <= 0:
            raise ValueError("latency_budget_s must be positive")
        if not 0.0 < self.error_budget <= 1.0:
            raise ValueError("error_budget must be in (0, 1]")
        if not 0.0 < self.warn_fraction <= 1.0:
            raise ValueError("warn_fraction must be in (0, 1]")


#: the fallback policy applied to kinds without an explicit one —
#: generous enough that a healthy smoke-scale run never warns
DEFAULT_POLICY = SloPolicy(kind="*", latency_budget_s=30.0,
                           latency_quantile=0.99, error_budget=0.05)


def discover_kinds(registry):
    """Query kinds with windowed health data in ``registry``."""
    kinds = set()
    for name in registry.names():
        for prefix in (LATENCY_PREFIX, ERROR_PREFIX):
            if name.startswith(prefix):
                kinds.add(name[len(prefix):])
    return sorted(kinds)


def _frac_over(window, budget):
    """Fraction of a :meth:`WindowedHistogram.window` aggregate above
    ``budget``, at bucket resolution (an observation counts as over
    unless its whole bucket fits under the budget — conservative)."""
    if not window["count"]:
        return 0.0
    under = 0
    for bound, c in zip(window["buckets"], window["counts"]):
        if bound <= budget:
            under += c
        else:
            break
    return (window["count"] - under) / window["count"]


def evaluate_slo(policy, registry=None, kind=None, now=None):
    """Evaluate one :class:`SloPolicy` against the live windowed
    metrics in ``registry`` (default: the process registry).

    ``kind`` overrides the metric names consulted (used when a ``"*"``
    policy is applied to a discovered kind).  Returns a JSON-safe
    report dict; an empty window is ``ok`` with ``count == 0`` —
    absence of traffic is not a breach.
    """
    if registry is None:
        registry = _trace.registry()
    kind = kind or policy.kind
    w = policy.window_seconds
    lat = registry.get(LATENCY_PREFIX + kind)
    err = registry.get(ERROR_PREFIX + kind)
    lat_w = (lat.window(w, now) if isinstance(lat, WindowedHistogram)
             else None)
    err_w = (err.window(w, now) if isinstance(err, WindowedHistogram)
             else None)
    ok_count = lat_w["count"] if lat_w else 0
    err_count = err_w["count"] if err_w else 0
    total = ok_count + err_count

    # latency: burn = (fraction over budget) / (allowed fraction)
    allowed_over = 1.0 - policy.latency_quantile
    if ok_count:
        q = lat.quantile(policy.latency_quantile, w, now)
        frac_over = _frac_over(lat_w, policy.latency_budget_s)
        lat_burn = frac_over / allowed_over
    else:
        q, frac_over, lat_burn = None, 0.0, 0.0

    # errors: burn = error rate / error budget
    err_rate = err_count / total if total else 0.0
    err_burn = err_rate / policy.error_budget

    burn = max(lat_burn, err_burn)
    if burn > 1.0:
        status = "breach"
    elif burn > policy.warn_fraction:
        status = "warn"
    else:
        status = "ok"
    return {
        "kind": kind, "status": status, "burn_rate": burn,
        "window_seconds": w, "count": total, "error_count": err_count,
        "latency": {
            "quantile": policy.latency_quantile,
            "value_s": None if q is None or q == math.inf else q,
            "budget_s": policy.latency_budget_s,
            "frac_over_budget": frac_over, "burn_rate": lat_burn},
        "errors": {"rate": err_rate, "budget": policy.error_budget,
                   "burn_rate": err_burn},
    }


def evaluate_slos(policies=None, registry=None, now=None):
    """Evaluate a set of policies, applying any ``"*"`` policy to every
    discovered kind that lacks a specific one (with no policies at all,
    :data:`DEFAULT_POLICY` covers everything observed).  Returns
    ``{"status": worst, "slos": [per-kind reports]}``."""
    if registry is None:
        registry = _trace.registry()
    policies = list(policies) if policies else [DEFAULT_POLICY]
    by_kind = {p.kind: p for p in policies if p.kind != "*"}
    wildcard = next((p for p in policies if p.kind == "*"), None)
    reports = []
    for kind, p in sorted(by_kind.items()):
        reports.append(evaluate_slo(p, registry, now=now))
    if wildcard is not None:
        for kind in discover_kinds(registry):
            if kind not in by_kind:
                reports.append(evaluate_slo(wildcard, registry,
                                            kind=kind, now=now))
    return {"status": worst_status(r["status"] for r in reports),
            "slos": reports}


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------
class FlightRecorder(Sink):
    """Tail-sampling span sink: keep full trees for every errored query
    plus the slowest ``slowest_k`` per ``window_seconds``, drop the
    rest.

    Spans buffer per trace id until the trace's ``root_name`` span
    (default ``query.execute``) arrives — workers ship a query's spans
    children-first with the root last, so by decision time the whole
    worker-side subtree is in hand.  Later spans of an already-retained
    trace (the server/client side of the tree, which finish after the
    worker root ships) are appended to the retained entry, completing
    the cross-process tree.

    Bounded everywhere: at most ``max_pending`` traces buffer awaiting
    a root (oldest dropped first — rootless span noise cannot grow the
    recorder), at most ``capacity`` trees are retained (oldest
    non-error entries evicted before errored ones).
    """

    def __init__(self, slowest_k=4, window_seconds=60.0, capacity=64,
                 root_name="query.execute", max_pending=256):
        if slowest_k < 1 or capacity < 1 or max_pending < 1:
            raise ValueError("slowest_k, capacity and max_pending "
                             "must be >= 1")
        self.slowest_k = int(slowest_k)
        self.window_seconds = float(window_seconds)
        self.capacity = int(capacity)
        self.root_name = root_name
        self.max_pending = int(max_pending)
        self._pending = OrderedDict()   # trace -> [span, ...]
        self._retained = OrderedDict()  # trace -> entry dict
        self._windows = {}              # window idx -> [(secs, trace)]
        self._lock = threading.Lock()
        self.dropped = 0

    # Sink protocol -----------------------------------------------------
    def record_span(self, record):
        trace = record.get("trace")
        if trace is None:
            return
        with self._lock:
            entry = self._retained.get(trace)
            if entry is not None:
                entry["spans"].append(record)
                return
            self._pending.setdefault(trace, []).append(record)
            if record.get("name") == self.root_name:
                self._decide(trace, record)
            while len(self._pending) > self.max_pending:
                self._pending.popitem(last=False)
                self.dropped += 1

    # -------------------------------------------------------------------
    def _decide(self, trace, root):
        spans = self._pending.pop(trace)
        seconds = root.get("seconds", 0.0)
        errored = any((s.get("tags") or {}).get("error")
                      for s in spans)
        if errored:
            self._retain(trace, spans, root, "error")
            return
        idx = int(root.get("start", 0.0) // self.window_seconds)
        ranked = self._windows.setdefault(idx, [])
        # retire ranking state for windows that have scrolled away
        for old in [w for w in self._windows if w < idx - 1]:
            del self._windows[old]
        if len(ranked) < self.slowest_k:
            ranked.append((seconds, trace))
            self._retain(trace, spans, root, "slow")
            return
        fastest = min(range(len(ranked)), key=lambda i: ranked[i][0])
        if seconds <= ranked[fastest][0]:
            self.dropped += 1
            return
        _, evicted = ranked[fastest]
        ranked[fastest] = (seconds, trace)
        if self._retained.pop(evicted, None) is not None:
            self.dropped += 1
        self._retain(trace, spans, root, "slow")

    def _retain(self, trace, spans, root, reason):
        self._retained[trace] = {
            "trace": trace, "reason": reason,
            "seconds": root.get("seconds", 0.0),
            "start": root.get("start", 0.0),
            "kind": (root.get("tags") or {}).get("kind"),
            "spans": spans}
        while len(self._retained) > self.capacity:
            victim = next(
                (t for t, e in self._retained.items()
                 if e["reason"] != "error"),
                next(iter(self._retained)))
            del self._retained[victim]
            self.dropped += 1

    # -------------------------------------------------------------------
    def exemplars(self, limit=None, reason=None):
        """Retained entries, oldest first; filter by ``reason``
        (``"error"``/``"slow"``), keep the last ``limit``."""
        with self._lock:
            out = list(self._retained.values())
        if reason is not None:
            out = [e for e in out if e["reason"] == reason]
        if limit is not None:
            out = out[-limit:]
        return out

    def dump(self, limit=None):
        """JSON-safe dump for the wire/CLI: exemplar entries plus the
        recorder's own accounting."""
        return {"exemplars": self.exemplars(limit),
                "retained": len(self._retained),
                "pending": len(self._pending),
                "dropped": self.dropped,
                "slowest_k": self.slowest_k,
                "window_seconds": self.window_seconds}

    def clear(self):
        with self._lock:
            self._pending.clear()
            self._retained.clear()
            self._windows.clear()
            self.dropped = 0

    def __len__(self):
        return len(self._retained)


# ----------------------------------------------------------------------
# prometheus rendering of a health report
# ----------------------------------------------------------------------
def render_health_prometheus(report, prefix="repro_"):
    """Gauge rendering of a ``health`` verb report (the
    ``format="prometheus"`` payload of ``ServiceClient.health()``):
    overall and per-SLO status as ``0``/``1``/``2`` (ok/warn/breach),
    burn rates, and the watchdog's liveness numbers."""
    lines = []

    def gauge(name, value, labels=""):
        pname = _prom_name(name, prefix)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname}{labels} {_prom_num(value)}")

    gauge("health.status", _STATUS_RANK.get(report.get("status"), 2))
    gauge("health.ready", 1 if report.get("state") == "ready" else 0)
    if "uptime_s" in report:
        gauge("health.uptime_seconds", report["uptime_s"])
    workers = report.get("workers")
    if workers:
        gauge("health.workers_alive", workers.get("alive", 0))
        gauge("health.workers_stalled", workers.get("stalled", 0))
    if "queue_depth" in report:
        gauge("health.queue_depth", report["queue_depth"])
    if "inflight" in report:
        gauge("health.inflight", report["inflight"])
    for slo in (report.get("slos") or {}).get("slos", []):
        labels = f'{{kind="{slo["kind"]}"}}'
        pname = _prom_name("slo.status", prefix)
        lines.append(f"{pname}{labels} "
                     f"{_STATUS_RANK.get(slo['status'], 2)}")
        pname = _prom_name("slo.burn_rate", prefix)
        lines.append(f"{pname}{labels} {_prom_num(slo['burn_rate'])}")
    return "\n".join(lines) + ("\n" if lines else "")


__all__ = [
    "SloPolicy",
    "DEFAULT_POLICY",
    "evaluate_slo",
    "evaluate_slos",
    "discover_kinds",
    "worst_status",
    "FlightRecorder",
    "render_health_prometheus",
    "LATENCY_PREFIX",
    "ERROR_PREFIX",
]
