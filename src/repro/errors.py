"""Exception types for the repro library."""


class ReproError(Exception):
    """Base class for all library errors."""


class EmbeddingError(ReproError):
    """A rotation system is inconsistent or the graph is not planar."""


class NotConnectedError(ReproError):
    """An operation required a connected (sub)graph."""


class NegativeCycleError(ReproError):
    """A negative cycle was detected in a shortest-path computation.

    The distributed algorithms report this via a global broadcast; in the
    library it surfaces as an exception carrying the detecting bag/graph.
    """

    def __init__(self, message="negative cycle detected", where=None):
        super().__init__(message)
        self.where = where


class InfeasibleFlowError(ReproError):
    """A requested flow value is not feasible."""


class DecompositionError(ReproError):
    """The BDD construction violated one of its structural guarantees."""


class SimulationError(ReproError):
    """The CONGEST simulator was driven into an invalid state."""


class ServiceError(ReproError):
    """The serving layer was asked for an unknown graph or an invalid
    query (e.g. a backend the planner does not recognize)."""


class AuditError(ServiceError):
    """An integrity audit found a served artifact diverging from its
    from-scratch rebuild (see ``GraphCatalog.audit_labeling``).
    ``report`` carries the audit's findings when available."""

    def __init__(self, message="audit divergence", report=None):
        super().__init__(message)
        self.report = report


class ReplayDivergenceError(ServiceError):
    """A workload replay produced a response or audit checkpoint that
    differs bit-for-bit from the single-threaded reference replay (see
    ``repro.workload.replay.assert_replay_parity``).  ``record``
    carries the first diverging record's canonical payload when
    available."""

    def __init__(self, message="replay divergence", record=None):
        super().__init__(message)
        self.record = record


class ProtocolError(ReproError):
    """A ``repro.server`` wire frame was malformed: bad JSON, a
    mismatched protocol version, an unknown verb, or an unknown
    query/result kind."""


class RemoteError(ReproError):
    """A server-side failure whose exception type the client could not
    reconstruct locally; ``remote_type`` carries the remote class name.

    Failures whose type *is* known locally (every :class:`ReproError`
    subclass plus the common builtins) are re-raised as that type
    instead — see :func:`repro.server.wire.exception_from_wire`.
    """

    def __init__(self, message="remote failure", remote_type=None):
        super().__init__(message)
        self.remote_type = remote_type
