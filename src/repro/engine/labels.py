"""Engine-backed Theorem 2.1 label construction (DESIGN.md §9).

The legacy labeling recursion (:mod:`repro.labeling.scheme`) is the
round-audited CONGEST simulation: per bag it rebuilds dict-keyed dual
arcs, runs hashable-node SPFA, and derives every child distance by
*decoding* the child's label chain — faithful to the protocol, and by
far the most expensive cold path left in the serving layer.  This
module is its centralized fast path.  It produces **bit-identical
labels** (the same :class:`~repro.labeling.labels.Label` chains, the
same dict contents, the same :class:`~repro.errors.NegativeCycleError`
messages and ``where`` sites) from three compiled ingredients:

* :class:`CompiledBagSlice` — the dual of one bag as a CSR sub-array
  sliced out of the global topology: local int node/dart ids (with the
  ``rev(d) == d ^ 1`` pairing preserved, so the in-arc trick of
  :class:`~repro.engine.workspace._VectorDualKernel` applies verbatim),
  plus a per-slice :class:`~repro.engine.workspace.FlowWorkspace` whose
  Bellman–Ford kernels run the per-bag shortest paths.  Leaf-bag APSP
  is one :meth:`~repro.engine.workspace.FlowWorkspace.batched_sssp`
  call with every bag node as a source.

* :class:`CompiledInternalBag` — the Section 5.3 DDG of a non-leaf bag
  with int-indexed ``F_X`` faces and ``(child, face)`` node-parts: the
  dual ``S_X`` arcs, the zero links between parts of one face, and the
  *slots* of the per-child cliques whose lengths are child distances.
  Child distances are not decoded from labels: within child bag ``c``
  the decoded distance *is* the distance in ``c``'s dual (Lemma 5.16),
  so the builder runs one forward and one reverse batched SSSP over the
  child's slice anchored at ``F_X ∩ c`` and reads the clique lengths
  and every node-to-anchor distance straight out of the two matrices.

* the DDG relaxation — per part over the assembled clique/S_X/zero
  arcs: a pooled :class:`~repro.engine.dijkstra.DijkstraWorkspace`
  (O(1) re-init via generation stamps) when every arc is nonnegative,
  and an int-indexed SPFA with the legacy relaxation-count detection
  when mixed signs force Bellman–Ford.

Compilation is topology-only and cached in the process-wide artifact
cache keyed by the graph's topology token (:func:`compile_labeling_
bags`), so a ``set_weights`` reprice on a served graph rebuilds labels
over the *same* bag arrays — only the per-dart lengths are reloaded.
The per-slice workspaces live inside the compiled artifact, so the
recursion over the BDD allocates nothing per bag in steady state.

Negative-cycle parity (Lemma 5.19): bags are processed in the legacy
order (levels deepest-first, bags in level order), every legacy raise
site is replicated with the same message and ``where``, and the child
SSSPs can never trip first — a negative cycle inside a child's dual
would already have raised while that child was processed.

**Delta repair** (DESIGN.md §11): a weight mutation touches one dual
dart per edge, and the set of bags whose labels can depend on that
dart's length — the bags whose dual contains the dart as an arc — is
ancestor-closed (live darts nest upward, and ``sx_arc_darts ⊆
arc_darts`` per :func:`repro.bdd.dual_bags.build_dual_bag`).  So a
clean bag's whole subtree is clean and its labels are exactly what a
full rebuild would produce.  :func:`repair_dual_labels_engine` walks
the same level order recomputing only the dirty bags; inside a dirty
internal bag it reuses the recorded anchored-SSSP matrices of clean
children (the dominant per-bag cost) and skips re-labeling a clean
child's nodes outright when that child's DDG boundary rows
(``m_out`` / ``m_in``) come back unchanged.  Clean bags cannot raise
(their inputs are unchanged and the previous build succeeded), and
dirty bags run in the legacy order, so the first
:class:`NegativeCycleError` — message and ``where`` — matches the
full rebuild bit for bit.
"""

from __future__ import annotations

import math
import time
from collections import deque

from repro import obs
from repro._artifacts import shared_cache, topo_token
from repro._compat import np as _np
from repro.engine.dijkstra import DijkstraWorkspace
from repro.engine.workspace import FlowWorkspace, _as_scalar
from repro.errors import DecompositionError, NegativeCycleError
from repro.planar.graph import rev

# Label / LabelEntry are imported lazily inside the builders:
# repro.labeling imports repro.engine (for the SSSP fast path), so a
# module-level import here would close an import cycle.

INF = math.inf


def _row_scalars(row):
    """One distance row -> Python scalars with legacy types: ints where
    integral (the common case, converted wholesale), ``math.inf`` where
    unreached — the row-level form of
    :func:`repro.engine.workspace._as_scalar`."""
    if _np is not None and isinstance(row, _np.ndarray):
        if _np.isfinite(row).all() and (row == _np.rint(row)).all():
            return row.astype(_np.int64).tolist()
        return [x if x == INF or x == -INF
                else (int(x) if x.is_integer() else x)
                for x in row.tolist()]
    return [_as_scalar(x) for x in row]


class CompiledBagSlice:
    """The dual of one bag as flat local arrays + a reusable workspace.

    Exposes exactly the attribute surface of
    :class:`~repro.engine.csr.CompiledPlanarGraph` that
    :class:`~repro.engine.workspace.FlowWorkspace` consumes
    (``num_faces`` / ``num_darts`` / ``face_left`` / ``dual_indptr`` /
    ``dual_arc_dart`` / ``dual_arc_head`` / ``slot_of_dart``), so the
    flow kernels run on a bag slice unchanged.  Local dart ids keep the
    ``rev`` pairing: global pair ``(d, d^1)`` maps to local ``(2i,
    2i+1)``.  Faces with no dual arc in the slice get a padding
    self-loop pair (global dart ``-1``, length forced to ``inf``) so
    every CSR segment is nonempty — a ``reduceat`` precondition.
    """

    __slots__ = ("bag_id", "nodes", "index", "num_faces", "num_darts",
                 "dart_global", "face_left", "dual_indptr",
                 "dual_arc_dart", "dual_arc_head", "slot_of_dart",
                 "_workspace", "_flat")

    def __init__(self, dual, graph):
        self.bag_id = dual.bag.bag_id
        nodes = sorted(dual.nodes)
        self.nodes = nodes
        index = {f: i for i, f in enumerate(nodes)}
        self.index = index
        nf = len(nodes)
        self.num_faces = nf

        dart_global = []
        face_left = []
        for d in dual.arc_darts:
            if d & 1:
                continue  # the partner dart joins with its pair
            dart_global.append(d)
            dart_global.append(d ^ 1)
            face_left.append(index[graph.face_of[d]])
            face_left.append(index[graph.face_of[d ^ 1]])

        counts = [0] * nf
        for lf in face_left:
            counts[lf] += 1
        for fi in range(nf):
            if counts[fi] == 0:
                dart_global.extend((-1, -1))
                face_left.extend((fi, fi))
        nd = len(dart_global)
        self.num_darts = nd
        self.dart_global = dart_global
        self.face_left = face_left

        indptr = [0] * (nf + 1)
        for lf in face_left:
            indptr[lf + 1] += 1
        for f in range(nf):
            indptr[f + 1] += indptr[f]
        fill = indptr[:nf]
        arc_dart = [0] * nd
        arc_head = [0] * nd
        slot_of_dart = [0] * nd
        for ld in range(nd):
            lf = face_left[ld]
            s = fill[lf]
            fill[lf] = s + 1
            arc_dart[s] = ld
            arc_head[s] = face_left[ld ^ 1]
            slot_of_dart[ld] = s
        self.dual_indptr = indptr
        self.dual_arc_dart = arc_dart
        self.dual_arc_head = arc_head
        self.slot_of_dart = slot_of_dart
        self._workspace = None
        self._flat = [INF] * nd

    @property
    def workspace(self):
        """The slice's reusable :class:`FlowWorkspace` (built once)."""
        if self._workspace is None:
            self._workspace = FlowWorkspace(self)
        return self._workspace

    def load_lengths(self, lengths, reverse=False):
        """Load per-global-dart ``lengths`` into the slice workspace.

        With ``reverse=True`` the loaded graph is the slice's reverse:
        the arc of local dart ``ld`` (same tail/head arrays) carries the
        length of its partner's global dart, which is exactly the
        reversed arc set because the slice contains both darts of every
        pair.
        """
        dg = self.dart_global
        flat = self._flat
        if reverse:
            for ld in range(len(dg)):
                gd = dg[ld ^ 1]
                flat[ld] = INF if gd < 0 else lengths[gd]
        else:
            for ld, gd in enumerate(dg):
                flat[ld] = INF if gd < 0 else lengths[gd]
        self.workspace.load_lengths(flat)

    def batched_sssp(self, lengths, sources, reverse=False):
        """Distance rows (matrix or list of rows, see
        :meth:`FlowWorkspace.batched_sssp`) from local ``sources``."""
        self.load_lengths(lengths, reverse=reverse)
        return self.workspace.batched_sssp(sources)


class _ChildRec:
    """One child of an internal bag: its ``F_X`` anchors, int-indexed
    three ways (face id, child-slice node, DDG part)."""

    __slots__ = ("bag_id", "cf_faces", "cf_local", "cf_part",
                 "fx_cf_pos")

    def __init__(self, bag_id, cf_faces, cf_local, cf_part, fx_cf_pos):
        self.bag_id = bag_id
        self.cf_faces = cf_faces
        self.cf_local = cf_local
        self.cf_part = cf_part
        #: j -> position of f_x[j] in cf_faces, or -1 when the face
        #: does not live in this child (the "direct distance" test)
        self.fx_cf_pos = fx_cf_pos


class CompiledInternalBag:
    """Int-indexed Section 5.3 structures of one non-leaf bag."""

    __slots__ = ("bag_id", "f_x", "node_list", "owner_pos", "owner_idx",
                 "children", "num_parts", "group_bounds", "sx_arcs",
                 "zero_links")

    def __init__(self, bag, dual, duals, compiled_slices, graph):
        self.bag_id = bag.bag_id
        f_x = sorted(dual.f_x)
        self.f_x = f_x
        fx_pos = {f: j for j, f in enumerate(f_x)}

        dart_child = {}
        for c in bag.children:
            for d in c.live_darts:
                dart_child[d] = c

        # parts in legacy order (F_X-major, children in bag order), so
        # every parts_of_face group is one contiguous index range
        part_index = {}
        group_bounds = []
        for f in f_x:
            start = len(part_index)
            for c in bag.children:
                if f in duals[c.bag_id].nodes:
                    part_index[(c.bag_id, f)] = len(part_index)
            group_bounds.append((start, len(part_index)))
        self.num_parts = len(part_index)
        self.group_bounds = group_bounds

        children = []
        for c in bag.children:
            child_slice = compiled_slices[c.bag_id]
            cf_faces = [f for f in f_x
                        if f in duals[c.bag_id].nodes]
            cf_local = [child_slice.index[f] for f in cf_faces]
            cf_part = [part_index[(c.bag_id, f)] for f in cf_faces]
            fx_cf_pos = [-1] * len(f_x)
            for a, f in enumerate(cf_faces):
                fx_cf_pos[fx_pos[f]] = a
            children.append(_ChildRec(c.bag_id, cf_faces, cf_local,
                                      cf_part, fx_cf_pos))
        self.children = children

        self.sx_arcs = []
        for d in dual.sx_arc_darts:
            p = part_index[(dart_child[d].bag_id, graph.face_of[d])]
            q = part_index[(dart_child[rev(d)].bag_id,
                            graph.face_of[rev(d)])]
            self.sx_arcs.append((p, q, d))

        self.zero_links = []
        for (start, end) in group_bounds:
            for p in range(start, end):
                for q in range(start, end):
                    if p != q:
                        self.zero_links.append((p, q))

        child_pos = {c.bag_id: i for i, c in enumerate(bag.children)}
        node_list = sorted(dual.nodes)
        self.node_list = node_list
        #: per node: -1 = F_X face, -2 = no owning child (legacy
        #: DecompositionError), else index into ``children``
        owner_pos = []
        owner_idx = []
        for f in node_list:
            if f in dual.f_x:
                owner_pos.append(-1)
                owner_idx.append(-1)
                continue
            c = dual.child_of_node[f]
            if c is None:
                owner_pos.append(-2)
                owner_idx.append(-1)
            else:
                owner_pos.append(child_pos[c.bag_id])
                owner_idx.append(
                    compiled_slices[c.bag_id].index[f])
        self.owner_pos = owner_pos
        self.owner_idx = owner_idx


class CompiledLabelingBags:
    """Topology-only compilation of a BDD + dual bags for the engine
    labeling builder: per-bag slices, per-internal-bag DDG arrays, the
    legacy processing order, and one pooled DDG Dijkstra workspace."""

    def __init__(self, bdd, duals=None):
        if duals is None:
            from repro.bdd.dual_bags import build_all_dual_bags

            duals = build_all_dual_bags(bdd)
        graph = bdd.graph
        root_id = bdd.root.bag_id
        self.root_id = root_id
        self.slices = {}
        for bag in bdd.bags:
            if bag.bag_id == root_id and not bag.is_leaf:
                continue  # the root is nobody's child and never a leaf
            self.slices[bag.bag_id] = CompiledBagSlice(
                duals[bag.bag_id], graph)
        self.internal = {}
        for bag in bdd.bags:
            if not bag.is_leaf:
                self.internal[bag.bag_id] = CompiledInternalBag(
                    bag, duals[bag.bag_id], duals, self.slices, graph)
        #: legacy processing order: (bag_id, is_leaf) by level,
        #: deepest level first, bags in level order
        self.levels = [[(b.bag_id, b.is_leaf) for b in level]
                       for level in bdd.levels()]
        self.max_parts = max(
            (rec.num_parts for rec in self.internal.values()),
            default=0)
        self._ddg_ws = None
        self._bags_of_dart = None

    @property
    def ddg_workspace(self):
        """Pooled nonnegative-DDG Dijkstra workspace (built once,
        O(1) re-init per bag via generation stamps)."""
        if self._ddg_ws is None:
            self._ddg_ws = DijkstraWorkspace(max(self.max_parts, 1))
        return self._ddg_ws

    @property
    def bags_of_dart(self):
        """global dart -> list of bag ids whose dual contains the dart
        as an arc (built lazily on the first repair).  The non-leaf
        root has no slice and is not listed — it has every dart live,
        so :func:`dirty_bags` adds it unconditionally."""
        if self._bags_of_dart is None:
            bd = {}
            for bag_id, sl in self.slices.items():
                for gd in sl.dart_global:
                    if gd >= 0:
                        bd.setdefault(gd, []).append(bag_id)
            self._bags_of_dart = bd
        return self._bags_of_dart


def compile_labeling_bags(bdd, duals=None):
    """Compiled bag arrays for ``bdd``, cached in the process-wide
    artifact cache under the graph's topology token.

    The BDD construction is deterministic in ``(graph, leaf_size)``, so
    a rebuild of the same decomposition (e.g. after a
    ``GraphCatalog.set_weights`` reprice dropped the per-name BDD
    artifact) hits the same compiled arrays — weight-only changes never
    recompile the bags.
    """
    key = ("labels-bags", topo_token(bdd.graph), bdd.leaf_size,
           len(bdd.bags), bdd.depth)

    def build():
        if not obs.enabled():
            return CompiledLabelingBags(bdd, duals)
        with obs.span("labeling.compile_bags", bags=len(bdd.bags)):
            return CompiledLabelingBags(bdd, duals)

    return shared_cache().get_or_build(key, build)


class _InternalRepair:
    """Weight-dependent repair state of one internal bag: the anchored
    child SSSP matrices and the per-child DDG boundary rows of the last
    successful build.  Lives on the *labeling* instance (per weight
    vector), never inside the shared topology-only compilation."""

    __slots__ = ("fwd", "back", "m_out", "m_in")

    def __init__(self, num_children):
        self.fwd = [None] * num_children
        self.back = [None] * num_children
        self.m_out = [None] * num_children
        self.m_in = [None] * num_children


#: marks a clean child whose node labels were verified unchanged and
#: therefore skipped wholesale during a repair
_REUSED = object()


# ----------------------------------------------------------------------
# builder
# ----------------------------------------------------------------------
def build_dual_labels_engine(labeling, compiled=None):
    """Fill ``labeling._labels`` with bit-identical Theorem 2.1 labels
    using the compiled bag arrays (see the module docstring).

    When the labeling carries a repair-state dict
    (``labeling._repair`` is not ``None`` — see
    ``DualDistanceLabeling(repair_state=True)``), the per-bag child
    SSSP matrices and DDG boundary rows are recorded as they are
    computed, arming :func:`repair_dual_labels_engine`.
    """
    if compiled is None:
        compiled = compile_labeling_bags(labeling.bdd, labeling.duals)
    lengths = labeling.lengths
    labels = labeling._labels
    state = getattr(labeling, "_repair", None)
    if not obs.enabled():
        for level in compiled.levels:
            for bag_id, is_leaf in level:
                if is_leaf:
                    _label_leaf(compiled, bag_id, lengths, labels)
                else:
                    _label_internal(compiled, bag_id, lengths, labels,
                                    state=state)
        return labels
    bags = sum(len(lv) for lv in compiled.levels)
    with obs.span("labeling.build", bags=bags):
        for level in compiled.levels:
            for bag_id, is_leaf in level:
                t0 = time.perf_counter()
                if is_leaf:
                    _label_leaf(compiled, bag_id, lengths, labels)
                    obs.observe("labeling.leaf_apsp_seconds",
                                time.perf_counter() - t0)
                else:
                    _label_internal(compiled, bag_id, lengths, labels,
                                    state=state)
                    obs.observe("labeling.ddg_relax_seconds",
                                time.perf_counter() - t0)
    return labels


def dirty_bags(compiled, darts):
    """Bag ids whose labels may depend on the lengths of ``darts``.

    A bag is dirty when its dual contains a changed dart as an arc;
    the set is ancestor-closed because live darts nest upward (see the
    module docstring).  The non-leaf root carries no slice but has
    every dart live, so any real change dirties it.
    """
    bd = compiled.bags_of_dart
    dirty = set()
    for d in darts:
        dirty.update(bd.get(d, ()))
    if dirty or darts:
        dirty.add(compiled.root_id)
    return dirty


def repair_dual_labels_engine(labeling, changed, compiled=None,
                              dirty=None):
    """Apply the dart-length ``changed`` mapping to ``labeling`` by
    recomputing only the dirty bags, in the legacy level order.

    Requires a labeling built with repair state (see
    :func:`build_dual_labels_engine`).  Returns a stats dict.  On
    :class:`NegativeCycleError` the raise site matches a full rebuild
    bit for bit, but the labeling is left *corrupt* (partially
    repriced) — the caller must discard it.
    """
    if compiled is None:
        compiled = compile_labeling_bags(labeling.bdd, labeling.duals)
    state = getattr(labeling, "_repair", None)
    if state is None:
        raise ValueError("labeling has no repair state; construct it "
                         "with repair_state=True to enable "
                         "delta repair")
    if dirty is None:
        dirty = dirty_bags(compiled, changed)
    labeling.lengths.update(changed)
    lengths = labeling.lengths
    labels = labeling._labels
    stats = {"changed_darts": len(changed),
             "dirty_bags": len(dirty),
             "total_bags": sum(len(lv) for lv in compiled.levels),
             "repaired_leaves": 0, "repaired_internal": 0,
             "sssp_children": 0, "reused_children": 0}
    if not obs.enabled():
        for level in compiled.levels:
            for bag_id, is_leaf in level:
                if bag_id not in dirty:
                    continue
                if is_leaf:
                    _label_leaf(compiled, bag_id, lengths, labels)
                    stats["repaired_leaves"] += 1
                else:
                    _label_internal(compiled, bag_id, lengths, labels,
                                    state=state, dirty=dirty,
                                    stats=stats)
                    stats["repaired_internal"] += 1
        return stats
    with obs.span("labeling.repair", changed=len(changed),
                  dirty=len(dirty)):
        for level in compiled.levels:
            for bag_id, is_leaf in level:
                if bag_id not in dirty:
                    continue
                t0 = time.perf_counter()
                if is_leaf:
                    _label_leaf(compiled, bag_id, lengths, labels)
                    stats["repaired_leaves"] += 1
                    obs.observe("labeling.leaf_apsp_seconds",
                                time.perf_counter() - t0)
                else:
                    _label_internal(compiled, bag_id, lengths, labels,
                                    state=state, dirty=dirty,
                                    stats=stats)
                    stats["repaired_internal"] += 1
                    obs.observe("labeling.ddg_relax_seconds",
                                time.perf_counter() - t0)
    return stats


def _label_leaf(compiled, bag_id, lengths, labels):
    """Leaf bag: whole-bag APSP in one batched Bellman–Ford call."""
    from repro.labeling.labels import Label, LabelEntry

    sl = compiled.slices[bag_id]
    nodes = sl.nodes
    k = len(nodes)
    if k == 0:
        return
    try:
        rows = sl.batched_sssp(lengths, range(k))
    except NegativeCycleError:
        raise NegativeCycleError(
            f"negative cycle in leaf bag {bag_id}",
            where=("leaf", bag_id))
    # rows[v][h] = dist(nodes[v] -> nodes[h]); dist_from is the
    # transpose read of the same matrix
    scal = [_row_scalars(row) for row in rows]
    for vi, v in enumerate(nodes):
        row = scal[vi]
        entry = LabelEntry(
            bag_id=bag_id, node=v, is_leaf=True,
            dist_to={h: row[hi] for hi, h in enumerate(nodes)},
            dist_from={h: scal[hi][vi] for hi, h in enumerate(nodes)})
        labels[(bag_id, v)] = Label(node=v, entries=[entry])


def _ddg_distances(compiled, rec, arcs, has_negative):
    """All-parts distance matrix over the assembled DDG arcs.

    Nonnegative arcs run on the pooled Dijkstra workspace; mixed signs
    fall back to int-indexed SPFA with the legacy relaxation-count
    negative-cycle detection (limit ``P + 1``, as in
    :func:`repro.labeling.scheme._spfa`).
    """
    p_count = rec.num_parts
    if p_count == 0:
        return []
    if not has_negative:
        ws = compiled.ddg_workspace
        ws.load_arcs([(i, t, h, ln) for i, (t, h, ln) in enumerate(arcs)
                      if ln < INF])
        ddg = []
        for p in range(p_count):
            ws.sssp(p)
            ddg.append([ws.distance(q) for q in range(p_count)])
        return ddg

    adj = [[] for _ in range(p_count)]
    for (t, h, ln) in arcs:
        if ln < INF:
            adj[t].append((h, ln))
    limit = p_count + 1
    ddg = []
    for p in range(p_count):
        dist = [INF] * p_count
        cnt = [0] * p_count
        inq = bytearray(p_count)
        dist[p] = 0
        inq[p] = 1
        q = deque([p])
        while q:
            u = q.popleft()
            inq[u] = 0
            du = dist[u]
            for (h, ln) in adj[u]:
                nd = du + ln
                if nd < dist[h]:
                    dist[h] = nd
                    cnt[h] += 1
                    if cnt[h] > limit:
                        raise NegativeCycleError(
                            f"negative cycle crossing F_X of bag "
                            f"{rec.bag_id}", where=("ddg", rec.bag_id))
                    if not inq[h]:
                        inq[h] = 1
                        q.append(h)
        ddg.append(dist)
    return ddg


def _group_min(row, bounds):
    """min over one contiguous part group of a distance row."""
    start, end = bounds
    best = INF
    for q in range(start, end):
        if row[q] < best:
            best = row[q]
    return best


def _label_internal(compiled, bag_id, lengths, labels, state=None,
                    dirty=None, stats=None):
    from repro.labeling.labels import Label, LabelEntry

    rec = compiled.internal[bag_id]
    f_x = rec.f_x
    nfx = len(f_x)
    repairing = dirty is not None
    rep = None
    if state is not None:
        rep = state.get(bag_id)
        if rep is None:
            rep = _InternalRepair(len(rec.children))
            state[bag_id] = rep

    # ---- child anchored SSSPs (forward + reverse per child) ----------
    # A clean child's slice lengths are untouched, so its recorded
    # matrices from the last build are exactly what a fresh SSSP would
    # return — the dominant per-bag cost a repair skips.
    fwd = []     # fwd[ci][a][node] = d_c(cf[a] -> node)
    back = []    # back[ci][a][node] = d_c(node -> cf[a])
    for ci, child in enumerate(rec.children):
        if not child.cf_local:
            fwd.append(None)
            back.append(None)
            continue
        if repairing and child.bag_id not in dirty:
            fwd.append(rep.fwd[ci])
            back.append(rep.back[ci])
            if stats is not None:
                stats["reused_children"] += 1
            continue
        sl = compiled.slices[child.bag_id]
        fwd.append(sl.batched_sssp(lengths, child.cf_local))
        back.append(sl.batched_sssp(lengths, child.cf_local,
                                    reverse=True))
        if stats is not None:
            stats["sssp_children"] += 1
    old_m_out = rep.m_out if rep is not None else None
    old_m_in = rep.m_in if rep is not None else None
    if rep is not None:
        rep.fwd = fwd
        rep.back = back

    # ---- assemble the DDG arcs ---------------------------------------
    arcs = []
    has_negative = False
    for ci, child in enumerate(rec.children):
        f_rows = fwd[ci]
        if f_rows is None:
            continue
        cf_local = child.cf_local
        cf_part = child.cf_part
        for a1 in range(len(cf_local)):
            row = f_rows[a1]
            p = cf_part[a1]
            for a2 in range(len(cf_local)):
                if a1 == a2:
                    continue
                dd = row[cf_local[a2]]
                if dd < INF:
                    arcs.append((p, cf_part[a2], dd))
                    if dd < 0:
                        has_negative = True
    for (p, q, d) in rec.sx_arcs:
        ln = lengths[d]
        arcs.append((p, q, ln))
        if ln < 0:
            has_negative = True
    for (p, q) in rec.zero_links:
        arcs.append((p, q, 0))

    ddg = _ddg_distances(compiled, rec, arcs, has_negative)

    # ---- F_X face-to-face distances + negative-cycle face check ------
    bounds = rec.group_bounds
    fd = [[INF] * nfx for _ in range(nfx)]
    self_dist = [INF] * nfx
    for i in range(nfx):
        si, ei = bounds[i]
        for j in range(nfx):
            best = INF
            for p in range(si, ei):
                b = _group_min(ddg[p], bounds[j])
                if b < best:
                    best = b
            if i == j:
                self_dist[i] = best
                fd[i][j] = 0
            else:
                fd[i][j] = best
    for j, f in enumerate(f_x):
        if self_dist[j] < 0:
            raise NegativeCycleError(
                f"negative cycle through F_X node {f} of bag "
                f"{bag_id}", where=("ddg", bag_id))

    # ---- F_X labels --------------------------------------------------
    for j, f in enumerate(f_x):
        entry = LabelEntry(
            bag_id=bag_id, node=f, is_leaf=False,
            dist_to={h: _as_scalar(fd[j][jh])
                     for jh, h in enumerate(f_x)},
            dist_from={h: _as_scalar(fd[jh][j])
                       for jh, h in enumerate(f_x)})
        labels[(bag_id, f)] = Label(node=f, entries=[entry])

    # ---- per-child node-to-F_X distance matrices ---------------------
    if _np is not None and rec.num_parts:
        ddg_np = _np.asarray(ddg, dtype=_np.float64)
    else:
        ddg_np = None
    d_out_c = []
    d_in_c = []
    viol_c = []
    m_out_c = []
    m_in_c = []
    for ci, child in enumerate(rec.children):
        if fwd[ci] is None:
            # no F_X face lives in this child: this bag's entries are
            # all-inf regardless of weights, but the chained child
            # entries still change when the child is dirty
            keep = repairing and child.bag_id not in dirty
            d_out_c.append(_REUSED if keep else None)
            d_in_c.append(None)
            viol_c.append(None)
            m_out_c.append(None)
            m_in_c.append(None)
            continue
        ncf = len(child.cf_local)
        # m_out[a][j] = min_{q in parts(f_x[j])} ddg[part(cf[a])][q]
        # m_in[a][j]  = min_{q in parts(f_x[j])} ddg[q][part(cf[a])]
        m_out = [[INF] * nfx for _ in range(ncf)]
        m_in = [[INF] * nfx for _ in range(ncf)]
        for a in range(ncf):
            p = child.cf_part[a]
            row = ddg[p]
            for j in range(nfx):
                m_out[a][j] = _group_min(row, bounds[j])
                sj, ej = bounds[j]
                best = INF
                for q in range(sj, ej):
                    if ddg[q][p] < best:
                        best = ddg[q][p]
                m_in[a][j] = best
        m_out_c.append(m_out)
        m_in_c.append(m_in)
        if (repairing and child.bag_id not in dirty
                and old_m_out[ci] == m_out and old_m_in[ci] == m_in):
            # clean child + unchanged boundary rows: every node label
            # this child owns is a pure function of (fwd, back, m_out,
            # m_in), all unchanged — keep the stored labels (they also
            # passed the previous build's negative-cycle check, so a
            # full rebuild could not raise at any of them)
            d_out_c.append(_REUSED)
            d_in_c.append(None)
            viol_c.append(None)
            continue
        if ddg_np is not None:
            x_out = _np.asarray(back[ci]).T    # node x a: d_c(node->cf[a])
            x_in = _np.asarray(fwd[ci]).T      # node x a: d_c(cf[a]->node)
            mo = _np.asarray(m_out)
            mi = _np.asarray(m_in)
            n_c = x_out.shape[0]
            do = _np.empty((n_c, nfx), dtype=_np.float64)
            di = _np.empty((n_c, nfx), dtype=_np.float64)
            for j in range(nfx):
                do[:, j] = (x_out + mo[:, j]).min(axis=1)
                di[:, j] = (x_in + mi[:, j]).min(axis=1)
                a = child.fx_cf_pos[j]
                if a >= 0:  # f_x[j] lives in this child: direct distance
                    _np.minimum(do[:, j], x_out[:, a], out=do[:, j])
                    _np.minimum(di[:, j], x_in[:, a], out=di[:, j])
            viol = ((do + di) < 0).any(axis=1)
        else:
            n_c = len(compiled.slices[child.bag_id].nodes)
            do = [[INF] * nfx for _ in range(n_c)]
            di = [[INF] * nfx for _ in range(n_c)]
            viol = [False] * n_c
            f_rows = fwd[ci]
            b_rows = back[ci]
            for node in range(n_c):
                row_o = do[node]
                row_i = di[node]
                for j in range(nfx):
                    best_o = INF
                    best_i = INF
                    for a in range(ncf):
                        cand = b_rows[a][node] + m_out[a][j]
                        if cand < best_o:
                            best_o = cand
                        cand = f_rows[a][node] + m_in[a][j]
                        if cand < best_i:
                            best_i = cand
                    a = child.fx_cf_pos[j]
                    if a >= 0:
                        if b_rows[a][node] < best_o:
                            best_o = b_rows[a][node]
                        if f_rows[a][node] < best_i:
                            best_i = f_rows[a][node]
                    row_o[j] = best_o
                    row_i[j] = best_i
                    if best_o + best_i < 0:
                        viol[node] = True
        d_out_c.append(do)
        d_in_c.append(di)
        viol_c.append(viol)
    if rep is not None:
        rep.m_out = m_out_c
        rep.m_in = m_in_c

    # ---- node labels in legacy (sorted) order ------------------------
    for ni, f in enumerate(rec.node_list):
        pos = rec.owner_pos[ni]
        if pos == -1:
            continue  # F_X faces already labeled above
        if pos == -2:
            raise DecompositionError(
                f"node {f} of bag {bag_id} has no owning child")
        child = rec.children[pos]
        r = rec.owner_idx[ni]
        do = d_out_c[pos]
        if do is _REUSED:
            continue  # stored labels verified unchanged (see above)
        if do is None:
            # no F_X face lives in this child: all distances stay inf
            d_to = {h: INF for h in f_x}
            d_from = {h: INF for h in f_x}
        else:
            if viol_c[pos][r]:
                raise NegativeCycleError(
                    f"negative cycle through node {f} of bag "
                    f"{bag_id}", where=("node", bag_id))
            di = d_in_c[pos]
            row_o = _row_scalars(do[r])
            row_i = _row_scalars(di[r])
            d_to = dict(zip(f_x, row_o))
            d_from = dict(zip(f_x, row_i))
        entry = LabelEntry(bag_id=bag_id, node=f, is_leaf=False,
                           dist_to=d_to, dist_from=d_from)
        child_label = labels[(child.bag_id, f)]
        labels[(bag_id, f)] = Label(
            node=f, entries=[entry] + child_label.entries)
