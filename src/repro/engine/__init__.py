"""repro.engine — flat-array execution backend for the planar flow stack.

The distributed algorithms in :mod:`repro.core` and :mod:`repro.labeling`
are *simulations*: they follow the paper's knowledge-level protocol
(BDD, labels, minor aggregation) and charge CONGEST rounds to a ledger.
That fidelity is expensive in wall-clock time — every Miller–Naor
feasibility probe rebuilds dict-keyed dual capacities and labeling
structures from scratch, which caps the instance sizes the benchmarks
can reach.

This package is the centralized fast path.  It compiles an embedded
:class:`~repro.planar.graph.PlanarGraph` once into flat dart/face arrays
with a CSR view of the dual (:mod:`repro.engine.csr`) and keeps the
distance / parent / queue buffers of the shortest-path kernels alive in
a reusable :class:`~repro.engine.workspace.FlowWorkspace` across the
O(log λ) binary-search probes.  The engine produces *bit-identical
outputs* to the legacy dict backend (flow values and assignments, cut
bisections, dual distances) — parity is enforced by
``tests/test_engine_parity.py`` — it just gets there orders of magnitude
faster (``benchmarks/bench_engine.py``).

Two kernel families run on the compiled arrays:

* the Bellman–Ford workspaces (:mod:`repro.engine.workspace`) for the
  mixed-sign residual lengths of the flow family (Theorems 1.2/1.3,
  6.1/6.2, Lemma 2.2);
* the nonnegative-weight Dijkstra / dart-simple-cycle kernels
  (:mod:`repro.engine.dijkstra`, :mod:`repro.engine.cycles`) for the
  girth and global-min-cut family (Theorems 1.5/1.7), including the
  constrained best/second-best-distance driver of Section 7;
* the labeling kernels (:mod:`repro.engine.labels`) for the Theorem 2.1
  distance-label construction: compiled per-bag dual slices sharing the
  Bellman–Ford workspaces, batched leaf APSP, and the int-indexed
  Section 5.3 DDG relaxation — bit-identical labels, built on arrays;
* the decomposition kernels (:mod:`repro.engine.decomp`) for the
  Lemma 5.1 BDD construction: bit-packed all-pairs-BFS diameter, flat
  frontier-array separator BFS, vectorized dual-subtree weights and
  int edge-id bag splitting — bit-identical BDDs via
  ``build_bdd(graph, backend="engine")``.

Select the engine per call with ``backend="engine"`` on
:func:`repro.core.max_st_flow`, :func:`repro.core.min_st_cut`,
:func:`repro.core.approx_max_st_flow`,
:func:`repro.core.weighted_girth`,
:func:`repro.core.directed_weighted_girth`,
:func:`repro.core.directed_global_mincut`,
:meth:`repro.planar.dual.DualGraph.bellman_ford` and
:func:`repro.bdd.build_bdd`; the default
``backend="legacy"`` keeps the round-audited reference path.  See
DESIGN.md §6–§7 for the architecture and docs/API.md for the full
backend support matrix.
"""

from repro.engine.csr import CompiledPlanarGraph, compile_graph
from repro.engine.cycles import DartCycleOracle, cycle_side_faces
from repro.engine.decomp import DecompKernels, engine_diameter
from repro.engine.dijkstra import DijkstraWorkspace, TwoBestDijkstra
from repro.engine.labels import (
    CompiledBagSlice,
    CompiledLabelingBags,
    build_dual_labels_engine,
    compile_labeling_bags,
)
from repro.engine.workspace import FlowWorkspace, dijkstra_undirected

__all__ = [
    "CompiledPlanarGraph",
    "compile_graph",
    "FlowWorkspace",
    "dijkstra_undirected",
    "DijkstraWorkspace",
    "TwoBestDijkstra",
    "DartCycleOracle",
    "cycle_side_faces",
    "DecompKernels",
    "engine_diameter",
    "CompiledBagSlice",
    "CompiledLabelingBags",
    "compile_labeling_bags",
    "build_dual_labels_engine",
]
