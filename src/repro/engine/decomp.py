"""Engine-backed BDD construction: array separator kernels (DESIGN.md §14).

The Lemma 5.1 bounded-diameter decomposition was the last legacy-only
substrate on the serving cold path: every :class:`~repro.service.
queries.DistanceQuery` miss paid a pure-Python recursion of
:class:`~repro.planar.graph.SubgraphView` construction, dict-keyed BFS
and face walks — and, dominating everything, the
``graph.diameter()`` BFS-per-vertex loop behind the default leaf size.
This module re-runs the *same algorithm* over the compiled CSR arrays
of :class:`~repro.engine.csr.CompiledPlanarGraph`:

* **diameter kernel** — exact all-pairs BFS with sources bit-packed
  into uint64 lanes: one ``visited[n, n/64]`` closure matrix, one
  gather + ``bitwise_or.reduceat`` per BFS level, the level count at
  fixpoint *is* the diameter.  O(n·m/64) words per level instead of
  ``n`` separate Python BFS runs;
* **separator kernels** — per bag: the live-rotation sub-CSR is sliced
  with one boolean gather, BFS runs level-synchronous over frontier
  arrays (first-discovery order reproduces the legacy FIFO parents
  exactly), face walks follow a flat next-in-face permutation array,
  dual-subtree weights come from ``bincount`` over the triangle ids,
  and bag splitting works on int edge-id arrays plus a union-find —
  no ``SubgraphView`` and no per-bag dicts;
* **shared reference helpers** — ear-clip triangulation and the
  fundamental-cycle path extraction are the *same functions* as the
  legacy path (:func:`repro.planar.separator.ear_clip` /
  :func:`~repro.planar.separator.fundamental_cycle_paths`), so chord
  endpoints, triangle ids and cycle order agree by construction.

Bit-identical contract: ``build_bdd(graph, backend="engine")`` produces
the same bags (ids, levels, sorted ``edge_ids``, ``live_darts``
frozensets), the same separator metadata (``sx_vertices`` /
``sx_edge_ids`` / ``ex_endpoints`` / balance / BFS depth), the same
``forced_leaves`` count and the same
:class:`~repro.errors.DecompositionError` /
:class:`~repro.errors.NotConnectedError` sites as the legacy backend —
the recursion loop itself is shared (:mod:`repro.bdd.build`) and only
the per-bag kernels differ.  Enforced by
``tests/test_engine_bdd_parity.py``.

Without numpy (``REPRO_ENGINE_NO_NUMPY=1``) the separator kernels
delegate to the legacy substrate (bit-identical by construction) while
the diameter/connectivity kernels keep an array form with Python
big-int bitsets — the diameter is where the legacy cold path spends
almost all of its time, so the fallback still wins large factors.
"""

from __future__ import annotations

from repro._compat import np as _np
from repro.engine.csr import compile_graph
from repro.errors import (
    DecompositionError,
    EmbeddingError,
    NotConnectedError,
)
from repro.planar.separator import ear_clip, fundamental_cycle_paths


class EngineSeparator:
    """Array-backed analogue of :class:`~repro.planar.separator.
    SeparatorResult` — the public fields the shared recursion loop
    reads, plus the private dart-side mask the splitting kernel uses."""

    __slots__ = ("cycle_vertices", "cycle_edge_ids", "chord_endpoints",
                 "chord_virtual", "chord_eid", "critical_view_face",
                 "balance", "tree_depth", "_inside", "_eids")

    def __init__(self, cycle_vertices, cycle_edge_ids, chord_endpoints,
                 chord_virtual, chord_eid, critical_view_face, balance,
                 tree_depth, inside, eids):
        self.cycle_vertices = cycle_vertices
        self.cycle_edge_ids = cycle_edge_ids
        self.chord_endpoints = chord_endpoints
        self.chord_virtual = chord_virtual
        self.chord_eid = chord_eid
        self.critical_view_face = critical_view_face
        self.balance = balance
        self.tree_depth = tree_depth
        #: bool mask over global darts: strictly inside the cycle
        self._inside = inside
        #: the bag's sorted edge ids (int64 array)
        self._eids = eids


class DecompKernels:
    """Decomposition substrate of ``build_bdd(backend="engine")``.

    One instance per build; the compiled CSR topology it runs on comes
    from the process-wide shared artifact cache
    (:func:`repro.engine.csr.compile_graph`), so repeated builds —
    and the flow/labeling kernels — share one compiled object.
    """

    def __init__(self, graph):
        self.graph = graph
        self.compiled = compile_graph(graph)
        self._legacy = None
        if _np is not None:
            c = self.compiled
            self._head = _np.asarray(c.dart_head, dtype=_np.int64)
            self._tail = _np.asarray(c.dart_tail, dtype=_np.int64)
            self._prim_darts = _np.asarray(c.prim_darts, dtype=_np.int64)
            self._prim_indptr = _np.asarray(c.prim_indptr,
                                            dtype=_np.int64)

    # ------------------------------------------------------------------
    # connectivity / diameter kernels
    # ------------------------------------------------------------------
    def is_connected(self):
        """Single flat BFS over the compiled rotation CSR (isolated
        vertices count as components, as in ``PlanarGraph``)."""
        n = self.graph.n
        if n <= 1:
            return True
        indptr = self.compiled.prim_indptr
        pd = self.compiled.prim_darts
        head = self.compiled.dart_head
        seen = bytearray(n)
        seen[0] = 1
        stack = [0]
        count = 1
        while stack:
            v = stack.pop()
            for i in range(indptr[v], indptr[v + 1]):
                w = head[pd[i]]
                if not seen[w]:
                    seen[w] = 1
                    count += 1
                    stack.append(w)
        return count == n

    #: source-lane block of the packed diameter kernel (bits per chunk);
    #: bounds the gather temporary at ``2m * CHUNK/8`` bytes.
    DIAMETER_CHUNK = 2048

    def diameter(self):
        """Exact unweighted hop diameter of a *connected* graph.

        All-pairs BFS with one source per bit lane: the reachability
        closure ``visited[v]`` (a bitset over sources) grows by one OR
        sweep over the in-darts per level, and the number of sweeps
        until fixpoint is the diameter.  Raises
        :class:`~repro.errors.NotConnectedError` when the closure never
        completes.
        """
        g = self.graph
        n = g.n
        if n <= 1:
            return 0
        indptr = self.compiled.prim_indptr
        if any(indptr[v + 1] == indptr[v] for v in range(n)):
            raise NotConnectedError(
                "diameter kernel requires a connected graph")
        if _np is None:
            return self._diameter_bigint()
        return self._diameter_packed()

    def _diameter_packed(self):
        np = _np
        n = self.graph.n
        order = np.argsort(self._head, kind="stable")
        tails_in = self._tail[order]           # in-darts grouped by head
        indptr = np.searchsorted(self._head[order], np.arange(n + 1))
        best = 0
        for base in range(0, n, self.DIAMETER_CHUNK):
            csize = min(self.DIAMETER_CHUNK, n - base)
            w = (csize + 63) // 64
            vis = np.zeros((n, w), dtype=np.uint64)
            local = np.arange(csize)
            vis[base + local, local >> 6] = (
                np.uint64(1) << (local & 63).astype(np.uint64))
            full = np.full(w, ~np.uint64(0), dtype=np.uint64)
            if csize & 63:
                full[-1] = (np.uint64(1) << np.uint64(csize & 63)) \
                    - np.uint64(1)
            rounds = 0
            while True:
                red = np.bitwise_or.reduceat(vis[tails_in],
                                             indptr[:-1], axis=0)
                new = vis | red
                if np.array_equal(new, vis):
                    break
                vis = new
                rounds += 1
            if not np.array_equal(vis, np.broadcast_to(full, vis.shape)):
                raise NotConnectedError(
                    "diameter kernel requires a connected graph")
            best = max(best, rounds)
        return best

    def _diameter_bigint(self):
        """Numpy-free lane-packed closure: one Python big int per
        vertex holds the source bitset; same fixpoint semantics."""
        g = self.graph
        n = g.n
        head = self.compiled.dart_head
        nbrs = [[head[d] for d in rot] for rot in g.rotations]
        visited = [1 << v for v in range(n)]
        full = (1 << n) - 1
        rounds = 0
        while True:
            new = []
            changed = False
            for v in range(n):
                acc = visited[v]
                for u in nbrs[v]:
                    acc |= visited[u]
                if acc != visited[v]:
                    changed = True
                new.append(acc)
            if not changed:
                break
            visited = new
            rounds += 1
        if any(x != full for x in visited):
            raise NotConnectedError(
                "diameter kernel requires a connected graph")
        return rounds

    #: bags at or below this edge count run on the legacy dict kernels:
    #: the array passes allocate O(global darts) scratch per bag, which
    #: swamps tiny bags deep in the recursion (both substrates are
    #: bit-identical, so mixing per bag is safe)
    SMALL_BAG_EDGES = 512

    # ------------------------------------------------------------------
    # separator kernel
    # ------------------------------------------------------------------
    def _legacy_kernels(self):
        if self._legacy is None:
            from repro.bdd.build import _LegacyKernels

            self._legacy = _LegacyKernels(self.graph)
        return self._legacy

    def separate(self, bag):
        """Balanced fundamental-cycle separator of ``bag`` — the array
        form of :func:`~repro.planar.separator.
        fundamental_cycle_separator` on the bag's implicit view."""
        if _np is None or bag.m <= self.SMALL_BAG_EDGES:
            return self._legacy_kernels().separate(bag)
        np = _np
        g = self.graph
        n = g.n
        nd = self.compiled.num_darts
        tail_l = self.compiled.dart_tail       # Python lists: fast
        eids = np.asarray(bag.edge_ids, dtype=np.int64)
        m_bag = int(eids.size)
        if m_bag == 0:
            raise NotConnectedError("empty view")
        darts = np.empty(2 * m_bag, dtype=np.int64)
        darts[0::2] = 2 * eids
        darts[1::2] = 2 * eids + 1

        # live-rotation sub-CSR: the parent rotations restricted to the
        # bag's darts, in rotation order (one boolean gather)
        dart_live = np.zeros(nd, dtype=bool)
        dart_live[darts] = True
        sub_rot = self._prim_darts[dart_live[self._prim_darts]]
        tails = self._tail[sub_rot]            # nondecreasing by vertex
        sub_indptr = np.searchsorted(tails, np.arange(n + 1))
        nverts = int(np.count_nonzero(sub_indptr[1:] > sub_indptr[:-1]))

        # --- BFS (level-synchronous == the legacy FIFO order) ----------
        root = g.edges[int(eids[0])][0]
        dist = np.full(n, -1, dtype=np.int64)
        parent = np.full(n, -1, dtype=np.int64)
        dist[root] = 0
        frontier = np.array([root], dtype=np.int64)
        level = 0
        reached = 1
        while frontier.size:
            starts = sub_indptr[frontier]
            counts = sub_indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            cum = np.cumsum(counts)
            pos = np.arange(total) - np.repeat(cum - counts, counts)
            darts_f = sub_rot[np.repeat(starts, counts) + pos]
            heads = self._head[darts_f]
            cand = np.nonzero(dist[heads] < 0)[0]
            if cand.size == 0:
                break
            by_head = np.argsort(heads[cand], kind="stable")
            hs = heads[cand][by_head]
            first = np.empty(hs.size, dtype=bool)
            first[0] = True
            first[1:] = hs[1:] != hs[:-1]
            # first scan position per newly met vertex, in scan order:
            # exactly the legacy parent dart and queue order
            sel = np.sort(cand[by_head][first])
            new_v = heads[sel]
            level += 1
            dist[new_v] = level
            parent[new_v] = darts_f[sel]
            frontier = new_v
            reached += int(new_v.size)
        if reached != nverts:
            raise NotConnectedError("view is not connected")
        depth = int(dist.max())

        tree_edge = np.zeros(g.m, dtype=bool)
        tree_darts = parent[parent >= 0]
        tree_edge[tree_darts >> 1] = True

        # --- next-in-face permutation over the bag's darts -------------
        k = sub_rot.size
        idx = np.arange(k)
        grp_start = sub_indptr[tails]
        nxt = idx + 1
        wrap = nxt == sub_indptr[tails + 1]
        nxt[wrap] = grp_start[wrap]
        succ = np.empty(nd, dtype=np.int64)
        succ[sub_rot] = sub_rot[nxt]
        nif = np.empty(nd, dtype=np.int64)
        nif[darts] = succ[darts ^ 1]

        # --- face walks (orbit enumeration from the minimal dart) ------
        nif_l = nif.tolist()
        face_of = [-1] * nd
        faces = []
        for d0 in darts.tolist():
            if face_of[d0] != -1:
                continue
            fid = len(faces)
            cyc = []
            d = d0
            while face_of[d] == -1:
                face_of[d] = fid
                cyc.append(d)
                d = nif_l[d]
            if d != d0:
                raise EmbeddingError("inconsistent sub-rotation system")
            faces.append(cyc)

        # --- triangulate every face (shared ear-clip kernel) -----------
        tri_of_l = [0] * nd
        all_chords = []
        total_tris = 0
        for fid, fdarts in enumerate(faces):
            tails_f = [tail_l[d] for d in fdarts]
            ntri, tod, chords = ear_clip(fdarts, tails_f)
            for d, t in tod.items():
                tri_of_l[d] = total_tris + t
            for (u, v, ta, tb) in chords:
                all_chords.append((u, v, total_tris + ta,
                                   total_tris + tb, fid))
            total_tris += ntri

        # --- interdigitating dual tree --------------------------------
        nchords = len(all_chords)
        nt_eids = eids[~tree_edge[eids]]       # ascending non-tree edges
        num_cand = nchords + int(nt_eids.size)
        if num_cand != total_tris - 1:
            raise DecompositionError(
                f"interdigitating dual graph is not a tree: {total_tris} "
                f"triangles vs {num_cand} dual edges")
        if total_tris == 1:
            raise DecompositionError(
                "no separator candidate (single triangle)")

        tri_of = np.asarray(tri_of_l, dtype=np.int64)
        adj = [[] for _ in range(total_tris)]
        cand_ta = [c[2] for c in all_chords] \
            + tri_of[2 * nt_eids].tolist()
        cand_tb = [c[3] for c in all_chords] \
            + tri_of[2 * nt_eids + 1].tolist()
        for cid in range(num_cand):
            a, b = cand_ta[cid], cand_tb[cid]
            adj[a].append((b, cid))
            adj[b].append((a, cid))

        # root at the triangle of the first dart of the largest face
        outer = max(range(len(faces)), key=lambda f: len(faces[f]))
        dual_root = tri_of_l[faces[outer][0]]
        par_tri = [-1] * total_tris
        par_cid = [-1] * total_tris
        order = [dual_root]
        seen = [False] * total_tris
        seen[dual_root] = True
        qi = 0
        while qi < len(order):
            t = order[qi]
            qi += 1
            for (t2, cid) in adj[t]:
                if not seen[t2]:
                    seen[t2] = True
                    par_tri[t2] = t
                    par_cid[t2] = cid
                    order.append(t2)
        if len(order) != total_tris:
            raise DecompositionError("dual tree is disconnected")

        # --- subtree dart-weights, most balanced candidate -------------
        sub_w = np.bincount(tri_of[darts],
                            minlength=total_tris).astype(np.float64)
        total_weight = float(2 * m_bag)
        sub_l = sub_w.tolist()
        for t in reversed(order):
            p = par_tri[t]
            if p != -1:
                sub_l[p] += sub_l[t]
        sub_w = np.asarray(sub_l)
        scores = np.maximum(sub_w, total_weight - sub_w)
        scores[dual_root] = np.inf
        t_best = int(np.argmin(scores))        # first minimum == legacy
        score = float(scores[t_best])
        cid = par_cid[t_best]

        if cid < nchords:
            u, v, _ta, _tb, crit_face = all_chords[cid]
            chord_virtual = True
            chord_eid = -1
        else:
            chord_eid = int(nt_eids[cid - nchords])
            u, v = g.edges[chord_eid]
            chord_virtual = False
            crit_face = -1

        cycle_vertices, cycle_edge_ids = fundamental_cycle_paths(
            parent.tolist(), lambda d: tail_l[d], u, v)

        # --- dart sides: the subtree below the chosen candidate --------
        children_tri = [[] for _ in range(total_tris)]
        for t in order:
            if par_tri[t] != -1:
                children_tri[par_tri[t]].append(t)
        in_sub = [False] * total_tris
        in_sub[t_best] = True
        stack = [t_best]
        while stack:
            t = stack.pop()
            for c in children_tri[t]:
                in_sub[c] = True
                stack.append(c)
        inside = np.zeros(nd, dtype=bool)
        inside[darts] = np.asarray(in_sub)[tri_of[darts]]

        # sanity: non-cycle edges keep both darts on one side
        cyc_edge = np.zeros(g.m, dtype=bool)
        cyc = cycle_edge_ids if chord_virtual \
            else cycle_edge_ids + [chord_eid]
        cyc_edge[np.asarray(cyc, dtype=np.int64)] = True
        both = inside[2 * eids] != inside[2 * eids + 1]
        bad = eids[both & ~cyc_edge[eids]]
        if bad.size:
            raise DecompositionError(
                f"edge {int(bad[0])} off the cycle has darts on both "
                f"sides")

        return EngineSeparator(
            cycle_vertices=cycle_vertices,
            cycle_edge_ids=cycle_edge_ids,
            chord_endpoints=(u, v),
            chord_virtual=chord_virtual,
            chord_eid=chord_eid,
            critical_view_face=crit_face,
            balance=score / total_weight if total_weight else 1.0,
            tree_depth=depth,
            inside=inside,
            eids=eids,
        )

    # ------------------------------------------------------------------
    # splitting kernel
    # ------------------------------------------------------------------
    def children(self, bag, sep):
        """``(edge_ids, live_darts)`` per child: separator edges belong
        to both sides, components ordered by smallest edge id (the
        legacy ``connected_edge_components`` first-appearance order)."""
        if _np is None or bag.m <= self.SMALL_BAG_EDGES:
            return self._legacy_kernels().children(bag, sep)
        np = _np
        eids = sep._eids
        inside = sep._inside
        a = inside[2 * eids]
        b = inside[2 * eids + 1]
        inside_eids = eids[a | b]
        outside_eids = eids[~a | ~b]

        live_mask = np.zeros(self.compiled.num_darts, dtype=bool)
        live_mask[np.fromiter(bag.live_darts, dtype=np.int64,
                              count=len(bag.live_darts))] = True

        out = []
        for side, is_inside in ((inside_eids, True),
                                (outside_eids, False)):
            if not side.size:
                continue
            for comp in self._components(side):
                cd = np.empty(2 * len(comp), dtype=np.int64)
                comp_np = np.asarray(comp, dtype=np.int64)
                cd[0::2] = 2 * comp_np
                cd[1::2] = 2 * comp_np + 1
                keep = live_mask[cd] & (inside[cd] if is_inside
                                        else ~inside[cd])
                out.append((comp, cd[keep].tolist()))
        return out

    def _components(self, side):
        """Connected components of an edge-id set (union-find), each a
        sorted list, in order of their smallest edge id."""
        edges = self.graph.edges
        uf = {}

        def find(x):
            r = x
            while uf.setdefault(r, r) != r:
                r = uf[r]
            while uf[x] != r:
                uf[x], x = r, uf[x]
            return r

        side_l = side.tolist()
        for eid in side_l:
            u, v = edges[eid]
            ru, rv = find(u), find(v)
            if ru != rv:
                uf[rv] = ru
        groups = {}
        comps = []
        for eid in side_l:
            r = find(edges[eid][0])
            grp = groups.get(r)
            if grp is None:
                grp = []
                groups[r] = grp
                comps.append(grp)
            grp.append(eid)
        return comps


def engine_diameter(graph):
    """Exact unweighted hop diameter of a connected embedded graph, on
    the bit-packed all-pairs-BFS kernel (big-int lanes without numpy).

    Same value as :meth:`~repro.planar.graph.PlanarGraph.diameter` for
    connected graphs; raises :class:`~repro.errors.NotConnectedError`
    otherwise (the legacy method instead reports the largest
    component).
    """
    return DecompKernels(graph).diameter()
