"""Array-backed nonnegative-weight Dijkstra kernels (DESIGN.md §7).

Two workspaces complete the engine's shortest-path toolbox next to the
Bellman–Ford kernels of :mod:`repro.engine.workspace` (those handle the
mixed-sign residual lengths of the Miller–Naor probes; the theorems of
Sections 4 and 7 — girth and directed global min-cut — run on
*nonnegative* lengths where Dijkstra applies):

* :class:`DijkstraWorkspace` — plain SSSP over a loaded per-dart arc
  set, on a flat heap with distance / parent / generation-stamp buffers
  sized once and *reused across sources* (the same buffer-keeping
  discipline as :class:`~repro.engine.workspace.FlowWorkspace`).
  Generation stamps make per-source reinitialization O(1): a buffer
  entry is valid only when its stamp equals the current run's, so no
  O(n) clear separates consecutive sources of a batch.

* :class:`TwoBestDijkstra` — the batched multi-source driver for the
  *constrained* SSSP of Theorem 1.5 (Section 7): per node it settles up
  to two labels, the best and second-best distance with **distinct
  first darts**, tracked in parallel arrays (two slots per node).  The
  first dart of a path never changes as the path extends, so each label
  is ``(node, first_dart)`` and its predecessor is ``(prev_node, same
  first_dart)`` — exactly the "two options" repair of dart-simplicity
  (DESIGN.md §5 substitution 6).  The settle loop is a verbatim array
  translation of the legacy reference
  (:func:`repro.core.global_mincut._min_cycle_through`): heap entries
  are the same ``(dist, node, first_dart, prev_node, prev_dart)``
  tuples over *global* ids, so tie-breaking — and therefore every
  output down to the witness cycles — is bit-identical to the legacy
  backend.

Both kernels accept a monotone ``bound`` (the best cycle value found so
far): settling stops once the heap minimum can no longer produce a
strictly better candidate.  Pruning never changes results — callers
compare candidates with strict ``<``, and every label on a strictly
better cycle has distance below the bound — it only skips work the
comparison would discard (proof in the module docstring of
:mod:`repro.engine.cycles`).

The kernels are deliberately pure Python: a binary-heap Dijkstra is
control-flow-bound, so there is no vectorizable inner loop and nothing
to gate on numpy — the engine's girth/min-cut path therefore runs
unchanged when numpy is absent (``REPRO_ENGINE_NO_NUMPY=1``), unlike
the Bellman–Ford kernels which switch to their SPFA fallback.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush

INF = math.inf


class DijkstraWorkspace:
    """Reusable SSSP buffers over a loaded arc set with nonnegative
    lengths.

    ``num_ids`` is the dense id universe (vertices of the primal, or
    faces of the dual); arcs are loaded once per topology with
    :meth:`load_arcs` and queried from many sources.  Distances are
    exact Python ints for integral lengths (no float round-trip).
    """

    __slots__ = ("num_ids", "dist", "parent_dart", "adj",
                 "_touched", "_stamp", "_gen", "_bound", "sssp_runs")

    def __init__(self, num_ids):
        self.num_ids = num_ids
        #: id -> distance of the latest :meth:`sssp` run (see
        #: :meth:`distance` for the stamped read)
        self.dist = [INF] * num_ids
        #: id -> dart of the tree arc reaching it (-1 at source/unreached)
        self.parent_dart = [-1] * num_ids
        self.adj = [()] * num_ids
        self._touched = []
        self._stamp = [0] * num_ids
        self._gen = 0
        self._bound = INF
        #: kernel invocation counter (benchmark introspection)
        self.sssp_runs = 0

    def load_arcs(self, arcs):
        """Load directed arcs ``(dart, tail, head, length)``; lengths
        must be nonnegative.  Replaces any previously loaded arc set."""
        for u in self._touched:
            self.adj[u] = ()
        adj = {}
        for (d, t, h, ln) in arcs:
            adj.setdefault(t, []).append((d, h, ln))
        for u, lst in adj.items():
            self.adj[u] = lst
        self._touched = list(adj.keys())

    def sssp(self, source, bound=INF):
        """Dijkstra from ``source`` over the loaded arcs.

        Settles every node at distance ≤ ``bound`` exactly (nodes beyond
        the bound keep stale or tentative buffers — read through
        :meth:`distance`, which masks them).  Invalidates the previous
        run's distances.
        """
        self.sssp_runs += 1
        self._bound = bound
        self._gen += 1
        gen = self._gen
        stamp = self._stamp
        dist = self.dist
        parent = self.parent_dart
        adj = self.adj
        dist[source] = 0
        parent[source] = -1
        stamp[source] = gen
        heap = [(0, source)]
        while heap:
            du, u = heappop(heap)
            if du > bound:
                break
            if du > dist[u]:
                continue  # stale entry
            for (d, h, ln) in adj[u]:
                nd = du + ln
                if stamp[h] != gen or nd < dist[h]:
                    stamp[h] = gen
                    dist[h] = nd
                    parent[h] = d
                    heappush(heap, (nd, h))

    def distance(self, u):
        """Distance of ``u`` in the latest run: exact when ≤ the run's
        bound, inf when unreached or beyond it.

        At the moment the settle loop breaks, every stamped value ≤
        bound is settled (a smaller tentative value would still be the
        heap minimum), so thresholding at the bound is what makes the
        exact/inf contract airtight — values above it may be tentative
        overestimates and are masked.
        """
        if self._stamp[u] != self._gen:
            return INF
        d = self.dist[u]
        return d if d <= self._bound else INF


class TwoBestDijkstra:
    """Constrained SSSP: best + second-best distance with distinct first
    darts, in parallel arrays reused across a batch of sources.

    Per node ``u`` the workspace keeps up to two settled labels in
    *settle order* (slot 0 first): ``label_dist[2u+s]``,
    ``label_fd[2u+s]`` (the path's first dart) and the predecessor pair
    ``parent_node[2u+s]`` / ``parent_dart[2u+s]``.  :meth:`run` settles
    them for one source; :meth:`labels` and :meth:`walk_parents` read
    them back.  The relaxation skips arcs whose head is the source —
    closing the cycles is the caller's job
    (:class:`repro.engine.cycles.DartCycleOracle`), exactly as in the
    legacy reference kernel.
    """

    __slots__ = ("num_ids", "label_dist", "label_fd", "parent_node",
                 "parent_dart", "label_count", "_stamp", "_gen", "runs")

    def __init__(self, num_ids):
        self.num_ids = num_ids
        self.label_dist = [INF] * (2 * num_ids)
        self.label_fd = [-1] * (2 * num_ids)
        self.parent_node = [-1] * (2 * num_ids)
        self.parent_dart = [-1] * (2 * num_ids)
        self.label_count = [0] * num_ids
        self._stamp = [0] * num_ids
        self._gen = 0
        #: kernel invocation counter (benchmark introspection)
        self.runs = 0

    def run(self, adj, source, bound=INF):
        """Settle the two-best labels from ``source`` over ``adj``
        (id -> list of ``(dart, head, length)``; lengths nonnegative).

        Heap entries replicate the legacy kernel's
        ``(dist, node, first_dart, prev_node, prev_dart)`` tuples, so
        the settle order — including every tie-break — is identical.
        Settling stops once the heap minimum reaches ``bound`` (labels
        at distance ≥ bound cannot close a cycle of value < bound).
        """
        self.runs += 1
        self._gen += 1
        gen = self._gen
        stamp = self._stamp
        count = self.label_count
        ldist = self.label_dist
        lfd = self.label_fd
        pnode = self.parent_node
        pdart = self.parent_dart

        heap = []
        for (d, h, _w) in adj[source]:
            if h == source:
                continue  # self-loops are one-dart cycles, caller's job
            heappush(heap, (_w, h, d, source, d))
        while heap:
            dist, u, fd, pu, pd = heappop(heap)
            if dist >= bound:
                break
            if stamp[u] != gen:
                stamp[u] = gen
                count[u] = 0
            n = count[u]
            if n >= 2 or (n == 1 and lfd[2 * u] == fd):
                continue
            s = 2 * u + n
            ldist[s] = dist
            lfd[s] = fd
            pnode[s] = pu
            pdart[s] = pd
            count[u] = n + 1
            for (d, h, _w) in adj[u]:
                if h == source:
                    continue  # arcs back into the source close cycles
                heappush(heap, (dist + _w, h, fd, u, d))

    def labels(self, u):
        """Settled labels of ``u`` for the latest run, in settle order:
        list of ``(dist, first_dart)`` with 0 ≤ len ≤ 2."""
        if self._stamp[u] != self._gen:
            return ()
        n = self.label_count[u]
        return [(self.label_dist[2 * u + s], self.label_fd[2 * u + s])
                for s in range(n)]

    def walk_parents(self, u, fd, source):
        """Darts of the settled path ``source -> u`` whose first dart is
        ``fd``, in path order."""
        darts = []
        node = u
        while node != source:
            base = 2 * node
            s = base if self.label_fd[base] == fd else base + 1
            darts.append(self.parent_dart[s])
            node = self.parent_node[s]
        darts.reverse()
        return darts
