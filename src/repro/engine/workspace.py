"""Reusable shortest-path workspaces over the compiled dual.

A :class:`FlowWorkspace` owns every buffer the dual shortest-path
kernels need — per-slot arc lengths, distance / parent / relaxation-
count arrays, the in-queue bitmap — sized once for a
:class:`~repro.engine.csr.CompiledPlanarGraph` and *reused across all
probes* of a Miller–Naor binary search (and across solves on the same
graph).  The legacy backend reallocates dict-keyed equivalents of all of
these per probe; keeping them alive, and running the relaxations as
whole-array operations, is where the engine's speedup on large
instances comes from.

Two kernels run on the buffers:

* :meth:`FlowWorkspace.has_negative_cycle` — feasibility probe: seeds
  *every* face at distance 0 (a virtual super-source), so a negative
  cycle anywhere in G* is found, matching the labeling's global
  detection (Lemma 5.19);
* :meth:`FlowWorkspace.sssp` — exact distances from one dual node, used
  for the flow assignment and for engine-backed dual SSSP.

Both have a vectorized synchronous Bellman–Ford implementation (used
when numpy is importable) and a queue-based SPFA fallback in pure
Python with the same relaxation-count negative-cycle detection as the
legacy reference (:func:`repro.planar.dual.bellman_ford_arcs`).  The
vectorized path detects negative cycles early with an exact
*improving-arc cycle* certificate: arcs with ``dist[tail] + len <
dist[head]`` (all against the same distance snapshot) that close a
cycle telescope to a negative cycle length, and the cycle test is a
pointer-doubling sweep; the classical |faces|-pass limit remains as the
completeness backstop.  Distances are computed in float64, which is
exact for the paper's polynomially-bounded integral lengths, and
returned as Python ints wherever integral so both backends produce
identical values.

Residual lengths follow Section 6.1:
``len_λ(d) = cap(d) − λ·[d ∈ P] + λ·[rev(d) ∈ P]``.  The workspace
stores the λ-independent base once (:meth:`bind_flow_problem`) and each
probe only copies the base row and patches the O(|P|) path slots
(:meth:`set_lambda`).

:func:`dijkstra_undirected` is the free-standing nonnegative-weights
kernel used by the engine backend of the Hassin approximate-flow
pipeline, which runs on a quotient of the split dual rather than on the
compiled dual itself.
"""

from __future__ import annotations

import heapq
import math
from collections import deque

from repro._compat import np as _np
from repro.errors import NegativeCycleError

INF = math.inf


class _VectorDualKernel:
    """Whole-array synchronous Bellman–Ford over the compiled dual.

    Arc slot ``s`` of the dual CSR is reinterpreted *in-arc-wise*: the
    out-slots of face ``f`` hold the darts of ``f``, and the reversed
    dart of each is precisely an arc whose head is ``f`` — so the same
    ``indptr`` segments the in-arcs of every face, and one
    ``minimum.reduceat`` per pass computes every face's best incoming
    candidate.
    """

    def __init__(self, compiled):
        np = _np
        self.nf = compiled.num_faces
        self.indptr = np.asarray(compiled.dual_indptr, dtype=np.int64)
        self.starts = self.indptr[:-1]
        arc_dart = np.asarray(compiled.dual_arc_dart, dtype=np.int64)
        #: dart of the in-arc at each slot
        self.in_dart = arc_dart ^ 1
        face_left = np.asarray(compiled.face_left, dtype=np.int64)
        #: tail face of the in-arc at each slot
        self.in_tail = face_left[self.in_dart]
        sod = np.asarray(compiled.slot_of_dart, dtype=np.int64)
        #: in-layout slot of the arc of dart ``e`` (= out-slot of rev e)
        self.in_slot_of_dart = sod[np.arange(len(sod)) ^ 1]
        sizes = np.diff(self.indptr)
        self._seg_of_slot = np.repeat(np.arange(self.nf), sizes)
        self._arange_slots = np.arange(len(arc_dart))
        #: pointer-doubling steps covering any simple chain of faces
        self._doublings = max(1, (self.nf + 1).bit_length())
        self.len_in = np.zeros(len(arc_dart), dtype=np.float64)

    def load_lengths_by_dart(self, lengths):
        np = _np
        if isinstance(lengths, dict):
            flat = [lengths[d] for d in range(len(self.in_dart))]
        else:
            flat = lengths
        self.len_in = np.asarray(flat, dtype=np.float64)[self.in_dart]

    def _parent_cycle(self, parent_slot):
        """True iff the accumulated predecessor graph certifies a
        negative cycle.

        A cycle of predecessor arcs telescopes to total length ≤ 0 (each
        arc satisfies ``len ≤ dist[head] − dist[tail]`` from the moment
        it last relaxed its head), so a pointer-doubling sweep flags
        candidates and an explicit walk sums one concrete cycle to rule
        out the zero-length edge case exactly.
        """
        np = _np
        sent = self.nf
        parent = np.full(self.nf + 1, sent, dtype=np.int64)
        has = parent_slot >= 0
        parent[:-1][has] = self.in_tail[parent_slot[has]]
        hop = parent
        for _ in range(self._doublings):
            hop = hop[hop]
            if (hop[:-1] == sent).all():
                return False
        flagged = np.nonzero(hop[:-1] != sent)[0]
        if len(flagged) == 0:
            return False
        # walk one flagged node onto its cycle, then sum the cycle
        v = int(flagged[0])
        for _ in range(self.nf):
            v = int(parent[v])
        start = v
        total = 0.0
        while True:
            s = int(parent_slot[v])
            total += float(self.len_in[s])
            v = int(parent[v])
            if v == start:
                break
        return total < 0

    def _run(self, dist, track_parents=False):
        """Relax until fixpoint; True iff a negative cycle was proven.

        Synchronous Bellman–Ford in whole-array passes.  Feasible
        instances converge in about as many passes as the hop radius of
        the shortest-path forest; negative cycles are caught early by
        the predecessor-graph certificate (checked periodically) with
        the classical |faces|-pass limit as the completeness backstop.
        """
        np = _np
        starts = self.starts
        in_tail = self.in_tail
        len_in = self.len_in
        seg_of_slot = self._seg_of_slot
        arange_slots = self._arange_slots
        nslots = len(len_in)
        parent_slot = np.full(self.nf, -1, dtype=np.int64)
        passes = 0
        next_check = 64
        limit = self.nf + 1
        while True:
            cand = dist[in_tail] + len_in
            seg_min = np.minimum.reduceat(cand, starts)
            improved = seg_min < dist
            if not improved.any():
                return False
            # predecessor bookkeeping: the first arc achieving seg_min
            # (cheap passes early on; certificates only matter later)
            if track_parents or passes >= 32:
                tight = cand == seg_min[seg_of_slot]
                idx = np.where(tight, arange_slots, nslots)
                first = np.minimum.reduceat(idx, starts)
                parent_slot[improved] = first[improved]
            np.minimum(dist, seg_min, out=dist)
            passes += 1
            if passes >= next_check:
                if passes > limit or self._parent_cycle(parent_slot):
                    return True
                next_check = passes + 32

    def sssp(self, source):
        np = _np
        dist = np.full(self.nf, np.inf, dtype=np.float64)
        dist[source] = 0.0
        if self._run(dist):
            raise NegativeCycleError(where="engine-sssp")
        return dist

    def multi_sssp(self, sources):
        """Synchronous Bellman–Ford from many sources at once: one
        distance row per source, all rows relaxed in whole-*matrix*
        passes (the batched form of :meth:`sssp`, used by the labeling
        kernels of :mod:`repro.engine.labels` where every bag needs a
        whole anchor set's distances).

        Simple paths have at most ``nf - 1`` arcs, so an improving pass
        beyond ``nf`` proves a walk strictly better than every simple
        path — a negative cycle reachable from one of the sources.

        Rows are independent single-source relaxations (they never read
        each other), so a row with no improvement in a pass has reached
        its fixpoint: converged rows leave the active set and later
        passes touch only the rows still shrinking, which caps the work
        at Σ_r hops(r) instead of |sources| · max_r hops(r).
        """
        np = _np
        k = len(sources)
        dist = np.full((k, self.nf), np.inf, dtype=np.float64)
        dist[np.arange(k), np.asarray(sources, dtype=np.int64)] = 0.0
        starts = self.starts
        in_tail = self.in_tail
        len_in = self.len_in
        active = np.arange(k)
        passes = 0
        while len(active):
            sub = dist[active]
            cand = sub[:, in_tail] + len_in
            seg = np.minimum.reduceat(cand, starts, axis=1)
            improved = (seg < sub).any(axis=1)
            if not improved.any():
                break
            active = active[improved]
            dist[active] = np.minimum(sub[improved], seg[improved])
            passes += 1
            if passes > self.nf:
                raise NegativeCycleError(where="engine-sssp")
        return dist

    def tight_parents(self, dist):
        """One tight in-arc dart per face under ``dist`` (-1 where none:
        the source and unreached faces)."""
        np = _np
        cand = dist[self.in_tail] + self.len_in
        # isfinite excludes unreached faces (inf == inf would otherwise
        # fabricate parents among them)
        tight = (cand == dist[self._seg_of_slot]) & np.isfinite(cand)
        nslots = len(cand)
        idx = np.where(tight, self._arange_slots, nslots)
        first = np.minimum.reduceat(idx, self.starts)
        parent = np.full(self.nf, -1, dtype=np.int64)
        has = first < nslots
        parent[has] = self.in_dart[first[has]]
        return parent


def _as_scalar(x):
    """float64 distance -> the Python number the legacy backend yields."""
    if x == INF or x == -INF:
        return x if isinstance(x, float) else float(x)
    f = float(x)
    return int(f) if f.is_integer() else f


class FlowWorkspace:
    """Preallocated dual shortest-path buffers for one compiled graph."""

    def __init__(self, compiled):
        self.compiled = compiled
        nd = compiled.num_darts
        nf = compiled.num_faces
        #: per-slot arc lengths (out-slot order of the dual CSR)
        self.arc_len = [0] * nd
        self._base_len = [0] * nd
        #: face id -> distance, valid after :meth:`sssp`
        self.dist = [INF] * nf
        #: face id -> dart of a tight parent arc (-1 at source/unreached)
        self.parent_dart = [-1] * nf
        self._cnt = [0] * nf
        self._inq = bytearray(nf)
        self._inf_row = [INF] * nf
        self._zero_row = [0] * nf
        self._path_minus = []
        self._path_plus = []
        self._vec = _VectorDualKernel(compiled) if _np is not None else None
        #: kernel invocation counters (benchmark introspection)
        self.sssp_runs = 0
        self.probe_runs = 0

    # ------------------------------------------------------------------
    # length loading
    # ------------------------------------------------------------------
    def load_lengths(self, lengths):
        """Load arbitrary per-dart lengths (dict or sequence) into the
        arc-length buffers."""
        arc_dart = self.compiled.dual_arc_dart
        al = self.arc_len
        for s in range(len(al)):
            al[s] = lengths[arc_dart[s]]
        if self._vec is not None:
            self._vec.load_lengths_by_dart(lengths)

    def bind_flow_problem(self, cap, path_darts):
        """Fix the λ-independent part of the residual lengths: ``cap``
        per dart plus the Miller–Naor path P whose darts get ∓λ."""
        arc_dart = self.compiled.dual_arc_dart
        base = self._base_len
        for s in range(len(base)):
            base[s] = cap[arc_dart[s]]
        slot = self.compiled.slot_of_dart
        self._path_minus = [slot[d] for d in path_darts]
        self._path_plus = [slot[d ^ 1] for d in path_darts]
        if self._vec is not None:
            v = self._vec
            flat = [cap[d] for d in range(self.compiled.num_darts)]
            self._vec_base = _np.asarray(flat,
                                         dtype=_np.float64)[v.in_dart]
            iso = v.in_slot_of_dart
            self._vec_minus = _np.asarray(
                [int(iso[d]) for d in path_darts], dtype=_np.int64)
            self._vec_plus = _np.asarray(
                [int(iso[d ^ 1]) for d in path_darts], dtype=_np.int64)

    def set_lambda(self, lam):
        """Materialize ``len_λ`` for the bound flow problem: one row
        copy plus O(|P|) patches."""
        al = self.arc_len
        al[:] = self._base_len
        if lam:
            for s in self._path_minus:
                al[s] -= lam
            for s in self._path_plus:
                al[s] += lam
        if self._vec is not None:
            li = self._vec_base.copy()
            if lam:
                li[self._vec_minus] -= lam
                li[self._vec_plus] += lam
            self._vec.len_in = li

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def has_negative_cycle(self):
        """True iff G* has a negative cycle under the current lengths.

        Virtual super-source Bellman–Ford: every face starts at 0, so
        detection is global (not limited to one source's reachable set),
        matching the per-bag detection of the labeling scheme.
        """
        self.probe_runs += 1
        if self._vec is not None:
            dist = _np.zeros(self._vec.nf, dtype=_np.float64)
            return self._vec._run(dist)
        return self._spfa_probe()

    def sssp(self, source, track_parents=False):
        """Exact SSSP over the dual arcs from face ``source`` under the
        current lengths (negative lengths allowed).

        Fills and returns the ``dist`` buffer (copy before the next
        kernel call if you need to keep it); unreachable faces get
        ``math.inf``.  Raises :class:`NegativeCycleError` on a negative
        cycle *reachable from the source*.  With ``track_parents`` the
        ``parent_dart`` buffer gets the dart of one tight incoming arc
        per face (which tight arc is unspecified among ties).
        """
        self.sssp_runs += 1
        if self._vec is not None:
            nd = self._vec.sssp(source)
            self.dist[:] = [_as_scalar(x) for x in nd]
            if track_parents:
                pd = self._vec.tight_parents(nd)
                pd[source] = -1
                self.parent_dart[:] = [int(x) for x in pd]
            return self.dist
        return self._spfa_sssp(source, track_parents)

    def batched_sssp(self, sources):
        """Distance rows from every face in ``sources`` under the
        current lengths — the batched form of :meth:`sssp`.

        Returns a ``len(sources) x num_faces`` float64 matrix on the
        vectorized path, or a list of per-source Python rows on the
        SPFA fallback; either way the rows are fresh (not aliased to
        the reusable ``dist`` buffer), so callers may keep them across
        later kernel calls.  Raises :class:`NegativeCycleError` when a
        negative cycle is reachable from any source.
        """
        self.sssp_runs += len(sources)
        if self._vec is not None:
            return self._vec.multi_sssp(sources)
        return [list(self._spfa_sssp(s, False)) for s in sources]

    # ------------------------------------------------------------------
    # pure-Python fallbacks (numpy-free environments)
    # ------------------------------------------------------------------
    def _spfa_probe(self):
        c = self.compiled
        nf = c.num_faces
        dist = self.dist
        dist[:] = self._zero_row
        cnt = self._cnt
        cnt[:] = self._zero_row
        inq = self._inq
        inq[:] = b"\x01" * nf
        indptr = c.dual_indptr
        arc_head = c.dual_arc_head
        al = self.arc_len
        limit = nf + 1
        q = deque(range(nf))
        while q:
            u = q.popleft()
            inq[u] = 0
            du = dist[u]
            for s in range(indptr[u], indptr[u + 1]):
                h = arc_head[s]
                nd = du + al[s]
                if nd < dist[h]:
                    dist[h] = nd
                    ch = cnt[h] + 1
                    if ch > limit:
                        return True
                    cnt[h] = ch
                    if not inq[h]:
                        inq[h] = 1
                        q.append(h)
        return False

    def _spfa_sssp(self, source, track_parents):
        c = self.compiled
        nf = c.num_faces
        dist = self.dist
        dist[:] = self._inf_row
        cnt = self._cnt
        cnt[:] = self._zero_row
        inq = self._inq
        inq[:] = bytes(nf)
        parent = self.parent_dart
        if track_parents:
            parent[:] = [-1] * nf
        indptr = c.dual_indptr
        arc_head = c.dual_arc_head
        arc_dart = c.dual_arc_dart
        al = self.arc_len
        limit = nf + 1
        dist[source] = 0
        inq[source] = 1
        q = deque([source])
        while q:
            u = q.popleft()
            inq[u] = 0
            du = dist[u]
            for s in range(indptr[u], indptr[u + 1]):
                h = arc_head[s]
                nd = du + al[s]
                if nd < dist[h]:
                    dist[h] = nd
                    if track_parents:
                        parent[h] = arc_dart[s]
                    ch = cnt[h] + 1
                    if ch > limit:
                        raise NegativeCycleError(where="engine-sssp")
                    cnt[h] = ch
                    if not inq[h]:
                        inq[h] = 1
                        q.append(h)
        return dist


def dijkstra_undirected(num_nodes, edges, weights, source):
    """Dijkstra over an undirected edge list with nonnegative weights.

    Returns ``(dist, parents)`` where ``parents[v]`` is ``(prev_node,
    edge_index)`` on a shortest-path tree (``None`` at the source and on
    unreachable nodes) — the same parent convention as
    :meth:`repro.aggregation.sssp_ma.ApproxSsspOracle.query`, so the
    Hassin cut-path reconstruction is backend-agnostic.
    """
    adj = [[] for _ in range(num_nodes)]
    for idx, ((a, b), w) in enumerate(zip(edges, weights)):
        adj[a].append((b, w, idx))
        adj[b].append((a, w, idx))
    dist = [INF] * num_nodes
    parents = [None] * num_nodes
    dist[source] = 0.0
    heap = [(0.0, source)]
    while heap:
        du, u = heapq.heappop(heap)
        if du > dist[u]:
            continue
        for v, w, idx in adj[u]:
            nd = du + w
            if nd < dist[v]:
                dist[v] = nd
                parents[v] = (u, idx)
                heapq.heappush(heap, (nd, v))
    return dist, parents
