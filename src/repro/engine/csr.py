"""One-shot compilation of an embedded planar graph into flat arrays.

A :class:`CompiledPlanarGraph` freezes everything about the topology
that the flow/cut/SSSP kernels touch per probe into plain Python lists
indexed by dart, vertex or face id:

* per-dart arrays — ``dart_head``, ``dart_tail``, ``face_left`` (the
  face containing the dart), ``face_right`` (= ``face_left[rev(d)]``);
* the dual topology in CSR form — the dual arc of dart ``d`` runs
  ``face_left[d] → face_right[d]`` (Sections 3 and 6 of the paper), and
  the arcs are grouped by tail face so an SSSP relaxation scans
  ``dual_arc_dart[dual_indptr[f] : dual_indptr[f+1]]`` contiguously;
* the primal rotation system in CSR form (``prim_indptr`` /
  ``prim_darts``) for residual-reachability sweeps.

Arc *lengths* are deliberately not part of the compiled object: the
Miller–Naor binary search changes them every probe, so they live in the
reusable buffers of :class:`repro.engine.workspace.FlowWorkspace`, keyed
by the ``slot_of_dart`` permutation computed here.

Compilation is cached in the process-wide artifact cache keyed by the
graph's topology token (:func:`compile_graph`), so every solver,
benchmark and test sharing a graph shares one compiled topology — the
dual topology never depends on λ, only the lengths do.
"""

from __future__ import annotations

from repro._artifacts import shared_cache, topo_token


class CompiledPlanarGraph:
    """Flat-array snapshot of a :class:`~repro.planar.graph.PlanarGraph`.

    The source graph's faces are computed (and therefore validated)
    during compilation; dart, vertex and face ids are the global ids of
    the source graph, so results translate back without any mapping.
    """

    __slots__ = (
        "graph", "n", "m", "num_darts", "num_faces",
        "dart_head", "dart_tail", "face_left", "face_right",
        "dual_indptr", "dual_arc_dart", "dual_arc_head", "slot_of_dart",
        "prim_indptr", "prim_darts",
    )

    def __init__(self, graph):
        self.graph = graph
        n = graph.n
        m = graph.m
        nd = 2 * m
        self.n = n
        self.m = m
        self.num_darts = nd

        dart_head = [0] * nd
        dart_tail = [0] * nd
        for eid, (u, v) in enumerate(graph.edges):
            d = 2 * eid
            dart_tail[d] = u
            dart_head[d] = v
            dart_tail[d + 1] = v
            dart_head[d + 1] = u
        self.dart_head = dart_head
        self.dart_tail = dart_tail

        face_left = list(graph.face_of)
        self.face_left = face_left
        self.face_right = [face_left[d ^ 1] for d in range(nd)]
        num_faces = len(graph.faces)
        self.num_faces = num_faces

        # dual CSR: one arc per dart, grouped by tail face
        indptr = [0] * (num_faces + 1)
        for d in range(nd):
            indptr[face_left[d] + 1] += 1
        for f in range(num_faces):
            indptr[f + 1] += indptr[f]
        fill = indptr[:num_faces]
        arc_dart = [0] * nd
        arc_head = [0] * nd
        slot_of_dart = [0] * nd
        for d in range(nd):
            f = face_left[d]
            s = fill[f]
            fill[f] = s + 1
            arc_dart[s] = d
            arc_head[s] = face_left[d ^ 1]
            slot_of_dart[d] = s
        self.dual_indptr = indptr
        self.dual_arc_dart = arc_dart
        self.dual_arc_head = arc_head
        self.slot_of_dart = slot_of_dart

        # primal CSR: out-darts per vertex in rotation order
        prim_indptr = [0] * (n + 1)
        for v in range(n):
            prim_indptr[v + 1] = prim_indptr[v] + len(graph.rotations[v])
        self.prim_indptr = prim_indptr
        self.prim_darts = [d for rot in graph.rotations for d in rot]

def compile_graph(graph):
    """Compiled topology of ``graph``, cached in the shared
    :class:`~repro._artifacts.ArtifactCache` under the graph's topology
    token (formerly an ad-hoc ``_engine_compiled`` instance attribute).

    The compiled object is immutable topology; capacities/weights are
    read through to the source graph at use time, so only *structural*
    edits (which create a new :class:`PlanarGraph`, hence a new token)
    invalidate it.  LRU eviction just means a recompile on next use.
    """
    return shared_cache().get_or_build(
        ("csr", topo_token(graph)), lambda: CompiledPlanarGraph(graph))
