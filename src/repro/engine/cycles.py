"""Dart-simple cycle extraction on compiled arc sets (DESIGN.md §7).

The minimum-weight **dart-simple** directed cycle — a cycle that never
uses both a dart and its reversal — is the common combinatorial core of
two theorem families:

* **directed global min-cut (Theorem 1.5)**: by cycle-cut duality with
  darts (Section 7), a directed cut corresponds to a dart-simple
  directed dual cycle where crossing an edge along its direction costs
  ``w(e)`` and against it costs 0;
* **weighted girth (Theorem 1.7)**: viewing each undirected edge as its
  two darts (both of weight ``w(e)``), a minimum dart-simple cycle of
  the *primal* is exactly a minimum-weight simple cycle — equivalently,
  the minimum cut of G* that the legacy pipeline extracts through the
  minor-aggregation simulation (Fact 3.1).

:class:`DartCycleOracle` owns the per-node arc index and a
:class:`~repro.engine.dijkstra.TwoBestDijkstra` workspace, both sized
once and reused across the sources of a batch (all ``f ∈ F_X`` of a
dual bag; all vertices of the primal).  :meth:`min_cycle_through`
reproduces the legacy reference kernel
(:func:`repro.core.global_mincut._min_cycle_through`) step for step —
self-loop candidates, the two-best settle loop, and the closing scan
over in-arcs in the legacy's dict-insertion order — so the extracted
cycles are bit-identical to the legacy backend's, ties included.

Pruning safety (the ``bound`` argument): callers keep a running best
value and compare candidates with strict ``<``.  Every label on a cycle
of value ``v < bound`` has distance ``≤ v − w(closing arc) ≤ v <
bound`` (lengths are nonnegative), so truncating the settle loop at
``bound`` preserves every candidate that could win the strict
comparison; candidates at or above the bound may be missed or differ,
but the caller discards those either way.  The bound therefore never
changes the final result — it only skips work on sources that cannot
improve it.
"""

from __future__ import annotations

import math

from repro.engine.dijkstra import TwoBestDijkstra
from repro.errors import SimulationError
from repro.planar.graph import rev

INF = math.inf


class DartCycleOracle:
    """Minimum dart-simple cycle through a node, over reusable buffers.

    ``num_ids`` is the dense node-id universe (primal vertices or dual
    faces).  Load an arc set with :meth:`load_arcs` — once per graph for
    the girth sweep, once per dual bag for the min-cut recursion — then
    query :meth:`min_cycle_through` for each candidate node.
    """

    __slots__ = ("num_ids", "two_best", "adj", "in_adj", "_touched")

    def __init__(self, num_ids):
        self.num_ids = num_ids
        self.two_best = TwoBestDijkstra(num_ids)
        #: id -> [(dart, head, length)] out-arcs in load order
        self.adj = [()] * num_ids
        #: id -> [(tail, dart, length)] in-arcs in legacy closing-scan
        #: order (tails ordered by first appearance, see load_arcs)
        self.in_adj = [()] * num_ids
        self._touched = []

    def load_arcs(self, arcs):
        """Load arcs ``(dart, tail, head, length)``; lengths must be
        nonnegative.

        The order of ``arcs`` is semantic: nodes are recorded in first-
        appearance order (tail before head, per arc) and the in-arc
        lists are materialized by scanning that node order — matching
        the dict-insertion iteration of the legacy ``_arc_index`` so the
        closing scan breaks ties identically.
        """
        for u in self._touched:
            self.adj[u] = ()
            self.in_adj[u] = ()
        order = []
        seen = set()
        out = {}
        for (d, t, h, ln) in arcs:
            if t not in seen:
                seen.add(t)
                order.append(t)
                out[t] = []
            if h not in seen:
                seen.add(h)
                order.append(h)
                out[h] = []
            out[t].append((d, h, ln))
        inb = {}
        for t in order:
            for (d, h, ln) in out[t]:
                inb.setdefault(h, []).append((t, d, ln))
        for u, lst in out.items():
            self.adj[u] = lst
        for u, lst in inb.items():
            self.in_adj[u] = lst
        self._touched = order

    def min_cycle_through(self, f, bound=INF):
        """Min-weight dart-simple cycle through node ``f``, or None.

        Returns ``(value, dart list)``.  With a finite ``bound`` the
        result is exact whenever ``value < bound`` (see the module
        docstring); candidates at or above the bound may be reported
        with a different witness or as None.
        """
        best_val = INF
        best_label = None  # (closing arc dart, last node, first dart)
        best_loop = None

        # self-loops at f are one-dart cycles (bridge cuts)
        for (d, h, w) in self.adj[f]:
            if h == f and w < best_val:
                best_val = w
                best_loop = [d]

        tb = self.two_best
        tb.run(self.adj, f, bound=min(bound, best_val))

        # close cycles with the in-arcs of f; first valid label per tail
        # is the best one (labels are in settle order).  Reads the label
        # arrays directly — this is the hottest loop of the oracle, one
        # iteration per in-arc per candidate
        gen = tb._gen
        stamp = tb._stamp
        count = tb.label_count
        ldist = tb.label_dist
        lfd = tb.label_fd
        for (g, b, wb) in self.in_adj[f]:
            if g == f or stamp[g] != gen:
                continue
            rb = rev(b)
            base = 2 * g
            for s in range(base, base + count[g]):
                if lfd[s] == rb:
                    continue
                if ldist[s] + wb < best_val:
                    best_val = ldist[s] + wb
                    best_label = (b, g, lfd[s])
                    best_loop = None
                break
        if best_label is not None:
            darts = tb.walk_parents(best_label[1], best_label[2], f)
            darts.append(best_label[0])
            return best_val, darts
        if best_loop is not None:
            return best_val, best_loop
        return None


def min_dart_simple_cycle(oracle, candidates, best=None):
    """Minimum dart-simple cycle through any of ``candidates``.

    Scans candidates in order with strict improvement (first winner is
    kept on ties, like the legacy bag recursion) and threads the running
    best value back into the oracle as the pruning bound.  ``best`` (a
    previous ``(value, dart list)`` or None) seeds the scan, so batched
    callers — one call per dual bag — carry one running optimum through
    every batch.  Returns the final best or None.
    """
    for f in candidates:
        cand = oracle.min_cycle_through(
            f, bound=best[0] if best is not None else INF)
        if cand is not None and (best is None or cand[0] < best[0]):
            best = cand
    return best


def primal_cycle_arcs(graph):
    """Arc set of the primal graph for the girth kernel: one arc per
    dart, tail -> head, weighted by the edge weight (both darts), in
    rotation order per vertex."""
    face_weights = graph.weights
    arcs = []
    for v in range(graph.n):
        for d in graph.rotations[v]:
            arcs.append((d, v, graph.head(d), face_weights[d >> 1]))
    return arcs


def cycle_side_faces(graph, cycle_edge_ids):
    """Canonical dual side of a simple primal cycle (Fact 3.1).

    The cycle's edges are a minimal dual cut, splitting the faces of
    ``graph`` into exactly two blocks; the block **not containing face
    0** is returned (sorted), making the choice backend-independent.
    Both backends of :func:`repro.core.girth.weighted_girth` normalize
    their reported ``cut_side_faces`` through this function.
    """
    cyc = set(cycle_edge_ids)
    nf = graph.num_faces()
    parent = list(range(nf))

    def find(x):
        r = x
        while parent[r] != r:
            r = parent[r]
        while parent[x] != r:
            parent[x], x = r, parent[x]
        return r

    for eid in range(graph.m):
        if eid in cyc:
            continue
        a = find(graph.face_of[2 * eid])
        b = find(graph.face_of[2 * eid + 1])
        if a != b:
            parent[a] = b
    r0 = find(0)
    side = [f for f in range(nf) if find(f) != r0]
    blocks = {find(f) for f in range(nf)}
    if len(blocks) != 2:
        raise SimulationError(
            f"cycle does not split the dual into two sides "
            f"({len(blocks)} blocks)")
    return side
