"""Bounded-diameter decomposition and its dual extension (Section 5.1)."""

from repro.bdd.bags import BDD, Bag
from repro.bdd.build import build_bdd, default_leaf_size
from repro.bdd.checks import bdd_signature, validate_bdd
from repro.bdd.dual_bags import DualBag, build_all_dual_bags, build_dual_bag

__all__ = [
    "BDD",
    "Bag",
    "bdd_signature",
    "build_bdd",
    "default_leaf_size",
    "validate_bdd",
    "DualBag",
    "build_dual_bag",
    "build_all_dual_bags",
]

from repro.bdd.knowledge import build_knowledge, verify_knowledge  # noqa: E402

__all__ += ["build_knowledge", "verify_knowledge"]
