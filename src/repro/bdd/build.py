"""Construction of the bounded-diameter decomposition (Lemma 5.1).

The recursion mirrors [27]: split each bag with a balanced cycle
separator (two BFS-tree paths + one possibly-virtual closing edge, from
:mod:`repro.planar.separator`), the interior and each exterior component
becoming child bags; separator edges belong to both sides; live darts
follow the side of the closed curve they are enclosed by (Lemma 5.5).

Distributively this costs Õ(D) rounds per level ([17], [27]); the ledger
is charged the measured BFS depths and separator sizes.

Two construction backends share this one recursion loop (and therefore
every forced-leaf decision, ledger charge and error site):

* ``backend="legacy"`` (default) — the reference substrate:
  :class:`~repro.planar.graph.SubgraphView` per bag, dict-keyed BFS and
  faces, :func:`~repro.planar.separator.fundamental_cycle_separator`;
* ``backend="engine"`` — :class:`repro.engine.decomp.DecompKernels`:
  the same separator algorithm over the compiled CSR arrays (flat BFS
  frontiers, array-built face walks, vectorized dual-subtree weights,
  int edge-id splitting) plus a bit-packed all-pairs-BFS diameter
  kernel for the default leaf size.  **Bit-identical output** — same
  bag ids, levels, sorted ``edge_ids``, ``live_darts``, separator
  metadata, ``forced_leaves`` and error sites — enforced by
  ``tests/test_engine_bdd_parity.py``.
"""

from __future__ import annotations

import math

from repro import obs
from repro.bdd.bags import BDD, Bag
from repro.errors import DecompositionError, NotConnectedError
from repro.planar.graph import SubgraphView
from repro.planar.separator import fundamental_cycle_separator


def default_leaf_size(graph, diameter=None):
    """Paper leaf size O(D log n) (BDD property 3).

    ``diameter`` short-circuits the exact hop-diameter computation when
    the caller already knows it (the engine backend computes it with the
    bit-packed BFS kernel instead of ``graph.diameter()``'s
    BFS-per-vertex loop — same value, orders of magnitude faster).
    """
    n = max(graph.n, 2)
    d = max(graph.diameter() if diameter is None else diameter, 1)
    return max(16, d * math.ceil(math.log2(n)))


class _LegacyKernels:
    """Reference decomposition substrate over :class:`SubgraphView`."""

    def __init__(self, graph):
        self.graph = graph

    def is_connected(self):
        return self.graph.is_connected()

    def diameter(self):
        return self.graph.diameter()

    def separate(self, bag):
        return fundamental_cycle_separator(bag.view())

    def children(self, bag, sep):
        """``(edge_ids, live_darts)`` of each child bag, interior
        components first (Lemma 5.5 side rule for the live darts)."""
        out = []
        inside = sep.inside_darts
        for side_edges, is_inside in _split_edges(bag.view(), sep):
            live = {d for d in bag.live_darts
                    if (d >> 1) in side_edges and
                    ((d in inside) if is_inside else (d not in inside))}
            out.append((side_edges, live))
        return out


def _make_kernels(graph, backend):
    if backend == "legacy":
        return _LegacyKernels(graph)
    if backend == "engine":
        from repro.engine.decomp import DecompKernels

        return DecompKernels(graph)
    raise ValueError(f"unknown BDD backend {backend!r}; expected "
                     f"'legacy' or 'engine'")


def build_bdd(graph, leaf_size=None, ledger=None, max_depth=None,
              backend="legacy"):
    """Build a BDD of an embedded connected planar graph.

    ``leaf_size``: maximum edge count of a leaf bag (default
    Θ(D log n)); smaller values exercise deeper recursions.
    ``backend``: ``"legacy"`` (default, the round-audited reference) or
    ``"engine"`` (array kernels, bit-identical result — see the module
    docstring).
    """
    kernels = _make_kernels(graph, backend)
    if not obs.enabled():
        return _build_bdd(graph, leaf_size, ledger, max_depth, kernels)
    with obs.span("bdd.build", m=graph.m, leaf_size=leaf_size,
                  backend=backend) as sp:
        bdd = _build_bdd(graph, leaf_size, ledger, max_depth, kernels)
        sp.tag(bags=len(bdd.bags), depth=bdd.depth)
        return bdd


def _separate(kernels, bag):
    """One separator call, traced per level when obs is on."""
    if not obs.enabled():
        return kernels.separate(bag)
    obs.inc("bdd.separator.calls")
    with obs.span("bdd.separator", level=bag.level, m=bag.m) as sp:
        sep = kernels.separate(bag)
        sp.tag(balance=round(sep.balance, 4),
               sx=len(sep.cycle_vertices), bfs_depth=sep.tree_depth)
        return sep


def _build_bdd(graph, leaf_size, ledger, max_depth, kernels):
    if not kernels.is_connected():
        raise NotConnectedError("BDD requires a connected graph")
    if leaf_size is None:
        leaf_size = default_leaf_size(graph, diameter=kernels.diameter())
    if max_depth is None:
        max_depth = 4 * math.ceil(math.log2(max(graph.m, 2))) + 8

    bags = []
    forced_leaves = 0

    def new_bag(level, edge_ids, live_darts, parent):
        bag = Bag(bag_id=len(bags), level=level,
                  edge_ids=sorted(edge_ids),
                  live_darts=frozenset(live_darts), parent=parent)
        bag._graph = graph
        bags.append(bag)
        if parent is not None:
            parent.children.append(bag)
        return bag

    root = new_bag(0, list(range(graph.m)), range(graph.num_darts), None)

    stack = [root]
    while stack:
        bag = stack.pop()
        if bag.m <= leaf_size:
            continue
        if bag.level >= max_depth:
            raise DecompositionError(
                f"BDD exceeded depth {max_depth}; separator balance broke")

        sep = _separate(kernels, bag)
        bag.sx_vertices = list(sep.cycle_vertices)
        bag.sx_edge_ids = sorted(set(sep.cycle_edge_ids) |
                                 ({sep.chord_eid} if not sep.chord_virtual
                                  else set()))
        bag.ex_endpoints = sep.chord_endpoints
        bag.ex_virtual = sep.chord_virtual
        bag.separator_balance = sep.balance
        bag.bfs_depth = sep.tree_depth

        if ledger is not None:
            ledger.charge(2 * sep.tree_depth + len(sep.cycle_vertices),
                          f"bdd/level{bag.level}/separator",
                          detail=f"bag {bag.bag_id}: |S_X|="
                                 f"{len(sep.cycle_vertices)}",
                          ref="[17]/[27] via DESIGN.md substitution 2")

        children = kernels.children(bag, sep)
        if any(len(ch) >= bag.m for ch, _ in children):
            # separator failed to make progress; keep as leaf
            forced_leaves += 1
            bag.sx_vertices = None
            bag.sx_edge_ids = None
            bag.ex_endpoints = None
            continue

        for side_edges, live in children:
            child = new_bag(bag.level + 1, side_edges, live, bag)
            stack.append(child)

    bdd = BDD(graph=graph, root=root, bags=bags, leaf_size=leaf_size,
              forced_leaves=forced_leaves)
    _check_dart_partition(bdd)
    return bdd


def _split_edges(view, sep):
    """Edge sets of the child bags, each tagged with its side.

    The interior of the separator curve and each connected exterior
    component become children; separator edges belong to both sides.
    Returns list of ``(edge_set, is_inside)`` pairs.
    """
    inside_edges = set()
    outside_edges = set()
    for eid in view.edge_ids:
        a = (2 * eid) in sep.inside_darts
        b = (2 * eid + 1) in sep.inside_darts
        if a or b:
            inside_edges.add(eid)
        if (not a) or (not b):
            outside_edges.add(eid)

    children = []
    for side, is_inside in ((inside_edges, True), (outside_edges, False)):
        if not side:
            continue
        sub = SubgraphView(view.parent, sorted(side))
        for comp in sub.connected_edge_components():
            children.append((set(comp), is_inside))
    return children


def _check_dart_partition(bdd):
    """Lemma 5.5: each live dart of a bag lands in exactly one child."""
    for bag in bdd.bags:
        if bag.is_leaf:
            continue
        for d in bag.live_darts:
            owners = [c for c in bag.children if d in c.live_darts]
            if len(owners) != 1:
                raise DecompositionError(
                    f"dart {d} of bag {bag.bag_id} is live in "
                    f"{len(owners)} children")
