"""Bags of the bounded-diameter decomposition.

Per Section 5.1 a bag is a *set of edges* of ``G`` (a subgraph), together
with the set of its *live darts* — the darts whose G-face is a face or
face-part of the bag rather than a hole.  Lemma 5.5 semantics: every dart
of ``G`` is live in exactly one bag per level; a dart whose reversal is
missing lies on a hole (it belongs to an ancestor separator).

Vertex, edge, dart and face identities are global (those of ``G``),
which makes face-part tracking trivial: the dual node of bag ``X`` for
G-face ``f`` is simply the set of live darts of ``X`` lying on ``f``
(one face-part per bag — parts inherited down one chain can never
recombine because bags only shrink).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.planar.graph import SubgraphView


@dataclass(eq=False)
class Bag:
    """One node of the BDD tree (Lemma 5.1).  Identity-hashed."""

    bag_id: int
    level: int
    edge_ids: list
    live_darts: frozenset
    parent: "Bag" = None
    children: list = field(default_factory=list)

    #: separator data (None for leaves)
    sx_vertices: list = None
    sx_edge_ids: list = None        # real S_X edges (tree paths + real e_X)
    ex_endpoints: tuple = None
    ex_virtual: bool = False
    separator_balance: float = 0.0
    bfs_depth: int = 0

    _view: SubgraphView = field(default=None, repr=False)
    _graph = None

    @property
    def is_leaf(self):
        return not self.children

    @property
    def m(self):
        return len(self.edge_ids)

    def view(self):
        if self._view is None:
            self._view = SubgraphView(self._graph, self.edge_ids)
        return self._view

    def live_faces(self):
        """dict face id -> sorted list of live darts on that face
        (the dual nodes of this bag, Section 5.1.2)."""
        g = self._graph
        out = {}
        for d in sorted(self.live_darts):
            out.setdefault(g.face_of[d], []).append(d)
        return out

    def descendants(self):
        out = [self]
        stack = [self]
        while stack:
            b = stack.pop()
            for c in b.children:
                out.append(c)
                stack.append(c)
        return out


@dataclass
class BDD:
    """The decomposition tree (Lemma 5.1 + Theorem 5.2 extensions)."""

    graph: object
    root: Bag
    bags: list
    leaf_size: int
    forced_leaves: int = 0

    @property
    def depth(self):
        return max(b.level for b in self.bags)

    def levels(self):
        """Bags grouped by level, deepest first."""
        by = {}
        for b in self.bags:
            by.setdefault(b.level, []).append(b)
        return [by[lv] for lv in sorted(by, reverse=True)]

    def bags_by_level(self, level):
        return [b for b in self.bags if b.level == level]

    def leaf_bags(self):
        return [b for b in self.bags if b.is_leaf]

    def validate(self):
        """Check the structural properties the labeling scheme uses."""
        from repro.bdd.checks import validate_bdd

        return validate_bdd(self)
