"""Runtime validation of the BDD properties (Lemma 5.1 + Theorem 5.2).

Substitution 3 of DESIGN.md: instead of inheriting the guarantees of
[27]'s distributed construction, every decomposition can be *certified*
— depth, separator sizes, dart partition, few face-parts, F_X being a
dual separator — so the labeling scheme never runs on a structure that
silently violates its assumptions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bdd.dual_bags import build_dual_bag
from repro.errors import DecompositionError
from repro.planar.graph import rev


@dataclass
class BddReport:
    depth: int
    num_bags: int
    num_leaves: int
    max_separator: int
    max_leaf_edges: int
    max_bag_bfs_depth: int
    max_face_parts: int
    max_f_x: int
    max_edge_copies_per_level: int


def validate_bdd(bdd, check_dual_separator=True):
    """Raise :class:`DecompositionError` on violation; return a report."""
    g = bdd.graph
    n = max(g.n, 2)
    log_n = math.ceil(math.log2(n))

    # property 1: logarithmic depth (generous constant)
    depth = bdd.depth
    if depth > 4 * math.ceil(math.log2(max(g.m, 2))) + 8:
        raise DecompositionError(f"BDD depth {depth} not logarithmic")

    # property 2: root is G
    if set(bdd.root.edge_ids) != set(range(g.m)):
        raise DecompositionError("root bag is not the whole graph")
    if len(bdd.root.live_darts) != g.num_darts:
        raise DecompositionError("root live darts are not all darts")

    # property 3: leaves small.  Bags close to the threshold may stop
    # early when the separator cycle dominates them ("forced leaves"),
    # so the certified bound carries a factor-2 slack.
    max_leaf = max(len(b.edge_ids) for b in bdd.leaf_bags())
    if max_leaf > 2 * bdd.leaf_size + 4:
        raise DecompositionError(f"oversized leaf bag ({max_leaf} edges, "
                                 f"threshold {bdd.leaf_size})")

    # property 6: bag = union of children (as edge sets)
    for bag in bdd.bags:
        if bag.is_leaf:
            continue
        union = set()
        for c in bag.children:
            union |= set(c.edge_ids)
        if union != set(bag.edge_ids):
            raise DecompositionError(
                f"bag {bag.bag_id} is not the union of its children")

    # property 7: an edge is in O(1) bags per level ([27] proves 2; our
    # separator may re-use hole edges in its BFS tree, so we *measure*
    # the constant — it feeds the parallel-level round charges — and
    # only fail when it stops being a constant).
    max_copies = 1
    for level_bags in bdd.levels():
        count = {}
        for b in level_bags:
            for eid in b.edge_ids:
                count[eid] = count.get(eid, 0) + 1
        if count:
            max_copies = max(max_copies, max(count.values()))
    # [27] certifies 2; our separator re-uses hole edges, giving O(1)
    # extra copies per level in the worst case.  Certify linear-in-depth
    # (i.e. O(log n)) rather than exponential accumulation.
    if max_copies > 4 * depth + 8:
        raise DecompositionError(
            f"edge appears in {max_copies} bags of one level "
            f"(depth {depth})")

    # Lemma 5.5: per level, live darts partition the parent's live darts
    for bag in bdd.bags:
        if bag.is_leaf:
            continue
        child_union = set()
        for c in bag.children:
            if child_union & set(c.live_darts):
                raise DecompositionError("live darts overlap across "
                                         "children")
            child_union |= set(c.live_darts)
        if child_union != set(bag.live_darts):
            raise DecompositionError("live darts lost between levels")

    max_sep = 0
    max_bfs = 0
    for bag in bdd.bags:
        if bag.sx_vertices is not None:
            max_sep = max(max_sep, len(bag.sx_vertices))
        max_bfs = max(max_bfs, bag.bfs_depth)

    # property 9 (few face-parts): the number of faces of G that appear
    # only partially in a bag is O(log n) — one new split per ancestor.
    max_parts = 0
    face_sizes = {f: len(darts) for f, darts in
                  enumerate(g.faces)}
    for bag in bdd.bags:
        parts = 0
        for f, darts in bag.live_faces().items():
            if len(darts) < face_sizes[f]:
                parts += 1
        max_parts = max(max_parts, parts)
        if parts > 4 * (bag.level + 1) + 2:
            raise DecompositionError(
                f"bag {bag.bag_id} at level {bag.level} has {parts} "
                f"face-parts (Lemma 5.3 violated)")

    # properties 11-12: F_X separates X* between children
    max_fx = 0
    if check_dual_separator:
        for bag in bdd.bags:
            dual = build_dual_bag(bag)
            max_fx = max(max_fx, len(dual.f_x))
            if bag.is_leaf:
                continue
            _check_dual_separator(g, bag, dual)

    return BddReport(
        depth=depth, num_bags=len(bdd.bags),
        num_leaves=len(bdd.leaf_bags()), max_separator=max_sep,
        max_leaf_edges=max_leaf, max_bag_bfs_depth=max_bfs,
        max_face_parts=max_parts, max_f_x=max_fx,
        max_edge_copies_per_level=max_copies)


def _check_dual_separator(g, bag, dual):
    """Lemma 5.8/5.15: removing F_X from X* leaves no path between nodes
    owned entirely by different children."""
    adj = {}
    for d in dual.arc_darts:
        f, h = g.face_of[d], g.face_of[rev(d)]
        adj.setdefault(f, set()).add(h)
        adj.setdefault(h, set()).add(f)

    owner = {}
    for f in dual.nodes:
        if f in dual.f_x:
            continue
        owner[f] = dual.child_of_node.get(f)

    seen = set()
    for f0 in owner:
        if f0 in seen:
            continue
        comp_owner = None
        stack = [f0]
        seen.add(f0)
        while stack:
            f = stack.pop()
            o = owner.get(f)
            if o is not None:
                if comp_owner is None:
                    comp_owner = o
                elif comp_owner is not o:
                    raise DecompositionError(
                        f"F_X of bag {bag.bag_id} does not separate "
                        f"children in X*")
            for h in adj.get(f, ()):
                if h in dual.f_x or h in seen:
                    continue
                seen.add(h)
                stack.append(h)


def bdd_signature(bdd):
    """Canonical hashable fingerprint of a BDD's full structure.

    Covers everything :func:`~repro.bdd.build.build_bdd` determines:
    bag ids, levels, parents, sorted ``edge_ids``, ``live_darts``,
    separator metadata (S_X vertices/edges, ex endpoints and
    virtuality, balance, BFS depth), plus leaf size and forced-leaf
    count.  Two builds are bit-identical iff their signatures are
    equal — the parity contract between the ``legacy`` and ``engine``
    backends (tests/test_engine_bdd_parity.py, benchmarks/bench_bdd.py).
    """
    bags = tuple(
        (b.bag_id, b.level,
         b.parent.bag_id if b.parent is not None else -1,
         tuple(b.edge_ids), tuple(sorted(b.live_darts)),
         tuple(b.sx_vertices) if b.sx_vertices is not None else None,
         tuple(b.sx_edge_ids) if b.sx_edge_ids is not None else None,
         b.ex_endpoints, b.ex_virtual, b.separator_balance, b.bfs_depth)
        for b in bdd.bags)
    return (bdd.leaf_size, bdd.forced_leaves, bdd.depth, bags)
