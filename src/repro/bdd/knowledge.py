"""Distributed-knowledge bookkeeping (Theorem 5.2 properties 13-14,
Section 5.1.3, Algorithm 1).

The paper's labeling algorithm requires every vertex to know, for each
incident dart and every bag containing it: the bag id (Lemma 5.10), the
face/face-part id the dart lies on (Lemma 5.12), whether that face is
the bag's critical face, and the dual arc of each incident edge
(Lemma 5.14).  This module materializes exactly that per-vertex state —
nothing more — and verifies it is *locally consistent*: each vertex's
view can be cross-checked against its neighbors' without global data,
which is what makes the scheme distributively storable.

Face-part ids follow Lemma 5.12's format: the id of a part of face f
in bag X is the pair ``(id of f's part in the parent, bag id)``, so a
part's id textually contains its ancestors' ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DecompositionError
from repro.planar.graph import rev


@dataclass
class VertexKnowledge:
    """What one vertex knows (Õ(log² n) words per level, as charged)."""

    vertex: int
    #: dart -> list of bag ids containing it (one per level, Lemma 5.10)
    bags_of_dart: dict = field(default_factory=dict)
    #: (bag id, dart) -> face-part id tuple (Lemma 5.12)
    face_id_of_dart: dict = field(default_factory=dict)
    #: (bag id, edge id) -> (tail face-part id, head face-part id) or
    #: None when the edge has no dual in the bag (Lemma 5.14)
    dual_arc_of_edge: dict = field(default_factory=dict)

    def words(self):
        return (len(self.bags_of_dart) + len(self.face_id_of_dart)
                + 2 * len(self.dual_arc_of_edge))


def build_knowledge(bdd, ledger=None):
    """Per-vertex knowledge tables for a BDD (Algorithm 1).

    Returns dict vertex -> :class:`VertexKnowledge`.  Charges Õ(D) per
    level (the paper's broadcast of critical-face and face-part ids).
    """
    g = bdd.graph
    know = {v: VertexKnowledge(vertex=v) for v in range(g.n)}

    # face-part ids per (bag, face): root parts are the G-face ids; the
    # id extends with the child bag id exactly when the parent's part
    # split between children (Lemma 5.12: the parent's id is a prefix)
    face_pid = {}
    canon = {}
    for bag in sorted(bdd.bags, key=lambda b: b.level):
        faces = bag.live_faces()
        for f, darts in faces.items():
            if bag.parent is None:
                pid = (f,)
            else:
                parent_pid = face_pid[(bag.parent.bag_id, f)]
                parent_darts = bag.parent.live_faces()[f]
                if len(darts) == len(parent_darts):
                    pid = parent_pid          # moved whole: same part
                else:
                    pid = parent_pid + (bag.bag_id,)
            face_pid[(bag.bag_id, f)] = pid
            for d in darts:
                canon[(bag.bag_id, d)] = pid

    for bag in bdd.bags:
        live = bag.live_darts
        for d in live:
            v = g.tail(d)
            know[v].bags_of_dart.setdefault(d, []).append(bag.bag_id)
            know[v].face_id_of_dart[(bag.bag_id, d)] = \
                canon[(bag.bag_id, d)]
        for eid in bag.edge_ids:
            dp, dm = 2 * eid, 2 * eid + 1
            if dp in live and dm in live:
                arc = (canon[(bag.bag_id, dp)], canon[(bag.bag_id, dm)])
            else:
                arc = None
            for v in g.edges[eid]:
                know[v].dual_arc_of_edge[(bag.bag_id, eid)] = arc
        if ledger is not None:
            ledger.charge(bag.bfs_depth + len(bag.live_faces()) + 1,
                          f"knowledge/level{bag.level}",
                          ref="Lemma 5.12 / Algorithm 1")
    return know


def verify_knowledge(bdd, know):
    """Local-consistency checks of the per-vertex tables.

    * both endpoints of an edge agree on its dual arc per bag;
    * a dart's face-part id is identical at every vertex on the part;
    * dart-to-bag lists agree with the decomposition (Lemma 5.5).
    """
    g = bdd.graph
    for bag in bdd.bags:
        for eid in bag.edge_ids:
            u, v = g.edges[eid]
            au = know[u].dual_arc_of_edge.get((bag.bag_id, eid), "missing")
            av = know[v].dual_arc_of_edge.get((bag.bag_id, eid), "missing")
            if au != av:
                raise DecompositionError(
                    f"endpoints of edge {eid} disagree on its dual arc "
                    f"in bag {bag.bag_id}")
        for f, darts in bag.live_faces().items():
            ids = {know[g.tail(d)].face_id_of_dart[(bag.bag_id, d)]
                   for d in darts}
            if len(ids) != 1:
                raise DecompositionError(
                    f"face {f} of bag {bag.bag_id} has inconsistent "
                    f"part ids: {ids}")
    for bag in bdd.bags:
        for d in bag.live_darts:
            v = g.tail(d)
            if bag.bag_id not in know[v].bags_of_dart.get(d, ()):
                raise DecompositionError(
                    f"vertex {v} missing bag {bag.bag_id} for dart {d}")
    return True


def knowledge_words_per_vertex(know):
    """Maximum table size (words) over the vertices: the distributed
    storage cost the paper bounds by Õ(D) per vertex."""
    return max(k.words() for k in know.values())
