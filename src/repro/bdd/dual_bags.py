"""Dual bags X* and their separators F_X (Theorem 5.2, properties 9-12).

The dual bag of ``X`` has a node per face *or face-part* of ``G`` with
live darts in ``X``, and an arc per dart of every edge whose two darts
are both live in ``X`` (edges with a dart on a hole have no dual).  The
set ``F_X`` — endpoints of dual separator arcs plus faces split between
children — is a node separator of ``X*`` (Lemma 5.8), which is the
property the labeling scheme stands on; :func:`repro.bdd.checks`
verifies it directly on every decomposition the tests build.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.planar.graph import rev


@dataclass
class DualBag:
    """The dual X* of a bag, with everything the labeling algorithm
    needs precomputed."""

    bag: object
    #: face id -> sorted live darts (the node's darts)
    nodes: dict
    #: darts d with both d and rev(d) live: arc face(d) -> face(rev d).
    #: Rev-closed by construction (d is listed iff rev(d) is), which is
    #: the invariant :class:`repro.engine.labels.CompiledBagSlice`
    #: stands on when it assigns local dart pairs ``(2i, 2i+1)``
    arc_darts: list
    #: separator-node set F_X (face ids); empty for leaves
    f_x: set
    #: face id -> child bag that entirely contains it (None if split or leaf)
    child_of_node: dict
    #: dual separator arcs: darts of S_X edges with both darts live
    sx_arc_darts: list
    #: face id -> set of child bags holding parts of it (split faces)
    parts_in_children: dict = field(default_factory=dict)

    @property
    def num_nodes(self):
        return len(self.nodes)

    def arcs(self, lengths):
        """(dart, tail_face, head_face, length) for every dual arc."""
        g = self.bag._graph
        return [(d, g.face_of[d], g.face_of[rev(d)], lengths[d])
                for d in self.arc_darts]


def build_dual_bag(bag):
    """Compute the dual bag of ``bag``."""
    g = bag._graph
    live = bag.live_darts
    nodes = bag.live_faces()

    arc_darts = [d for d in sorted(live) if rev(d) in live]

    sx_arc_darts = []
    f_x = set()
    child_of_node = {}
    parts = {}

    if not bag.is_leaf:
        sx_set = set(bag.sx_edge_ids)
        for d in arc_darts:
            if (d >> 1) in sx_set:
                sx_arc_darts.append(d)
                f_x.add(g.face_of[d])
                f_x.add(g.face_of[rev(d)])

        # faces whose live darts are split between children
        dart_child = {}
        for c in bag.children:
            for d in c.live_darts:
                dart_child[d] = c
        for f, darts in nodes.items():
            owner_bags = {}
            for d in darts:
                c = dart_child.get(d)
                if c is not None:
                    owner_bags[id(c)] = c
            if len(owner_bags) >= 2:
                f_x.add(f)
                parts[f] = set(owner_bags.values())
                child_of_node[f] = None
            elif len(owner_bags) == 1:
                child_of_node[f] = next(iter(owner_bags.values()))
            else:
                child_of_node[f] = None

    return DualBag(bag=bag, nodes=nodes, arc_darts=arc_darts, f_x=f_x,
                   child_of_node=child_of_node, sx_arc_darts=sx_arc_darts,
                   parts_in_children=parts)


def build_all_dual_bags(bdd):
    """Dual bag for every bag; returns dict bag_id -> DualBag."""
    return {bag.bag_id: build_dual_bag(bag) for bag in bdd.bags}
