"""Low-congestion shortcuts (Definitions 4.1-4.2) for planar graphs.

Given a partition of the host graph into vertex-disjoint connected parts,
a shortcut assigns each part an auxiliary subgraph ``H_i`` so that
``G[S_i] ∪ H_i`` has small diameter while every edge serves few parts.

Construction: *tree-restricted* shortcuts over a global BFS tree — the
shortcut of part ``S_i`` is the minimal Steiner subtree of the BFS tree
spanning ``S_i``.  Ghaffari-Haeupler [13, 14] prove planar graphs admit
(Õ(D), Õ(D))-quality shortcuts; the tree-restricted construction achieves
that bound for the partitions the paper uses (faces of Ĝ, clusters grown
by Boruvka merging), and — crucially for the simulation — its quality is
**measured**, so part-wise aggregation charges reflect the real instance,
not an assumed formula.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass
class ShortcutQuality:
    congestion: int
    dilation: int
    tree_depth: int

    @property
    def quality(self):
        """SQ-style scalar: max(congestion, dilation) (Definition 4.2)."""
        return max(self.congestion, self.dilation)

    @property
    def pa_rounds(self):
        """Rounds for one part-wise aggregation via these shortcuts
        (Lemma 4.5): O(congestion + dilation)."""
        return self.congestion + self.dilation


@dataclass
class Shortcuts:
    parts: list
    #: per part: set of BFS-tree edges (u, v) forming the Steiner subtree
    subtrees: list
    quality: ShortcutQuality
    #: BFS parent map of the global tree
    parent: dict = field(repr=False, default=None)


def _bfs_tree(adj, root):
    parent = {root: None}
    depth = {root: 0}
    order = [root]
    q = deque([root])
    while q:
        u = q.popleft()
        for v in adj[u]:
            if v not in parent:
                parent[v] = u
                depth[v] = depth[u] + 1
                order.append(v)
                q.append(v)
    return parent, depth, order


def build_steiner_shortcuts(adj, parts, root=None):
    """Build tree-restricted shortcuts for ``parts`` on host ``adj``.

    ``adj``: dict/list vertex -> neighbors (connected host graph).
    ``parts``: list of vertex lists (disjoint; need not cover).
    Returns a :class:`Shortcuts` with measured quality.
    """
    if isinstance(adj, list):
        adj = {v: adj[v] for v in range(len(adj))}
    if root is None:
        root = next(iter(adj))
    parent, depth, order = _bfs_tree(adj, root)
    tree_depth = max(depth.values()) if depth else 0

    # count, per part, how many part members sit in each subtree: the
    # Steiner subtree consists of tree edges (v, parent v) whose subtree
    # contains at least one member but not all of them... plus the paths
    # up to the part's root-most LCA.  Equivalently: edges on the walk
    # from each member up to the common ancestor hull.
    part_of = {}
    for i, s in enumerate(parts):
        for v in s:
            part_of.setdefault(v, []).append(i)

    # cnt[i over subtree] via reverse BFS order accumulation
    cnt = [dict() for _ in range(len(parts))]  # vertex -> members below
    below = {v: {} for v in adj}
    for v in reversed(order):
        own = {}
        for i in part_of.get(v, ()):
            own[i] = own.get(i, 0) + 1
        for w in adj[v]:
            if parent.get(w) == v:
                for i, c in below[w].items():
                    own[i] = own.get(i, 0) + c
        below[v] = own

    sizes = [len(s) for s in parts]
    subtrees = [set() for _ in parts]
    edge_load = {}
    for v in order:
        p = parent[v]
        if p is None:
            continue
        for i, c in below[v].items():
            if 0 < c < sizes[i]:
                subtrees[i].add((v, p))
                key = frozenset((v, p))
                edge_load[key] = edge_load.get(key, 0) + 1

    congestion = max(edge_load.values()) if edge_load else 0

    # dilation: diameter of each part + its subtree, measured exactly by
    # double-BFS inside the union subgraph (2-approx lower bound, exact
    # upper bound via eccentricity doubling).
    dilation = 0
    part_edge_sets = []
    for i, s in enumerate(parts):
        ps = set(s)
        union_adj = {}
        for (v, p) in subtrees[i]:
            union_adj.setdefault(v, set()).add(p)
            union_adj.setdefault(p, set()).add(v)
        for v in s:
            for w in adj[v]:
                if w in ps:
                    union_adj.setdefault(v, set()).add(w)
                    union_adj.setdefault(w, set()).add(v)
        part_edge_sets.append(union_adj)
        if not union_adj:
            continue
        v0 = next(iter(union_adj))
        d1 = _bfs_dist(union_adj, v0)
        far = max(d1, key=d1.get)
        d2 = _bfs_dist(union_adj, far)
        dilation = max(dilation, max(d2.values()))

    quality = ShortcutQuality(congestion=congestion, dilation=dilation,
                              tree_depth=tree_depth)
    return Shortcuts(parts=list(parts), subtrees=subtrees, quality=quality,
                     parent=parent)


def _bfs_dist(adj, root):
    dist = {root: 0}
    q = deque([root])
    while q:
        u = q.popleft()
        for v in adj[u]:
            if v not in dist:
                dist[v] = dist[u] + 1
                q.append(v)
    return dist
