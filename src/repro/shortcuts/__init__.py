"""Low-congestion shortcuts and part-wise aggregation."""

from repro.shortcuts.lowcong import Shortcuts, ShortcutQuality, \
    build_steiner_shortcuts
from repro.shortcuts.partwise import DualPartwiseHost, partwise_aggregate

__all__ = [
    "Shortcuts",
    "ShortcutQuality",
    "build_steiner_shortcuts",
    "DualPartwiseHost",
    "partwise_aggregate",
]
