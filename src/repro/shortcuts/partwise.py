"""Part-wise aggregation (Definition 4.4) on a host graph and on G*.

``partwise_aggregate`` solves the PA problem over a partition of a host
graph, charging the ledger the measured shortcut cost (Lemma 4.5,
Corollary 4.6).  :class:`DualPartwiseHost` lifts this to the dual graph
``G*`` through the face-disjoint graph Ĝ exactly as Lemma 4.9 describes:
a partition of dual nodes induces a partition of Ĝ into the corresponding
face cycles; node inputs live at face leaders; edge inputs live at the
E_C endpoints.
"""

from __future__ import annotations

from repro.planar.dual import DualGraph
from repro.planar.face_disjoint import FaceDisjointGraph
from repro.shortcuts.lowcong import build_steiner_shortcuts

#: constant CONGEST overhead of simulating a Ĝ round on G (Property 3)
GHAT_OVERHEAD = 2


def fold(op, values, identity=None):
    """Fold an aggregation operator over an iterable (Definition 4.3)."""
    acc = identity
    for v in values:
        acc = v if acc is None else op(acc, v)
    return acc


def partwise_aggregate(adj, parts, inputs, op, ledger=None,
                       phase="pa", identity=None, shortcuts=None):
    """Solve the PA problem on host ``adj`` for vertex-disjoint connected
    ``parts``.

    ``inputs``: dict vertex -> value (vertices without input contribute
    nothing).  Returns list of per-part aggregates and the shortcuts used
    (for cost inspection).  Charges ``congestion + dilation`` rounds
    (Lemma 4.5) plus the construction BFS.
    """
    if shortcuts is None:
        shortcuts = build_steiner_shortcuts(adj, parts)
        if ledger is not None:
            ledger.charge_bfs(shortcuts.quality.tree_depth + 1,
                              f"{phase}/shortcut-construction",
                              ref="Lemma 4.5")
    out = []
    for s in parts:
        vals = (inputs[v] for v in s if v in inputs)
        out.append(fold(op, vals, identity))
    if ledger is not None:
        ledger.charge(shortcuts.quality.pa_rounds, f"{phase}/aggregate",
                      detail=f"congestion={shortcuts.quality.congestion} "
                             f"dilation={shortcuts.quality.dilation}",
                      ref="Lemma 4.5 / Corollary 4.6")
    return out, shortcuts


class DualPartwiseHost:
    """Part-wise aggregation on the dual graph G* via Ĝ (Lemma 4.9).

    Constructed once per primal graph; the canonical partition (every
    dual node its own part) is measured at construction time and defines
    ``pa_rounds``, the CONGEST cost charged per PA task — and hence per
    minor-aggregation round (Theorem 4.10).
    """

    def __init__(self, primal, ledger=None):
        self.primal = primal
        self.ledger = ledger
        self.g_hat = FaceDisjointGraph(primal)
        self.dual = DualGraph(primal)
        if ledger is not None:
            ledger.charge(1, "dual-pa/build-ghat", ref="Ĝ Property 1")

        # canonical partition: one part per face cycle of Ĝ
        faces = list(range(primal.num_faces()))
        parts = [self.g_hat.face_cycle_vertices(f) for f in faces]
        self._canonical = build_steiner_shortcuts(self.g_hat.adj, parts)
        if ledger is not None:
            ledger.charge_bfs(self._canonical.quality.tree_depth + 1,
                              "dual-pa/shortcut-construction",
                              ref="Lemma 4.9")

    @property
    def pa_rounds(self):
        """Measured CONGEST rounds of one PA task on G* (Lemma 4.9):
        shortcut congestion+dilation on Ĝ times the Ĝ→G overhead."""
        return GHAT_OVERHEAD * max(1, self._canonical.quality.pa_rounds)

    def aggregate_node_inputs(self, node_parts, node_inputs, op,
                              phase="dual-pa", identity=None):
        """PA over dual-node inputs.

        ``node_parts``: list of lists of face ids (each part connected in
        G*); ``node_inputs``: dict face id -> value.  Returns list of
        per-part aggregates.
        """
        out = []
        for part in node_parts:
            vals = (node_inputs[f] for f in part if f in node_inputs)
            out.append(fold(op, vals, identity))
        if self.ledger is not None:
            self.ledger.charge(self.pa_rounds, f"{phase}/nodes",
                               ref="Lemma 4.9")
        return out

    def aggregate_edge_inputs(self, node_parts, edge_inputs, op,
                              outgoing=False, phase="dual-pa",
                              identity=None):
        """PA over dual-edge inputs.

        ``edge_inputs``: dict primal edge id -> value (the dual edge's
        input, known at its E_C endpoints).  With ``outgoing=False`` a
        part aggregates over dual edges with both endpoints inside it;
        with ``outgoing=True`` over edges leaving the part — the variant
        Lemma 4.9 adds over [17].
        """
        part_of = {}
        for i, part in enumerate(node_parts):
            for f in part:
                part_of[f] = i
        buckets = [[] for _ in node_parts]
        for eid, val in edge_inputs.items():
            f = self.primal.face_of[2 * eid]
            g = self.primal.face_of[2 * eid + 1]
            pf, pg = part_of.get(f), part_of.get(g)
            if outgoing:
                if pf is not None and pf != pg:
                    buckets[pf].append(val)
                if pg is not None and pg != pf:
                    buckets[pg].append(val)
            else:
                if pf is not None and pf == pg:
                    buckets[pf].append(val)
        if self.ledger is not None:
            self.ledger.charge(self.pa_rounds, f"{phase}/edges",
                               ref="Lemma 4.9")
        return [fold(op, b, identity) for b in buckets]
