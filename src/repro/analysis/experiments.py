"""The experiment harness: one entry point per experiment of the index
in DESIGN.md §4.  Each returns the rows that EXPERIMENTS.md records and
that the corresponding benchmark prints.
"""

from __future__ import annotations

import math

from repro.analysis.metrics import SeriesRow, fit_exponent, format_table
from repro.baselines.centralized import (
    centralized_directed_global_mincut,
    centralized_weighted_girth,
)
from repro.baselines.distributed_naive import (
    de_vos_round_model,
    ghaffari_et_al_round_model,
    naive_maxflow_rounds,
    paper_round_model,
)
from repro.congest import RoundLedger
from repro.core import (
    approx_max_st_flow,
    directed_global_mincut,
    flow_value_networkx,
    max_st_flow,
    min_st_cut,
    weighted_girth,
)
from repro.bdd import build_bdd, validate_bdd
from repro.labeling import DualDistanceLabeling
from repro.planar.generators import (
    bidirect,
    cylinder,
    grid,
    random_planar,
    randomize_weights,
)


def flow_families(scale=1):
    """Planar families spanning diameter regimes, scaled for benches."""
    return [
        ("grid", lambda k: randomize_weights(
            grid(4 + 2 * k, 5 + 3 * k), seed=k, directed_capacities=True)),
        ("cylinder", lambda k: randomize_weights(
            cylinder(3 + k, 6 + 3 * k), seed=k, directed_capacities=True)),
        ("delaunay", lambda k: randomize_weights(
            random_planar(35 + 45 * k, seed=k), seed=k,
            directed_capacities=True)),
    ]


def experiment_maxflow(sizes=(0, 1, 2), leaf_factor=1.0):
    """E1: exact max-flow correctness + Õ(D²) round shape."""
    rows = []
    for name, maker in flow_families():
        for k in sizes:
            g = maker(k)
            d = g.diameter()
            led = RoundLedger()
            s, t = 0, g.n - 1
            res = max_st_flow(g, s, t, directed=True,
                              leaf_size=max(12, int(leaf_factor * d)),
                              ledger=led)
            ref = flow_value_networkx(g, s, t, directed=True)
            assert res.value == ref, (name, k)
            rows.append(SeriesRow(
                family=name, n=g.n, d=d, rounds=led.total(),
                extra={"value": res.value, "probes": res.probes,
                       "rounds/D^2": round(led.total() / d ** 2, 1),
                       "naive": naive_maxflow_rounds(g)}))
    return rows


def experiment_labeling(sizes=(0, 1, 2)):
    """E2: label sizes Õ(D) bits and labeling rounds Õ(D²)."""
    import random

    rows = []
    for name, maker in flow_families():
        for k in sizes:
            g = maker(k)
            d = g.diameter()
            led = RoundLedger()
            bdd = build_bdd(g, leaf_size=max(12, d), ledger=led)
            lengths = {dart: g.weights[dart >> 1] for dart in g.darts()}
            lab = DualDistanceLabeling(bdd, lengths, ledger=led)
            bits = lab.max_label_bits()
            rows.append(SeriesRow(
                family=name, n=g.n, d=d, rounds=led.total(),
                extra={"label_bits": bits, "bits/D": round(bits / d, 1),
                       "depth": bdd.depth}))
    return rows


def experiment_girth(sizes=(0, 1, 2)):
    """E4: weighted girth exact + Õ(D) round shape, against the
    executable Õ(D²) prior-work comparator [36]."""
    from repro.core import directed_weighted_girth

    rows = []
    for k in sizes:
        g = randomize_weights(grid(4 + 2 * k, 4 + 2 * k), seed=k)
        d = g.diameter()
        led = RoundLedger()
        res = weighted_girth(g, ledger=led)
        assert res.value == centralized_weighted_girth(g)
        led36 = RoundLedger()
        directed_weighted_girth(bidirect(g, reverse_weights=g.weights),
                                leaf_size=max(10, d), ledger=led36)
        rows.append(SeriesRow(
            family="grid", n=g.n, d=d, rounds=led.total(),
            extra={"girth": res.value,
                   "rounds/D": round(led.total() / d, 1),
                   "prior36_rounds": led36.total(),
                   "ma_rounds": res.ma_rounds}))
    return rows


def experiment_global_mincut(sizes=(0, 1)):
    """E5: directed global min-cut exact, Õ(D²)."""
    rows = []
    for k in sizes:
        base = randomize_weights(random_planar(12 + 6 * k, seed=k),
                                 seed=k)
        g = bidirect(base, seed=k)
        d = g.diameter()
        led = RoundLedger()
        res = directed_global_mincut(g, leaf_size=max(10, d), ledger=led)
        assert res.value == centralized_directed_global_mincut(g)
        rows.append(SeriesRow(
            family="bidirected-delaunay", n=g.n, d=d, rounds=led.total(),
            extra={"cut": res.value,
                   "rounds/D^2": round(led.total() / d ** 2, 1)}))
    return rows


def experiment_approx_flow(sizes=(0, 1, 2), eps=0.2):
    """E7: (1−ε) flow value + feasible assignment, D·n^{o(1)} shape."""
    rows = []
    for k in sizes:
        g = randomize_weights(grid(4 + k, 6 + 2 * k), seed=k)
        d = g.diameter()
        led = RoundLedger()
        s, t = 0, g.n - 1
        res = approx_max_st_flow(g, s, t, eps=eps, seed=k, ledger=led)
        ref = flow_value_networkx(g, s, t, directed=False)
        ratio = res.value / ref
        assert (1 - 2 * eps) <= ratio <= 1 + 1e-9
        rows.append(SeriesRow(
            family="grid", n=g.n, d=d, rounds=led.total(),
            extra={"ratio": round(ratio, 3),
                   "cut_ratio": round(res.cut_capacity / ref, 3),
                   "exact_rounds_model": round(paper_round_model(g.n, d))}))
    return rows


def experiment_bdd_shape(sizes=(0, 1, 2)):
    """E9: BDD certification across diameter regimes."""
    rows = []
    for name, maker in flow_families():
        for k in sizes:
            g = maker(k)
            d = g.diameter()
            bdd = build_bdd(g, leaf_size=max(12, d))
            rep = validate_bdd(bdd)
            rows.append(SeriesRow(
                family=name, n=g.n, d=d, rounds=0,
                extra={"depth": rep.depth, "bags": rep.num_bags,
                       "max|S_X|": rep.max_separator,
                       "max|F_X|": rep.max_f_x,
                       "face_parts": rep.max_face_parts,
                       "|S_X|/D": round(rep.max_separator / d, 2)}))
    return rows


def experiment_engine_kernels(girth_sizes=(6, 9, 12), mincut_ns=(14, 20)):
    """E11: engine-vs-legacy backends across the theorem families
    (DESIGN.md §6–§7).

    This is the one *wall-clock* series of the suite: it measures the
    execution backends, not the protocol — wall time is never a proxy
    for rounds (DESIGN.md §2), which is why the speedup columns live in
    their own table.  Output parity is asserted inline, so a speedup
    can never come from a wrong answer.
    """
    import time

    rows = []
    for k in girth_sizes:
        g = randomize_weights(grid(k, k), seed=k)
        t0 = time.perf_counter()
        leg = weighted_girth(g)
        legacy_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        eng = weighted_girth(g, backend="engine")
        engine_s = max(time.perf_counter() - t0, 1e-9)
        # witness fields compared too: these seeds have unique minimum
        # cycles (swap the seed, don't relax, if a tie ever appears)
        assert (eng.value, eng.cycle_edge_ids, eng.cut_side_faces) == \
            (leg.value, leg.cycle_edge_ids, leg.cut_side_faces)
        rows.append(SeriesRow(
            family="girth/grid", n=g.n, d=g.diameter(), rounds=0,
            extra={"value": eng.value,
                   "legacy_s": round(legacy_s, 3),
                   "engine_s": round(engine_s, 4),
                   "speedup": round(legacy_s / engine_s, 1)}))
    for n in mincut_ns:
        base = randomize_weights(random_planar(n, seed=n), seed=n)
        g = bidirect(base, seed=n)
        t0 = time.perf_counter()
        leg = directed_global_mincut(g, leaf_size=12)
        legacy_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        eng = directed_global_mincut(g, leaf_size=12, backend="engine")
        engine_s = max(time.perf_counter() - t0, 1e-9)
        assert eng == leg  # bit-identical dataclasses
        rows.append(SeriesRow(
            family="mincut/bidirected", n=g.n, d=g.diameter(), rounds=0,
            extra={"value": eng.value,
                   "legacy_s": round(legacy_s, 3),
                   "engine_s": round(engine_s, 4),
                   "speedup": round(legacy_s / engine_s, 1)}))
    from repro.core import directed_weighted_girth

    base = randomize_weights(random_planar(30, seed=8), seed=8)
    g = bidirect(base, seed=8)
    t0 = time.perf_counter()
    leg = directed_weighted_girth(g, leaf_size=max(10, g.diameter()))
    legacy_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    eng = directed_weighted_girth(g, backend="engine")
    engine_s = max(time.perf_counter() - t0, 1e-9)
    assert (eng.value, eng.witness_edge) == (leg.value, leg.witness_edge)
    rows.append(SeriesRow(
        family="dgirth/bidirected", n=g.n, d=g.diameter(), rounds=0,
        extra={"value": eng.value,
               "legacy_s": round(legacy_s, 3),
               "engine_s": round(engine_s, 4),
               "speedup": round(legacy_s / engine_s, 1)}))
    return rows


def experiment_labeling_engine(sizes=(8, 12, 16)):
    """E12: the labeling serving economics (DESIGN.md §8–§9) —
    cold Theorem 2.1 construction on both backends vs warm Lemma 2.2
    decodes, wall-clock with bit-identical-label parity asserted
    inline.  The engine column is the served miss cost; the warm
    column is what every later DistanceQuery pays.
    """
    import random
    import time

    rows = []
    for k in sizes:
        g = randomize_weights(grid(k, k), seed=k)
        lengths = {dart: g.weights[dart >> 1] for dart in g.darts()}
        bdd = build_bdd(g, leaf_size=max(12, g.diameter()))
        t0 = time.perf_counter()
        leg = DualDistanceLabeling(bdd, lengths)
        legacy_s = time.perf_counter() - t0
        DualDistanceLabeling(bdd, lengths, backend="engine")  # compile
        t0 = time.perf_counter()
        eng = DualDistanceLabeling(bdd, lengths, backend="engine")
        engine_s = max(time.perf_counter() - t0, 1e-9)
        assert leg._labels == eng._labels  # bit-identical, enforced
        rng = random.Random(k)
        nf = g.num_faces()
        pairs = [(rng.randrange(nf), rng.randrange(nf))
                 for _ in range(400)]
        t0 = time.perf_counter()
        for f, h in pairs:
            eng.distance(f, h)
        warm_s = (time.perf_counter() - t0) / len(pairs)
        rows.append(SeriesRow(
            family="grid", n=g.n, d=g.diameter(), rounds=0,
            extra={"legacy_s": round(legacy_s, 3),
                   "engine_s": round(engine_s, 4),
                   "build_speedup": round(legacy_s / engine_s, 1),
                   "warm_us": round(warm_s * 1e6, 1),
                   "cold/warm": round(engine_s / warm_s)}))
    return rows


def experiment_crossover(n=4096):
    """E10: round-model comparison — where does Õ(D²) beat D·√n [4] and
    (√n+D)·n^{o(1)} [16]?"""
    rows = []
    d = 4
    while d * d <= 4 * n:
        ours = paper_round_model(n, d)
        rows.append({
            "D": d,
            "ours_O(D^2)": round(ours),
            "deVos_D*sqrt(n)": round(de_vos_round_model(n, d)),
            "GKKLP_(sqrt(n)+D)_approx": round(
                ghaffari_et_al_round_model(n, d)),
            "beats_deVos": "yes" if ours <= de_vos_round_model(n, d)
            else "no",
        })
        d *= 2
    return rows


def run_all(print_tables=True):
    """Run every experiment at small scale; used by EXPERIMENTS.md
    regeneration and by the integration tests."""
    out = {}
    out["E1-maxflow"] = experiment_maxflow(sizes=(0, 1, 2, 3))
    out["E2-labeling"] = experiment_labeling(sizes=(0, 1, 2, 3))
    out["E4-girth"] = experiment_girth(sizes=(0, 1, 2, 3))
    out["E5-global-mincut"] = experiment_global_mincut(sizes=(0, 1, 2))
    out["E7-approx-flow"] = experiment_approx_flow(sizes=(0, 1, 2))
    out["E9-bdd"] = experiment_bdd_shape(sizes=(0, 1, 2, 3))
    out["E10-crossover"] = experiment_crossover()
    out["E11-engine-kernels"] = experiment_engine_kernels()
    out["E12-labeling-engine"] = experiment_labeling_engine()
    if print_tables:
        for name, rows in out.items():
            if name == "E10-crossover":
                cols = list(rows[0].keys())
            else:
                cols = ["family", "n", "d", "rounds"] + \
                    sorted(rows[0].extra.keys())
            print(format_table(rows, cols, title=f"== {name} =="))
            print()
    return out
