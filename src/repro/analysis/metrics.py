"""Measurement helpers for the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class SeriesRow:
    """One row of an experiment series (printed into EXPERIMENTS.md)."""

    family: str
    n: int
    d: int
    rounds: int
    extra: dict = field(default_factory=dict)

    def normalized(self, exponent=2):
        """rounds / D^exponent — flat series confirm the claimed shape."""
        return self.rounds / max(self.d, 1) ** exponent


def format_table(rows, columns, title=None):
    """Render rows (dicts or SeriesRow) as a monospace table."""
    def get(row, c):
        if isinstance(row, dict):
            return row.get(c, "")
        if hasattr(row, c):
            return getattr(row, c)
        return row.extra.get(c, "")

    widths = {c: max(len(str(c)),
                     max((len(_fmt(get(r, c))) for r in rows), default=0))
              for c in columns}
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(c).ljust(widths[c]) for c in columns))
    lines.append("  ".join("-" * widths[c] for c in columns))
    for r in rows:
        lines.append("  ".join(_fmt(get(r, c)).ljust(widths[c])
                               for c in columns))
    return "\n".join(lines)


def _fmt(x):
    if isinstance(x, float):
        if x == int(x) and abs(x) < 1e15:
            return str(int(x))
        return f"{x:.3g}"
    return str(x)


def fit_exponent(xs, ys):
    """Least-squares slope of log y vs log x: the measured growth
    exponent of a series (e.g. rounds vs D should fit ≈ 2 for Õ(D²))."""
    pts = [(math.log(x), math.log(y)) for x, y in zip(xs, ys)
           if x > 1 and y > 0]
    if len(pts) < 2:
        return float("nan")
    mx = sum(p[0] for p in pts) / len(pts)
    my = sum(p[1] for p in pts) / len(pts)
    num = sum((p[0] - mx) * (p[1] - my) for p in pts)
    den = sum((p[0] - mx) ** 2 for p in pts)
    return num / den if den else float("nan")
