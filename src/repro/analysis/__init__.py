"""Experiment harness and metrics (DESIGN.md experiment index)."""

from repro.analysis.metrics import SeriesRow, fit_exponent, format_table

__all__ = ["SeriesRow", "fit_exponent", "format_table"]
