"""Client library for the query server: connection reuse, one-line
calls, client-side batching (DESIGN.md §10).

A :class:`ServiceClient` keeps one TCP connection open across calls
(reconnecting once, transparently, if the server dropped it between
calls) and mirrors the in-process serving API:

    with ServiceClient(host, port) as client:
        r = client.query(FlowQuery("g", 0, 99))       # QueryResult
        report = client.run(mixed_queries)            # BatchReport
        dists = client.distances("g", [(0, 5), (3, 7)])

Batching is where the network layer earns its keep: :meth:`run` ships
any query mix as **one** ``batch`` frame (one round-trip, fanned out
across all pool workers server-side), and it *coalesces* duplicate
queries before sending — the dominant pattern of a distance-heavy
workload, where many clients ask for the same few
``(graph, f, g)`` pairs, pays one label decode and one wire entry for
all of them.  Results come back in input order either way, bit-identical
to in-process :func:`~repro.service.queries.execute_query` (the wire
codec round-trips every result type exactly — ``tests/test_server.py``).
"""

from __future__ import annotations

import socket
import time

from repro import obs
from repro.errors import ProtocolError
from repro.server import wire
from repro.service.batch import BatchReport
from repro.service.queries import DistanceQuery, QueryResult


class ServiceClient:
    """Thin typed client over the NDJSON wire protocol."""

    def __init__(self, host="127.0.0.1", port=8423, timeout=None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock = None
        self._file = None
        self._frame_id = 0
        #: round-trips replayed over a fresh connection after a
        #: transport drop, over this client's lifetime
        self.reconnects = 0
        self._last_retried = False

    # ------------------------------------------------------------------
    # connection
    # ------------------------------------------------------------------
    def connect(self):
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout)
            self._file = self._sock.makefile("rwb")
        return self

    def close(self):
        if self._sock is not None:
            try:
                self._file.close()
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            self._file = None

    def __enter__(self):
        return self.connect()

    def __exit__(self, *exc):
        self.close()
        return False

    # ------------------------------------------------------------------
    # frame plumbing
    # ------------------------------------------------------------------
    #: verbs safe to re-send after a dropped connection — a repeat
    #: serves the same answer.  ``register`` is deliberately absent: a
    #: reset can arrive *after* the server executed the frame, and a
    #: resent register would fail as "already registered" (or worse,
    #: with overwrite=True, silently run twice)
    #: ``mutate_weights`` is absolute (edge id -> new weight, not a
    #: delta), so a resend after a reset is a value-identical no-op
    _RETRY_VERBS = frozenset(
        {"query", "batch", "stats", "metrics", "graphs", "ping",
         "set_weights", "mutate_weights", "audit", "health",
         "exemplars"})

    def _call(self, verb, **payload):
        if not obs.enabled():
            return self._call_inner(verb, None, payload)
        with obs.span(f"client.{verb}", host=self.host,
                      port=self.port) as sp:
            response = self._call_inner(
                verb, [sp.trace_id, sp.span_id], payload)
            if self._last_retried:
                sp.tag(retried=True)
            return response

    def _call_inner(self, verb, trace_ctx, payload):
        self._last_retried = False
        self.connect()
        self._frame_id += 1
        frame = {"v": wire.PROTOCOL_VERSION, "id": self._frame_id,
                 "verb": verb}
        if trace_ctx is not None:
            frame["trace"] = trace_ctx
        frame.update(payload)
        data = wire.encode_frame(frame)
        try:
            response = self._roundtrip(data)
        except (ConnectionResetError, BrokenPipeError, EOFError):
            # stale/dropped connection: reconnect once and retry, but
            # only for idempotent verbs — and never on a socket
            # timeout (also an OSError), which means the request may
            # still be executing server-side
            if verb not in self._RETRY_VERBS:
                self.close()
                raise
            self.close()
            self.connect()
            self.reconnects += 1
            self._last_retried = True
            if obs.enabled():
                obs.inc("client.reconnects")
            response = self._roundtrip(data)
        if response.get("id") != frame["id"]:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {frame['id']!r}")
        if not response.get("ok"):
            raise wire.exception_from_wire(response.get("error", {}))
        return response

    def _roundtrip(self, data):
        self._file.write(data)
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise EOFError("server closed the connection")
        return wire.decode_frame(line)

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def ping(self):
        """Liveness + version handshake."""
        return self._call("ping")

    def query(self, query):
        """Serve one typed query; returns the
        :class:`~repro.service.queries.QueryResult` envelope (its
        :attr:`~repro.service.queries.QueryResult.retried` flag is set
        when the round-trip was replayed after a transport drop)."""
        response = self._call("query", query=wire.query_to_wire(query))
        envelope = wire.query_result_from_wire(query, response)
        envelope.retried = self._last_retried
        return envelope

    def run(self, queries, on_error="raise"):
        """Serve a query mix in one round-trip; returns a
        :class:`~repro.service.batch.BatchReport` in input order.

        Duplicate queries are coalesced client-side: each distinct
        query travels (and is served) once, and every *successful*
        duplicate gets the same (immutable) result object back — the
        sharing contract of the catalog's result cache.  Failed
        queries are never shared: every occurrence of a failing query
        gets a **fresh** exception instance rebuilt from its error
        frame, so two connections batching the same bad
        ``DistanceQuery`` (or one client retrying it) can each raise,
        annotate, and discard their own error without aliasing.

        ``on_error`` selects what a failed query does to the batch:
        ``"raise"`` (default) raises the first failure in input order;
        ``"return"`` keeps going and returns an error envelope
        (``result=None``, :attr:`~repro.service.queries.QueryResult.
        error` set) in that query's slot, so mixed batches report
        per-query outcomes — what the replay driver and the load
        generator need to count errors instead of dying on them.
        """
        if on_error not in ("raise", "return"):
            raise ProtocolError(f"on_error must be 'raise' or "
                                f"'return', got {on_error!r}")
        queries = list(queries)
        t0 = time.perf_counter()
        distinct = []
        index_of = {}
        for q in queries:
            if q not in index_of:
                index_of[q] = len(distinct)
                distinct.append(q)
        response = self._call(
            "batch", queries=[wire.query_to_wire(q) for q in distinct])
        payloads = response["results"]
        if len(payloads) != len(distinct):
            raise ProtocolError(
                f"batch answered {len(payloads)} of {len(distinct)} "
                f"queries")
        envelopes = []
        for q, p in zip(distinct, payloads):
            if p.get("ok", True):
                envelopes.append(wire.query_result_from_wire(q, p))
            else:
                envelopes.append(p.get("error", {}))  # raw error frame
        # expand back to input order; replicated successful duplicates
        # are warm hits against the first occurrence (zero extra serve
        # time), matching what run_batch's result cache would report —
        # while every failure occurrence rebuilds its own exception
        results = []
        seen = set()
        retried = self._last_retried
        for q in queries:
            env = envelopes[index_of[q]]
            if isinstance(env, dict):   # error frame, never coalesced
                exc = wire.exception_from_wire(env)
                if on_error == "raise":
                    raise exc
                env = QueryResult(query=q, backend=None, result=None,
                                  warm=False, seconds=0.0, error=exc)
            elif q in seen:
                env = QueryResult(query=q, backend=env.backend,
                                  result=env.result, warm=True,
                                  seconds=0.0)
            env.retried = retried
            seen.add(q)
            results.append(env)
        warm = sum(bool(r.warm) for r in results)
        return BatchReport(results=results,
                           seconds=time.perf_counter() - t0,
                           warm_hits=warm,
                           cold_misses=len(results) - warm)

    def distances(self, graph, pairs, backend="auto"):
        """Coalesced dual distances: one round-trip for many ``(f, g)``
        pairs on one graph — the cached Theorem 2.1 labels decode each
        distinct pair once (Lemma 2.2).  Returns the values in input
        order."""
        report = self.run(DistanceQuery(graph, f, g, backend=backend)
                          for f, g in pairs)
        return report.values()

    def register(self, name, graph, overwrite=False):
        """Register a graph on the server (and all pool workers)."""
        return self._call("register", name=name,
                          graph=wire.graph_to_wire(graph),
                          overwrite=overwrite)["registered"]

    def set_weights(self, name, weights=None, capacities=None):
        """Reprice a served graph in place, pool-wide."""
        weights = None if weights is None else list(weights)
        capacities = None if capacities is None else list(capacities)
        return self._call("set_weights", graph=name, weights=weights,
                          capacities=capacities)["repriced"]

    def mutate_weights(self, name, edges, max_dirty_frac=None):
        """Delta-reprice a few edges pool-wide (DESIGN.md §11):
        cached labelings are repaired in place server-side instead of
        rebuilt.  ``edges`` maps edge id -> new weight (or is an
        iterable of pairs).  Returns the server's mutation report; a
        negative dual cycle raises the same
        :class:`~repro.errors.NegativeCycleError` (message and
        ``where``) a local build would."""
        items = edges.items() if hasattr(edges, "items") else edges
        payload = {"graph": name,
                   "edges": [[eid, w] for eid, w in items]}
        if max_dirty_frac is not None:
            payload["max_dirty_frac"] = max_dirty_frac
        return self._call("mutate_weights", **payload)["report"]

    def audit_labeling(self, name, leaf_size=None, backend="engine"):
        """Debug verb: server-side bit-parity audit of ``name``'s
        labeling — master catalog and every pool worker — against a
        from-scratch rebuild (see :meth:`~repro.service.catalog.
        GraphCatalog.audit_labeling`).  Raises
        :class:`~repro.errors.AuditError` on divergence; returns the
        reports otherwise."""
        return self._call("audit", graph=name, leaf_size=leaf_size,
                          backend=backend)["report"]

    def graphs(self):
        """Names registered on the server."""
        return self._call("graphs")["graphs"]

    def stats(self, worker_catalogs=True):
        """Server observability: cache hit/miss counters, per-query-type
        latency, worker occupancy (see
        :meth:`~repro.server.pool.WarmWorkerPool.stats`)."""
        return self._call("stats",
                          worker_catalogs=worker_catalogs)["stats"]

    def health(self, format="report"):
        """The server's liveness/SLO report (see
        :meth:`~repro.server.pool.WarmWorkerPool.health`): readiness
        state machine, per-worker heartbeat ages, rolling-window SLO
        verdicts and the last background audit.

        ``format="report"`` returns the JSON-safe report dict;
        ``format="prometheus"`` returns the gauge rendering as one
        string (what ``python -m repro.obs health`` prints)."""
        response = self._call("health", format=format)
        if format == "prometheus":
            return response["prometheus"]
        return response["health"]

    def exemplars(self, limit=None):
        """The server flight recorder's retained exemplar span trees —
        the slowest-K per window plus every errored query (see
        :class:`~repro.obs.FlightRecorder`).  Returns the recorder's
        dump dict; ``recording`` is False when the server runs without
        observability."""
        payload = {} if limit is None else {"limit": limit}
        return self._call("exemplars", **payload)["exemplars"]

    def metrics(self, format="snapshot"):
        """The server's aggregated :mod:`repro.obs` metrics registry
        (master + every worker delta shipped so far).

        ``format="snapshot"`` returns the JSON-safe registry snapshot
        dict; ``format="prometheus"`` returns the Prometheus
        text-exposition rendering as one string (what
        ``python -m repro.obs scrape`` prints).  Empty when the server
        runs with observability disabled.
        """
        response = self._call("metrics", format=format)
        if format == "prometheus":
            return response["prometheus"]
        return response["metrics"]


__all__ = ["ServiceClient"]
