"""repro.server — the multi-worker query server (DESIGN.md §10).

The serving layer of :mod:`repro.service` made one process's queries
warm; this package shares that warmth across worker processes and
network clients — the "compile once, serve many" daemon the ROADMAP's
production north-star asks for:

* :class:`~repro.server.pool.WarmWorkerPool` — registers graphs and
  builds their artifacts *before* forking, so every worker inherits the
  hot :class:`~repro.service.catalog.GraphCatalog` copy-on-write
  (``spawn`` platforms get a pickled
  :class:`~repro.service.catalog.CatalogSnapshot` instead) and
  load-balances any query mix over a bounded per-worker window;
* :class:`~repro.server.app.QueryServer` / :func:`~repro.server.app.
  serve` — a stdlib ``socketserver`` TCP front end speaking the
  newline-delimited JSON protocol of :mod:`repro.server.wire`
  (versioned frames, typed error frames);
* :class:`~repro.server.client.ServiceClient` — connection-reusing
  client with one-round-trip batching and duplicate-query coalescing,
  returning the same :class:`~repro.service.queries.QueryResult` /
  :class:`~repro.service.batch.BatchReport` envelopes as in-process
  serving, bit-identical results included.

``python -m repro.server`` starts a server (with an optional demo
grid); ``examples/network_serving.py`` is the end-to-end tour;
``benchmarks/bench_server.py`` races the warm pool against the old
fork-cold path.
"""

from repro.server.app import QueryServer, serve
from repro.server.client import ServiceClient
from repro.server.pool import WarmWorkerPool
from repro.server.wire import (
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    exception_from_wire,
    exception_to_wire,
    graph_from_wire,
    graph_to_wire,
    query_from_wire,
    query_result_from_wire,
    query_result_to_wire,
    query_to_wire,
    result_from_wire,
    result_to_wire,
)

__all__ = [
    "WarmWorkerPool",
    "QueryServer",
    "serve",
    "ServiceClient",
    "PROTOCOL_VERSION",
    "encode_frame",
    "decode_frame",
    "query_to_wire",
    "query_from_wire",
    "result_to_wire",
    "result_from_wire",
    "query_result_to_wire",
    "query_result_from_wire",
    "graph_to_wire",
    "graph_from_wire",
    "exception_to_wire",
    "exception_from_wire",
]
