"""Pre-warmed worker pool: compile once, serve from many processes
(DESIGN.md §10).

The serving problem after PR 3/PR 4 is not making warm queries fast —
it is *sharing the warmth*: ``run_sharded`` forked one cold process per
graph, so every worker re-paid the CSR compile, BDD build and
Theorem 2.1 labeling before answering anything.  A
:class:`WarmWorkerPool` inverts the order:

1. **register + prewarm** — graphs are registered in the *master*
   :class:`~repro.service.catalog.GraphCatalog` and the expensive
   artifacts (flow solvers, labelings, girth oracles) are built once,
   in the parent;
2. **fork** — :meth:`WarmWorkerPool.start` forks the workers, which
   inherit the hot catalog copy-on-write: no pickling, no rebuild, a
   worker's first query is already warm.  Where ``fork`` is
   unavailable the pool falls back to ``spawn`` and hands each worker
   a pickled :class:`~repro.service.catalog.CatalogSnapshot` instead
   (same warm artifacts, one payload; workspace pools are never
   shipped — each worker rebuilds its own buffers, per the engine's
   per-process-buffers contract);
3. **serve** — queries are dispatched over *all* workers with a
   bounded per-worker window: any worker answers any query, so a skewed
   mix (10⁴ queries on one graph, 3 on another) still saturates the
   pool — the imbalance that one-shard-per-graph ``run_sharded`` could
   not avoid.

Consistency: each worker owns a private catalog copy, and commands
(``register``, ``set_weights``, ``mutate_weights``) are broadcast to
every worker's command queue, which is FIFO per worker — so a query
submitted *after* :meth:`set_weights` / :meth:`mutate_weights` returns
always sees the new weights, while queries already in flight may
complete under either weighting.  Call :meth:`drain` first for a
barrier; :meth:`audit_labeling` checks every worker's labels against a
from-scratch rebuild.

Failure containment: a query that raises inside a worker ships the
exception back (typed, the original class when picklable) and fails
only that query's future; a worker that *dies* fails its in-flight
futures with :class:`~repro.errors.ServiceError` and the pool carries
on with the survivors.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future

from repro import obs
from repro.errors import RemoteError, ServiceError

_PREWARM_KINDS = ("flow", "cut", "distance", "girth")


def _worker_main(worker_id, catalog, snapshot, command_q, result_q,
                 obs_on=False, hb_interval=0.0):
    """Worker process entry point (top-level for spawn picklability).

    Exactly one of ``catalog`` (fork: the master catalog, inherited
    copy-on-write) and ``snapshot`` (spawn: pickled warm-state handoff)
    is set.

    ``obs_on`` mirrors the master's :func:`repro.obs.enabled` at fork
    time.  An observing worker runs in *shipping mode*: finished spans
    and metric deltas buffer locally and ride back piggybacked on
    every result-queue message (the 5th tuple element), where the
    collector thread :func:`~repro.obs.ingest`\\ s them — so one
    query's spans stitch into the submitting trace and the master
    registry aggregates every worker.

    With ``hb_interval > 0`` an *idle* worker emits a heartbeat tuple
    (``job_id=None``) on the result queue every interval — the
    watchdog's liveness signal.  Every real result doubles as a
    heartbeat, so only a worker that is neither serving nor idling
    (wedged, killed, or stopped) goes silent.
    """
    import queue as _queue

    from repro.service.queries import execute_query

    if obs_on:
        obs.enable()
    obs.configure_shipping(True)  # inherited sinks must stay silent
    if catalog is None:
        catalog = snapshot.restore()
    while True:
        if hb_interval > 0:
            try:
                msg = command_q.get(timeout=hb_interval)
            except _queue.Empty:
                result_q.put((worker_id, None, True, "heartbeat",
                              obs.ship_delta()))
                continue
        else:
            msg = command_q.get()
        verb = msg[0]
        if verb == "stop":
            break
        if verb == "query":
            _, job_id, query, ctx, t_submit = msg
            token = None
            if obs.enabled():
                obs.observe("pool.queue_wait_seconds",
                            max(0.0, time.monotonic() - t_submit))
                token = obs.activate_trace(ctx)
            try:
                result_q.put((worker_id, job_id, True,
                              execute_query(catalog, query),
                              obs.ship_delta()))
            except Exception as exc:
                result_q.put((worker_id, job_id, False, _ship_exc(exc),
                              obs.ship_delta()))
            finally:
                obs.deactivate_trace(token)
        elif verb == "register":
            _, name, graph, overwrite = msg
            try:
                catalog.register(name, graph, overwrite=overwrite)
            except Exception:
                # a failed broadcast must not kill the worker; the
                # master catalog already validated the same call
                pass
        elif verb == "set_weights":
            _, name, weights, capacities = msg
            try:
                catalog.set_weights(name, weights=weights,
                                    capacities=capacities)
            except Exception:
                pass
        elif verb == "mutate_weights":
            _, name, edges, max_dirty_frac = msg
            try:
                catalog.mutate_weights(name, edges,
                                       max_dirty_frac=max_dirty_frac)
            except Exception:
                # same contract as set_weights: the master already
                # validated; a NegativeCycleError here still applied
                # the weights and dropped the labelings first, so the
                # worker converges to the master's state
                pass
        elif verb == "obs":
            _, on = msg
            if on:
                obs.enable()
                obs.configure_shipping(True)
            else:
                obs.disable()
        elif verb == "audit":
            _, job_id, name, leaf_size, backend = msg
            try:
                result_q.put((worker_id, job_id, True,
                              catalog.audit_labeling(
                                  name, leaf_size=leaf_size,
                                  backend=backend),
                              obs.ship_delta()))
            except Exception as exc:
                result_q.put((worker_id, job_id, False, _ship_exc(exc),
                              obs.ship_delta()))
        elif verb == "stats":
            _, job_id = msg
            result_q.put((worker_id, job_id, True, catalog.stats(),
                          obs.ship_delta()))


def _ship_exc(exc):
    """The exception itself when it pickles, else ``(type_name, str)``
    — queue feeder threads must never hit a pickle failure."""
    try:
        pickle.dumps(exc)
        return exc
    except Exception:
        return (type(exc).__name__, str(exc))


def _unship_exc(payload):
    if isinstance(payload, BaseException):
        return payload
    name, message = payload
    return RemoteError(message, remote_type=name)


class WarmWorkerPool:
    """Load-balancing query pool over one pre-warmed catalog.

    ``workers=0`` is the in-process mode: no child processes, queries
    execute synchronously (under a lock) against the master catalog —
    the portable fallback and the zero-overhead choice for tests and
    single-tenant embedding.  ``start_method`` pins the multiprocessing
    start method (default: ``fork`` where available, else ``spawn``).

    Use as a context manager, or call :meth:`close` — forked children
    are daemons, but closing promptly frees their catalog copies.
    """

    def __init__(self, workers=None, catalog=None, planner=None,
                 start_method=None, window=2, slos=None,
                 heartbeat_interval=0.25, stall_after=30.0,
                 audit_interval=None, audit_backend="engine"):
        from repro.service.catalog import GraphCatalog

        if workers is None:
            workers = max(1, min(4, os.cpu_count() or 1))
        if workers < 0:
            raise ServiceError("workers must be >= 0")
        if window < 1:
            raise ServiceError("window must be >= 1")
        if heartbeat_interval <= 0 or stall_after <= 0:
            raise ServiceError("heartbeat_interval and stall_after "
                               "must be positive")
        if audit_interval is not None and audit_interval <= 0:
            raise ServiceError("audit_interval must be positive "
                               "(or None to disable)")
        self.workers = workers
        self.window = window
        self.start_method = start_method
        self.catalog = catalog if catalog is not None \
            else GraphCatalog(planner=planner)
        #: declarative SLOs the ``health`` verb evaluates (iterable of
        #: :class:`repro.obs.SloPolicy`; None -> the default wildcard)
        self.slos = tuple(slos) if slos else None
        self.heartbeat_interval = heartbeat_interval
        self.stall_after = stall_after

        self._lock = threading.Lock()
        self._started = False
        self._closed = False
        self._procs = {}
        self._command_qs = {}
        self._result_q = None
        self._collector = None
        self._job_counter = 0
        self._pending = deque()  # (job_id, query, trace_ctx, t_submit)
        self._futures = {}                 # job_id -> Future
        self._assigned = {}                # job_id -> worker_id
        self._job_kind = {}                # job_id -> "query" | "stats"
        self._inflight = {}                # worker_id -> count
        self._completed = {}               # worker_id -> count
        self._dead = set()
        self._by_kind = OrderedDict()      # query-type latency rollup
        # watchdog / health state
        self._started_at = None            # monotonic, set by start()
        self._last_seen = {}               # worker_id -> monotonic
        self._stalled = set()              # watchdog's last verdict
        self._watchdog = None
        self._watchdog_stop = threading.Event()
        # background audit scheduler (opt-in)
        self._audit_interval = audit_interval
        self._audit_backend = audit_backend
        self._audit_at = None              # monotonic of last run
        self._last_audit = None            # last run's report dict

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def register(self, name, graph, overwrite=False):
        """Register ``graph`` in the master catalog; after
        :meth:`start`, also broadcast it to every worker (workers build
        its artifacts on demand — only pre-fork graphs inherit warmth).
        """
        # under the lock: with workers=0 the master catalog is the
        # serving catalog, and submit() executes queries against it
        # from concurrent server handler threads
        with self._lock:
            entry = self.catalog.register(name, graph,
                                          overwrite=overwrite)
        self._broadcast(("register", name, graph, overwrite))
        return entry

    def prewarm(self, names=None, kinds=("flow", "distance")):
        """Build the expensive artifacts in the master catalog, before
        forking.  ``kinds`` ⊆ ``{"flow", "cut", "distance", "girth"}``
        (``cut`` is an alias of ``flow`` — both live on the flow
        solver; ``girth`` additionally memoizes the girth answer).
        Returns ``{(name, kind): seconds}`` for observability.

        ``"distance"`` warms the labeling *and*, through it, the
        topology-keyed decomposition entries (BDD + dual bags) in the
        engine's shared cache — workers inherit them via fork or via
        the snapshot's topo-token rekeying, so a worker-side
        ``set_weights`` reprice rebuilds labels without ever re-running
        the Lemma 5.1 recursion.
        """
        from repro.service.queries import GirthQuery

        unknown = sorted(set(kinds) - set(_PREWARM_KINDS))
        if unknown:
            raise ServiceError(f"unknown prewarm kind(s) {unknown}; "
                               f"expected from {_PREWARM_KINDS}")
        took = {}
        for name in (self.catalog.names() if names is None else names):
            entry = self.catalog.get(name)
            for kind in kinds:
                t0 = time.perf_counter()
                if kind in ("flow", "cut"):
                    entry.flow_solver()
                elif kind == "distance":
                    entry.labeling()
                elif kind == "girth":
                    self.catalog.serve(GirthQuery(name))
                took[(name, kind)] = time.perf_counter() - t0
        return took

    def start(self):
        """Fork the workers (no-op layout for ``workers=0``).  Must be
        called before :meth:`submit`; graphs registered and prewarmed
        so far are inherited hot."""
        import multiprocessing as mp

        if self._started:
            raise ServiceError("pool already started")
        if self._closed:
            raise ServiceError("pool is closed")
        self._started = True
        self._started_at = time.monotonic()
        if self.workers == 0:
            if self._audit_interval is not None:
                self._start_watchdog()
            return self
        method = self.start_method
        if method is None:
            method = "fork" if "fork" in mp.get_all_start_methods() \
                else "spawn"
        self._method = method
        ctx = mp.get_context(method)
        self._result_q = ctx.Queue()
        snapshot = None if method == "fork" else self.catalog.snapshot()
        for wid in range(self.workers):
            # a full Queue (not SimpleQueue): workers block on
            # ``get(timeout=heartbeat_interval)`` to emit heartbeats
            cq = ctx.Queue()
            proc = ctx.Process(
                target=_worker_main,
                args=(wid, self.catalog if method == "fork" else None,
                      snapshot, cq, self._result_q, obs.enabled(),
                      self.heartbeat_interval),
                daemon=True, name=f"repro-server-worker-{wid}")
            proc.start()
            self._procs[wid] = proc
            self._command_qs[wid] = cq
            self._inflight[wid] = 0
            self._completed[wid] = 0
            self._last_seen[wid] = time.monotonic()
        self._collector = threading.Thread(target=self._collect,
                                           daemon=True,
                                           name="repro-server-collector")
        self._collector.start()
        self._start_watchdog()
        return self

    def _start_watchdog(self):
        self._watchdog = threading.Thread(
            target=self._watchdog_loop, daemon=True,
            name="repro-server-watchdog")
        self._watchdog.start()

    def close(self):
        """Stop the workers and fail any unresolved futures."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._watchdog_stop.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=5)
        for wid, cq in self._command_qs.items():
            if wid not in self._dead:
                try:
                    cq.put(("stop",))
                except Exception:
                    pass
        for proc in self._procs.values():
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
        if self._result_q is not None:
            self._result_q.put(None)
        if self._collector is not None:
            self._collector.join(timeout=5)
        with self._lock:
            doomed = list(self._futures.values())
            self._futures.clear()
            self._pending.clear()
        for fut in doomed:
            if not fut.done():
                fut.set_exception(ServiceError("worker pool closed"))

    def __enter__(self):
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def submit(self, query):
        """Enqueue one typed query; returns a
        :class:`concurrent.futures.Future` resolving to the worker's
        :class:`~repro.service.queries.QueryResult` (or raising what
        the query raised)."""
        from repro.service.queries import execute_query

        if not self._started:
            raise ServiceError("pool not started (call start())")
        fut = Future()
        if self.workers == 0:
            with self._lock:
                if self._closed:
                    raise ServiceError("worker pool closed")
                try:
                    r = execute_query(self.catalog, query)
                except Exception as exc:
                    fut.set_exception(exc)
                else:
                    self._account(type(query).__name__, r)
                    fut.set_result(r)
            return fut
        # captured outside the lock: the ambient trace context of the
        # submitting thread rides the command queue so the worker's
        # spans stitch under the caller's span; t_submit (monotonic,
        # cross-process comparable on this host) prices the queue wait
        ctx = obs.current_trace() if obs.enabled() else None
        t_submit = time.monotonic()
        with self._lock:
            # re-checked under the lock: a close() that won the race
            # has already doomed every registered future, and one
            # registered after it would never resolve
            if self._closed:
                raise ServiceError("worker pool closed")
            if len(self._dead) == len(self._procs) and self._procs:
                # no worker will ever pick this up — fail now instead
                # of parking it until the reaper's next clock tick
                fut.set_exception(ServiceError("all pool workers died"))
                return fut
            self._job_counter += 1
            job_id = self._job_counter
            self._futures[job_id] = fut
            self._job_kind[job_id] = "query"
            self._pending.append((job_id, query, ctx, t_submit))
            self._fill()
        return fut

    def run(self, queries):
        """Serve a batch across the pool; returns a
        :class:`~repro.service.batch.BatchReport` in input order.

        ``warm`` accounting is per *worker* catalog — the same query
        repeated may land on different workers and be cold in each
        until every copy has seen it.
        """
        from repro.service.batch import BatchReport

        t0 = time.perf_counter()
        futures = [self.submit(q) for q in queries]
        results = [f.result() for f in futures]
        warm = sum(bool(r.warm) for r in results)
        return BatchReport(results=results,
                           seconds=time.perf_counter() - t0,
                           warm_hits=warm,
                           cold_misses=len(results) - warm)

    def drain(self, timeout=None):
        """Block until every submitted query has resolved — the barrier
        that makes a following :meth:`set_weights` total."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                live = [f for f in self._futures.values()]
                if not live and not self._pending:
                    return
            for f in live:
                remaining = None if deadline is None \
                    else max(0.0, deadline - time.monotonic())
                f.exception(timeout=remaining)

    def set_weights(self, name, weights=None, capacities=None):
        """Reprice ``name`` on the master catalog and broadcast the
        mutation to every worker (FIFO per worker: later submissions
        always see the new weights)."""
        # materialize first: the master catalog and the broadcast must
        # see the same values even when handed a one-shot iterable
        weights = None if weights is None else list(weights)
        capacities = None if capacities is None else list(capacities)
        with self._lock:  # serialize against in-process query serving
            self.catalog.set_weights(name, weights=weights,
                                     capacities=capacities)
        self._broadcast(("set_weights", name, weights, capacities))

    def mutate_weights(self, name, edges, max_dirty_frac=0.5):
        """Delta-reprice a few edges pool-wide (DESIGN.md §11):
        :meth:`~repro.service.catalog.GraphCatalog.mutate_weights` on
        the master catalog, then the same mutation broadcast to every
        worker's FIFO command queue — a query submitted after this
        returns can only see the new weights; call :meth:`drain` first
        when in-flight queries must not straddle the reprice.

        Returns the master catalog's report.  A
        :class:`~repro.errors.NegativeCycleError` is re-raised after
        the broadcast (the weights are applied everywhere and every
        catalog dropped its labelings, exactly like the master)."""
        from repro.errors import NegativeCycleError

        # materialize first: master and broadcast must see the same
        # values even when handed a one-shot iterable
        edges = dict(edges) if hasattr(edges, "items") \
            else [tuple(item) for item in edges]
        with self._lock:  # serialize against in-process query serving
            try:
                report = self.catalog.mutate_weights(
                    name, edges, max_dirty_frac=max_dirty_frac)
            except NegativeCycleError:
                self._broadcast(("mutate_weights", name, edges,
                                 max_dirty_frac))
                raise
        self._broadcast(("mutate_weights", name, edges, max_dirty_frac))
        return report

    def audit_labeling(self, name, leaf_size=None, backend="engine",
                       timeout=None):
        """Run :meth:`~repro.service.catalog.GraphCatalog.
        audit_labeling` on the master catalog *and* inside every live
        worker (each audits its own serving catalog against a fresh
        rebuild).  Raises the first :class:`~repro.errors.AuditError`
        (or other failure) any catalog reports; otherwise returns
        ``{"master": report, "workers": {wid: report}}``."""
        with self._lock:
            master = self.catalog.audit_labeling(name,
                                                 leaf_size=leaf_size,
                                                 backend=backend)
        reports = {"master": master, "workers": {}}
        if not self.workers or not self._started or self._closed:
            return reports
        futures = {}
        with self._lock:
            for wid in self._procs:
                if wid in self._dead:
                    continue
                self._job_counter += 1
                job_id = self._job_counter
                fut = Future()
                self._futures[job_id] = fut
                self._assigned[job_id] = wid
                self._job_kind[job_id] = "stats"  # accounting-free job
                futures[wid] = fut
                self._command_qs[wid].put(
                    ("audit", job_id, name, leaf_size, backend))
        for wid, fut in futures.items():
            reports["workers"][wid] = fut.result(timeout=timeout)
        return reports

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self, worker_catalogs=True, timeout=10.0):
        """Pool observability: worker occupancy, per-query-type latency
        rollup, master-catalog cache counters and (optionally) each
        worker's own catalog counters.

        The per-worker catalog probe rides the FIFO command queue, so
        a worker busy with a long cold query past ``timeout`` reports
        ``{"busy": True}`` instead of blocking the caller — stats stay
        available exactly when the pool is loaded."""
        now = time.monotonic()
        with self._lock:
            occupancy = [{"worker": wid,
                          "alive": wid not in self._dead,
                          "pid": self._procs[wid].pid,
                          "inflight": self._inflight.get(wid, 0),
                          "completed": self._completed.get(wid, 0),
                          "heartbeat_age_s":
                              now - self._last_seen.get(wid, now)}
                         for wid in self._procs] or \
                        [{"worker": "in-process", "alive": True,
                          "pid": os.getpid(),
                          "inflight": 0,
                          "completed": sum(
                              row["count"]
                              for row in self._by_kind.values()),
                          "heartbeat_age_s": 0.0}]
            by_kind = {kind: dict(row)
                       for kind, row in self._by_kind.items()}
            pending = len(self._pending)
            master = self.catalog.stats()  # under the lock: workers=0
            #                                serves against this catalog
        stats = {"workers": self.workers,
                 "start_method": getattr(self, "_method", "in-process"),
                 "uptime_s": (now - self._started_at
                              if self._started_at is not None else 0.0),
                 "pending": pending,
                 "occupancy": occupancy,
                 "by_kind": by_kind,
                 "master": master}
        if obs.enabled():
            # additive (wire-compatible) registry section: the same
            # counters/latencies as by_kind plus every instrumented
            # site, aggregated across shipped worker deltas
            stats["metrics"] = obs.registry().snapshot()
        if worker_catalogs and self.workers and self._started \
                and not self._closed:
            futures = {}
            with self._lock:
                for wid in self._procs:
                    if wid in self._dead:
                        continue
                    self._job_counter += 1
                    job_id = self._job_counter
                    fut = Future()
                    self._futures[job_id] = fut
                    self._assigned[job_id] = wid
                    self._job_kind[job_id] = "stats"
                    futures[wid] = fut
                    self._command_qs[wid].put(("stats", job_id))
            from concurrent.futures import TimeoutError as _Timeout

            catalogs = {}
            deadline = time.monotonic() + timeout
            for wid, fut in futures.items():
                try:
                    catalogs[wid] = fut.result(
                        timeout=max(0.0, deadline - time.monotonic()))
                except _Timeout:
                    catalogs[wid] = {"busy": True}
                except Exception as exc:
                    # e.g. the worker died with the probe outstanding;
                    # degrade per worker, never fail the whole call
                    catalogs[wid] = {"unavailable": str(exc)}
            stats["catalogs"] = catalogs
        return stats

    def metrics(self):
        """The aggregated :mod:`repro.obs` registry snapshot: the
        master process's metrics plus every delta the workers have
        shipped so far (piggybacked on their result-queue messages).
        Empty dict when observability never ran."""
        return obs.registry().snapshot()

    def sync_obs(self):
        """Broadcast the master's current :func:`repro.obs.enabled`
        state to every worker — for toggling observability on a pool
        that is already started (workers forked while it was off, or
        vice versa)."""
        self._broadcast(("obs", obs.enabled()))

    # ------------------------------------------------------------------
    # health (DESIGN.md §15)
    # ------------------------------------------------------------------
    def enable_background_audit(self, interval, backend=None):
        """Opt into periodic :meth:`~repro.service.catalog.GraphCatalog.
        audit_labeling` of every registered graph on the watchdog's
        idle ticks (no pending, nothing in flight).  The last report is
        surfaced through :meth:`health`; an audit failure flips the
        health status to ``breach``.  ``interval`` is seconds between
        runs; may also be set at construction via ``audit_interval``."""
        if interval is None or interval <= 0:
            raise ServiceError("audit interval must be positive")
        self._audit_interval = interval
        if backend is not None:
            self._audit_backend = backend
        if self._started and not self._closed \
                and self._watchdog is None:
            self._start_watchdog()

    def health(self, now=None):
        """Liveness/readiness report for the ``health`` wire verb.

        The state machine: ``starting`` (not yet started) → ``ready``
        (serving, every worker live) → ``degraded`` (a worker died or
        went silent past ``stall_after`` — the pool still serves on
        survivors) → ``unready`` (no live worker) → ``closed``.
        ``status`` folds that with the SLO evaluation and the last
        background audit: anything short of fully live is a
        ``breach``; a ready pool reports the worst of its SLO verdicts
        (``ok``/``warn``/``breach``) and breaches on a failed audit.
        """
        if now is None:
            now = time.monotonic()
        with self._lock:
            started, closed = self._started, self._closed
            pending = len(self._pending)
            inflight = dict(self._inflight)
            completed = dict(self._completed)
            dead = set(self._dead)
            last_seen = dict(self._last_seen)
            by_kind_total = sum(row["count"]
                                for row in self._by_kind.values())
        if self.workers == 0:
            live = started and not closed
            detail = [{"worker": "in-process", "alive": live,
                       "stalled": False, "heartbeat_age_s": 0.0,
                       "inflight": 0, "completed": by_kind_total}]
            alive, stalled, total = (1 if live else 0), set(), 1
        else:
            detail = []
            stalled = set()
            for wid, proc in self._procs.items():
                is_dead = wid in dead
                age = now - last_seen.get(wid, now)
                is_stalled = (not is_dead
                              and age > self.stall_after)
                if is_stalled:
                    stalled.add(wid)
                detail.append({
                    "worker": wid, "alive": not is_dead,
                    "stalled": is_stalled,
                    "heartbeat_age_s": age,
                    "inflight": inflight.get(wid, 0),
                    "completed": completed.get(wid, 0)})
            total = len(self._procs)
            alive = total - len(dead)
        if closed:
            state = "closed"
        elif not started:
            state = "starting"
        elif self.workers and total and alive == 0:
            state = "unready"
        elif dead or stalled:
            state = "degraded"
        else:
            state = "ready"
        if obs.enabled():
            slo_report = obs.evaluate_slos(self.slos)
        else:
            slo_report = {"status": "ok", "slos": []}
        audit = self._last_audit
        audit_ok = audit is None or audit.get("ok", False)
        if state == "ready":
            status = obs.worst_status(
                [slo_report["status"],
                 "ok" if audit_ok else "breach"])
        elif state == "starting":
            status = "warn"
        else:
            status = "breach"
        return {
            "state": state, "status": status,
            "uptime_s": (now - self._started_at
                         if self._started_at is not None else 0.0),
            "workers": {"total": total, "alive": alive,
                        "stalled": len(stalled), "detail": detail},
            "queue_depth": pending,
            "inflight": sum(inflight.values()),
            "slos": slo_report,
            "audit": audit,
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _broadcast(self, msg):
        if not self.workers or not self._started or self._closed:
            return
        for wid, cq in self._command_qs.items():
            if wid not in self._dead:
                cq.put(msg)

    def _fill(self):
        """Dispatch pending queries to the least-loaded live workers,
        bounded by ``window`` in-flight per worker.  Caller holds the
        lock."""
        while self._pending:
            candidates = [(count, wid)
                          for wid, count in self._inflight.items()
                          if wid not in self._dead and count < self.window]
            if not candidates:
                return
            count, wid = min(candidates)
            job_id, query, ctx, t_submit = self._pending.popleft()
            self._assigned[job_id] = wid
            self._inflight[wid] = count + 1
            if obs.enabled():
                obs.inc("pool.dispatched")
            self._command_qs[wid].put(
                ("query", job_id, query, ctx, t_submit))

    def _account(self, kind, result):
        row = self._by_kind.setdefault(
            kind, {"count": 0, "warm": 0, "seconds": 0.0})
        row["count"] += 1
        row["warm"] += bool(result.warm)
        row["seconds"] += getattr(result, "seconds", 0.0)
        if obs.enabled():
            # the same rollup, re-expressed over the metrics registry
            # (what the ``metrics`` wire verb exports)
            obs.inc(f"pool.completed.{kind}")
            if result.warm:
                obs.inc(f"pool.warm.{kind}")
            obs.observe(f"pool.serve_seconds.{kind}",
                        getattr(result, "seconds", 0.0))

    def _collect(self):
        import queue as _queue

        last_reap = time.monotonic()
        while True:
            try:
                item = self._result_q.get(timeout=1.0)
            except _queue.Empty:
                self._reap_dead()
                last_reap = time.monotonic()
                continue
            except Exception:
                # a worker killed mid-``put`` can leave a truncated
                # pickle on the results pipe; the fragment is
                # unreadable but the *collector must survive it* —
                # the dead worker's futures are failed by the reaper,
                # and with the collector gone nothing would ever reap
                self._reap_dead()
                last_reap = time.monotonic()
                continue
            if item is None:
                return
            # reap on a clock, not only when the queue goes idle —
            # under sustained traffic a crashed worker's in-flight
            # futures must still fail promptly
            if time.monotonic() - last_reap > 0.5:
                self._reap_dead()
                last_reap = time.monotonic()
            wid, job_id, ok, payload, obs_payload = item
            if obs_payload:
                obs.ingest(obs_payload)
            # every message — heartbeat or result — proves liveness
            self._last_seen[wid] = time.monotonic()
            if job_id is None:
                continue  # pure heartbeat, nothing to resolve
            with self._lock:
                fut = self._futures.pop(job_id, None)
                kind = self._job_kind.pop(job_id, "query")
                self._assigned.pop(job_id, None)
                if kind == "query":
                    if wid in self._inflight:
                        self._inflight[wid] = max(
                            0, self._inflight[wid] - 1)
                        self._completed[wid] += 1
                    if ok:
                        self._account(type(payload.query).__name__,
                                      payload)
                    self._fill()
            if fut is None:
                continue
            if ok:
                fut.set_result(payload)
            else:
                fut.set_exception(_unship_exc(payload))

    def _reap_dead(self):
        """Fail the in-flight futures of workers that died; the pool
        keeps serving on the survivors."""
        doomed = []
        with self._lock:
            for wid, proc in self._procs.items():
                if wid in self._dead or proc.is_alive():
                    continue
                self._dead.add(wid)
                self._inflight[wid] = 0
                if obs.enabled():
                    obs.inc("pool.worker_deaths")
                    obs.set_gauge("pool.workers_alive",
                                  len(self._procs) - len(self._dead))
                for job_id, owner in list(self._assigned.items()):
                    if owner == wid:
                        fut = self._futures.pop(job_id, None)
                        self._assigned.pop(job_id, None)
                        self._job_kind.pop(job_id, None)
                        if fut is not None:
                            doomed.append((wid, fut))
            if self._dead and len(self._dead) == len(self._procs):
                while self._pending:
                    job_id = self._pending.popleft()[0]
                    fut = self._futures.pop(job_id, None)
                    self._job_kind.pop(job_id, None)
                    if fut is not None:
                        doomed.append((None, fut))
            self._fill()
        for wid, fut in doomed:
            if not fut.done():
                fut.set_exception(ServiceError(
                    f"worker {wid} died mid-query" if wid is not None
                    else "all pool workers died"))

    # ------------------------------------------------------------------
    # watchdog
    # ------------------------------------------------------------------
    def _watchdog_loop(self):
        """Drive the liveness machinery on a clock: reap dead workers,
        refresh the stalled set and the queue-depth/in-flight gauges,
        and fire the background audit on idle ticks."""
        interval = min(self.heartbeat_interval, 0.5)
        while not self._watchdog_stop.wait(interval):
            try:
                self._watchdog_tick()
            except Exception:
                # the watchdog must never die over a transient race
                # (e.g. audit against a graph being re-registered)
                continue

    def _watchdog_tick(self, now=None):
        if now is None:
            now = time.monotonic()
        if self.workers:
            self._reap_dead()
            stalled = set()
            for wid in self._procs:
                if wid in self._dead:
                    continue
                if now - self._last_seen.get(wid, now) \
                        > self.stall_after:
                    stalled.add(wid)
            self._stalled = stalled
        if obs.enabled():
            with self._lock:
                pending = len(self._pending)
                inflight = sum(self._inflight.values())
            obs.set_gauge("pool.queue_depth", pending)
            obs.set_gauge("pool.inflight", inflight)
            obs.set_gauge("pool.workers_alive",
                          (len(self._procs) - len(self._dead))
                          if self.workers else 1)
            obs.set_gauge("pool.workers_stalled",
                          len(self._stalled))
        self._maybe_audit(now)

    def _maybe_audit(self, now):
        """Background audit scheduler: on an idle tick (nothing pending
        or in flight) past the configured interval, bit-parity audit
        every registered graph's labeling on the master catalog and
        record the report for :meth:`health`."""
        if self._audit_interval is None or self._closed:
            return
        if self._audit_at is not None \
                and now - self._audit_at < self._audit_interval:
            return
        with self._lock:
            busy = bool(self._pending) \
                or any(self._inflight.values())
            names = self.catalog.names()
        if busy:
            return
        self._audit_at = now  # set first: a failing audit must not
        #                       re-fire every tick
        report = {"at": time.time(), "ok": True, "graphs": {}}
        for name in names:
            try:
                with self._lock:
                    self.catalog.audit_labeling(
                        name, backend=self._audit_backend)
                report["graphs"][name] = "ok"
            except Exception as exc:
                report["ok"] = False
                report["graphs"][name] = (f"{type(exc).__name__}: "
                                          f"{exc}")
        if obs.enabled():
            obs.inc("pool.background_audits")
            if not report["ok"]:
                obs.inc("pool.background_audit_failures")
        self._last_audit = report


__all__ = ["WarmWorkerPool"]
