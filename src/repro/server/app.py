"""The socket server: NDJSON frames over TCP, dispatched to a
:class:`~repro.server.pool.WarmWorkerPool` (DESIGN.md §10).

Stdlib only — a :class:`socketserver.ThreadingTCPServer` whose handler
threads read one request frame per line and block on the pool future
for the answer, so slow queries never stall other connections and a
``batch`` verb fans its queries out across *all* pool workers before
gathering.  Failures become typed error frames
(:func:`~repro.server.wire.exception_to_wire`); a handler never kills
the connection over a bad frame.

    pool = WarmWorkerPool(workers=4)
    pool.register("g", graph)
    pool.prewarm()
    pool.start()                      # fork AFTER warming, BEFORE serving
    with QueryServer(pool, host="0.0.0.0", port=8423) as server:
        server.serve_forever()

Note the order: the pool forks its workers before the server starts
accepting connections, so the fork happens while the process is still
single-threaded — handler threads only ever talk to already-running
workers through queues.
"""

from __future__ import annotations

import socketserver
import threading

from repro import obs
from repro.errors import ProtocolError, ServiceError
from repro.server import wire
from repro.server.pool import WarmWorkerPool


class _Handler(socketserver.StreamRequestHandler):
    def handle(self):
        for line in self.rfile:
            line = line.strip()
            if not line:
                continue
            frame_id = None
            try:
                frame = wire.decode_frame(line)
                frame_id = frame.get("id")
                wire.check_version(frame)
                response = self.server.app.dispatch(frame)
            except Exception as exc:
                response = {"v": wire.PROTOCOL_VERSION, "id": frame_id,
                            "ok": False,
                            "error": wire.exception_to_wire(exc)}
            try:
                self.wfile.write(wire.encode_frame(response))
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class QueryServer:
    """Serve a :class:`~repro.server.pool.WarmWorkerPool` over TCP.

    ``port=0`` binds an ephemeral port; read the actual address back
    from :attr:`address`.  :meth:`serve_forever` blocks;
    :meth:`start_background` runs the accept loop on a daemon thread
    (the in-process embedding the tests and the example use).
    """

    def __init__(self, pool, host="127.0.0.1", port=0,
                 flight_recorder=None):
        self.pool = pool
        # the flight recorder (DESIGN.md §15) is a span sink living in
        # the server process, where worker deltas are ingested: with
        # observability on it is created (or adopted) here and
        # registered so the ``exemplars`` verb has trees to dump
        self._own_recorder = False
        if flight_recorder is None and obs.enabled():
            flight_recorder = obs.FlightRecorder()
            self._own_recorder = True
        self.flight_recorder = flight_recorder
        if flight_recorder is not None:
            obs.add_sink(flight_recorder)
        self._server = _TCPServer((host, port), _Handler)
        self._server.app = self
        self._thread = None

    @property
    def address(self):
        """``(host, port)`` actually bound."""
        return self._server.server_address[:2]

    # ------------------------------------------------------------------
    def serve_forever(self):
        self._server.serve_forever()

    def start_background(self):
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        daemon=True,
                                        name="repro-server-accept")
        self._thread.start()
        return self

    def shutdown(self):
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        if self.flight_recorder is not None and self._own_recorder:
            obs.remove_sink(self.flight_recorder)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False

    # ------------------------------------------------------------------
    def dispatch(self, frame):
        """One request frame -> one response frame (exceptions are the
        caller's to wrap as error frames).

        With :mod:`repro.obs` enabled, the frame's optional ``trace``
        field (``[trace_id, parent_span_id]``, attached client-side by
        :class:`~repro.server.client.ServiceClient`) is adopted as the
        ambient trace context, so the handler's ``server.<verb>`` span
        — and everything below it, down to the forked worker — stitches
        into the caller's trace.
        """
        if not obs.enabled():
            return self._dispatch(frame)
        verb = frame.get("verb")
        token = None
        ctx = frame.get("trace")
        if (isinstance(ctx, (list, tuple)) and len(ctx) == 2
                and all(isinstance(x, str) for x in ctx)):
            token = obs.activate_trace(tuple(ctx))
        try:
            with obs.span(f"server.{verb}"):
                return self._dispatch(frame)
        finally:
            if token is not None:
                obs.deactivate_trace(token)

    def _dispatch(self, frame):
        verb = frame.get("verb")
        out = {"v": wire.PROTOCOL_VERSION, "id": frame.get("id"),
               "ok": True}
        if verb == "query":
            q = wire.query_from_wire(frame.get("query"))
            r = self.pool.submit(q).result()
            out.update(wire.query_result_to_wire(r))
        elif verb == "batch":
            queries = frame.get("queries")
            if not isinstance(queries, list):
                raise ProtocolError("batch frame needs a 'queries' list")
            futures = [self.pool.submit(wire.query_from_wire(p))
                       for p in queries]
            # per-query outcomes: one failed query must not turn the
            # whole batch into an error frame (the other answers are
            # already computed), so each entry carries its own ok flag
            # and, on failure, its own typed error payload
            entries = []
            for f in futures:
                try:
                    r = f.result()
                except Exception as exc:
                    entries.append({"ok": False,
                                    "error": wire.exception_to_wire(exc)})
                else:
                    entry = {"ok": True}
                    entry.update(wire.query_result_to_wire(r))
                    entries.append(entry)
            out["results"] = entries
        elif verb == "register":
            name = frame.get("name")
            if not isinstance(name, str) or not name:
                raise ProtocolError("register frame needs a 'name'")
            graph = wire.graph_from_wire(frame.get("graph"))
            self.pool.register(name, graph,
                               overwrite=bool(frame.get("overwrite")))
            out["registered"] = name
        elif verb == "set_weights":
            name = frame.get("graph")
            self.pool.set_weights(name,
                                  weights=frame.get("weights"),
                                  capacities=frame.get("capacities"))
            out["repriced"] = name
        elif verb == "mutate_weights":
            name = frame.get("graph")
            edges = frame.get("edges")
            if not isinstance(edges, list):
                raise ProtocolError("mutate_weights frame needs an "
                                    "'edges' [[eid, weight], ...] list")
            kwargs = {}
            if frame.get("max_dirty_frac") is not None:
                kwargs["max_dirty_frac"] = frame["max_dirty_frac"]
            out["report"] = self.pool.mutate_weights(name, edges,
                                                     **kwargs)
        elif verb == "audit":
            out["report"] = self.pool.audit_labeling(
                frame.get("graph"), leaf_size=frame.get("leaf_size"),
                backend=frame.get("backend", "engine"))
        elif verb == "stats":
            out["stats"] = self.pool.stats(
                worker_catalogs=bool(frame.get("worker_catalogs", True)))
        elif verb == "metrics":
            fmt = frame.get("format", "snapshot")
            snap = self.pool.metrics()
            if fmt == "snapshot":
                out["metrics"] = snap
            elif fmt == "prometheus":
                out["prometheus"] = obs.render_prometheus(snap)
            else:
                raise ProtocolError(f"unknown metrics format {fmt!r}; "
                                    f"expected 'snapshot' or "
                                    f"'prometheus'")
        elif verb == "health":
            report = self.pool.health()
            fmt = frame.get("format", "report")
            if fmt == "report":
                out["health"] = report
            elif fmt == "prometheus":
                out["prometheus"] = obs.render_health_prometheus(report)
            else:
                raise ProtocolError(f"unknown health format {fmt!r}; "
                                    f"expected 'report' or "
                                    f"'prometheus'")
        elif verb == "exemplars":
            limit = frame.get("limit")
            if limit is not None and (not isinstance(limit, int)
                                      or limit < 1):
                raise ProtocolError("exemplars 'limit' must be a "
                                    "positive integer")
            if self.flight_recorder is None:
                out["exemplars"] = {"recording": False, "exemplars": [],
                                    "retained": 0, "pending": 0,
                                    "dropped": 0}
            else:
                dump = self.flight_recorder.dump(limit)
                dump["recording"] = True
                out["exemplars"] = dump
        elif verb == "graphs":
            out["graphs"] = self.pool.catalog.names()
        elif verb == "ping":
            from repro import __version__

            out.update({"pong": True, "version": wire.PROTOCOL_VERSION,
                        "repro": __version__})
        else:
            raise ProtocolError(f"unknown verb {verb!r}")
        return out


_DEFAULT_PREWARM = ("flow", "distance")


def serve(pool=None, host="127.0.0.1", port=0, graphs=None,
          prewarm=_DEFAULT_PREWARM, workers=None):
    """Convenience one-call server: build/warm/fork/serve.

    ``graphs`` maps name -> :class:`~repro.planar.graph.PlanarGraph`;
    returns the running (background) :class:`QueryServer` so the caller
    owns shutdown.  With ``pool`` given, ``graphs``/``prewarm``/
    ``workers`` must be None/default — the pool was configured by its
    owner.
    """
    if pool is None:
        pool = WarmWorkerPool(workers=workers)
        for name, graph in (graphs or {}).items():
            pool.register(name, graph)
        if prewarm:
            pool.prewarm(kinds=prewarm)
        pool.start()
    elif graphs or workers is not None or prewarm != _DEFAULT_PREWARM:
        raise ServiceError("pass either a configured pool or "
                           "graphs/prewarm/workers, not both")
    return QueryServer(pool, host=host, port=port).start_background()


__all__ = ["QueryServer", "serve"]
