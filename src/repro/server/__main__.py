"""``python -m repro.server`` — start the query server.

Pre-warms a worker pool (optionally with a demo grid so a bare
invocation is immediately queryable), forks the workers, then accepts
NDJSON clients until interrupted:

    PYTHONPATH=src python -m repro.server --host 127.0.0.1 --port 8423 \\
        --workers 2 --rows 12 --cols 16

The first stdout line is machine-readable —

    repro.server listening on HOST:PORT (workers=N, graphs=[...])

— which is how scripted callers (CI smoke, the example client) find an
ephemeral ``--port 0`` binding.
"""

from __future__ import annotations

import argparse

from repro.server.app import QueryServer
from repro.server.pool import WarmWorkerPool


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="repro.server: multi-worker planar query server "
                    "over a newline-delimited JSON socket protocol")
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=8423,
                    help="TCP port (0 binds an ephemeral port, printed "
                         "on the first line)")
    ap.add_argument("--workers", type=int, default=2,
                    help="worker processes (0 = serve in-process)")
    ap.add_argument("--start-method", default=None,
                    choices=["fork", "spawn"],
                    help="multiprocessing start method (default: fork "
                         "where available)")
    ap.add_argument("--rows", type=int, default=12,
                    help="demo grid rows (0 disables the demo graph)")
    ap.add_argument("--cols", type=int, default=16)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--prewarm", default="flow,distance",
                    help="comma-separated artifact kinds to build "
                         "before forking (from: flow,cut,distance,"
                         "girth; empty string skips)")
    ap.add_argument("--obs", action="store_true",
                    help="enable the observability layer before "
                         "forking (metrics/health/exemplars verbs "
                         "report live data)")
    ap.add_argument("--heartbeat-interval", type=float, default=0.25,
                    help="idle-worker heartbeat period in seconds")
    ap.add_argument("--stall-after", type=float, default=30.0,
                    help="heartbeat silence (seconds) before a live "
                         "worker counts as stalled in the health verb")
    ap.add_argument("--audit-interval", type=float, default=None,
                    help="opt-in background labeling audit period in "
                         "seconds (runs on idle ticks; surfaced via "
                         "the health verb)")
    args = ap.parse_args(argv)

    if args.obs:
        from repro import obs

        obs.enable()
    pool = WarmWorkerPool(workers=args.workers,
                          start_method=args.start_method,
                          heartbeat_interval=args.heartbeat_interval,
                          stall_after=args.stall_after,
                          audit_interval=args.audit_interval)
    if args.rows > 0 and args.cols > 0:
        from repro.planar.generators import grid, randomize_weights

        g = randomize_weights(grid(args.rows, args.cols),
                              seed=args.seed,
                              directed_capacities=True)
        pool.register(f"grid-{args.rows}x{args.cols}", g)
    kinds = tuple(k for k in args.prewarm.split(",") if k)
    took = pool.prewarm(kinds=kinds) \
        if kinds and pool.catalog.names() else {}
    pool.start()

    server = QueryServer(pool, host=args.host, port=args.port)
    host, port = server.address
    print(f"repro.server listening on {host}:{port} "
          f"(workers={args.workers}, graphs={pool.catalog.names()})",
          flush=True)
    for (name, kind), seconds in took.items():
        print(f"prewarmed {kind:<9} for {name!r} in {seconds:.2f}s",
              flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        pool.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
