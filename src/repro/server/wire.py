"""Wire protocol of the query server: newline-delimited JSON frames
with versioned request/response schemas (DESIGN.md §10).

One frame per line, UTF-8 JSON, terminated by ``\\n``.  Every request
carries the protocol version and a caller-chosen correlation id; every
response echoes both plus ``ok``:

    {"v": 1, "id": 7, "verb": "query", "query": {"kind": "flow", ...}}
    {"v": 1, "id": 7, "ok": true, "backend": "engine", "warm": false,
     "seconds": 0.004, "result": {"kind": "max-flow", ...}}
    {"v": 1, "id": 8, "ok": false,
     "error": {"type": "ServiceError", "message": "unknown graph 'x'"}}

Verbs: ``query``, ``batch``, ``register``, ``set_weights``,
``mutate_weights``, ``audit``, ``stats``, ``graphs``, ``ping``.
Responses to failures are *typed error frames*: the server ships the
exception class name (plus the ``where`` payload of a
:class:`~repro.errors.NegativeCycleError` — tuples travel as JSON
lists and come back as tuples), and
:func:`exception_from_wire` re-raises the same class on the client when
it is one of the library's error types or a common builtin — anything
else surfaces as :class:`~repro.errors.RemoteError`.

Encoding notes (both ends are this module, so the choices are part of
the protocol):

* numbers keep their Python type — JSON integers decode as ``int``,
  which is what makes served values bit-identical to in-process
  :func:`~repro.service.queries.execute_query` results;
* ``Infinity`` is legal (Python's ``json`` default) — an unreachable
  dual distance really is ``math.inf``;
* int-keyed dicts (flow assignments) travel as ``[key, value]`` pair
  lists, since JSON objects would stringify the keys.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, fields

import repro.errors as _errors
from repro import obs
from repro.core.girth import GirthResult
from repro.core.maxflow import MaxFlowResult
from repro.core.mincut import MinCutResult
from repro.errors import (
    NegativeCycleError,
    ProtocolError,
    RemoteError,
    ReproError,
)
from repro.service.queries import (
    CutQuery,
    DistanceQuery,
    FlowQuery,
    GirthQuery,
    QueryResult,
)

PROTOCOL_VERSION = 1

#: wire kind <-> query dataclass
QUERY_KINDS = {
    "flow": FlowQuery,
    "cut": CutQuery,
    "girth": GirthQuery,
    "distance": DistanceQuery,
}
_KIND_OF_QUERY = {cls: kind for kind, cls in QUERY_KINDS.items()}


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(payload):
    """One frame: compact JSON + newline, as bytes."""
    if not obs.enabled():
        return (json.dumps(payload, separators=(",", ":"))
                + "\n").encode("utf-8")
    t0 = time.perf_counter()
    data = (json.dumps(payload, separators=(",", ":"))
            + "\n").encode("utf-8")
    obs.inc("wire.frames_encoded")
    obs.observe("wire.encode_seconds", time.perf_counter() - t0)
    return data


def decode_frame(line):
    """Parse one frame (bytes or str); :class:`ProtocolError` on bad
    JSON or a non-object payload."""
    t0 = time.perf_counter() if obs.enabled() else 0.0
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"bad JSON frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame must be a JSON object, got "
                            f"{type(payload).__name__}")
    if obs.enabled():
        obs.inc("wire.frames_decoded")
        obs.observe("wire.decode_seconds", time.perf_counter() - t0)
    return payload


def check_version(frame):
    """Raise :class:`ProtocolError` unless the frame speaks this
    protocol version."""
    v = frame.get("v")
    if v != PROTOCOL_VERSION:
        raise ProtocolError(f"protocol version mismatch: frame says "
                            f"{v!r}, server speaks {PROTOCOL_VERSION}")


# ----------------------------------------------------------------------
# queries
# ----------------------------------------------------------------------
def query_to_wire(query):
    """``{"kind": ..., **fields}`` for any of the four typed queries."""
    kind = _KIND_OF_QUERY.get(type(query))
    if kind is None:
        raise ProtocolError(f"cannot send query type "
                            f"{type(query).__name__} over the wire")
    payload = asdict(query)
    payload["kind"] = kind
    return payload


def query_from_wire(payload):
    """Rebuild the typed query; :class:`ProtocolError` on an unknown
    kind or unexpected fields."""
    if not isinstance(payload, dict):
        raise ProtocolError("query payload must be a JSON object")
    payload = dict(payload)
    kind = payload.pop("kind", None)
    cls = QUERY_KINDS.get(kind)
    if cls is None:
        raise ProtocolError(f"unknown query kind {kind!r}; expected one "
                            f"of {sorted(QUERY_KINDS)}")
    allowed = {f.name for f in fields(cls)}
    unexpected = sorted(set(payload) - allowed)
    if unexpected:
        raise ProtocolError(f"unexpected {kind} query field(s): "
                            f"{unexpected}")
    return cls(**payload)


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
def _pairs(mapping):
    return [[k, v] for k, v in sorted(mapping.items())]


def result_to_wire(result):
    """Tagged payload for a served result object (the ``result`` field
    of a :class:`~repro.service.queries.QueryResult`)."""
    if result is None:
        return {"kind": "none"}
    if isinstance(result, bool):
        raise ProtocolError("no served query returns a bare bool")
    if isinstance(result, (int, float)):
        return {"kind": "number", "value": result}
    if isinstance(result, MaxFlowResult):
        return {"kind": "max-flow", "value": result.value,
                "flow": _pairs(result.flow), "probes": result.probes,
                "path_darts": list(result.path_darts)}
    if isinstance(result, MinCutResult):
        return {"kind": "min-cut", "value": result.value,
                "source_side": list(result.source_side),
                "cut_edge_ids": list(result.cut_edge_ids),
                "flow": _pairs(result.flow)}
    if isinstance(result, GirthResult):
        return {"kind": "girth", "value": result.value,
                "cycle_edge_ids": list(result.cycle_edge_ids),
                "cut_side_faces": list(result.cut_side_faces),
                "ma_rounds": result.ma_rounds,
                "congest_rounds": result.congest_rounds}
    raise ProtocolError(f"cannot send result type "
                        f"{type(result).__name__} over the wire")


def result_from_wire(payload):
    """Inverse of :func:`result_to_wire` — rebuilds the exact result
    object (int-keyed flow dicts and all)."""
    if not isinstance(payload, dict):
        raise ProtocolError("result payload must be a JSON object")
    kind = payload.get("kind")
    if kind == "none":
        return None
    if kind == "number":
        return payload["value"]
    if kind == "max-flow":
        return MaxFlowResult(value=payload["value"],
                             flow=dict(map(tuple, payload["flow"])),
                             probes=payload["probes"],
                             path_darts=list(payload["path_darts"]))
    if kind == "min-cut":
        return MinCutResult(value=payload["value"],
                            source_side=list(payload["source_side"]),
                            cut_edge_ids=list(payload["cut_edge_ids"]),
                            flow=dict(map(tuple, payload["flow"])))
    if kind == "girth":
        return GirthResult(value=payload["value"],
                           cycle_edge_ids=list(payload["cycle_edge_ids"]),
                           cut_side_faces=list(payload["cut_side_faces"]),
                           ma_rounds=payload["ma_rounds"],
                           congest_rounds=payload["congest_rounds"])
    raise ProtocolError(f"unknown result kind {kind!r}")


def query_result_to_wire(r):
    """The response-envelope fields of one served query."""
    return {"backend": r.backend, "warm": bool(r.warm),
            "seconds": r.seconds, "result": result_to_wire(r.result)}


def query_result_from_wire(query, payload):
    """Rebuild a :class:`~repro.service.queries.QueryResult` envelope
    on the client (``query`` is the local query object it answers)."""
    return QueryResult(query=query, backend=payload["backend"],
                       result=result_from_wire(payload["result"]),
                       warm=payload["warm"],
                       seconds=payload.get("seconds", 0.0))


# ----------------------------------------------------------------------
# graphs
# ----------------------------------------------------------------------
def graph_to_wire(graph):
    """Plain-data payload for a ``register`` verb."""
    return {"n": graph.n, "edges": [list(e) for e in graph.edges],
            "rotations": [list(r) for r in graph.rotations],
            "weights": list(graph.weights),
            "capacities": list(graph.capacities)}


def graph_from_wire(payload):
    """Rebuild (and validate) the :class:`~repro.planar.graph.
    PlanarGraph`; embedding problems surface as the usual
    :class:`~repro.errors.EmbeddingError`."""
    from repro.planar.graph import PlanarGraph

    if not isinstance(payload, dict):
        raise ProtocolError("graph payload must be a JSON object")
    try:
        return PlanarGraph(payload["n"],
                           [tuple(e) for e in payload["edges"]],
                           payload["rotations"],
                           weights=payload.get("weights"),
                           capacities=payload.get("capacities"))
    except KeyError as exc:
        raise ProtocolError(f"graph payload missing field {exc}") \
            from None


# ----------------------------------------------------------------------
# typed error frames
# ----------------------------------------------------------------------
def exception_to_wire(exc):
    """The ``error`` field of a failure response."""
    payload = {"type": type(exc).__name__, "message": str(exc)}
    where = getattr(exc, "where", None)
    if where is not None:
        if isinstance(where, (str, int, float)):
            payload["where"] = where
        elif isinstance(where, (list, tuple)) and all(
                isinstance(x, (str, int, float)) for x in where):
            # the labeling raise sites are ("leaf"/"ddg"/"node", bag_id)
            payload["where"] = list(where)
    return payload


def _local_error_types():
    types = {cls.__name__: cls
             for cls in vars(_errors).values()
             if isinstance(cls, type) and issubclass(cls, ReproError)}
    for cls in (ValueError, KeyError, TypeError, RuntimeError):
        types[cls.__name__] = cls
    return types


_ERROR_TYPES = _local_error_types()


def exception_from_wire(payload):
    """The exception a failure frame describes, ready to raise.

    Library error types and common builtins are reconstructed as
    themselves (so e.g. an unknown graph raises
    :class:`~repro.errors.ServiceError` on the client exactly like the
    in-process call); anything else becomes :class:`RemoteError`.
    """
    name = payload.get("type", "RemoteError")
    message = payload.get("message", "remote failure")
    cls = _ERROR_TYPES.get(name)
    if cls is NegativeCycleError:
        where = payload.get("where")
        if isinstance(where, list):
            where = tuple(where)
        return cls(message, where=where)
    if cls is not None:
        return cls(message)
    return RemoteError(message, remote_type=name)


__all__ = [
    "PROTOCOL_VERSION",
    "QUERY_KINDS",
    "encode_frame",
    "decode_frame",
    "check_version",
    "query_to_wire",
    "query_from_wire",
    "result_to_wire",
    "result_from_wire",
    "query_result_to_wire",
    "query_result_from_wire",
    "graph_to_wire",
    "graph_from_wire",
    "exception_to_wire",
    "exception_from_wire",
]
