"""repro — reproduction of "Distributed Maximum Flow in Planar Graphs"
(Abd-Elhaleem, Dory, Parter, Weimann; PODC 2025).

Public API highlights:

* :func:`repro.core.max_st_flow` — exact max st-flow (Theorem 1.2)
* :func:`repro.core.min_st_cut` — exact min st-cut (Theorem 6.1)
* :func:`repro.core.approx_max_st_flow` — (1−ε) st-planar flow + cut
  (Theorems 1.3 / 6.2)
* :func:`repro.core.directed_global_mincut` — Theorem 1.5
* :func:`repro.core.weighted_girth` — Theorem 1.7
* :class:`repro.labeling.DualDistanceLabeling` — Theorem 2.1
* :class:`repro.congest.RoundLedger` — audited CONGEST round counts
* :mod:`repro.engine` — array/CSR execution backend
  (``backend="engine"`` on every flow/cut/SSSP/girth/labeling entry
  point): reusable :class:`~repro.engine.workspace.FlowWorkspace`
  Bellman–Ford buffers for the flow family, the Dijkstra /
  dart-simple-cycle kernels (:mod:`repro.engine.dijkstra`,
  :mod:`repro.engine.cycles`) for girth and global min-cut, and the
  compiled bag arrays (:mod:`repro.engine.labels`) for the Theorem 2.1
  label construction
* :mod:`repro.service` — the query-serving layer:
  :class:`~repro.service.catalog.GraphCatalog` (named graphs + LRU
  artifact/result caches), typed flow/cut/girth/distance queries, and
  batched / process-sharded execution (``python -m repro.service``
  for a demo)

See README.md for the quickstart and the API-to-theorem table,
docs/API.md for the full reference with the backend support matrix,
DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.congest import RoundLedger
from repro.core import (
    approx_max_st_flow,
    directed_global_mincut,
    max_st_flow,
    min_st_cut,
    weighted_girth,
)
from repro.engine import CompiledPlanarGraph, FlowWorkspace, compile_graph
from repro.labeling import DualDistanceLabeling, PrimalDistanceLabeling
from repro.planar import DualGraph, PlanarGraph

__version__ = "1.10.0"

__all__ = [
    "RoundLedger",
    "max_st_flow",
    "min_st_cut",
    "approx_max_st_flow",
    "directed_global_mincut",
    "weighted_girth",
    "DualDistanceLabeling",
    "PrimalDistanceLabeling",
    "PlanarGraph",
    "DualGraph",
    "CompiledPlanarGraph",
    "FlowWorkspace",
    "compile_graph",
    "__version__",
]
