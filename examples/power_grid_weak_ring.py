"""Finding the weakest ring of a power distribution grid.

A planar mesh grid's reliability against cascading line trips is
governed by its minimum-weight cycle (the weighted girth): the cheapest
closed loop of line-upgrade costs that, if reinforced, adds a redundant
ring.  Theorem 1.7 computes it in Õ(D) rounds by simulating the exact
minor-aggregation min-cut on the dual network.

    python examples/power_grid_weak_ring.py
"""

from repro.baselines.centralized import centralized_weighted_girth
from repro.congest import RoundLedger
from repro.core import weighted_girth
from repro.planar.generators import cylinder, randomize_weights


def main():
    # a ring-shaped distribution grid (cylinder topology), line weights
    # = upgrade cost in k$
    grid_net = randomize_weights(cylinder(5, 9), low=3, high=40, seed=13)
    d = grid_net.diameter()
    print(f"power grid: {grid_net.n} buses, {grid_net.m} lines, "
          f"diameter {d}")

    ledger = RoundLedger()
    res = weighted_girth(grid_net, ledger=ledger)

    print(f"\nweakest ring: total upgrade cost {res.value} k$ over "
          f"{len(res.cycle_edge_ids)} lines:")
    for eid in res.cycle_edge_ids:
        u, v = grid_net.edges[eid]
        print(f"  bus {u} -- bus {v}  ({grid_net.weights[eid]} k$)")

    assert res.value == centralized_weighted_girth(grid_net)
    print("\nverified against the centralized girth solver")

    total = ledger.total()
    print(f"CONGEST rounds: {total} (rounds/D = {total / d:.0f}; prior "
          f"work [36] needed Õ(D²) = ~{d * d} x polylog)")
    print(f"minor-aggregation rounds on the dual: {res.ma_rounds}")


if __name__ == "__main__":
    main()
