"""Serving planar queries over the network (DESIGN.md §10).

End-to-end tour of ``repro.server``: start the server as a subprocess
(exactly as you would in production: ``python -m repro.server``), point
a :class:`~repro.server.client.ServiceClient` at it, and run a mixed
query batch — st-flows, st-cuts, girth, dual distances — in one
round-trip.  Every answer is asserted bit-identical to in-process
:func:`~repro.service.queries.execute_query`, so this doubles as the
CI smoke for the whole wire path.  The finale mutates a few edge
weights live (``mutate_weights``, DESIGN.md §11) and audits the
delta-repaired labeling against a from-scratch rebuild.

    PYTHONPATH=src python examples/network_serving.py [--rows 6 ...]
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time

from repro.planar.generators import grid, randomize_weights
from repro.server import ServiceClient
from repro.service import (
    CutQuery,
    DistanceQuery,
    FlowQuery,
    GirthQuery,
    GraphCatalog,
    execute_query,
)


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="repro.server demo: subprocess server, one-batch "
                    "client, bit-parity check")
    ap.add_argument("--rows", type=int, default=6)
    ap.add_argument("--cols", type=int, default=8)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--workers", type=int, default=2)
    args = ap.parse_args(argv)

    name = f"grid-{args.rows}x{args.cols}"
    g = randomize_weights(grid(args.rows, args.cols), seed=args.seed,
                          directed_capacities=True)

    # 1. start the server: prewarms, forks workers, prints its address
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       os.pardir, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--port", "0",
         "--workers", str(args.workers), "--rows", str(args.rows),
         "--cols", str(args.cols), "--seed", str(args.seed)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
        text=True)
    try:
        line = proc.stdout.readline().strip()
        print(line)
        assert "listening on" in line, (line, proc.stderr.read())
        host, port = line.split("listening on ")[1] \
                         .split(" ")[0].rsplit(":", 1)

        # 2. a mixed batch, one round-trip
        nf = g.num_faces()
        queries = [FlowQuery(name, 0, g.n - 1),
                   CutQuery(name, 0, g.n - 1),
                   GirthQuery(name),
                   DistanceQuery(name, 0, nf - 1),
                   DistanceQuery(name, 1, 2)]
        with ServiceClient(host, int(port), timeout=120) as client:
            deadline = time.monotonic() + 60
            while True:
                try:
                    client.ping()
                    break
                except OSError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.1)
            t0 = time.perf_counter()
            report = client.run(queries * 4)
            took = time.perf_counter() - t0
            print(f"served {len(report.results)} queries in one "
                  f"round-trip: {took * 1e3:.1f} ms "
                  f"({len(report.results) / took:,.0f} q/s)")

            # 3. bit-parity with in-process serving
            catalog = GraphCatalog()
            catalog.register(name, g)
            for r, q in zip(report.results, queries * 4):
                assert r.result == execute_query(catalog, q).result, q
            print("parity: every served answer == in-process "
                  "execute_query")

            # 4. coalesced distances + server stats
            pairs = [(f, h) for f in range(2) for h in range(nf - 2, nf)]
            print(f"distances({pairs}) -> "
                  f"{client.distances(name, pairs)}")
            stats = client.stats()
            occ = ", ".join(
                f"w{row['worker']}:{row['completed']}"
                for row in stats["occupancy"])
            print(f"worker occupancy: {occ}")
            for kind, row in stats["by_kind"].items():
                print(f"  {kind:<14} count={row['count']:<4} "
                      f"warm={row['warm']}")

            # 5. live weight mutation (DESIGN.md §11): delta-reprice
            #    a few edges pool-wide, then audit the repaired
            #    labeling bit-for-bit against a from-scratch rebuild
            edges = {0: g.weights[0] + 5, 3: g.weights[3] + 2}
            mreport = client.mutate_weights(name, edges)
            print(f"mutate_weights({sorted(edges)}) -> "
                  f"{mreport['changed_edges']} edges repriced, "
                  f"{mreport['results_migrated']} results kept warm")
            for eid, w in edges.items():
                g.weights[eid] = w
            q = DistanceQuery(name, 0, nf - 1)
            fresh = GraphCatalog()
            fresh.register(name, g)
            assert client.query(q).result == \
                execute_query(fresh, q).result, "stale after mutate"
            audit = client.audit_labeling(name)
            assert audit["master"]["error"] is None
            assert all(rep["error"] is None
                       for rep in audit["workers"].values())
            print(f"audit_labeling: master + "
                  f"{len(audit['workers'])} workers bit-identical "
                  f"to a from-scratch rebuild")
    finally:
        proc.terminate()
        proc.wait(timeout=15)
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
