"""Quickstart: exact distributed max st-flow on a planar network.

Builds a weighted grid network, runs the Õ(D²)-round algorithm of
Theorem 1.2 through the CONGEST simulator, verifies the answer against
an independent centralized solver, and prints the audited round ledger.

    python examples/quickstart.py
"""

from repro.congest import RoundLedger
from repro.core import flow_value_networkx, max_st_flow, validate_flow
from repro.planar.generators import grid, randomize_weights


def main():
    # a 6x8 grid network with random integral capacities per direction
    g = randomize_weights(grid(6, 8), seed=42, directed_capacities=True)
    s, t = 0, g.n - 1
    d = g.diameter()
    print(f"network: n={g.n} vertices, m={g.m} edges, hop diameter D={d}")

    ledger = RoundLedger()
    result = max_st_flow(g, s, t, directed=True, ledger=ledger)

    print(f"\nmax {s}->{t} flow value: {result.value}")
    print(f"dual SSSP probes (binary search on λ): {result.probes}")

    # independent verification
    ref = flow_value_networkx(g, s, t, directed=True)
    assert result.value == ref, "mismatch against centralized solver!"
    validate_flow(g, s, t, result.flow, result.value, directed=True)
    print("verified: value matches networkx; assignment is feasible "
          "and conserving")

    total = ledger.total()
    print(f"\nCONGEST rounds: {total}  "
          f"(D² = {d * d}, rounds/D² = {total / d**2:.1f})")
    print("\n" + ledger.report())

    # the flow on a few edges
    print("\nsample of the flow assignment:")
    shown = 0
    for eid, x in sorted(result.flow.items()):
        if x > 0:
            u, v = g.edges[eid]
            print(f"  edge {u}->{v}: {x}/{g.capacities[eid]}")
            shown += 1
            if shown >= 8:
                break

    # the same computation on the array engine backend (README.md
    # "Backend selection"): identical output, no round audit, and fast
    # enough for production-size instances (benchmarks/bench_engine.py)
    fast = max_st_flow(g, s, t, directed=True, backend="engine")
    assert fast.value == result.value and fast.flow == result.flow
    print("\nengine backend reproduced the value and assignment exactly")

    # query traffic goes through the serving layer (DESIGN.md §8):
    # register once, then repeated queries are warm cache hits and new
    # (s, t) pairs reuse the compiled artifacts (python -m repro.service
    # runs the full demo)
    from repro.service import FlowQuery, GraphCatalog

    catalog = GraphCatalog()
    catalog.register("net", g)
    served = catalog.serve(FlowQuery("net", s, t))
    again = catalog.serve(FlowQuery("net", s, t))
    assert served.result == fast and again.warm
    print("serving layer: identical result; repeat answered from the "
          "result cache")


if __name__ == "__main__":
    main()
