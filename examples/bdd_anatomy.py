"""Anatomy of the dual toolkit: what the paper's machinery looks like
on a concrete graph.

Walks one planar network through every layer the flow algorithm stands
on — faces and the dual, the face-disjoint communication scaffold Ĝ,
the cycle separator, the BDD with its dual bags and F_X separators, the
distributed-knowledge tables, and one labeled distance query — printing
the measured quantities the paper's lemmas bound.

    python examples/bdd_anatomy.py
"""

from repro.bdd import build_bdd, build_dual_bag, validate_bdd
from repro.bdd.knowledge import (
    build_knowledge,
    knowledge_words_per_vertex,
    verify_knowledge,
)
from repro.labeling import DualDistanceLabeling
from repro.planar import DualGraph, SubgraphView
from repro.planar.face_disjoint import FaceDisjointGraph
from repro.planar.generators import grid, randomize_weights
from repro.planar.separator import fundamental_cycle_separator


def main():
    g = randomize_weights(grid(6, 7), seed=5)
    d = g.diameter()
    print(f"primal G: n={g.n}, m={g.m}, D={d}")

    dual = DualGraph(g)
    print(f"dual G*: {dual.num_nodes} nodes (faces), {g.m} edges, "
          f"{sum(1 for e, f, h, w in dual.undirected_edges() if f == h)} "
          f"self-loops")

    g_hat = FaceDisjointGraph(g)
    print(f"face-disjoint Ĝ: {g_hat.num_vertices} vertices "
          f"(= n + 2m), diameter ≤ {g_hat.diameter_upper_bound()} "
          f"(paper: ≤ 3D+O(1) = {3 * d + 6})")

    sep = fundamental_cycle_separator(SubgraphView(g, range(g.m)))
    kind = "virtual" if sep.chord_virtual else "real"
    print(f"\ncycle separator: {len(sep.cycle_vertices)} vertices "
          f"(2 BFS paths + 1 {kind} edge), balance "
          f"{sep.balance:.2f} (≤ 3/4 target)")

    bdd = build_bdd(g, leaf_size=max(12, d))
    report = validate_bdd(bdd)
    print(f"\nBDD: {report.num_bags} bags, depth {report.depth} "
          f"(≈ log n), {report.num_leaves} leaves ≤ "
          f"{report.max_leaf_edges} edges")
    print(f"     max |S_X| = {report.max_separator} "
          f"({report.max_separator / d:.1f}·D), "
          f"max |F_X| = {report.max_f_x}, "
          f"face-parts per bag ≤ {report.max_face_parts}")

    root_dual = build_dual_bag(bdd.root)
    print(f"root dual bag X* = G*: {root_dual.num_nodes} nodes, "
          f"F_X = {sorted(root_dual.f_x)[:8]}... "
          f"({len(root_dual.f_x)} separator nodes)")

    know = build_knowledge(bdd)
    verify_knowledge(bdd, know)
    print(f"\ndistributed knowledge: ≤ "
          f"{knowledge_words_per_vertex(know)} words per vertex, "
          f"locally consistent (properties 13-14)")

    lengths = {dart: g.weights[dart >> 1] for dart in g.darts()}
    lab = DualDistanceLabeling(bdd, lengths)
    f0, f1 = 0, dual.num_nodes - 1
    print(f"\ndistance labels: ≤ {lab.max_label_bits()} bits "
          f"({lab.max_label_bits() / d:.0f}·D); "
          f"decode dist_G*({f0} → {f1}) = {lab.distance(f0, f1)} "
          f"from two labels alone")


if __name__ == "__main__":
    main()
