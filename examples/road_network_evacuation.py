"""Evacuation planning on a road network.

The intro's motivating scenario for planar max-flow: road networks are
(nearly) planar.  We synthesize a city road network as a Delaunay
triangulation of random intersections, direct the roads, assign lane
capacities, and ask: how many vehicle-units per time step can leave the
stadium (vertex s) toward the highway interchange (vertex t), and which
roads form the bottleneck (the minimum st-cut)?

    python examples/road_network_evacuation.py
"""

import random

from repro.congest import RoundLedger
from repro.core import (
    flow_value_networkx,
    max_st_flow,
    min_st_cut,
    verify_st_cut,
)
from repro.planar.generators import random_planar, randomize_weights


def main():
    rng = random.Random(7)
    city = randomize_weights(random_planar(120, seed=7, keep=0.92),
                             low=1, high=6, seed=7,
                             directed_capacities=True)
    s = 0                                    # the stadium
    t = city.n - 1                           # the interchange
    d = city.diameter()
    print(f"road network: {city.n} intersections, {city.m} road "
          f"segments, diameter {d} hops")

    ledger = RoundLedger()
    flow = max_st_flow(city, s, t, directed=True, ledger=ledger)
    print(f"\nevacuation capacity {s} -> {t}: "
          f"{flow.value} vehicle-units per time step")
    assert flow.value == flow_value_networkx(city, s, t, directed=True)

    cut = min_st_cut(city, s, t, directed=True)
    assert verify_st_cut(city, s, t, cut.cut_edge_ids, directed=True)
    print(f"bottleneck: {len(cut.cut_edge_ids)} road segments carry the "
          f"entire evacuation:")
    for eid in cut.cut_edge_ids[:10]:
        u, v = city.edges[eid]
        print(f"  {u} -> {v}  (capacity {city.capacities[eid]})")
    if len(cut.cut_edge_ids) > 10:
        print(f"  ... and {len(cut.cut_edge_ids) - 10} more")

    saturated = sum(1 for eid in cut.cut_edge_ids
                    if abs(flow.flow[eid] - city.capacities[eid]) < 1e-9)
    print(f"\nall {saturated}/{len(cut.cut_edge_ids)} cut segments are "
          f"saturated (max-flow = min-cut)")
    print(f"\nCONGEST rounds used: {ledger.total()} "
          f"(D²={d * d}; the naive dual Bellman-Ford shape would cost "
          f"~{2 * city.num_faces()} rounds per SSSP probe)")


if __name__ == "__main__":
    main()
