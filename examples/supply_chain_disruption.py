"""Minimum disruption of a logistics network (directed global min-cut).

A planar logistics network moves goods along directed lanes.  The
*directed global minimum cut* is the cheapest set of lanes whose removal
splits the network into an upstream part that can no longer reach some
downstream part — the paper's Theorem 1.5, computed via the minimum
dart-simple directed cycle in the dual.

    python examples/supply_chain_disruption.py
"""

from repro.baselines.centralized import centralized_directed_global_mincut
from repro.congest import RoundLedger
from repro.core import directed_global_mincut
from repro.planar.generators import bidirect, random_planar, \
    randomize_weights


def main():
    # depots connected by lanes in both directions with asymmetric
    # tonnage capacities
    base = randomize_weights(random_planar(25, seed=3), low=2, high=25,
                             seed=3)
    net = bidirect(base, seed=3)
    d = net.diameter()
    print(f"logistics network: {net.n} depots, {net.m} directed lanes, "
          f"diameter {d}")

    ledger = RoundLedger()
    res = directed_global_mincut(net, ledger=ledger)

    side = set(res.side)
    print(f"\nminimum disruption: sever {len(res.cut_edge_ids)} lanes "
          f"(total {res.value} tons/day) to isolate "
          f"{len(side)} depots from the remaining {net.n - len(side)}:")
    for eid in res.cut_edge_ids[:10]:
        u, v = net.edges[eid]
        print(f"  lane {u} -> {v}  ({net.weights[eid]} tons/day)")

    ref = centralized_directed_global_mincut(net)
    assert res.value == ref
    print(f"\nverified against {net.n - 1} centralized max-flow pairs")
    print(f"CONGEST rounds: {ledger.total()} (D² = {d * d})")


if __name__ == "__main__":
    main()
