"""Fast approximate flow across a river delta (st-planar case).

When source and sink lie on the same face — here, two harbors on the
coastline of a river-delta channel network — Theorem 1.3 trades
exactness for a D·n^{o(1)}-round budget: a (1−ε)-approximate flow with
a *feasible* assignment (via the smoothing machinery of [41]) and a
certified st-cut within (1+ε) of optimal (Theorem 6.2).

    python examples/river_barrier_approx_flow.py
"""

from repro.congest import RoundLedger
from repro.core import (
    approx_max_st_flow,
    flow_value_networkx,
    validate_flow,
    verify_st_cut,
)
from repro.planar.generators import grid, randomize_weights


def main():
    # channel network: undirected capacities = channel widths
    delta = randomize_weights(grid(6, 10), low=1, high=15, seed=21)
    s, t = 0, delta.n - 1      # two harbors on the outer coastline
    exact = flow_value_networkx(delta, s, t, directed=False)
    print(f"delta network: {delta.n} junctions, {delta.m} channels")
    print(f"exact max flow (oracle): {exact}")

    for eps in (0.4, 0.2, 0.1):
        ledger = RoundLedger()
        res = approx_max_st_flow(delta, s, t, eps=eps, seed=1,
                                 ledger=ledger)
        validate_flow(delta, s, t, res.flow, res.value, directed=False)
        assert verify_st_cut(delta, s, t, res.cut_edge_ids,
                             directed=False)
        print(f"\n  eps={eps:4}:  flow value {res.value:8.2f} "
              f"({res.value / exact:.1%} of optimum)")
        print(f"            barrier (cut) capacity {res.cut_capacity} "
              f"({res.cut_capacity / exact:.1%} of optimum)")
        print(f"            minor-aggregation rounds {res.ma_rounds}, "
              f"CONGEST rounds {ledger.total()}")

    print("\nthe assignment is feasible at every ε — the smoothing step "
          "of [41] is what makes the approximate potentials capacity-"
          "respecting")


if __name__ == "__main__":
    main()
