"""Docs consistency check (run by CI).

Two guarantees keep docs/API.md a *curated but enforced* reference:

1. every relative markdown link in README.md and docs/API.md resolves
   to a file in the repository;
2. every public export (`__all__`) of the repro packages is mentioned
   in docs/API.md — adding an export without documenting it fails the
   build.

    PYTHONPATH=src python scripts/check_docs.py
"""

import importlib
import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOCS = ["README.md", os.path.join("docs", "API.md"), "DESIGN.md"]

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.labeling",
    "repro.planar",
    "repro.engine",
    "repro.service",
    "repro.server",
    "repro.workload",
    "repro.congest",
    "repro.aggregation",
    "repro.shortcuts",
    "repro.bdd",
    "repro.analysis",
    "repro.baselines",
    "repro.obs",
    "repro.obs.health",
]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)#]+)(?:#[^)]*)?\)")


def check_links():
    errors = []
    for doc in DOCS:
        path = os.path.join(ROOT, doc)
        text = open(path, encoding="utf-8").read()
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target))
            if not os.path.exists(resolved):
                errors.append(f"{doc}: broken link -> {target}")
    return errors


def check_api_coverage():
    api = open(os.path.join(ROOT, "docs", "API.md"),
               encoding="utf-8").read()
    errors = []
    for modname in PUBLIC_MODULES:
        mod = importlib.import_module(modname)
        for name in getattr(mod, "__all__", []):
            if name == "__version__":
                continue
            if not re.search(rf"(?<![A-Za-z0-9_]){re.escape(name)}"
                             rf"(?![A-Za-z0-9_])", api):
                errors.append(
                    f"docs/API.md: {modname}.{name} is exported but "
                    f"undocumented")
    return errors


def main():
    errors = check_links() + check_api_coverage()
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"{len(errors)} docs problem(s)", file=sys.stderr)
        return 1
    print("docs OK: links resolve, every public export is documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
