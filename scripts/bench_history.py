#!/usr/bin/env python
"""Benchmark regression tracker over the ``BENCH_*.json`` artifacts
(DESIGN.md §15).

Every ``benchmarks/bench_*.py`` script emits a self-describing JSON
report via ``--json`` (see ``benchmarks/_json_out.py``).  This script
turns that trajectory into a gate:

    # refresh the committed baseline from a set of reports
    python scripts/bench_history.py update BENCH_*.json \\
        --baseline benchmarks/baseline.json

    # compare fresh reports against the baseline; exit 1 on any
    # timing metric slower than --max-slowdown x (or any ok=false)
    python scripts/bench_history.py compare BENCH_*.json \\
        --baseline benchmarks/baseline.json --max-slowdown 3.0

    # prove the detector works: synthesize a report --slowdown x
    # slower than the baseline and assert compare flags it
    python scripts/bench_history.py self-test \\
        --baseline benchmarks/baseline.json --slowdown 2.0

Timing metrics are recognized by key: a numeric leaf whose dotted path
ends in ``_s``/``_seconds``/``_ms``/``_us`` (or whose last segment
contains ``seconds``) is lower-is-better.  Counters, speedup factors
and throughputs are carried in the baseline for context but never
gated — a *faster* run must not fail CI.  Baseline entries below
``--min-seconds`` are skipped when gating (too close to timer noise to
call a regression), which keeps the smoke-scale CI comparison
meaningful; the ``self-test`` subcommand is the deterministic check
that the machinery fires, independent of runner speed.
"""

from __future__ import annotations

import argparse
import glob
import json
import sys
import time

_TIMING_SUFFIXES = ("_s", "_seconds", "_ms", "_us")


def is_timing_key(path):
    """Lower-is-better detection on the dotted metric path."""
    leaf = path.rsplit(".", 1)[-1]
    return (leaf.endswith(_TIMING_SUFFIXES)
            or "seconds" in leaf)


def flatten(rows, prefix=""):
    """``{"a": {"b": 1.5}} -> {"a.b": 1.5}`` — numeric leaves only."""
    out = {}
    if isinstance(rows, dict):
        items = rows.items()
    elif isinstance(rows, list):
        items = ((str(i), v) for i, v in enumerate(rows))
    else:
        return out
    for key, value in items:
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[path] = float(value)
        elif isinstance(value, (dict, list)):
            out.update(flatten(value, path))
    return out


def load_reports(paths):
    """Read ``BENCH_*.json`` reports; returns ``{bench: report}``.
    Globs are expanded (the CI step passes the literal pattern on
    shells that do not)."""
    reports = {}
    for pattern in paths:
        expanded = sorted(glob.glob(pattern)) or [pattern]
        for path in expanded:
            with open(path) as fh:
                report = json.load(fh)
            bench = report.get("bench")
            if not bench:
                raise SystemExit(f"{path}: not a bench report "
                                 f"(missing 'bench' key)")
            reports[bench] = report
    return reports


def compare_reports(baseline, reports, max_slowdown, min_seconds):
    """Pure comparison core (what ``self-test`` drives in-memory).

    Returns ``(failures, rows)``: ``failures`` is a list of human
    messages (empty = gate passes), ``rows`` a per-metric table of
    ``(bench, metric, old, new, factor, flagged)``."""
    failures = []
    rows = []
    benches = baseline.get("benches", {})
    for bench, report in sorted(reports.items()):
        if not report.get("ok", False):
            failures.append(f"{bench}: report says ok=false")
        base = benches.get(bench)
        if base is None:
            continue  # new bench: nothing to regress against
        old_flat = flatten(base.get("rows", {}))
        new_flat = flatten(report.get("rows", {}))
        for path in sorted(old_flat):
            if not is_timing_key(path) or path not in new_flat:
                continue
            old, new = old_flat[path], new_flat[path]
            if old < min_seconds or old <= 0:
                continue
            factor = new / old
            flagged = factor > max_slowdown
            rows.append((bench, path, old, new, factor, flagged))
            if flagged:
                failures.append(
                    f"{bench}: {path} regressed {factor:.2f}x "
                    f"({old:.6f}s -> {new:.6f}s, budget "
                    f"{max_slowdown:.2f}x)")
    return failures, rows


def _print_table(rows, verbose=False):
    shown = [r for r in rows if verbose or r[5]]
    if not shown:
        print(f"compared {len(rows)} timing metrics: "
              f"all within budget")
        return
    width = max(len(f"{b}:{p}") for b, p, *_ in shown)
    for bench, path, old, new, factor, flagged in shown:
        mark = "REGRESSION" if flagged else "ok"
        print(f"{bench + ':' + path:<{width}}  "
              f"{old * 1e3:>10.3f}ms -> {new * 1e3:>10.3f}ms  "
              f"{factor:>7.2f}x  {mark}")


def cmd_update(args):
    reports = load_reports(args.reports)
    if not reports:
        raise SystemExit("no reports to baseline")
    baseline = {
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "note": "committed benchmark baseline for "
                "scripts/bench_history.py (smoke-scale CI flags); "
                "refresh with the update subcommand",
        "benches": {bench: {"ok": report.get("ok", False),
                            "argv": report.get("argv", []),
                            "rows": report.get("rows", {})}
                    for bench, report in sorted(reports.items())},
    }
    with open(args.baseline, "w") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"baseline written: {args.baseline} "
          f"({len(reports)} benches)")
    return 0


def cmd_compare(args):
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    reports = load_reports(args.reports)
    if not reports:
        raise SystemExit("no reports to compare")
    failures, rows = compare_reports(baseline, reports,
                                     args.max_slowdown,
                                     args.min_seconds)
    _print_table(rows, verbose=args.verbose)
    for message in failures:
        print(f"FAIL: {message}")
    if failures:
        return 1
    print(f"bench history gate: PASS ({len(reports)} reports vs "
          f"baseline of {len(baseline.get('benches', {}))})")
    return 0


def cmd_self_test(args):
    """Inject a synthetic ``--slowdown`` x regression into a copy of
    the baseline and assert the comparator flags it — the
    deterministic CI proof that the gate can actually fail."""
    with open(args.baseline) as fh:
        baseline = json.load(fh)

    def slow(value, path=""):
        if isinstance(value, bool) or not isinstance(
                value, (int, float)):
            if isinstance(value, dict):
                return {k: slow(v, f"{path}.{k}") for k, v in
                        value.items()}
            if isinstance(value, list):
                return [slow(v, path) for v in value]
            return value
        return value * args.slowdown if is_timing_key(path) else value

    injected = {}
    eligible = 0
    for bench, entry in baseline.get("benches", {}).items():
        flat = flatten(entry.get("rows", {}))
        if any(is_timing_key(p) and v >= args.min_seconds
               for p, v in flat.items()):
            eligible += 1
        injected[bench] = {"bench": bench, "ok": True,
                           "rows": slow(entry.get("rows", {}))}
    if not eligible:
        print("self-test: FAIL — baseline has no gateable timing "
              "metric (every value below --min-seconds?)")
        return 1
    failures, _ = compare_reports(
        baseline, injected,
        max_slowdown=max(1.0, args.slowdown * 0.75),
        min_seconds=args.min_seconds)
    if failures:
        print(f"self-test: PASS — injected {args.slowdown:.1f}x "
              f"slowdown flagged {len(failures)} regression(s) "
              f"across {eligible} gateable bench(es)")
        return 0
    print(f"self-test: FAIL — injected {args.slowdown:.1f}x slowdown "
          f"was NOT flagged")
    return 1


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="python scripts/bench_history.py",
        description="track BENCH_*.json benchmark reports against a "
                    "committed baseline and gate on slowdowns")
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("update", help="write the baseline from "
                                      "reports")
    p.add_argument("reports", nargs="+", metavar="BENCH_*.json")
    p.add_argument("--baseline", default="benchmarks/baseline.json")
    p.set_defaults(fn=cmd_update)

    p = sub.add_parser("compare", help="gate reports against the "
                                       "baseline")
    p.add_argument("reports", nargs="+", metavar="BENCH_*.json")
    p.add_argument("--baseline", default="benchmarks/baseline.json")
    p.add_argument("--max-slowdown", type=float, default=3.0,
                   help="fail when new/old exceeds this factor "
                        "(default 3.0)")
    p.add_argument("--min-seconds", type=float, default=1e-3,
                   help="skip baseline timings below this (timer "
                        "noise; default 1ms)")
    p.add_argument("--verbose", action="store_true",
                   help="print every compared metric, not only "
                        "regressions")
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("self-test",
                       help="assert compare flags a synthetic "
                            "slowdown injected into the baseline")
    p.add_argument("--baseline", default="benchmarks/baseline.json")
    p.add_argument("--slowdown", type=float, default=2.0)
    p.add_argument("--min-seconds", type=float, default=1e-3)
    p.set_defaults(fn=cmd_self_test)

    args = ap.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
