"""Failure injection: the library must reject invalid inputs loudly and
survive degenerate ones correctly."""

import pytest

from repro.bdd import build_bdd
from repro.core import approx_max_st_flow, max_st_flow, min_st_cut, \
    weighted_girth
from repro.errors import (
    EmbeddingError,
    InfeasibleFlowError,
    NegativeCycleError,
    NotConnectedError,
    ReproError,
)
from repro.labeling import DualDistanceLabeling
from repro.planar import PlanarGraph
from repro.planar.generators import grid, path, randomize_weights, wheel


class TestInvalidInputs:
    def test_disconnected_graph_rejected_by_bdd(self):
        # two disjoint squares
        g2 = grid(2, 2)
        edges = list(g2.edges) + [(u + 4, v + 4) for (u, v) in g2.edges]
        rotations = [list(r) for r in g2.rotations]
        for r in g2.rotations:
            rotations.append([d + 2 * g2.m for d in r])
        g = PlanarGraph(8, edges, rotations)
        with pytest.raises(NotConnectedError):
            build_bdd(g)

    def test_equal_endpoints_rejected(self):
        with pytest.raises(InfeasibleFlowError):
            max_st_flow(grid(3, 3), 2, 2)

    def test_non_st_planar_rejected_with_clear_error(self):
        g = grid(5, 5)
        with pytest.raises(InfeasibleFlowError) as e:
            approx_max_st_flow(g, 12, 0)
        assert "face" in str(e.value)

    def test_torus_rotation_rejected(self):
        g = wheel(4)
        rotations = [list(r) for r in g.rotations]
        rotations[4][0], rotations[4][1] = rotations[4][1], rotations[4][0]
        bad = PlanarGraph(g.n, g.edges, rotations)
        with pytest.raises(EmbeddingError):
            bad.check_euler()

    def test_all_errors_are_repro_errors(self):
        for exc in (EmbeddingError, InfeasibleFlowError,
                    NegativeCycleError, NotConnectedError):
            assert issubclass(exc, ReproError)


class TestDegenerateInstances:
    def test_flow_on_tree_is_zero_or_path_capacity(self):
        # a path graph: flow = min capacity on the path (undirected)
        g = randomize_weights(path(6), seed=1)
        res = max_st_flow(g, 0, 5, directed=False, leaf_size=8)
        assert res.value == min(g.capacities)

    def test_directed_tree_flow(self):
        g = randomize_weights(path(5), seed=2, directed_capacities=True)
        res = max_st_flow(g, 0, 4, directed=True, leaf_size=8)
        assert res.value == min(g.capacities)
        res_rev = max_st_flow(g, 4, 0, directed=True, leaf_size=8)
        assert res_rev.value == 0  # all edges oriented forward

    def test_single_edge_graph(self):
        g = randomize_weights(path(2), seed=3)
        res = max_st_flow(g, 0, 1, directed=False)
        assert res.value == g.capacities[0]

    def test_zero_capacity_edges(self):
        g = grid(3, 3)
        caps = [0 if eid % 3 == 0 else 5 for eid in range(g.m)]
        g = g.copy(capacities=caps)
        from repro.core import flow_value_networkx

        ref = flow_value_networkx(g, 0, 8, directed=True)
        res = max_st_flow(g, 0, 8, directed=True, leaf_size=10)
        assert res.value == ref

    def test_girth_on_single_cycle(self):
        # wheel rim + hub... use a pure cycle via cylinder(1, k)
        from repro.planar.generators import cylinder

        g = randomize_weights(cylinder(1, 8), seed=4)
        res = weighted_girth(g)
        assert res.value == sum(g.weights)
        assert sorted(res.cycle_edge_ids) == list(range(g.m))

    def test_mincut_pendant_vertex(self):
        # sink hanging off one edge: that edge is the whole cut
        base = grid(3, 3)
        edges = list(base.edges) + [(8, 9)]
        rotations = [list(r) for r in base.rotations] + [[2 * base.m + 1]]
        rotations[8] = rotations[8] + [2 * base.m]
        g = PlanarGraph(10, edges, rotations,
                        weights=[3] * (base.m + 1),
                        capacities=[3] * (base.m + 1))
        g.check_euler()
        res = min_st_cut(g, 0, 9, directed=True, leaf_size=10)
        assert res.value == 3
        assert res.cut_edge_ids == [base.m]


class TestNegativeCycleInjection:
    def test_negative_cycle_aborts_flow_probe_gracefully(self):
        # Miller-Naor probes interpret negative cycles as "λ infeasible";
        # the solver must converge to the max feasible λ, never crash
        g = randomize_weights(grid(4, 4), seed=5,
                              directed_capacities=True)
        res = max_st_flow(g, 0, 15, directed=True, leaf_size=10)
        assert res.value >= 0

    def test_direct_negative_cycle_raises(self):
        g = grid(3, 3)
        lengths = {d: -1 for d in g.darts()}
        bdd = build_bdd(g, leaf_size=10)
        with pytest.raises(NegativeCycleError):
            DualDistanceLabeling(bdd, lengths)

    def test_negative_lengths_on_leaf_only_bdd(self):
        g = grid(3, 3)
        lengths = {d: -1 for d in g.darts()}
        bdd = build_bdd(g, leaf_size=10**6)   # single leaf bag
        with pytest.raises(NegativeCycleError):
            DualDistanceLabeling(bdd, lengths)


class TestBandwidthDiscipline:
    def test_messages_within_logn_budget(self):
        from repro.congest.primitives import run_bfs

        g = grid(6, 6)
        _, _, stats = run_bfs([g.neighbors(v) for v in range(g.n)], 0)
        assert stats.bandwidth_violations == 0
        assert stats.max_message_bits <= 8 * 6  # 8 * ceil(log2 36)
