"""Tests for the distributed-knowledge bookkeeping (Thm 5.2 props 13-14)
and the primal distance labeling ([27] substrate)."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import build_bdd
from repro.bdd.knowledge import (
    build_knowledge,
    knowledge_words_per_vertex,
    verify_knowledge,
)
from repro.congest import RoundLedger
from repro.labeling.primal import PrimalDistanceLabeling
from repro.planar.generators import (
    cylinder,
    grid,
    random_planar,
    randomize_weights,
)


class TestKnowledge:
    @pytest.mark.parametrize("maker,leaf", [
        (lambda: grid(5, 5), 12),
        (lambda: cylinder(4, 7), 12),
        (lambda: random_planar(50, seed=6), 14),
        (lambda: random_planar(40, seed=3, keep=0.8), 12),
    ])
    def test_locally_consistent(self, maker, leaf):
        g = maker()
        bdd = build_bdd(g, leaf_size=leaf)
        know = build_knowledge(bdd)
        assert verify_knowledge(bdd, know)

    def test_part_ids_have_prefix_structure(self):
        g = grid(6, 6)
        bdd = build_bdd(g, leaf_size=12)
        know = build_knowledge(bdd)
        # every part id starts with the G-face id and only appends
        for k in know.values():
            for (bag_id, d), pid in k.face_id_of_dart.items():
                assert pid[0] == g.face_of[d]

    def test_whole_faces_keep_root_id(self):
        g = grid(5, 5)
        bdd = build_bdd(g, leaf_size=12)
        know = build_knowledge(bdd)
        # a face fully contained in a leaf carries its root id when it
        # never split: id length 1
        face_sizes = {f: len(w) for f, w in enumerate(g.faces)}
        for leaf in bdd.leaf_bags():
            for f, darts in leaf.live_faces().items():
                if len(darts) == face_sizes[f]:
                    v = g.tail(darts[0])
                    pid = know[v].face_id_of_dart[(leaf.bag_id, darts[0])]
                    assert pid == (f,)

    def test_dual_arc_known_iff_both_darts_live(self):
        g = grid(5, 5)
        bdd = build_bdd(g, leaf_size=12)
        know = build_knowledge(bdd)
        for bag in bdd.bags:
            live = bag.live_darts
            for eid in bag.edge_ids:
                u, _ = g.edges[eid]
                arc = know[u].dual_arc_of_edge[(bag.bag_id, eid)]
                both = (2 * eid in live) and (2 * eid + 1 in live)
                assert (arc is not None) == both

    def test_storage_measured_and_bounded(self):
        g = grid(6, 6)
        bdd = build_bdd(g, leaf_size=12)
        know = build_knowledge(bdd)
        words = knowledge_words_per_vertex(know)
        # Õ(deg * depth) words per vertex
        assert words <= 8 * 4 * (bdd.depth + 1) * (bdd.depth + 2)

    def test_ledger_charged(self):
        led = RoundLedger()
        g = grid(5, 5)
        bdd = build_bdd(g, leaf_size=12)
        build_knowledge(bdd, ledger=led)
        assert any(k.startswith("knowledge/") for k in led.by_phase())


class TestPrimalLabeling:
    def reference(self, g):
        nxg = nx.Graph()
        for eid, (u, v) in enumerate(g.edges):
            w = g.weights[eid]
            if nxg.has_edge(u, v):
                nxg[u][v]["weight"] = min(nxg[u][v]["weight"], w)
            else:
                nxg.add_edge(u, v, weight=w)
        return dict(nx.all_pairs_dijkstra_path_length(nxg))

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_dijkstra(self, seed):
        g = randomize_weights(random_planar(30 + seed, seed=seed),
                              seed=seed)
        lab = PrimalDistanceLabeling(g, leaf_size=12)
        ref = self.reference(g)
        rng = random.Random(seed)
        for _ in range(30):
            a, b = rng.randrange(g.n), rng.randrange(g.n)
            assert lab.distance(a, b) == ref[a][b]

    def test_cut_vertices_handled(self):
        # sparsified graphs have cut vertices: the shared-vertex anchor
        # extension must keep decoding exact
        g = randomize_weights(random_planar(40, seed=9, keep=0.75),
                              seed=9)
        lab = PrimalDistanceLabeling(g, leaf_size=10)
        ref = self.reference(g)
        for a in range(0, g.n, 5):
            for b in range(0, g.n, 7):
                assert lab.distance(a, b) == ref[a][b]

    def test_directed_lengths(self):
        # residual-style asymmetric 0/1 lengths (Theorem 6.1's use)
        g = grid(4, 4)
        lengths = {}
        for eid in range(g.m):
            lengths[2 * eid] = 0
            lengths[2 * eid + 1] = 1
        lab = PrimalDistanceLabeling(g, lengths=lengths, leaf_size=10)
        nxg = nx.DiGraph()
        for eid, (u, v) in enumerate(g.edges):
            nxg.add_edge(u, v, weight=0)
            nxg.add_edge(v, u, weight=1)
        ref = dict(nx.all_pairs_dijkstra_path_length(nxg))
        for a in range(g.n):
            for b in range(g.n):
                assert lab.distance(a, b) == ref[a][b]

    def test_label_bits_scale_with_d(self):
        small = PrimalDistanceLabeling(
            randomize_weights(grid(3, 6), seed=1), leaf_size=10)
        big = PrimalDistanceLabeling(
            randomize_weights(grid(3, 16), seed=1), leaf_size=10)
        assert big.max_label_bits() >= small.max_label_bits()

    def test_self_distance(self):
        g = randomize_weights(grid(4, 4), seed=2)
        lab = PrimalDistanceLabeling(g, leaf_size=10)
        for v in range(g.n):
            assert lab.distance(v, v) == 0

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_property_random(self, seed):
        g = randomize_weights(
            random_planar(18 + seed % 18, seed=seed % 30, keep=0.9),
            seed=seed)
        lab = PrimalDistanceLabeling(g, leaf_size=8 + seed % 8)
        ref = self.reference(g)
        rng = random.Random(seed)
        for _ in range(15):
            a, b = rng.randrange(g.n), rng.randrange(g.n)
            assert lab.distance(a, b) == ref[a][b]
