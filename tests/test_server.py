"""Tests for the repro.server subsystem (DESIGN.md §10): wire protocol
round-trips, catalog snapshot handoff, the pre-warmed worker pool, and
socket-server end-to-end bit-parity with in-process serving."""

import math
import os
import pickle
import socket
import subprocess
import sys
import time

import pytest

from repro.core import max_st_flow
from repro.errors import (
    NegativeCycleError,
    ProtocolError,
    RemoteError,
    ServiceError,
)
from repro.planar.generators import grid, randomize_weights, wheel
from repro.server import (
    PROTOCOL_VERSION,
    QueryServer,
    ServiceClient,
    WarmWorkerPool,
    serve,
    wire,
)
from repro.service import (
    CutQuery,
    DistanceQuery,
    FlowQuery,
    GirthQuery,
    GraphCatalog,
    execute_query,
)

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def make_grid(rows=4, cols=5, seed=3):
    return randomize_weights(grid(rows, cols), seed=seed,
                             directed_capacities=True)


def mixed_queries(name, g):
    nf = g.num_faces()
    return [FlowQuery(name, 0, g.n - 1),
            CutQuery(name, 0, g.n - 1),
            GirthQuery(name),
            DistanceQuery(name, 0, nf - 1),
            DistanceQuery(name, 1, 2),
            FlowQuery(name, 1, g.n - 2)]


def reference_results(g, queries, name="g"):
    catalog = GraphCatalog()
    catalog.register(name, g.copy())
    return [execute_query(catalog, q).result for q in queries]


# ----------------------------------------------------------------------
# wire protocol
# ----------------------------------------------------------------------
class TestWire:
    @pytest.mark.parametrize("query", [
        FlowQuery("g", 0, 7),
        FlowQuery("g", 3, 4, directed=False, backend="legacy",
                  validate=False, leaf_size=9),
        CutQuery("g", 1, 2, leaf_size=4),
        GirthQuery("g", backend="engine", num_trees=3),
        DistanceQuery("g", 5, 6, backend="legacy"),
    ])
    def test_query_roundtrip(self, query):
        payload = wire.decode_frame(
            wire.encode_frame(wire.query_to_wire(query)))
        assert wire.query_from_wire(payload) == query

    def test_unknown_query_kind_rejected(self):
        with pytest.raises(ProtocolError):
            wire.query_from_wire({"kind": "mst", "graph": "g"})

    def test_unexpected_query_field_rejected(self):
        with pytest.raises(ProtocolError):
            wire.query_from_wire({"kind": "girth", "graph": "g",
                                  "bogus": 1})

    def test_result_roundtrip_all_served_types(self):
        g = make_grid()
        catalog = GraphCatalog()
        catalog.register("g", g)
        for q in mixed_queries("g", g):
            result = execute_query(catalog, q).result
            payload = wire.decode_frame(
                wire.encode_frame(wire.result_to_wire(result)))
            assert wire.result_from_wire(payload) == result

    def test_result_roundtrip_scalars(self):
        for value in (0, 7, 2.5, math.inf, None):
            payload = wire.decode_frame(
                wire.encode_frame(wire.result_to_wire(value)))
            back = wire.result_from_wire(payload)
            assert back == value and type(back) is type(value)

    def test_flow_dict_keys_stay_ints(self):
        g = make_grid()
        res = max_st_flow(g, 0, g.n - 1, backend="engine")
        back = wire.result_from_wire(wire.decode_frame(
            wire.encode_frame(wire.result_to_wire(res))))
        assert back == res
        assert all(isinstance(k, int) for k in back.flow)

    def test_graph_roundtrip(self):
        g = make_grid(3, 4, seed=9)
        back = wire.graph_from_wire(wire.decode_frame(
            wire.encode_frame(wire.graph_to_wire(g))))
        assert (back.n, back.edges, back.rotations, back.weights,
                back.capacities) == (g.n, g.edges, g.rotations,
                                     g.weights, g.capacities)

    def test_bad_json_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            wire.decode_frame(b"{not json")
        with pytest.raises(ProtocolError):
            wire.decode_frame(b"[1, 2]")

    def test_version_check(self):
        wire.check_version({"v": PROTOCOL_VERSION})
        with pytest.raises(ProtocolError):
            wire.check_version({"v": PROTOCOL_VERSION + 1})
        with pytest.raises(ProtocolError):
            wire.check_version({})

    def test_exceptions_reconstruct_typed(self):
        exc = wire.exception_from_wire(wire.exception_to_wire(
            ServiceError("unknown graph 'x'")))
        assert isinstance(exc, ServiceError)
        assert "unknown graph 'x'" in str(exc)
        neg = wire.exception_from_wire(wire.exception_to_wire(
            NegativeCycleError("neg", where=5)))
        assert isinstance(neg, NegativeCycleError) and neg.where == 5
        alien = wire.exception_from_wire({"type": "SomethingElse",
                                          "message": "boom"})
        assert isinstance(alien, RemoteError)
        assert alien.remote_type == "SomethingElse"


# ----------------------------------------------------------------------
# catalog snapshot handoff (the pre-fork warm-state capture)
# ----------------------------------------------------------------------
class TestCatalogSnapshot:
    def test_artifacts_survive_pickle_bit_identically(self):
        g = make_grid()
        queries = mixed_queries("g", g)
        catalog = GraphCatalog()
        catalog.register("g", g)
        expected = [execute_query(catalog, q).result for q in queries]
        labeling = catalog.get("g").labeling()

        restored = pickle.loads(
            pickle.dumps(catalog.snapshot())).restore()
        # every artifact answers bit-identically in the new "process"
        got = [execute_query(restored, q).result for q in queries]
        assert got == expected
        # the Theorem 2.1 labels themselves round-tripped exactly
        restored_labeling = restored.get("g").labeling()
        nf = g.num_faces()
        for f in range(0, nf, 3):
            for h in range(0, nf, 2):
                assert restored_labeling.distance(f, h) == \
                    labeling.distance(f, h)

    def test_shipped_artifacts_are_reused_not_rebuilt(self):
        g = make_grid()
        catalog = GraphCatalog()
        catalog.register("g", g)
        solver = catalog.get("g").flow_solver()
        snap = pickle.loads(pickle.dumps(catalog.snapshot()))
        restored = snap.restore()
        # the flow-solver artifact key is fingerprint-stable across
        # processes, so the restored catalog serves from the shipped
        # solver instead of building a new one
        misses_before = restored.artifacts.misses
        restored_solver = restored.get("g").flow_solver()
        assert restored.artifacts.misses == misses_before
        assert restored_solver is not solver  # a pickled copy...
        assert restored_solver.graph is restored.get("g").graph  # ...sharing the restored graph

    def test_compiled_csr_rekeyed_into_shared_cache(self):
        from repro.engine import compile_graph

        g = make_grid()
        catalog = GraphCatalog()
        catalog.register("g", g)
        compiled = catalog.get("g").compiled()
        snap = pickle.loads(pickle.dumps(catalog.snapshot()))
        restored = snap.restore()
        # compile_graph on the restored graph must *hit* the re-keyed
        # shared entry (same arrays), not recompile
        again = compile_graph(restored.get("g").graph)
        assert again is not compiled
        assert list(again.prim_darts) == list(compiled.prim_darts)
        assert again is compile_graph(restored.get("g").graph)

    def test_workspace_pools_rebuilt_per_restore_not_shipped(self):
        g = make_grid()
        catalog = GraphCatalog()
        catalog.register("g", g)
        pool = catalog.get("g").flow_workspace_pool()
        with pool.lease():
            pass
        snap = catalog.snapshot()
        assert ("flow-pool", "g") in snap.skipped
        assert all(key != ("flow-pool", "g") for key, _ in snap.artifacts)
        restored = pickle.loads(pickle.dumps(snap)).restore()
        fresh = restored.get("g").flow_workspace_pool()
        assert fresh is not pool
        assert fresh.created == 0  # rebuilt lazily, not inherited
        with fresh.lease() as ws:
            assert ws is not None

    def test_memoized_results_ship_warm(self):
        g = make_grid()
        catalog = GraphCatalog()
        catalog.register("g", g)
        q = FlowQuery("g", 0, g.n - 1)
        cold = execute_query(catalog, q)
        assert cold.warm is False
        restored = pickle.loads(
            pickle.dumps(catalog.snapshot())).restore()
        assert execute_query(restored, q).warm is True

    def test_pickled_restore_is_isolated_from_source(self):
        g = make_grid()
        catalog = GraphCatalog()
        catalog.register("g", g)
        q = FlowQuery("g", 0, g.n - 1)
        before = execute_query(catalog, q).result
        restored = pickle.loads(
            pickle.dumps(catalog.snapshot())).restore()
        restored.set_weights("g", capacities=[c + 7 for c in
                                              g.capacities])
        changed = execute_query(restored, q).result
        assert changed.value != before.value
        # the source catalog's graph is untouched
        assert execute_query(catalog, q).result == before


# ----------------------------------------------------------------------
# the pre-warmed worker pool
# ----------------------------------------------------------------------
class TestWarmWorkerPool:
    def test_in_process_mode_parity(self):
        g = make_grid()
        queries = mixed_queries("g", g)
        expected = reference_results(g, queries)
        with WarmWorkerPool(workers=0) as pool:
            pool.register("g", g)
            report = pool.run(queries)
        assert report.values() == expected

    def test_forked_pool_parity_and_order(self):
        g = make_grid()
        queries = mixed_queries("g", g) * 3
        expected = reference_results(g, queries[:6])
        with WarmWorkerPool(workers=2) as pool:
            pool.register("g", g)
            pool.prewarm(kinds=("flow", "distance", "girth"))
            report = pool.run(queries)
            assert report.values() == expected * 3
            # prewarmed artifacts mean no worker rebuilt the labeling:
            # the distance queries are label decodes, microseconds
            stats = pool.stats()
        assert stats["by_kind"]["DistanceQuery"]["count"] == 6
        assert len(stats["catalogs"]) == 2

    def test_skewed_mix_uses_every_worker(self):
        g1 = make_grid(4, 4, seed=1)
        g2 = randomize_weights(wheel(9), seed=2,
                               directed_capacities=True)
        queries = [DistanceQuery("a", i % 5, (i + 2) % 5)
                   for i in range(24)] + [GirthQuery("b")]
        with WarmWorkerPool(workers=2) as pool:
            pool.register("a", g1)
            pool.register("b", g2)
            pool.prewarm()
            pool.run(queries)
            occupancy = pool.stats(worker_catalogs=False)["occupancy"]
        # one-shard-per-graph would have pinned 24 queries on one
        # worker; the window dispatcher keeps both busy
        assert all(row["completed"] > 0 for row in occupancy)
        assert sum(row["completed"] for row in occupancy) == 25

    def test_set_weights_propagates_to_workers(self):
        g = make_grid()
        q = FlowQuery("g", 0, g.n - 1)
        new_caps = [c + 5 for c in g.capacities]
        want_new = reference_results(g.copy(capacities=new_caps), [q])[0]
        with WarmWorkerPool(workers=2) as pool:
            pool.register("g", g)
            pool.prewarm(kinds=("flow",))
            old = pool.run([q] * 4).values()
            pool.drain()
            pool.set_weights("g", capacities=new_caps)
            new = pool.run([q] * 4).values()
        assert new[0].value == want_new.value != old[0].value
        assert all(r == new[0] for r in new)

    def test_set_weights_accepts_one_shot_iterables(self):
        # a generator input must reach the master catalog AND the
        # worker broadcast with the same values (regression: the
        # broadcast used to re-consume the exhausted iterator)
        g = make_grid()
        q = FlowQuery("g", 0, g.n - 1)
        new_caps = [c + 5 for c in g.capacities]
        want = reference_results(g.copy(capacities=new_caps), [q])[0]
        with WarmWorkerPool(workers=1) as pool:
            pool.register("g", g)
            pool.run([q])
            pool.drain()
            pool.set_weights("g", capacities=iter(new_caps))
            got = pool.run([q]).values()[0]
        assert got == want

    def test_mutate_weights_no_stale_distances_in_skewed_pool(self):
        # a distance-heavy skew spreads warm labelings across both
        # workers; the mutate broadcast must leave *neither* serving
        # stale labels (leaf_size pinned small so the workers repair
        # rather than rebuild)
        g = make_grid(5, 6, seed=13)
        nf = g.num_faces()
        queries = [DistanceQuery("g", i % nf, (i * 7 + 3) % nf,
                                 leaf_size=10) for i in range(24)]
        edges = {0: g.weights[0] + 11, 7: g.weights[7] + 5}
        with WarmWorkerPool(workers=2) as pool:
            pool.register("g", g)
            pool.run(queries)          # both workers build labelings
            pool.drain()               # in-flight barrier
            report = pool.mutate_weights("g", edges)
            new = pool.run(queries).values()
            occupancy = pool.stats(worker_catalogs=False)["occupancy"]
        assert report["changed_edges"] == 2
        assert g.weights[0] == edges[0]  # master graph repriced
        assert all(row["completed"] > 0 for row in occupancy)
        assert new == reference_results(g, queries)

    def test_mutate_weights_in_process_mode(self):
        g = make_grid()
        q = DistanceQuery("g", 0, 4, leaf_size=10)
        with WarmWorkerPool(workers=0) as pool:
            pool.register("g", g)
            pool.run([q])
            report = pool.mutate_weights("g", {2: g.weights[2] + 9})
            got = pool.run([q]).values()[0]
            audit = pool.audit_labeling("g", leaf_size=10)
        assert any(row["action"] == "repaired"
                   for row in report["labelings"])
        assert got == reference_results(g, [q])[0]
        assert audit["master"]["error"] is None
        assert audit["workers"] == {}

    def test_audit_labeling_covers_every_worker(self):
        g = make_grid()
        with WarmWorkerPool(workers=2) as pool:
            pool.register("g", g)
            pool.run([DistanceQuery("g", 0, 4, leaf_size=10)] * 4)
            pool.drain()
            pool.mutate_weights("g", {1: g.weights[1] + 3})
            audit = pool.audit_labeling("g", leaf_size=10)
        assert audit["master"]["error"] is None
        assert set(audit["workers"]) == {0, 1}
        assert all(rep["error"] is None and rep["labels"] > 0
                   for rep in audit["workers"].values())

    def test_register_after_start_propagates(self):
        g1 = make_grid(4, 4, seed=1)
        g2 = make_grid(3, 4, seed=2)
        q = FlowQuery("late", 0, g2.n - 1)
        expected = reference_results(g2, [q], name="late")[0]
        pool = WarmWorkerPool(workers=2)
        pool.register("early", g1)
        with pool:  # __enter__ forks the workers
            pool.register("late", g2)
            got = [f.result() for f in
                   [pool.submit(q) for _ in range(4)]]
        assert all(r.result == expected for r in got)

    def test_worker_error_propagates_typed(self):
        g = make_grid()
        with WarmWorkerPool(workers=1) as pool:
            pool.register("g", g)
            with pytest.raises(ServiceError, match="unknown graph"):
                pool.submit(FlowQuery("nope", 0, 1)).result()
            # the worker survives the failed query
            assert pool.run([GirthQuery("g")]).values()[0] is not None

    def test_spawn_start_method_snapshot_handoff(self):
        g = make_grid()
        queries = mixed_queries("g", g)
        expected = reference_results(g, queries)
        with WarmWorkerPool(workers=1, start_method="spawn") as pool:
            pool.register("g", g)
            pool.prewarm()
            report = pool.run(queries)
        assert report.values() == expected

    def test_lifecycle_errors(self):
        pool = WarmWorkerPool(workers=0)
        with pytest.raises(ServiceError, match="not started"):
            pool.submit(GirthQuery("g"))
        pool.start()
        with pytest.raises(ServiceError, match="already started"):
            pool.start()
        with pytest.raises(ServiceError, match="unknown prewarm"):
            pool.prewarm(kinds=("flow", "mst"))
        pool.close()
        with pytest.raises(ServiceError, match="closed"):
            pool.submit(GirthQuery("g"))


# ----------------------------------------------------------------------
# socket server end-to-end
# ----------------------------------------------------------------------
@pytest.fixture(scope="class")
def served():
    """A forked 2-worker pool behind a live TCP server, plus the graph
    and a mirror catalog for bit-parity checks."""
    g = make_grid()
    pool = WarmWorkerPool(workers=2)
    pool.register("g", g)
    pool.prewarm(kinds=("flow", "distance", "girth"))
    pool.start()
    server = QueryServer(pool).start_background()
    host, port = server.address
    client = ServiceClient(host, port, timeout=60)
    yield {"g": g, "server": server, "client": client,
           "host": host, "port": port}
    client.close()
    server.shutdown()
    pool.close()


class TestServerEndToEnd:
    def test_ping(self, served):
        pong = served["client"].ping()
        assert pong["pong"] is True
        assert pong["version"] == PROTOCOL_VERSION

    def test_mixed_batch_bit_parity_with_execute_query(self, served):
        g = served["g"]
        queries = mixed_queries("g", g)
        expected = reference_results(g, queries)
        report = served["client"].run(queries)
        assert report.values() == expected
        for r, q in zip(report.results, queries):
            assert r.query == q and r.backend == "engine"

    def test_single_query_roundtrip_each_kind(self, served):
        g = served["g"]
        for q in mixed_queries("g", g):
            expected = reference_results(g, [q])[0]
            assert served["client"].query(q).result == expected

    def test_duplicate_queries_coalesced(self, served):
        g = served["g"]
        q = DistanceQuery("g", 0, 3)
        report = served["client"].run([q] * 5 + [GirthQuery("g")])
        assert len(report.results) == 6
        first = report.results[0]
        # duplicates were served once: they share the first
        # occurrence's result object and count as warm hits with zero
        # serve time — the same accounting run_batch's result cache
        # would report
        for i in range(1, 5):
            dup = report.results[i]
            assert dup.result is first.result
            assert dup.warm is True and dup.seconds == 0.0
        assert report.warm_hits >= 4
        assert first.result == reference_results(g, [q])[0]

    def test_distances_coalesce_one_roundtrip(self, served):
        g = served["g"]
        nf = g.num_faces()
        pairs = [(f, h) for f in range(3) for h in range(nf - 3, nf)]
        values = served["client"].distances("g", pairs)
        labeling = GraphCatalog()
        labeling.register("g", g.copy())
        lab = labeling.get("g").labeling()
        assert values == [lab.distance(f, h) for f, h in pairs]

    def test_register_and_query_over_the_wire(self, served):
        g2 = make_grid(3, 4, seed=21)
        client = served["client"]
        assert client.register("wire-g2", g2) == "wire-g2"
        assert "wire-g2" in client.graphs()
        q = FlowQuery("wire-g2", 0, g2.n - 1)
        assert client.query(q).result == \
            reference_results(g2, [q], name="wire-g2")[0]

    def test_set_weights_over_the_wire(self, served):
        g3 = make_grid(3, 4, seed=22)
        client = served["client"]
        client.register("wire-g3", g3)
        q = FlowQuery("wire-g3", 0, g3.n - 1)
        before = client.query(q).result
        new_caps = [c + 9 for c in g3.capacities]
        client.set_weights("wire-g3", capacities=new_caps)
        after = client.query(q).result
        want = reference_results(g3.copy(capacities=new_caps), [q],
                                 name="wire-g3")[0]
        assert after == want and after.value != before.value

    def test_mutate_weights_over_the_wire(self, served):
        g4 = make_grid(5, 6, seed=23)
        client = served["client"]
        client.register("wire-g4", g4)
        q = DistanceQuery("wire-g4", 0, g4.num_faces() - 1,
                          leaf_size=10)
        before = client.query(q).result
        edges = {0: g4.weights[0] + 11, 3: g4.weights[3] + 7}
        report = client.mutate_weights("wire-g4", edges)
        assert report["graph"] == "wire-g4"
        assert report["changed_edges"] == 2
        after = client.query(q).result
        want = reference_results(
            g4.copy(weights=[edges.get(e, w)
                             for e, w in enumerate(g4.weights)]),
            [q], name="wire-g4")[0]
        assert after == want
        # the workers repaired/dropped in lockstep with the master:
        # every catalog audits clean against a from-scratch rebuild
        audit = client.audit_labeling("wire-g4", leaf_size=10)
        assert audit["master"]["error"] is None
        assert len(audit["workers"]) == 2
        assert all(rep["error"] is None
                   for rep in audit["workers"].values())
        assert before == reference_results(g4, [q],
                                           name="wire-g4")[0]

    def test_mutate_unknown_graph_typed_error(self, served):
        with pytest.raises(ServiceError, match="unknown graph"):
            served["client"].mutate_weights("missing", {0: 1})

    def test_mutate_bad_edges_typed_error(self, served):
        client = served["client"]
        with pytest.raises(ServiceError, match="bad edge id"):
            client.mutate_weights("g", {-1: 5})
        with pytest.raises(ServiceError, match="finite number"):
            client.mutate_weights("g", {0: float("inf")})
        # a malformed frame (edges not a list) is a protocol error,
        # and neither failure killed the connection
        with pytest.raises(ProtocolError, match="edges"):
            client._call("mutate_weights", graph="g", edges="nope")
        assert client.ping()["pong"] is True

    def test_mutation_negative_cycle_surfaces_typed_with_site(self, served):
        # forked pool: the master catalog holds no labeling (queries
        # warm the workers), so the mutate applies the bad weights
        # without raising — the cycle surfaces, typed, at the next
        # query, exactly like a set_weights reprice would
        g5 = make_grid(5, 6, seed=29)
        client = served["client"]
        client.register("wire-g5", g5)
        q = DistanceQuery("wire-g5", 0, 5, leaf_size=10)
        client.query(q)  # warm a labeling somewhere in the pool
        client.mutate_weights("wire-g5", {2: -9})
        with pytest.raises(NegativeCycleError) as info:
            client.query(q)
        # the raise site travelled the wire intact (tuples come back
        # as tuples), identical to what a local fresh build reports
        bad = g5.copy(weights=[(-9 if e == 2 else w)
                               for e, w in enumerate(g5.weights)])
        cat = GraphCatalog()
        cat.register("wire-g5", bad)
        with pytest.raises(NegativeCycleError) as want:
            cat.get("wire-g5").labeling(leaf_size=10)
        assert str(info.value) == str(want.value)
        assert info.value.where == want.value.where
        assert isinstance(info.value.where, type(want.value.where))
        # every catalog reports the same error site through the audit
        audit = client.audit_labeling("wire-g5", leaf_size=10)
        sites = [audit["master"]["error"]] + \
            [rep["error"] for rep in audit["workers"].values()]
        assert all(s == sites[0] and s["type"] == "NegativeCycleError"
                   for s in sites)
        # recovery: a set_weights rollback serves correctly again
        client.set_weights("wire-g5", weights=list(g5.weights))
        assert client.query(q).result == \
            reference_results(g5, [q], name="wire-g5")[0]

    def test_stats_verb(self, served):
        stats = served["client"].stats()
        assert stats["workers"] == 2
        assert {row["worker"] for row in stats["occupancy"]} == {0, 1}
        assert "FlowQuery" in stats["by_kind"]
        assert stats["master"]["artifacts"]["hits"] >= 0
        assert set(stats["catalogs"]) == {"0", "1"}  # JSON object keys

    def test_unknown_graph_raises_service_error(self, served):
        with pytest.raises(ServiceError, match="unknown graph"):
            served["client"].query(FlowQuery("missing", 0, 1))

    def test_protocol_errors_do_not_kill_connection(self, served):
        with socket.create_connection((served["host"], served["port"]),
                                      timeout=30) as sock:
            f = sock.makefile("rwb")
            # bad JSON -> typed error frame
            f.write(b"this is not json\n")
            f.flush()
            frame = wire.decode_frame(f.readline())
            assert frame["ok"] is False
            assert frame["error"]["type"] == "ProtocolError"
            # wrong version -> typed error frame
            f.write(wire.encode_frame({"v": 99, "id": 1,
                                       "verb": "ping"}))
            f.flush()
            frame = wire.decode_frame(f.readline())
            assert frame["ok"] is False
            assert "version" in frame["error"]["message"]
            # unknown verb -> typed error frame
            f.write(wire.encode_frame({"v": PROTOCOL_VERSION, "id": 2,
                                       "verb": "teleport"}))
            f.flush()
            frame = wire.decode_frame(f.readline())
            assert frame["ok"] is False and frame["id"] == 2
            # and the connection still serves real queries
            f.write(wire.encode_frame({
                "v": PROTOCOL_VERSION, "id": 3, "verb": "query",
                "query": wire.query_to_wire(GirthQuery("g"))}))
            f.flush()
            frame = wire.decode_frame(f.readline())
            assert frame["ok"] is True

    def test_client_reconnects_after_server_side_close(self, served):
        client = ServiceClient(served["host"], served["port"],
                               timeout=60)
        assert client.ping()["pong"] is True
        # simulate a dropped connection under the client
        client._sock.close()
        assert client.ping()["pong"] is True
        client.close()


def test_run_sharded_prewarm_signatures_per_graph_and_knob():
    from repro.service.batch import _prewarm_queries

    reps = _prewarm_queries([
        DistanceQuery("a", 0, 1), DistanceQuery("a", 1, 2),
        FlowQuery("b", 0, 9), FlowQuery("b", 3, 7),
        FlowQuery("b", 0, 9, leaf_size=9),   # distinct artifact
        CutQuery("b", 0, 9), GirthQuery("a")])
    # one representative per artifact signature: graph b's flow pairs
    # collapse to one, but the leaf_size variant keeps its own build,
    # and graph b never pays graph a's labeling
    assert reps == [DistanceQuery("a", 0, 1),
                    FlowQuery("b", 0, 9),
                    FlowQuery("b", 0, 9, leaf_size=9),
                    CutQuery("b", 0, 9),
                    GirthQuery("a")]


def test_run_sharded_preserves_callers_shared_cache():
    from repro._artifacts import shared_cache, topo_token
    from repro.service import run_sharded

    mine = make_grid(4, 4, seed=31)       # caller is already serving
    fresh = make_grid(3, 4, seed=32)      # introduced by the call
    max_st_flow(mine, 0, mine.n - 1, backend="engine")  # warm CSR
    assert any(len(k) > 1 and k[1] == topo_token(mine)
               for k in shared_cache().keys())
    run_sharded({"mine": mine, "fresh": fresh},
                [FlowQuery("mine", 0, mine.n - 1),
                 FlowQuery("fresh", 0, fresh.n - 1)], max_workers=1)
    keys = shared_cache().keys()
    # the caller's warm artifacts survive; the call's own graph was
    # swept so the parent process stays clean
    assert any(len(k) > 1 and k[1] == topo_token(mine) for k in keys)
    assert not any(len(k) > 1 and k[1] == topo_token(fresh)
                   for k in keys)


def test_mutate_cycle_raise_travels_wire_from_serving_catalog():
    # workers=0: the server's own catalog serves queries, so it holds
    # the repairable labeling and the *mutate itself* raises the
    # NegativeCycleError over the wire, ``where`` tuple and all
    g = make_grid(5, 6, seed=31)
    server = serve(graphs={"g": g}, workers=0, prewarm=None)
    try:
        with ServiceClient(*server.address, timeout=60) as client:
            q = DistanceQuery("g", 0, 5, leaf_size=10)
            client.query(q)  # warm the serving labeling
            with pytest.raises(NegativeCycleError) as info:
                client.mutate_weights("g", {2: -9})
        cat = GraphCatalog()
        cat.register("g", g.copy(weights=[(-9 if e == 2 else w)
                                          for e, w in
                                          enumerate(g.weights)]))
        with pytest.raises(NegativeCycleError) as want:
            cat.get("g").labeling(leaf_size=10)
        assert str(info.value) == str(want.value)
        assert info.value.where == want.value.where
        assert isinstance(info.value.where, type(want.value.where))
    finally:
        server.shutdown()
        server.pool.close()


def test_serve_helper_builds_and_serves():
    g = make_grid(3, 4, seed=5)
    server = serve(graphs={"g": g}, workers=0, prewarm=("flow",))
    try:
        with ServiceClient(*server.address, timeout=60) as client:
            q = FlowQuery("g", 0, g.n - 1)
            assert client.query(q).result == \
                reference_results(g, [q])[0]
    finally:
        server.shutdown()
        server.pool.close()


# ----------------------------------------------------------------------
# worker-death harness (shared with tests/test_loadgen.py)
# ----------------------------------------------------------------------
def kill_pool_worker(pool, wid=None):
    """Kill one live forked worker outright and wait for the corpse.

    The pool's reaper then fails the corpse's in-flight futures with a
    typed :class:`~repro.errors.ServiceError` and keeps serving on the
    survivors — this helper is the shared way to provoke that path
    (``tests/test_loadgen.py`` drives it mid-load to count the error
    frames).  Returns the killed worker id.
    """
    live = sorted(w for w, p in pool._procs.items()
                  if w not in pool._dead and p.is_alive())
    if not live:
        raise RuntimeError("no live worker left to kill")
    if wid is None:
        wid = live[0]
    proc = pool._procs[wid]
    proc.kill()
    proc.join(timeout=10)
    return wid


def wait_for_reap(pool, wid, timeout=30):
    """Block until the pool has noticed worker ``wid`` is dead."""
    deadline = time.monotonic() + timeout
    while wid not in pool._dead:
        if time.monotonic() > deadline:
            raise TimeoutError(f"pool never reaped worker {wid}")
        time.sleep(0.05)


class TestWorkerDeath:
    def test_pool_survives_killed_worker(self):
        g = make_grid()
        queries = mixed_queries("g", g)
        expected = reference_results(g, queries)
        pool = WarmWorkerPool(workers=2)
        pool.register("g", g)
        pool.prewarm(kinds=("flow", "distance", "girth"))
        with pool:
            wid = kill_pool_worker(pool)
            # submissions racing the reaper either land on the
            # survivor (correct answer) or are failed, typed, by the
            # corpse's cleanup — never hang, never wrong
            futures = [pool.submit(q) for q in queries * 3]
            for f, q in zip(futures, queries * 3):
                try:
                    r = f.result(timeout=120)
                except ServiceError as exc:
                    assert "died" in str(exc)
                else:
                    assert r.result == \
                        expected[queries.index(q)]
            wait_for_reap(pool, wid)
            # after the reap, the survivor serves everything
            report = pool.run(queries)
            assert report.values() == expected

    def test_killed_worker_fails_only_its_inflight_queries(self):
        g = make_grid()
        q = GirthQuery("g")
        expected = reference_results(g, [q])[0]
        pool = WarmWorkerPool(workers=2)
        pool.register("g", g)
        with pool:
            wid = kill_pool_worker(pool)
            wait_for_reap(pool, wid)
            for _ in range(4):
                assert pool.submit(q).result(timeout=120).result \
                    == expected


# ----------------------------------------------------------------------
# per-query batch error frames (duplicate-coalescing regression)
# ----------------------------------------------------------------------
class TestBatchErrorFrames:
    def test_batch_partial_failure_default_raises_typed(self, served):
        client = served["client"]
        with pytest.raises(ServiceError, match="unknown graph"):
            client.run([GirthQuery("g"), FlowQuery("missing", 0, 1)])
        # the failure did not poison the connection or the batch verb
        assert client.run([GirthQuery("g")]).values()[0] is not None

    def test_batch_on_error_return_gives_per_query_outcomes(self, served):
        client = served["client"]
        good, bad = GirthQuery("g"), FlowQuery("missing", 0, 1)
        report = client.run([good, bad, good], on_error="return")
        ok0, err, ok2 = report.results
        assert ok0.error is None and ok0.result is not None
        assert isinstance(err.error, ServiceError)
        assert err.result is None and err.warm is False
        # the duplicate good query still coalesces
        assert ok2.result is ok0.result and ok2.warm is True
        with pytest.raises(ProtocolError, match="on_error"):
            client.run([good], on_error="ignore")

    def test_batch_wire_entries_carry_ok_flags(self, served):
        client = served["client"]
        response = client._call("batch", queries=[
            wire.query_to_wire(GirthQuery("g")),
            wire.query_to_wire(FlowQuery("missing", 0, 1))])
        ok_entry, err_entry = response["results"]
        assert ok_entry["ok"] is True and "result" in ok_entry
        assert err_entry["ok"] is False
        assert err_entry["error"]["type"] == "ServiceError"

    def test_duplicate_queries_never_share_an_error_frame(self, served):
        # regression: identical DistanceQuerys coalesced in one batch
        # used to resolve to one shared exception after a
        # NegativeCycleError — two load-gen connections (or one
        # retry) would alias the same error object.  Every occurrence
        # must now rebuild its own, value-identical instance.
        g6 = make_grid(5, 6, seed=29)
        client = served["client"]
        client.register("wire-g6", g6)
        q = DistanceQuery("wire-g6", 0, 5, leaf_size=10)
        client.query(q)                       # warm a labeling
        client.mutate_weights("wire-g6", {2: -9})
        report = client.run([q, q], on_error="return")
        e0, e1 = (r.error for r in report.results)
        assert isinstance(e0, NegativeCycleError)
        assert isinstance(e1, NegativeCycleError)
        assert e0 is not e1                   # fresh per occurrence
        assert str(e0) == str(e1) and e0.where == e1.where
        assert isinstance(e0.where, tuple)    # site travelled intact
        # retry safety: resending the batch yields equal but again
        # distinct errors (nothing cached client- or server-side)
        retry = client.run([q, q], on_error="return")
        e2 = retry.results[0].error
        assert e2 is not e0 and e2 is not e1
        assert str(e2) == str(e0) and e2.where == e0.where
        # default mode raises the typed error
        with pytest.raises(NegativeCycleError):
            client.run([q, q])
        # recovery: rollback reprices and the same batch serves real
        # results again, duplicate coalescing included
        client.set_weights("wire-g6", weights=list(g6.weights))
        healed = client.run([q, q])
        want = reference_results(g6, [q], name="wire-g6")[0]
        assert healed.values() == [want, want]
        assert healed.results[1].warm is True


# ----------------------------------------------------------------------
# CLI end-to-end (subprocess, as CI runs it — incl. no-numpy env)
# ----------------------------------------------------------------------
class TestServerCLI:
    def test_subprocess_server_serves_mixed_batch(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.server", "--port", "0",
             "--workers", "1", "--rows", "3", "--cols", "4",
             "--seed", "5", "--prewarm", "flow,distance"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
            text=True)
        try:
            line = proc.stdout.readline()
            assert "repro.server listening on" in line, line
            addr = line.split("listening on ")[1].split(" ")[0]
            host, port = addr.rsplit(":", 1)
            g = randomize_weights(grid(3, 4), seed=5,
                                  directed_capacities=True)
            queries = mixed_queries("grid-3x4", g)
            expected = reference_results(g, queries, name="grid-3x4")
            deadline = time.monotonic() + 60
            with ServiceClient(host, int(port), timeout=60) as client:
                while True:
                    try:
                        client.ping()
                        break
                    except OSError:
                        if time.monotonic() > deadline:
                            raise
                        time.sleep(0.1)
                report = client.run(queries)
            assert report.values() == expected
        finally:
            proc.terminate()
            proc.wait(timeout=15)
