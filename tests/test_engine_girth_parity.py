"""Backend parity for the girth / global-min-cut theorem family:
the engine (array Dijkstra + dart-simple cycle) backend must reproduce
the legacy (minor-aggregation / labeling) backend — values, witness
cycles, canonical cut sides, bisections — including the failure modes
and the numpy-free fallback.  DESIGN.md §7 documents the contract.

Global min-cut parity is *structural*: the engine kernel replicates the
legacy two-best Dijkstra heap tuples, so entire result dataclasses are
compared.  Girth parity is compared field by field — both backends
certify a minimum-weight simple cycle and normalize the dual side
through :func:`repro.engine.cycles.cycle_side_faces`; the instances
below have unique minima, so the witnesses coincide too.
"""

import os
import subprocess
import sys

import pytest

from repro.baselines.centralized import (
    centralized_directed_global_mincut,
    centralized_weighted_girth,
)
from repro.congest import RoundLedger
from repro.core import (
    directed_global_mincut,
    directed_weighted_girth,
    weighted_girth,
)
from repro.engine.cycles import (
    DartCycleOracle,
    cycle_side_faces,
    min_dart_simple_cycle,
    primal_cycle_arcs,
)
from repro.planar.dual import cut_edges_of_dual_cut, is_simple_cycle
from repro.planar.generators import (
    bidirect,
    grid,
    path,
    random_planar,
    randomize_weights,
)


def _girth_instances():
    return [
        ("grid", randomize_weights(grid(6, 7), seed=31)),
        ("grid-wide-weights", randomize_weights(grid(5, 5), high=200,
                                                seed=32)),
        ("delaunay", randomize_weights(random_planar(45, seed=33),
                                       seed=33)),
        ("sparse-delaunay", randomize_weights(
            random_planar(40, seed=34, keep=0.8), seed=34)),
    ]


def _mincut_instances():
    return [
        ("bidirected-delaunay", bidirect(
            randomize_weights(random_planar(16, seed=41), seed=41),
            seed=41)),
        ("bidirected-grid", bidirect(
            randomize_weights(grid(4, 4), seed=42), seed=42)),
        ("sparse-digraph", randomize_weights(random_planar(18, seed=43),
                                             seed=43)),
    ]


# ----------------------------------------------------------------------
# weighted girth (Theorem 1.7)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,g", _girth_instances())
def test_girth_parity(name, g):
    a = weighted_girth(g, backend="legacy")
    b = weighted_girth(g, backend="engine")
    assert b.value == a.value == centralized_weighted_girth(g)
    assert b.cycle_edge_ids == a.cycle_edge_ids
    assert b.cut_side_faces == a.cut_side_faces
    assert is_simple_cycle(g, b.cycle_edge_ids)
    assert sum(g.weights[e] for e in b.cycle_edge_ids) == b.value


def test_girth_engine_cycle_cuts_the_dual():
    g = randomize_weights(grid(5, 6), seed=35)
    res = weighted_girth(g, backend="engine")
    recovered = cut_edges_of_dual_cut(g, res.cut_side_faces)
    assert sorted(recovered) == res.cycle_edge_ids
    assert 0 not in res.cut_side_faces  # canonical: face 0 stays outside


def test_girth_engine_unaudited_rounds():
    g = randomize_weights(grid(4, 5), seed=36)
    led = RoundLedger()
    res = weighted_girth(g, ledger=led, backend="engine")
    assert led.total() == 0
    assert res.ma_rounds == 0 and res.congest_rounds == 0


@pytest.mark.parametrize("backend", ["legacy", "engine"])
def test_girth_forest_returns_none(backend):
    assert weighted_girth(path(7), backend=backend) is None


def test_girth_parallel_dual_edges():
    # 2x2 grid: the girth is the boundary 4-cycle; its dual cut bundles
    # all four parallel dual edges (Lemma 4.15 on the legacy path, the
    # one-cycle primal sweep on the engine path)
    g = randomize_weights(grid(2, 2), seed=37)
    a = weighted_girth(g)
    b = weighted_girth(g, backend="engine")
    assert a.value == b.value == sum(g.weights)
    assert a.cycle_edge_ids == b.cycle_edge_ids == [0, 1, 2, 3]
    assert a.cut_side_faces == b.cut_side_faces


# ----------------------------------------------------------------------
# directed girth ([36] comparator)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(3))
def test_directed_girth_parity(seed):
    base = randomize_weights(random_planar(16 + seed, seed=seed),
                             seed=seed + 50)
    g = bidirect(base, seed=seed)
    a = directed_weighted_girth(g, leaf_size=12, backend="legacy")
    b = directed_weighted_girth(g, backend="engine")
    assert b.value == a.value
    assert b.witness_edge == a.witness_edge


@pytest.mark.parametrize("backend", ["legacy", "engine"])
def test_directed_girth_dag_returns_none(backend):
    # a grid with all edges oriented rightward/downward has no cycle
    g = randomize_weights(grid(3, 4), seed=51)
    assert directed_weighted_girth(g, leaf_size=10,
                                   backend=backend) is None


# ----------------------------------------------------------------------
# directed global min-cut (Theorem 1.5)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,g", _mincut_instances())
def test_global_mincut_parity(name, g):
    a = directed_global_mincut(g, leaf_size=12, backend="legacy")
    b = directed_global_mincut(g, leaf_size=12, backend="engine")
    assert a == b  # full dataclass: value, side, cut edges, cycle darts
    assert a.value == centralized_directed_global_mincut(g)


def test_global_mincut_parity_across_leaf_sizes():
    """The recursion shape changes with leaf_size; parity must hold for
    every BDD the two backends share."""
    g = bidirect(randomize_weights(random_planar(15, seed=44), seed=44),
                 seed=44)
    for leaf_size in (6, 10, 20):
        a = directed_global_mincut(g, leaf_size=leaf_size)
        b = directed_global_mincut(g, leaf_size=leaf_size,
                                   backend="engine")
        assert a == b


def test_global_mincut_engine_unaudited_rounds():
    g = bidirect(randomize_weights(grid(3, 4), seed=45), seed=45)
    led = RoundLedger()
    directed_global_mincut(g, leaf_size=10, ledger=led, backend="engine")
    assert led.total() == 0


@pytest.mark.parametrize("backend", ["legacy", "engine"])
def test_global_mincut_disconnected_fails(backend):
    from repro.errors import NotConnectedError
    from repro.planar import PlanarGraph

    g = PlanarGraph(4, [(0, 1), (2, 3)], [[0], [1], [2], [3]],
                    weights=[1, 1])
    with pytest.raises(NotConnectedError):
        directed_global_mincut(g, leaf_size=4, backend=backend)


# ----------------------------------------------------------------------
# backend validation + kernel internals
# ----------------------------------------------------------------------
def test_unknown_backend_rejected():
    g = randomize_weights(grid(3, 4), seed=46)
    with pytest.raises(ValueError):
        weighted_girth(g, backend="engnie")
    with pytest.raises(ValueError):
        directed_weighted_girth(g, backend="fast")
    with pytest.raises(ValueError):
        directed_global_mincut(bidirect(g, seed=0), backend="Engine")
    from repro.aggregation.dual_sim import DualMAHost

    with pytest.raises(ValueError):
        DualMAHost(g, backend="numpy")
    with pytest.raises(ValueError):
        DualMAHost(g).engine_cycle_oracle()


def test_cycle_oracle_matches_reference_kernel():
    """DartCycleOracle vs the legacy _min_cycle_through on the same dual
    arc set — per-candidate, without pruning."""
    from repro.core.global_mincut import _arc_index, _min_cycle_through
    from repro.bdd import build_bdd, build_all_dual_bags

    g = bidirect(randomize_weights(random_planar(14, seed=47), seed=47),
                 seed=47)
    lengths = {}
    for eid in range(g.m):
        lengths[2 * eid] = g.weights[eid]
        lengths[2 * eid + 1] = 0
    bdd = build_bdd(g, leaf_size=8)
    duals = build_all_dual_bags(bdd)
    oracle = DartCycleOracle(g.num_faces())
    from repro.planar.graph import rev

    for bag in bdd.bags:
        dual = duals[bag.bag_id]
        candidates = sorted(dual.nodes) if bag.is_leaf else sorted(dual.f_x)
        if not candidates:
            continue
        arcs = _arc_index(g, dual, lengths)
        oracle.load_arcs(
            [(d, g.face_of[d], g.face_of[rev(d)], lengths[d])
             for d in dual.arc_darts])
        for f in candidates:
            ref = _min_cycle_through(g, arcs, f, lengths)
            got = oracle.min_cycle_through(f)
            assert got == ref, (bag.bag_id, f)


def test_oracle_buffer_reuse_across_loads():
    """Reloading the oracle with a different arc set must not leak
    labels, adjacency or node order from the previous load."""
    g1 = randomize_weights(grid(4, 4), seed=48)
    g2 = randomize_weights(random_planar(20, seed=49), seed=49)
    n_ids = max(g1.n, g2.n)
    oracle = DartCycleOracle(n_ids)
    for g in (g1, g2, g1):
        oracle.load_arcs(primal_cycle_arcs(g))
        best = min_dart_simple_cycle(oracle, range(g.n))
        cycle = sorted({d >> 1 for d in best[1]})
        assert best[0] == centralized_weighted_girth(g)
        assert sum(g.weights[e] for e in cycle) == best[0]


def test_cycle_side_faces_canonical():
    g = randomize_weights(grid(4, 5), seed=52)
    res = weighted_girth(g, backend="engine")
    side = cycle_side_faces(g, res.cycle_edge_ids)
    assert side == res.cut_side_faces
    assert side == sorted(side)
    assert 0 not in side


# ----------------------------------------------------------------------
# numpy-free fallback
# ----------------------------------------------------------------------
def test_no_numpy_fallback_parity():
    """The whole girth/min-cut family — including the legacy tree
    packing, which used to hard-require numpy — runs without numpy and
    stays backend-parous (REPRO_ENGINE_NO_NUMPY is read at import time,
    hence the subprocess)."""
    code = (
        "from repro._compat import np\n"
        "assert np is None\n"
        "from repro.core import (weighted_girth, directed_weighted_girth,"
        " directed_global_mincut)\n"
        "from repro.planar.generators import bidirect, grid,"
        " randomize_weights\n"
        "g = randomize_weights(grid(4, 5), seed=3)\n"
        "a = weighted_girth(g); b = weighted_girth(g, backend='engine')\n"
        "assert (a.value, a.cycle_edge_ids, a.cut_side_faces) == \\\n"
        "    (b.value, b.cycle_edge_ids, b.cut_side_faces)\n"
        "gd = bidirect(randomize_weights(grid(3, 4), seed=1), seed=1)\n"
        "x = directed_global_mincut(gd, leaf_size=10)\n"
        "y = directed_global_mincut(gd, leaf_size=10, backend='engine')\n"
        "assert x == y\n"
        "p = directed_weighted_girth(gd, leaf_size=10)\n"
        "q = directed_weighted_girth(gd, backend='engine')\n"
        "assert (p.value, p.witness_edge) == (q.value, q.witness_edge)\n"
        "print('OK')\n"
    )
    env = dict(os.environ, REPRO_ENGINE_NO_NUMPY="1",
               PYTHONPATH="src" + os.pathsep
               + os.environ.get("PYTHONPATH", ""))
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, timeout=300,
                          cwd=os.path.dirname(os.path.dirname(
                              os.path.abspath(__file__))))
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "OK"
