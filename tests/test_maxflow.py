"""Tests for exact maximum st-flow (Theorem 1.2)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.congest import RoundLedger
from repro.core import (
    PlanarMaxFlow,
    flow_value_networkx,
    max_st_flow,
    validate_flow,
)
from repro.core.flow_utils import undirected_st_path_darts
from repro.errors import InfeasibleFlowError
from repro.planar.generators import (
    cylinder,
    grid,
    random_planar,
    randomize_weights,
    wheel,
)


class TestExactValue:
    @pytest.mark.parametrize("seed", range(4))
    def test_grid_directed(self, seed):
        g = randomize_weights(grid(4, 5), seed=seed,
                              directed_capacities=True)
        ref = flow_value_networkx(g, 0, g.n - 1, directed=True)
        res = max_st_flow(g, 0, g.n - 1, directed=True, leaf_size=12)
        assert res.value == ref

    @pytest.mark.parametrize("seed", range(4))
    def test_random_planar_directed(self, seed):
        g = randomize_weights(random_planar(35, seed=seed), seed=seed + 7,
                              directed_capacities=True)
        rng = random.Random(seed)
        s, t = rng.sample(range(g.n), 2)
        ref = flow_value_networkx(g, s, t, directed=True)
        res = max_st_flow(g, s, t, directed=True, leaf_size=14)
        assert res.value == ref

    @pytest.mark.parametrize("seed", range(3))
    def test_undirected(self, seed):
        g = randomize_weights(cylinder(3, 7), seed=seed)
        ref = flow_value_networkx(g, 0, g.n - 1, directed=False)
        res = max_st_flow(g, 0, g.n - 1, directed=False, leaf_size=12)
        assert res.value == ref

    def test_zero_flow_when_no_directed_path(self):
        # orient all edges away from t: nothing can reach it
        g = grid(3, 3)
        # grid edges are oriented toward increasing ids; flow INTO vertex
        # 0 is impossible
        res = max_st_flow(g, 8, 0, directed=True, leaf_size=10)
        assert res.value == 0

    def test_small_wheel(self):
        g = randomize_weights(wheel(7), seed=3, directed_capacities=True)
        ref = flow_value_networkx(g, 0, 3, directed=True)
        res = max_st_flow(g, 0, 3, directed=True)
        assert res.value == ref


class TestAssignment:
    def test_assignment_feasible_and_conserving(self):
        g = randomize_weights(grid(4, 4), seed=9, directed_capacities=True)
        res = max_st_flow(g, 0, 15, directed=True, leaf_size=10,
                          validate=False)
        validate_flow(g, 0, 15, res.flow, res.value, directed=True)

    def test_assignment_undirected(self):
        g = randomize_weights(grid(4, 4), seed=2)
        res = max_st_flow(g, 0, 15, directed=False, leaf_size=10,
                          validate=False)
        validate_flow(g, 0, 15, res.flow, res.value, directed=False)

    def test_integral_value(self):
        g = randomize_weights(grid(3, 5), seed=1, directed_capacities=True)
        res = max_st_flow(g, 0, 14, directed=True)
        assert res.value == int(res.value)


class TestSolverReuse:
    def test_solver_multiple_pairs(self):
        g = randomize_weights(grid(4, 4), seed=5, directed_capacities=True)
        solver = PlanarMaxFlow(g, directed=True, leaf_size=10)
        for (s, t) in [(0, 15), (3, 12), (5, 10)]:
            ref = flow_value_networkx(g, s, t, directed=True)
            assert solver.solve(s, t).value == ref

    def test_rejects_equal_endpoints(self):
        g = grid(3, 3)
        with pytest.raises(InfeasibleFlowError):
            max_st_flow(g, 4, 4)

    def test_probe_count_logarithmic(self):
        import math

        g = randomize_weights(grid(4, 4), seed=8, directed_capacities=True)
        res = max_st_flow(g, 0, 15, directed=True, leaf_size=10)
        assert res.probes <= math.ceil(
            math.log2(sum(g.capacities) + 2)) + 3


class TestRounds:
    def test_ledger_records_probes_and_labels(self):
        led = RoundLedger()
        g = randomize_weights(grid(4, 4), seed=0, directed_capacities=True)
        max_st_flow(g, 0, 15, directed=True, leaf_size=10, ledger=led)
        phases = led.by_phase()
        assert any(k.startswith("labeling/") for k in phases)
        assert any(k.startswith("maxflow/") for k in phases)

    def test_path_darts_form_st_path(self):
        g = grid(4, 4)
        darts = undirected_st_path_darts(g, 0, 15)
        assert g.tail(darts[0]) == 0
        assert g.head(darts[-1]) == 15
        for a, b in zip(darts, darts[1:]):
            assert g.head(a) == g.tail(b)


class TestPropertyBased:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_random_flows_match_networkx(self, seed):
        rng = random.Random(seed)
        g = randomize_weights(
            random_planar(20 + seed % 20, seed=seed % 30, keep=0.9),
            seed=seed, directed_capacities=True)
        s, t = rng.sample(range(g.n), 2)
        ref = flow_value_networkx(g, s, t, directed=True)
        res = max_st_flow(g, s, t, directed=True,
                          leaf_size=10 + seed % 8)
        assert res.value == ref
        validate_flow(g, s, t, res.flow, res.value, directed=True)
