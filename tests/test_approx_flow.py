"""Tests for the approximate st-planar max-flow (Theorem 1.3) and the
approximate min st-cut (Theorem 6.2)."""

import pytest

from repro.congest import RoundLedger
from repro.core import (
    approx_max_st_flow,
    flow_value_networkx,
    validate_flow,
    verify_st_cut,
)
from repro.core.approx_maxflow import common_face, split_dual
from repro.errors import InfeasibleFlowError
from repro.planar.generators import (
    cylinder,
    grid,
    outerplanar_fan,
    randomize_weights,
)


class TestCommonFace:
    def test_grid_corners_share_outer_face(self):
        g = grid(4, 5)
        assert common_face(g, 0, g.n - 1) is not None

    def test_grid_interior_pair_shares_inner_face(self):
        g = grid(3, 3)
        f = common_face(g, 0, 4)
        assert f is not None

    def test_no_common_face(self):
        g = grid(5, 5)
        # center and corner of a 5x5 grid share no face
        assert common_face(g, 12, 0) is None

    def test_split_assigns_every_dart(self):
        g = grid(4, 4)
        f = common_face(g, 0, 15)
        num_nodes, node_of, f1, f2 = split_dual(g, 0, 15, f)
        assert num_nodes == g.num_faces() + 1
        sides = {node_of(d) for d in g.faces[f]}
        assert sides == {f1, f2}


class TestApproxValue:
    @pytest.mark.parametrize("seed", range(4))
    def test_value_within_eps(self, seed):
        eps = 0.2
        g = randomize_weights(grid(5, 6), seed=seed)
        s, t = 0, g.n - 1
        ref = flow_value_networkx(g, s, t, directed=False)
        res = approx_max_st_flow(g, s, t, eps=eps, seed=seed)
        assert res.value <= ref + 1e-9
        assert res.value >= (1 - 2 * eps) * ref

    def test_tighter_eps_tighter_value(self):
        g = randomize_weights(grid(4, 6), seed=5)
        ref = flow_value_networkx(g, 0, g.n - 1, directed=False)
        loose = approx_max_st_flow(g, 0, g.n - 1, eps=0.4, seed=1)
        tight = approx_max_st_flow(g, 0, g.n - 1, eps=0.05, seed=1)
        assert tight.value >= (1 - 0.12) * ref
        assert loose.value <= ref + 1e-9

    def test_fan_instance(self):
        g = randomize_weights(outerplanar_fan(9), seed=2)
        # all vertices on the outer face: any pair works
        ref = flow_value_networkx(g, 0, 5, directed=False)
        res = approx_max_st_flow(g, 0, 5, eps=0.25, seed=3)
        assert (1 - 0.5) * ref <= res.value <= ref + 1e-9

    def test_rejects_non_st_planar_pair(self):
        g = grid(5, 5)
        with pytest.raises(InfeasibleFlowError):
            approx_max_st_flow(g, 12, 0)


class TestApproxAssignment:
    @pytest.mark.parametrize("seed", range(3))
    def test_assignment_feasible(self, seed):
        g = randomize_weights(grid(4, 7), seed=seed)
        res = approx_max_st_flow(g, 0, g.n - 1, eps=0.3, seed=seed,
                                 validate=False)
        validate_flow(g, 0, g.n - 1, res.flow, res.value, directed=False)

    def test_cylinder(self):
        g = randomize_weights(cylinder(3, 6), seed=4)
        s, t = 0, 5  # same rim => same face
        f = common_face(g, s, t)
        if f is None:
            pytest.skip("rim pair not co-facial in this embedding")
        res = approx_max_st_flow(g, s, t, eps=0.25, seed=4)
        validate_flow(g, s, t, res.flow, res.value, directed=False)


class TestApproxCut:
    @pytest.mark.parametrize("seed", range(3))
    def test_cut_valid_and_near_optimal(self, seed):
        eps = 0.2
        g = randomize_weights(grid(5, 5), seed=seed)
        s, t = 0, g.n - 1
        ref = flow_value_networkx(g, s, t, directed=False)
        res = approx_max_st_flow(g, s, t, eps=eps, seed=seed)
        assert verify_st_cut(g, s, t, res.cut_edge_ids, directed=False)
        assert res.cut_capacity >= ref - 1e-9          # cuts upper-bound
        assert res.cut_capacity <= (1 + 2 * eps) * ref  # near-optimal

    def test_rounds_charged(self):
        led = RoundLedger()
        g = randomize_weights(grid(4, 4), seed=1)
        approx_max_st_flow(g, 0, 15, eps=0.3, seed=1, ledger=led)
        assert any("approx-flow" in k for k in led.by_phase())
