"""Property tests for the dynamic-scenario workload engine
(DESIGN.md §12): scenario generation is byte-deterministic under a
seed, replays are bit-identical across serving surfaces (in-process
catalog, warm worker pool, full socket stack), and every mutation
epoch passes its ``audit_labeling`` checkpoint.

All graphs here are tiny on purpose — the suite runs in the no-numpy
CI job, where labeling builds are pure Python.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    NegativeCycleError,
    ReplayDivergenceError,
    ServiceError,
)
from repro.planar.generators import grid, randomize_weights
from repro.server import QueryServer, ServiceClient, WarmWorkerPool
from repro.service import DistanceQuery, FlowQuery, GraphCatalog
from repro.workload import (
    CatalogExecutor,
    ClientExecutor,
    GraphSpec,
    MutateWeights,
    PoolExecutor,
    QueryBurst,
    Scenario,
    assert_replay_parity,
    evacuation_scenario,
    flood_scenario,
    make_scenario,
    outage_scenario,
    random_scenario,
    reference_replay,
    replay_scenario,
)

LEAF = 4  # multi-bag BDDs on tiny graphs, so repair/audit really run


def tiny_random(seed):
    """A hypothesis-sized random scenario (a few dozen queries max)."""
    return random_scenario(seed, max_rows=4, max_cols=5, max_epochs=2,
                           max_queries=5)


# ----------------------------------------------------------------------
# scenario determinism
# ----------------------------------------------------------------------
class TestScenarioDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**9))
    def test_same_seed_byte_identical_event_stream(self, seed):
        s1, s2 = tiny_random(seed), tiny_random(seed)
        assert s1 == s2
        assert s1.encode() == s2.encode()

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_distinct_seeds_distinct_streams(self, seed):
        # not a hard guarantee of randomness, but the generators must
        # at least thread the seed: adjacent seeds never collide
        assert tiny_random(seed).encode() != \
            tiny_random(seed + 1).encode()

    @pytest.mark.parametrize("kind", ["evacuation", "outage", "flood"])
    def test_named_generators_deterministic_and_wellformed(self, kind):
        kwargs = {"rows": 4, "cols": 5, "queries_per_epoch": 3}
        s1 = make_scenario(kind, **kwargs)
        s2 = make_scenario(kind, **kwargs)
        assert s1.encode() == s2.encode()
        assert s1.query_count() > 0
        assert s1.mutation_epochs() > 0
        # graphs rebuild identically from the spec
        (name, spec), = s1.graphs
        ga, gb = spec.build(), spec.build()
        assert list(ga.weights) == list(gb.weights)
        assert list(ga.capacities) == list(gb.capacities)
        assert ga.edges == gb.edges

    def test_events_must_be_time_sorted(self):
        spec = GraphSpec("grid", 3, 4)
        with pytest.raises(ServiceError, match="sorted"):
            Scenario("bad", 0, graphs=(("g", spec),),
                     events=(QueryBurst(2.0, (FlowQuery("g", 0, 5),)),
                             MutateWeights(1.0, "g", ((0, 3),))))

    def test_unknown_family_rejected(self):
        with pytest.raises(ServiceError, match="family"):
            GraphSpec("torus", 3, 4).build()
        with pytest.raises(ServiceError, match="scenario kind"):
            make_scenario("rush-hour")


# ----------------------------------------------------------------------
# replay determinism + audit checkpoints (in-process)
# ----------------------------------------------------------------------
class TestReferenceReplay:
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_replay_twice_bit_identical(self, seed):
        scenario = tiny_random(seed)
        log1 = reference_replay(scenario, leaf_size=LEAF)
        log2 = reference_replay(scenario, leaf_size=LEAF)
        assert_replay_parity(log1, log2)
        assert log1.signature() == log2.signature()
        assert log1.digest() == log2.digest()

    def test_audit_checkpoint_after_every_mutation_epoch(self):
        scenario = evacuation_scenario(rows=4, cols=5, epochs=3,
                                       queries_per_epoch=3,
                                       edges_per_epoch=2)
        log = reference_replay(scenario, leaf_size=LEAF)
        audits = log.audit_checkpoints()
        assert len(audits) == scenario.mutation_epochs() == 3
        assert [a["epoch"] for a in audits] == [1, 2, 3]
        for a in audits:
            assert a["audit"]["error"] is None
            assert a["audit"]["labels"] > 0
        assert len(log.query_outcomes()) == scenario.query_count()

    def test_flood_set_weights_path_audits_green(self):
        scenario = flood_scenario(rows=3, cols=5, stages=(2, 1),
                                  queries_per_epoch=3)
        log = reference_replay(scenario, leaf_size=LEAF)
        assert all(a["audit"]["error"] is None
                   for a in log.audit_checkpoints())

    def test_divergence_detected_and_typed(self):
        scenario = outage_scenario(rows=3, cols=5, epochs=1,
                                   queries_per_epoch=3)
        log1 = reference_replay(scenario, leaf_size=LEAF)
        log2 = reference_replay(scenario, leaf_size=LEAF)
        # corrupt one signed query outcome
        victim = next(r for r in log2.records if r.kind == "query")
        victim.payload["outcome"] = {"ok": False, "error": {
            "type": "ServiceError", "message": "doctored"}}
        with pytest.raises(ReplayDivergenceError, match="diverged"):
            assert_replay_parity(log1, log2)
        log3 = reference_replay(scenario, leaf_size=LEAF,
                                audit=False)
        with pytest.raises(ReplayDivergenceError, match="lengths"):
            assert_replay_parity(log1, log3)


# ----------------------------------------------------------------------
# cross-surface bit-parity
# ----------------------------------------------------------------------
class TestCrossSurfaceParity:
    def test_pool_replay_matches_reference(self):
        scenario = evacuation_scenario(rows=4, cols=5, epochs=2,
                                       queries_per_epoch=4,
                                       edges_per_epoch=2)
        reference = reference_replay(scenario, leaf_size=LEAF)
        pool = WarmWorkerPool(workers=2)
        for name, g in scenario.build_graphs().items():
            pool.register(name, g)
        with pool:
            served = replay_scenario(scenario, PoolExecutor(pool),
                                     leaf_size=LEAF)
        assert_replay_parity(served, reference)

    def test_over_the_wire_replay_matches_reference(self):
        scenario = outage_scenario(rows=3, cols=6, epochs=2,
                                   queries_per_epoch=4)
        reference = reference_replay(scenario, leaf_size=LEAF)
        pool = WarmWorkerPool(workers=2)
        for name, g in scenario.build_graphs().items():
            pool.register(name, g)
        pool.prewarm()
        pool.start()
        server = QueryServer(pool).start_background()
        try:
            with ServiceClient(*server.address, timeout=60) as client:
                served = replay_scenario(
                    scenario, ClientExecutor(client), leaf_size=LEAF)
        finally:
            server.shutdown()
            pool.close()
        assert_replay_parity(served, reference)

    def test_in_process_pool_mode_matches_reference(self):
        # workers=0: the pool serves from its own catalog under a lock
        scenario = flood_scenario(rows=3, cols=5, stages=(3,),
                                  queries_per_epoch=4)
        reference = reference_replay(scenario, leaf_size=LEAF)
        with WarmWorkerPool(workers=0) as pool:
            for name, g in scenario.build_graphs().items():
                pool.register(name, g)
            served = replay_scenario(scenario, PoolExecutor(pool),
                                     leaf_size=LEAF)
        assert_replay_parity(served, reference)

    def test_negative_cycle_outcomes_are_bit_parity_checked(self):
        # a mutation that creates a negative dual cycle: the raise
        # surfaces at mutate time in-process (the catalog holds the
        # labeling) but at query time on the pool — the signature must
        # carry the identical typed error through the *query* outcomes
        # and the audit checkpoint on every surface
        base = randomize_weights(grid(5, 6), seed=29,
                                 directed_capacities=True)
        spec = GraphSpec("grid", 5, 6, seed=29)
        assert list(spec.build().weights) == list(base.weights)
        probe = (DistanceQuery("g", 0, 5, leaf_size=LEAF),
                 DistanceQuery("g", 1, 3, leaf_size=LEAF))
        scenario = Scenario(
            "neg-cycle", 29, graphs=(("g", spec),),
            events=(QueryBurst(0.0, probe),
                    MutateWeights(1.0, "g", ((2, -9),), epoch=1),
                    QueryBurst(2.0, probe)))
        reference = reference_replay(scenario, leaf_size=LEAF)
        outcomes = reference.query_outcomes()
        assert outcomes[0]["outcome"]["ok"] is True
        assert outcomes[2]["outcome"]["ok"] is False
        err = outcomes[2]["outcome"]["error"]
        assert err["type"] == "NegativeCycleError" and "where" in err
        audit = reference.audit_checkpoints()[0]["audit"]
        assert audit["error"]["type"] == "NegativeCycleError"

        pool = WarmWorkerPool(workers=2)
        pool.register("g", spec.build())
        pool.start()
        server = QueryServer(pool).start_background()
        try:
            with ServiceClient(*server.address, timeout=60) as client:
                served = replay_scenario(
                    scenario, ClientExecutor(client), leaf_size=LEAF)
        finally:
            server.shutdown()
            pool.close()
        assert_replay_parity(served, reference)
