"""Tests for the embedded planar graph substrate."""

import pytest

from repro.errors import EmbeddingError
from repro.planar import PlanarGraph, SubgraphView, rev
from repro.planar.generators import (
    cylinder,
    grid,
    ladder,
    outerplanar_fan,
    path,
    random_planar,
    triangulated_disk,
    wheel,
)


def triangle():
    """Hand-built triangle used to pin down orientation conventions."""
    edges = [(0, 1), (1, 2), (2, 0)]
    rotations = [
        [5, 0],  # at 0: dart to 2 (rev of e2), dart to 1
        [2, 1],  # at 1: dart to 2, dart to 0
        [4, 3],  # at 2: dart to 0, dart to 1
    ]
    return PlanarGraph(3, edges, rotations)


class TestDartArithmetic:
    def test_rev_involution(self):
        g = triangle()
        for d in g.darts():
            assert rev(rev(d)) == d
            assert g.tail(d) == g.head(rev(d))

    def test_tail_head(self):
        g = triangle()
        assert g.tail(0) == 0 and g.head(0) == 1
        assert g.tail(1) == 1 and g.head(1) == 0

    def test_degree_and_neighbors(self):
        g = triangle()
        assert all(g.degree(v) == 2 for v in range(3))
        assert sorted(g.neighbors(0)) == [1, 2]


class TestFaces:
    def test_triangle_faces(self):
        g = triangle()
        assert g.num_faces() == 2
        orbits = {frozenset(f) for f in g.faces}
        assert frozenset({0, 2, 4}) in orbits
        assert frozenset({1, 3, 5}) in orbits

    def test_each_dart_in_exactly_one_face(self):
        g = grid(4, 5)
        seen = {}
        for fid, f in enumerate(g.faces):
            for d in f:
                assert d not in seen
                seen[d] = fid
        assert len(seen) == g.num_darts

    def test_face_lengths_sum_to_darts(self):
        for g in (grid(3, 7), wheel(9), outerplanar_fan(8)):
            assert sum(len(f) for f in g.faces) == g.num_darts

    def test_grid_face_count(self):
        g = grid(4, 6)
        # (rows-1)*(cols-1) internal faces + outer face
        assert g.num_faces() == 3 * 5 + 1

    def test_tree_has_single_face(self):
        g = path(7)
        assert g.num_faces() == 1
        assert len(g.faces[0]) == g.num_darts

    def test_corner_face_bijection(self):
        g = grid(3, 4)
        # corners of face f == length of f's dart cycle
        from collections import Counter

        corner_counts = Counter()
        for v in range(g.n):
            for i in range(g.degree(v)):
                corner_counts[g.corner_face(v, i)] += 1
        for fid, f in enumerate(g.faces):
            assert corner_counts[fid] == len(f)


class TestEuler:
    @pytest.mark.parametrize("maker", [
        lambda: grid(2, 2),
        lambda: grid(5, 9),
        lambda: cylinder(4, 8),
        lambda: wheel(12),
        lambda: outerplanar_fan(10),
        lambda: ladder(15),
        lambda: path(9),
    ])
    def test_euler_formula(self, maker):
        g = maker()
        assert g.check_euler()

    def test_bad_rotation_rejected(self):
        # Swapping two darts in a degree-4 rotation changes the genus:
        # the rotation system stays valid but Euler's formula fails.
        g = wheel(4)
        rotations = [list(r) for r in g.rotations]
        hub = 4
        rotations[hub][0], rotations[hub][1] = \
            rotations[hub][1], rotations[hub][0]
        bad = PlanarGraph(g.n, g.edges, rotations)
        with pytest.raises(EmbeddingError):
            bad.check_euler()

    def test_dart_missing_rejected(self):
        with pytest.raises(EmbeddingError):
            PlanarGraph(3, [(0, 1), (1, 2), (2, 0)], [[5, 0], [2, 1], [4]])

    def test_wrong_tail_rejected(self):
        with pytest.raises(EmbeddingError):
            PlanarGraph(3, [(0, 1), (1, 2), (2, 0)], [[5, 1], [2, 0], [4, 3]])


class TestTraversals:
    def test_bfs_distances_grid(self):
        g = grid(4, 4)
        dist, parent = g.bfs(0)
        assert dist[0] == 0
        assert dist[15] == 6  # manhattan distance corner to corner
        assert parent[0] == -1
        for v in range(1, 16):
            assert g.head(parent[v]) == v

    def test_diameter(self):
        assert grid(3, 3).diameter() == 4
        assert wheel(20).diameter() == 2
        assert ladder(10).diameter() == 10

    def test_connected_components(self):
        g = grid(2, 3)
        assert g.is_connected()

    def test_eccentricity(self):
        g = grid(3, 3)
        assert g.eccentricity(4) == 2  # center of 3x3
        assert g.eccentricity(0) == 4


class TestGenerators:
    def test_cylinder_wraps(self):
        g = cylinder(3, 6)
        assert g.n == 18
        assert g.check_euler()
        # every vertex in middle row has degree 4
        assert g.degree(6 + 2) == 4

    def test_random_planar(self):
        g = random_planar(40, seed=1)
        assert g.n == 40
        assert g.is_connected()
        assert g.check_euler()

    def test_random_planar_sparsified(self):
        g = random_planar(40, seed=2, keep=0.7)
        assert g.is_connected()
        assert g.check_euler()

    def test_triangulated_disk(self):
        g = triangulated_disk(4)
        assert g.is_connected()
        assert g.check_euler()

    def test_randomize_weights(self):
        from repro.planar.generators import randomize_weights

        g = randomize_weights(grid(3, 3), low=2, high=9, seed=7)
        assert all(2 <= w <= 9 for w in g.weights)
        assert g.capacities == g.weights


class TestSubgraphView:
    def test_view_faces_of_full_graph_match(self):
        g = grid(3, 4)
        view = SubgraphView(g, range(g.m))
        assert len(view.faces) == g.num_faces()

    def test_view_restricted_edges(self):
        g = grid(3, 3)
        # keep only the outer boundary cycle
        boundary = []
        for eid, (u, v) in enumerate(g.edges):
            ru, cu = divmod(u, 3)
            rv, cv = divmod(v, 3)
            if (ru in (0, 2) and rv in (0, 2) and ru == rv) or \
               (cu in (0, 2) and cv in (0, 2) and cu == cv):
                boundary.append(eid)
        view = SubgraphView(g, boundary)
        assert view.is_connected()
        assert len(view.faces) == 2  # inside and outside of the 8-cycle

    def test_view_bfs(self):
        g = grid(4, 4)
        view = SubgraphView(g, range(g.m))
        dist, parent = view.bfs(0)
        assert dist[15] == 6

    def test_full_face_stays_intact_in_view(self):
        # Dropping edges NOT on a face leaves that face's dart orbit
        # unchanged (the property Section 5.1 relies on).
        g = grid(3, 3)
        target_face = None
        for fid, f in enumerate(g.faces):
            if len(f) == 4:
                target_face = fid
                break
        face_edges = {d >> 1 for d in g.faces[target_face]}
        keep = set(face_edges)
        # add a connecting path of other edges
        for eid in range(g.m):
            keep.add(eid)
        keep = sorted(keep - {next(iter(
            eid for eid in range(g.m)
            if eid not in face_edges and _edge_not_adjacent_to_face(
                g, eid, target_face)))})
        view = SubgraphView(g, keep)
        orbits = {frozenset(f) for f in view.faces}
        assert frozenset(g.faces[target_face]) in orbits

    def test_components(self):
        g = grid(1, 6)  # path with 5 edges
        view = SubgraphView(g, [0, 1, 3, 4])
        comps = view.connected_edge_components()
        assert sorted(map(tuple, comps)) == [(0, 1), (3, 4)]


def _edge_not_adjacent_to_face(g, eid, fid):
    return g.face_of[2 * eid] != fid and g.face_of[2 * eid + 1] != fid
