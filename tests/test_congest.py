"""Tests for the message-level CONGEST simulator and primitives."""

import pytest

from repro.congest import CongestNetwork, NodeProgram, RoundLedger
from repro.congest.bellman_ford import run_bellman_ford
from repro.congest.primitives import (
    run_bfs,
    run_convergecast_sum,
    run_pipelined_broadcast,
)
from repro.errors import SimulationError
from repro.planar.generators import grid, wheel


def adjacency_of(pg):
    return [pg.neighbors(v) for v in range(pg.n)]


class TestNetwork:
    def test_empty_programs_halt(self):
        net = CongestNetwork([[1], [0]])

        class Noop(NodeProgram):
            def step(self, ctx, inbox):
                self.halted = True
                return {}

        _, stats = net.run({0: Noop(), 1: Noop()})
        assert stats.rounds <= 1

    def test_send_to_non_neighbor_rejected(self):
        net = CongestNetwork([[1], [0], []])

        class Bad(NodeProgram):
            def step(self, ctx, inbox):
                self.halted = True
                if ctx.node == 0:
                    return {2: ("x", 1)}
                return {}

        with pytest.raises(SimulationError):
            net.run({v: Bad() for v in range(3)})

    def test_message_accounting(self):
        g = grid(3, 3)
        _, _, stats = run_bfs(adjacency_of(g), 0)
        assert stats.messages > 0
        assert stats.bandwidth_violations == 0


class TestBfs:
    def test_bfs_distances(self):
        g = grid(4, 4)
        dist, parent, stats = run_bfs(adjacency_of(g), 0)
        ref, _ = g.bfs(0)
        assert [dist[v] for v in range(g.n)] == ref
        # BFS completes in depth + O(1) rounds
        assert stats.rounds <= max(ref) + 2

    def test_bfs_parents_form_tree(self):
        g = wheel(10)
        dist, parent, _ = run_bfs(adjacency_of(g), 0)
        for v in range(1, g.n):
            assert parent[v] != -1
            assert dist[parent[v]] == dist[v] - 1


class TestBroadcast:
    def test_all_receive_all_tokens(self):
        g = grid(3, 4)
        tokens = list(range(7))
        received, stats = run_pipelined_broadcast(adjacency_of(g), 0, tokens)
        for v in range(g.n):
            assert sorted(received[v]) == tokens

    def test_pipelining_round_bound(self):
        # depth + k + O(1), not depth * k
        g = grid(2, 10)
        dist, _, _ = run_bfs(adjacency_of(g), 0)
        depth = max(dist.values())
        k = 15
        _, stats = run_pipelined_broadcast(adjacency_of(g), 0,
                                           list(range(k)))
        assert stats.rounds <= depth + k + 3


class TestConvergecast:
    def test_sum(self):
        g = grid(3, 3)
        values = {v: v + 1 for v in range(g.n)}
        total, _ = run_convergecast_sum(adjacency_of(g), 4, values)
        assert total == sum(values.values())


class TestBellmanFord:
    def test_distances(self):
        g = grid(3, 3)
        weights = {}
        for eid, (u, v) in enumerate(g.edges):
            weights[(u, v)] = eid % 3 + 1
            weights[(v, u)] = eid % 3 + 1
        dist, neg, _ = run_bellman_ford(adjacency_of(g), weights, 0)
        assert not neg
        import networkx as nx

        nxg = nx.DiGraph()
        for (u, v), w in weights.items():
            nxg.add_edge(u, v, weight=w)
        ref = nx.single_source_bellman_ford_path_length(nxg, 0)
        for v in range(g.n):
            assert dist[v] == ref[v]

    def test_negative_edges_ok(self):
        adjacency = [[1], [0, 2], [1]]
        weights = {(0, 1): 5, (1, 0): 5, (1, 2): -3, (2, 1): 4}
        dist, neg, _ = run_bellman_ford(adjacency, weights, 0)
        assert not neg
        assert dist[2] == 2

    def test_negative_cycle_detected(self):
        adjacency = [[1], [0, 2], [1]]
        weights = {(0, 1): 1, (1, 0): -2, (1, 2): 1, (2, 1): 1}
        dist, neg, _ = run_bellman_ford(adjacency, weights, 0)
        assert neg

    def test_round_complexity_is_linear(self):
        g = grid(2, 6)
        weights = {}
        for u, v in g.edges:
            weights[(u, v)] = 1
            weights[(v, u)] = 1
        _, _, stats = run_bellman_ford(adjacency_of(g), weights, 0)
        assert stats.rounds >= g.n  # the naive schedule really is Θ(n)


class TestLedger:
    def test_charges_accumulate(self):
        led = RoundLedger()
        led.charge(10, "a")
        led.charge(5, "a", detail="more")
        led.charge(3, "b")
        assert led.total() == 18
        assert led.by_phase() == {"a": 15, "b": 3}

    def test_scoped(self):
        led = RoundLedger()
        sub = led.scoped("bdd")
        sub.charge(4, "separator")
        sub.scoped("level0").charge_bfs(7, "tree")
        assert led.by_phase() == {"bdd/separator": 4,
                                  "bdd/level0/tree": 7}

    def test_broadcast_formula(self):
        led = RoundLedger()
        led.charge_broadcast(num_messages=12, depth=5, phase="x")
        assert led.total() == 17

    def test_min_one_round(self):
        led = RoundLedger()
        led.charge(0, "x")
        assert led.total() == 1

    def test_report_contains_phases(self):
        led = RoundLedger()
        led.charge(2, "alpha")
        rep = led.report()
        assert "alpha" in rep and "TOTAL" in rep
