"""Tests for the face-disjoint graph Ĝ (Section 3, Properties 1-5)."""

import networkx as nx
import pytest

from repro.planar import DualGraph
from repro.planar.face_disjoint import FaceDisjointGraph
from repro.planar.generators import (
    grid,
    outerplanar_fan,
    path,
    random_planar,
    wheel,
)


@pytest.fixture(params=[
    lambda: grid(3, 4),
    lambda: grid(5, 5),
    lambda: wheel(8),
    lambda: outerplanar_fan(7),
    lambda: random_planar(30, seed=5),
    lambda: path(6),
])
def primal(request):
    return request.param()


class TestStructure:
    def test_vertex_count(self, primal):
        g_hat = FaceDisjointGraph(primal)
        expected = primal.n + sum(primal.degree(v) for v in range(primal.n))
        assert g_hat.num_vertices == expected

    def test_edge_counts(self, primal):
        g_hat = FaceDisjointGraph(primal)
        assert len(g_hat.es_edges) == 2 * primal.m          # one per dart
        assert len(g_hat.er_edge_of_dart) == 2 * primal.m   # one per dart
        assert len(g_hat.ec_edge_of_edge) == primal.m       # one per edge

    def test_property_1_planarity(self, primal):
        g_hat = FaceDisjointGraph(primal)
        ok, _ = nx.check_planarity(g_hat.to_networkx())
        assert ok, "Ĝ must be planar (Property 1)"

    def test_property_2_diameter(self, primal):
        g_hat = FaceDisjointGraph(primal)
        d = primal.diameter()
        nxg = g_hat.to_networkx()
        d_hat = nx.diameter(nxg)
        assert d_hat <= 3 * d + 6, f"diam(Ĝ)={d_hat} too large vs D={d}"

    def test_owner_vertex(self, primal):
        g_hat = FaceDisjointGraph(primal)
        for v in range(primal.n):
            assert g_hat.owner_vertex(g_hat.star_center(v)) == v
            for k in range(primal.degree(v)):
                assert g_hat.owner_vertex(g_hat.corner_copy(v, k)) == v


class TestProperty4Faces:
    def test_er_components_are_faces(self, primal):
        g_hat = FaceDisjointGraph(primal)
        comps = g_hat.er_components()
        assert len(comps) == primal.num_faces()

    def test_face_cycles_vertex_disjoint(self, primal):
        g_hat = FaceDisjointGraph(primal)
        seen = set()
        for fid in range(primal.num_faces()):
            cyc = g_hat.face_cycle_vertices(fid)
            assert len(cyc) == len(primal.faces[fid])
            for x in cyc:
                assert x not in seen, "face cycles must be vertex-disjoint"
                seen.add(x)

    def test_face_of_corner_consistent(self, primal):
        g_hat = FaceDisjointGraph(primal)
        for fid in range(primal.num_faces()):
            for x in g_hat.face_cycle_vertices(fid):
                assert g_hat.face_of_corner(x) == fid

    def test_leaders_unique(self, primal):
        g_hat = FaceDisjointGraph(primal)
        leaders = {g_hat.face_leader(f) for f in range(primal.num_faces())}
        assert len(leaders) == primal.num_faces()


class TestProperty5Ec:
    def test_ec_edges_connect_the_two_face_cycles(self, primal):
        g_hat = FaceDisjointGraph(primal)
        dual = DualGraph(primal)
        for eid, (a, b) in g_hat.ec_edge_of_edge.items():
            f, g = dual.arc(2 * eid)
            fa = g_hat.face_of_corner(a)
            fb = g_hat.face_of_corner(b)
            assert {fa, fb} == {f, g}, (
                f"E_C edge of {eid} joins faces {fa},{fb}, dual says {f},{g}")

    def test_ec_bijection_to_dual_edges(self, primal):
        g_hat = FaceDisjointGraph(primal)
        assert len(g_hat.ec_edge_of_edge) == primal.m
