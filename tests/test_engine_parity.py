"""Backend parity: the engine (array/CSR) backend must reproduce the
legacy (dict/labeling) backend bit-for-bit — flow values and
assignments, cut bisections and weights, dual distances and SSSP trees
— including the failure modes (infeasible flow, negative cycles).
DESIGN.md §6 documents why this is the engine's contract.
"""

import random

import pytest

from repro.bdd import build_bdd
from repro.core import (
    approx_max_st_flow,
    flow_value_networkx,
    max_st_flow,
    min_st_cut,
)
from repro.engine import FlowWorkspace, compile_graph
from repro.errors import InfeasibleFlowError, NegativeCycleError
from repro.labeling import DualDistanceLabeling, dual_sssp, dual_sssp_engine
from repro.planar import DualGraph
from repro.planar.generators import (
    cylinder,
    grid,
    random_planar,
    randomize_weights,
)


def _instances():
    return [
        ("grid", randomize_weights(grid(5, 7), seed=11,
                                   directed_capacities=True)),
        ("cylinder", randomize_weights(cylinder(4, 7), seed=12,
                                       directed_capacities=True)),
        ("delaunay", randomize_weights(random_planar(45, seed=13), seed=13,
                                       directed_capacities=True)),
        ("sparse-delaunay", randomize_weights(
            random_planar(40, seed=14, keep=0.8), seed=14,
            directed_capacities=True)),
    ]


@pytest.mark.parametrize("name,g", _instances())
def test_maxflow_parity(name, g):
    s, t = 0, g.n - 1
    a = max_st_flow(g, s, t, directed=True, backend="legacy")
    b = max_st_flow(g, s, t, directed=True, backend="engine")
    assert b.value == a.value == flow_value_networkx(g, s, t, directed=True)
    assert b.flow == a.flow
    assert b.probes == a.probes
    assert b.path_darts == a.path_darts


def test_maxflow_parity_undirected():
    g = randomize_weights(grid(5, 6), seed=21)
    s, t = 0, g.n - 1
    a = max_st_flow(g, s, t, directed=False, backend="legacy")
    b = max_st_flow(g, s, t, directed=False, backend="engine")
    assert b.value == a.value
    assert b.flow == a.flow


@pytest.mark.parametrize("name,g", _instances()[:2])
def test_mincut_parity(name, g):
    s, t = 0, g.n - 1
    a = min_st_cut(g, s, t, directed=True, backend="legacy")
    b = min_st_cut(g, s, t, directed=True, backend="engine")
    assert b.value == a.value
    assert b.source_side == a.source_side
    assert b.cut_edge_ids == a.cut_edge_ids
    assert b.flow == a.flow


def _mixed_lengths(g, seed):
    """Mixed-sign dual arc lengths that stay negative-cycle-free: the
    λ-residual profile of the *maximum* flow along a BFS path — exactly
    the shape of the last feasible Miller–Naor probe, with genuinely
    negative arcs."""
    from repro.core.flow_utils import undirected_st_path_darts
    from repro.core.maxflow import dart_capacities

    lam = max_st_flow(g, 0, g.n - 1, directed=True,
                      backend="engine").value
    cap = dart_capacities(g, directed=True)
    path = set(undirected_st_path_darts(g, 0, g.n - 1))
    lengths = {}
    for d in g.darts():
        ln = cap[d]
        if d in path:
            ln -= lam
        if (d ^ 1) in path:
            ln += lam
        lengths[d] = ln
    return lengths


def test_dual_sssp_parity():
    g = randomize_weights(random_planar(45, seed=3), seed=3,
                          directed_capacities=True)
    lengths = _mixed_lengths(g, seed=3)
    lab = DualDistanceLabeling(build_bdd(g), lengths)
    a = dual_sssp(lab, source=0)
    b = dual_sssp_engine(g, lengths, source=0)
    assert a.dist == b.dist
    assert a.tree_darts == b.tree_darts
    assert a.parent_dart == b.parent_dart


def test_label_distances_match_engine():
    g = randomize_weights(grid(4, 6), seed=5, directed_capacities=True)
    lengths = _mixed_lengths(g, seed=5)
    lab = DualDistanceLabeling(build_bdd(g), lengths)
    dg = DualGraph(g)
    for src in (0, 2):
        dist = dg.bellman_ford(src, lengths, backend="engine")
        for f in range(dg.num_nodes):
            assert lab.distance(src, f) == dist[f]


def test_dual_bellman_ford_backend_parity():
    g = randomize_weights(random_planar(40, seed=9), seed=9)
    dg = DualGraph(g)
    rng = random.Random(9)
    lengths = {d: (g.weights[d >> 1] if d % 2 == 0 else rng.randint(0, 3))
               for d in g.darts()}
    for src in (0, 1, 5):
        assert dg.bellman_ford(src, lengths) == \
            dg.bellman_ford(src, lengths, backend="engine")


def test_negative_cycle_parity():
    g = randomize_weights(grid(4, 5), seed=2)
    dg = DualGraph(g)
    lengths = {d: -1 for d in g.darts()}
    with pytest.raises(NegativeCycleError):
        dg.bellman_ford(0, lengths)
    with pytest.raises(NegativeCycleError):
        dg.bellman_ford(0, lengths, backend="engine")


@pytest.mark.parametrize("backend", ["legacy", "engine"])
def test_infeasible_modes(backend):
    g = randomize_weights(grid(4, 5), seed=1, directed_capacities=True)
    with pytest.raises(InfeasibleFlowError):
        max_st_flow(g, 0, 0, backend=backend)
    caps = list(g.capacities)
    caps[3] = -5
    bad = g.copy(capacities=caps)
    with pytest.raises(InfeasibleFlowError):
        max_st_flow(bad, 0, bad.n - 1, backend=backend)


def test_approx_flow_engine_exact():
    g = randomize_weights(grid(5, 7), seed=4)
    s, t = 0, g.n - 1
    ref = flow_value_networkx(g, s, t, directed=False)
    res = approx_max_st_flow(g, s, t, eps=0.25, seed=1, backend="engine")
    # exact potentials: the "approximation" collapses to the optimum,
    # and the dual shortest path dualizes to a minimum cut
    assert res.value == pytest.approx(ref)
    assert res.cut_capacity == pytest.approx(ref)
    assert res.ma_rounds == 0
    legacy = approx_max_st_flow(g, s, t, eps=0.25, seed=1, backend="legacy")
    assert legacy.value <= res.value + 1e-9
    assert legacy.cut_capacity >= res.cut_capacity - 1e-9


def test_workspace_reuse_and_fallback_kernels():
    """The vectorized kernels and the pure-Python SPFA fallbacks agree,
    and a workspace stays correct across repeated reloads."""
    g = randomize_weights(random_planar(35, seed=6), seed=6,
                          directed_capacities=True)
    ws = FlowWorkspace(compile_graph(g))
    lengths = _mixed_lengths(g, seed=6)
    ws.load_lengths(lengths)
    for src in (0, 3):
        if ws._vec is not None:
            vec = [x for x in ws.sssp(src)]
            spfa = [x for x in ws._spfa_sssp(src, track_parents=False)]
            assert vec == spfa
    # probe kernels agree on both signs of the answer
    ws.load_lengths(lengths)
    assert ws.has_negative_cycle() is False
    if ws._vec is not None:
        assert ws._spfa_probe() is False
    neg = {d: -1 for d in g.darts()}
    ws.load_lengths(neg)
    assert ws.has_negative_cycle() is True
    if ws._vec is not None:
        assert ws._spfa_probe() is True
    # reload restores the feasible profile
    ws.load_lengths(lengths)
    assert ws.has_negative_cycle() is False


def test_unknown_backend_rejected_everywhere():
    g = randomize_weights(grid(3, 4), seed=1, directed_capacities=True)
    with pytest.raises(ValueError):
        max_st_flow(g, 0, g.n - 1, backend="engnie")
    with pytest.raises(ValueError):
        min_st_cut(g, 0, g.n - 1, backend="fast")
    with pytest.raises(ValueError):
        approx_max_st_flow(g, 0, g.n - 1, backend="Engine")
    with pytest.raises(ValueError):
        DualGraph(g).bellman_ford(0, {d: 1 for d in g.darts()},
                                  backend="numpy")


def test_engine_backend_leaves_ledger_unaudited():
    from repro.congest import RoundLedger

    g = randomize_weights(grid(4, 5), seed=8, directed_capacities=True)
    led = RoundLedger()
    max_st_flow(g, 0, g.n - 1, backend="engine", ledger=led)
    min_st_cut(g, 0, g.n - 1, backend="engine", ledger=led)
    approx_max_st_flow(randomize_weights(grid(4, 5), seed=8), 0, 19,
                       backend="engine", ledger=led)
    assert led.total() == 0


def test_track_parents_unreachable_faces():
    """Faces in a different component of the dual keep parent -1."""
    from repro.planar import PlanarGraph

    g = PlanarGraph(4, [(0, 1), (2, 3)], [[0], [1], [2], [3]])
    ws = FlowWorkspace(compile_graph(g))
    ws.load_lengths({d: 1 for d in g.darts()})
    src = g.face_of[0]
    other = g.face_of[2]
    dist = ws.sssp(src, track_parents=True)
    assert dist[other] == float("inf")
    assert ws.parent_dart[other] == -1
    assert ws.parent_dart[src] == -1


def test_compile_graph_cached():
    g = grid(4, 4)
    assert compile_graph(g) is compile_graph(g)
    c = compile_graph(g)
    assert c.num_faces == g.num_faces()
    # dual CSR covers every dart exactly once
    assert sorted(c.dual_arc_dart) == list(range(c.num_darts))
    for d in range(c.num_darts):
        s = c.slot_of_dart[d]
        assert c.dual_arc_dart[s] == d
        assert c.dual_arc_head[s] == c.face_right[d]
    # primal CSR mirrors the rotation system
    assert c.prim_darts == [d for rot in g.rotations for d in rot]
    assert c.prim_indptr[-1] == c.num_darts
