"""Property-based invariants (hypothesis) on the core data structures:
planar duality identities, separator statistics, minor-aggregation model
laws, smoothing contracts, and a message-level grounding of the Ĝ
communication scaffold."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.aggregation import MinorAggregationGraph
from repro.aggregation.smoothing import smoothness_defect
from repro.aggregation.sssp_ma import ApproxSsspOracle
from repro.planar import DualGraph, SubgraphView, rev
from repro.planar.face_disjoint import FaceDisjointGraph
from repro.planar.generators import (
    grid,
    random_planar,
    randomize_weights,
    wheel,
)
from repro.planar.separator import fundamental_cycle_separator

planar_seeds = st.integers(min_value=0, max_value=10**6)


def make_graph(seed):
    kind = seed % 3
    if kind == 0:
        return grid(2 + seed % 5, 3 + (seed // 7) % 6)
    if kind == 1:
        return random_planar(16 + seed % 30, seed=seed % 50)
    return random_planar(20 + seed % 20, seed=seed % 40,
                         keep=0.7 + (seed % 3) / 10)


class TestDualityInvariants:
    @settings(max_examples=20, deadline=None)
    @given(planar_seeds)
    def test_dual_euler(self, seed):
        g = make_graph(seed)
        # duality swaps n and f, keeps m: dual node count + primal n
        # - m = 2 for connected graphs
        assert g.num_faces() + g.n - g.m == 2

    @settings(max_examples=20, deadline=None)
    @given(planar_seeds)
    def test_arc_reversal_involution(self, seed):
        g = make_graph(seed)
        dual = DualGraph(g)
        for d in g.darts():
            t, h = dual.arc(d)
            t2, h2 = dual.arc(rev(d))
            assert (t, h) == (h2, t2)

    @settings(max_examples=15, deadline=None)
    @given(planar_seeds)
    def test_face_degree_sum(self, seed):
        g = make_graph(seed)
        assert sum(len(f) for f in g.faces) == 2 * g.m

    @settings(max_examples=10, deadline=None)
    @given(planar_seeds)
    def test_ghat_size_formula(self, seed):
        g = make_graph(seed)
        gh = FaceDisjointGraph(g)
        assert gh.num_vertices == g.n + 2 * g.m
        assert len(gh.er_edge_of_dart) == 2 * g.m
        assert len(gh.ec_edge_of_edge) == g.m


class TestSeparatorInvariants:
    @settings(max_examples=15, deadline=None)
    @given(planar_seeds)
    def test_separator_balance_and_partition(self, seed):
        g = make_graph(seed)
        if g.m < 6:
            return
        view = SubgraphView(g, range(g.m))
        sep = fundamental_cycle_separator(view)
        assert sep.inside_darts | sep.outside_darts == set(view.darts())
        assert not (sep.inside_darts & sep.outside_darts)
        assert 0 < sep.balance <= 1.0

    @settings(max_examples=10, deadline=None)
    @given(planar_seeds)
    def test_cycle_is_tree_path_plus_chord(self, seed):
        g = make_graph(seed)
        if g.m < 6:
            return
        view = SubgraphView(g, range(g.m))
        sep = fundamental_cycle_separator(view)
        # consecutive cycle vertices are joined by the recorded edges
        assert len(sep.cycle_edge_ids) == len(sep.cycle_vertices) - 1
        verts = sep.cycle_vertices
        for i, eid in enumerate(sep.cycle_edge_ids):
            u, v = g.edges[eid]
            assert {u, v} == {verts[i], verts[i + 1]} or \
                {u, v} <= set(verts)


class TestMinorAggregationLaws:
    def random_ma(self, seed):
        g = make_graph(seed)
        return g, MinorAggregationGraph(
            list(range(g.n)), g.edges,
            weights=[1 + (seed + i) % 7 for i in range(g.m)])

    @settings(max_examples=15, deadline=None)
    @given(planar_seeds)
    def test_contract_monotone(self, seed):
        g, ma = self.random_ma(seed)
        before = len(ma.supernode_members())
        ma.contract({0: True})
        after = len(ma.supernode_members())
        assert after in (before, before - 1)

    @settings(max_examples=15, deadline=None)
    @given(planar_seeds)
    def test_consensus_is_fold_per_component(self, seed):
        g, ma = self.random_ma(seed)
        flags = {eid: (eid % 2 == 0) for eid in range(g.m)}
        ma.contract(flags)
        vals = {v: v for v in range(g.n)}
        out = ma.consensus(vals, max)
        groups = ma.supernode_members()
        for root, members in groups.items():
            expected = max(members)
            for v in members:
                assert out[v] == expected

    @settings(max_examples=10, deadline=None)
    @given(planar_seeds)
    def test_aggregate_counts_minor_degree(self, seed):
        g, ma = self.random_ma(seed)
        out = ma.aggregate(lambda e, a, b: (1, 1), lambda a, b: a + b)
        # per supernode: number of incident non-self minor edges
        for v in range(g.n):
            deg = sum(1 for e in ma.edges
                      if ma.find(e.u) != ma.find(e.v)
                      and ma.find(v) in (ma.find(e.u), ma.find(e.v)))
            assert (out[v] or 0) == deg


class TestOracleContracts:
    @settings(max_examples=8, deadline=None)
    @given(planar_seeds, st.sampled_from([0.05, 0.2, 0.5]))
    def test_oracle_sandwich(self, seed, eps):
        g = randomize_weights(make_graph(seed), seed=seed)
        oracle = ApproxSsspOracle(g.n, g.edges, g.weights, eps, seed=seed)
        d, _ = oracle.query(0)
        from repro.baselines.centralized import centralized_sssp

        exact = centralized_sssp(g, 0)
        for v in range(g.n):
            assert exact[v] - 1e-9 <= d[v] <= (1 + eps) * exact[v] + 1e-9

    def test_raw_oracle_really_violates_smoothness(self):
        # the smoothing step exists for a reason: with a large enough
        # eps the raw estimates break the per-edge certificate on some
        # seed (we look for one witness across seeds)
        g = randomize_weights(random_planar(40, seed=2), seed=2)
        worst = 0.0
        for seed in range(10):
            oracle = ApproxSsspOracle(g.n, g.edges, g.weights, 0.9,
                                      seed=seed)
            d, _ = oracle.query(0)
            worst = max(worst, smoothness_defect(g.edges, g.weights, d))
        assert worst > 1.0  # some edge violates d(v)-d(u) <= w


class TestGhatMessageLevel:
    def test_face_identification_runs_on_messages(self):
        """Property 4 grounded: the Ĝ[E_R] component detection — the
        distributed face-identification step — executed message by
        message on the CONGEST simulator over Ĝ."""
        from repro.congest.network import CongestNetwork, NodeProgram

        g = grid(3, 3)
        gh = FaceDisjointGraph(g)
        # adjacency restricted to E_R
        er_adj = {x: set() for x in range(gh.num_vertices)}
        for (a, b) in gh.er_edge_of_dart.values():
            er_adj[a].add(b)
            er_adj[b].add(a)
        er_adj = {x: sorted(nbrs) for x, nbrs in er_adj.items()}

        class MinLabel(NodeProgram):
            def __init__(self):
                super().__init__()
                self.label = None

            def setup(self, ctx):
                self.label = ctx.node

            def step(self, ctx, inbox):
                new = min([self.label] +
                          [m[1] for m in inbox.values() if m[0] == "ml"])
                changed = new != self.label
                self.label = new
                self.halted = not changed and ctx.round_no > 1
                if changed or ctx.round_no == 1:
                    return {w: ("ml", self.label)
                            for w in ctx.neighbors}
                return {}

        net = CongestNetwork(er_adj)
        programs = {x: MinLabel() for x in net.nodes}
        programs, stats = net.run(programs)

        # labels computed distributively == face leaders
        for fid in range(g.num_faces()):
            cyc = gh.face_cycle_vertices(fid)
            labels = {programs[x].label for x in cyc}
            assert labels == {gh.face_leader(fid)}
        # convergence within O(max face length) rounds
        assert stats.rounds <= max(len(f) for f in g.faces) + 3
