"""Property-based audit of incremental label repair (DESIGN.md §11):
random sequences of ``mutate_weights`` / ``set_weights`` / query calls
must leave the catalog's delta-repaired Theorem 2.1 labeling
*bit-identical* to a fresh-catalog full rebuild after every step —
same label chains, same decoded distances (values AND Python types),
and the same ``NegativeCycleError`` message/``where`` site when the
mutated weights contain a negative dual cycle.

Every test pins a small ``leaf_size``: at the default
:func:`~repro.bdd.build.default_leaf_size` these graphs compile to a
single bag, where ``mutate_weights`` always falls back to a rebuild
and the repair path would never execute.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import build_bdd
from repro.errors import AuditError, NegativeCycleError, ServiceError
from repro.labeling import DualDistanceLabeling
from repro.planar.generators import (
    cylinder,
    grid,
    random_planar,
    randomize_weights,
)
from repro.service import DistanceQuery, FlowQuery, GraphCatalog
from repro.service.catalog import default_dual_lengths

#: small leaf => multi-bag BDDs, so the delta-repair path actually runs
LEAF = 8

#: the graph families of the mutation audit: square and skewed grids,
#: a graph with genus-like structure (cylinder), and irregular random
#: planar triangulation remnants
FAMILIES = {
    "grid": lambda: grid(6, 6),
    "wide-grid": lambda: grid(3, 12),
    "cylinder": lambda: cylinder(3, 8),
    "random-planar": lambda: random_planar(40, seed=5),
}


def make_family(name, seed=11):
    return randomize_weights(FAMILIES[name](), seed=seed,
                             directed_capacities=True)


def mixed_lengths(g, seed=0):
    """Negative lengths without negative cycles (potential shifts)."""
    rng = random.Random(seed)
    base = {d: rng.randint(1, 10) for d in g.darts()}
    phi = {f: rng.randint(-8, 8) for f in range(g.num_faces())}
    return (base, phi,
            {d: base[d] + phi[g.face_of[d]] - phi[g.face_of[d ^ 1]]
             for d in g.darts()})


def assert_bit_parity(cat, name, g, pairs, leaf_size=LEAF):
    """The served labeling must match a fresh-catalog rebuild bit for
    bit: ``audit_labeling`` compares the label chains (values and
    types), and the decoded distances must agree the same way."""
    report = cat.audit_labeling(name, leaf_size=leaf_size)
    assert report["error"] is None and report["labels"] > 0
    fresh = GraphCatalog()
    fresh.register(name, g.copy())
    for f, h in pairs:
        q = DistanceQuery(name, f, h, leaf_size=leaf_size)
        a = cat.serve(q).result
        b = fresh.serve(q).result
        assert a == b and type(a) is type(b)


# ----------------------------------------------------------------------
# hypothesis: random mutate/set_weights/query sequences, audited
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", sorted(FAMILIES))
@settings(max_examples=5, deadline=None)
@given(data=st.data())
def test_random_mutation_sequences_bit_parity(family, data):
    g = make_family(family)
    cat = GraphCatalog()
    cat.register("g", g)
    cat.get("g").labeling(leaf_size=LEAF)  # warm: repair has a target
    nf = g.num_faces()
    pair_st = st.tuples(st.integers(0, nf - 1), st.integers(0, nf - 1))
    for _ in range(data.draw(st.integers(2, 4), label="steps")):
        op = data.draw(st.sampled_from(
            ["mutate", "mutate", "set_weights", "query"]), label="op")
        if op == "mutate":
            eids = data.draw(st.lists(st.integers(0, g.m - 1),
                                      min_size=1, max_size=4,
                                      unique=True), label="eids")
            edges = {eid: data.draw(st.integers(1, 30),
                                    label=f"w[{eid}]")
                     for eid in eids}
            report = cat.mutate_weights("g", edges)
            assert all(g.weights[eid] == w for eid, w in edges.items())
            for row in report["labelings"]:
                assert row["action"] in ("repaired", "rebuild",
                                         "dropped")
        elif op == "set_weights":
            rng = random.Random(data.draw(st.integers(0, 10 ** 6),
                                          label="reseed"))
            cat.set_weights("g", weights=[rng.randint(1, 25)
                                          for _ in range(g.m)])
        else:
            f, h = data.draw(pair_st, label="pair")
            cat.serve(DistanceQuery("g", f, h, leaf_size=LEAF))
        pairs = data.draw(st.lists(pair_st, min_size=2, max_size=4),
                          label="audit pairs")
        assert_bit_parity(cat, "g", g, pairs)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10 ** 6))
def test_negative_length_reprice_bit_parity(seed):
    """Negative lengths family (labeling level, where the length map
    is free): potential-shifted negatives stay cycle-free, and a
    sequence of reprices — single-dart base changes and whole-face
    potential bumps — stays bit-identical to from-scratch builds."""
    rng = random.Random(seed)
    g = random_planar(30 + seed % 15, seed=seed % 23)
    base, phi, lengths = mixed_lengths(g, seed=seed)
    assert any(v < 0 for v in lengths.values())
    bdd = build_bdd(g, leaf_size=8 + seed % 5)
    lab = DualDistanceLabeling(bdd, dict(lengths), backend="engine",
                               repair_state=True)
    for _ in range(3):
        changes = {}
        if rng.random() < 0.5:  # re-draw one dart's base length
            d = rng.randrange(2 * g.m)
            base[d] = rng.randint(1, 10)
            changes[d] = (base[d] + phi[g.face_of[d]]
                          - phi[g.face_of[d ^ 1]])
        else:  # bump one face potential: touches every incident dart
            f = rng.randrange(g.num_faces())
            phi[f] += rng.choice([-3, -1, 1, 3])
            for d in g.darts():
                if g.face_of[d] == f or g.face_of[d ^ 1] == f:
                    changes[d] = (base[d] + phi[g.face_of[d]]
                                  - phi[g.face_of[d ^ 1]])
        lengths.update(changes)
        stats = lab.reprice(changes)
        assert stats["repaired"] is True
        ref = DualDistanceLabeling(bdd, dict(lengths),
                                   backend="engine")
        assert lab._labels == ref._labels
        for (bag, f), lbl in lab._labels.items():
            for ea, eb in zip(lbl.entries,
                              ref._labels[(bag, f)].entries):
                for attr in ("dist_to", "dist_from"):
                    da, db = getattr(ea, attr), getattr(eb, attr)
                    assert all(type(da[h]) is type(db[h]) for h in da)


# ----------------------------------------------------------------------
# negative-cycle sites family: mutation raises exactly like a rebuild
# ----------------------------------------------------------------------
class TestNegativeCycleSites:
    def raise_site(self, fn):
        try:
            fn()
        except NegativeCycleError as e:
            return (str(e), e.where)
        return None

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_mutation_raises_at_rebuild_site(self, family):
        g = make_family(family, seed=7)
        cat = GraphCatalog()
        cat.register("g", g)
        cat.get("g").labeling(leaf_size=LEAF)
        # any negative weight is a negative dual cycle (the two-dart
        # cycle through the edge costs w + 0), so mutation must raise
        edges = {2: -4, 5: g.weights[5] + 1}
        got = self.raise_site(
            lambda: cat.mutate_weights("g", edges))
        assert got is not None
        # ... with the weights applied and every labeling dropped
        assert g.weights[2] == -4 and g.weights[5] == edges[5]
        assert not any(k[0] == "labeling" and k[1] == "g"
                       for k, _ in cat.artifacts.items())
        fresh = GraphCatalog()
        fresh.register("g", g.copy())
        want = self.raise_site(
            lambda: fresh.get("g").labeling(leaf_size=LEAF))
        assert got == want
        # both sides of the audit raise identically -> report, not
        # AuditError, and the error site is recorded
        report = cat.audit_labeling("g", leaf_size=LEAF)
        assert report["error"]["type"] == "NegativeCycleError"
        assert report["error"]["message"] == want[0]

    def test_recovery_after_cycle(self):
        g = make_family("grid", seed=9)
        cat = GraphCatalog()
        cat.register("g", g)
        cat.get("g").labeling(leaf_size=LEAF)
        with pytest.raises(NegativeCycleError):
            cat.mutate_weights("g", {0: -9})
        cat.mutate_weights("g", {0: 9})  # no labeling left: just mutates
        nf = g.num_faces()
        assert_bit_parity(cat, "g", g, [(0, nf - 1), (1, 2)])


# ----------------------------------------------------------------------
# the repair must actually be a delta (not a disguised rebuild)
# ----------------------------------------------------------------------
class TestDeltaRepair:
    def test_small_mutation_repairs_few_bags(self):
        g = make_family("grid")
        cat = GraphCatalog()
        cat.register("g", g)
        lab = cat.get("g").labeling(leaf_size=LEAF)
        report = cat.mutate_weights("g", {3: g.weights[3] + 5})
        (row,) = report["labelings"]
        assert row["action"] == "repaired"
        assert 0 < row["dirty_bags"] < row["total_bags"]
        assert row["reused_children"] >= 0
        # repaired in place and re-keyed: same object, still cached
        assert cat.get("g").labeling(leaf_size=LEAF) is lab

    def test_flow_results_stay_warm_distance_results_drop(self):
        g = make_family("grid")
        cat = GraphCatalog()
        cat.register("g", g)
        cat.get("g").labeling(leaf_size=LEAF)
        fq = FlowQuery("g", 0, g.n - 1)
        dq = DistanceQuery("g", 0, 3, leaf_size=LEAF)
        cat.serve(fq), cat.serve(dq)
        report = cat.mutate_weights("g", {1: g.weights[1] + 2})
        assert report["results_migrated"] >= 1
        assert report["results_dropped"] >= 1
        assert cat.serve(fq).warm is True  # capacities untouched
        assert cat.serve(dq).warm is False  # weights changed

    def test_over_threshold_falls_back_to_rebuild(self):
        g = make_family("grid")
        cat = GraphCatalog()
        cat.register("g", g)
        cat.get("g").labeling(leaf_size=LEAF)
        report = cat.mutate_weights("g", {0: g.weights[0] + 1},
                                    max_dirty_frac=0.0)
        (row,) = report["labelings"]
        assert row["action"] == "rebuild"
        nf = g.num_faces()
        assert_bit_parity(cat, "g", g, [(0, nf - 1)])  # cold rebuild

    def test_value_identical_mutation_is_a_no_op(self):
        g = make_family("grid")
        cat = GraphCatalog()
        cat.register("g", g)
        lab = cat.get("g").labeling(leaf_size=LEAF)
        report = cat.mutate_weights("g", {0: g.weights[0],
                                          4: g.weights[4]})
        assert report["changed_edges"] == 0
        assert report["labelings"] == []
        assert cat.get("g").labeling(leaf_size=LEAF) is lab

    def test_audit_catches_corruption(self):
        g = make_family("grid")
        cat = GraphCatalog()
        cat.register("g", g)
        lab = cat.get("g").labeling(leaf_size=LEAF)
        cat.audit_labeling("g", leaf_size=LEAF)  # clean
        # corrupt one stored distance behind the catalog's back
        key = sorted(lab._labels)[0]
        entry = lab._labels[key].entries[0]
        h = sorted(entry.dist_to)[0]
        entry.dist_to[h] += 1
        with pytest.raises(AuditError) as info:
            cat.audit_labeling("g", leaf_size=LEAF)
        assert info.value.report["divergence"]
        entry.dist_to[h] -= 1

    def test_audit_catches_stale_lengths(self):
        # (an out-of-band *graph* mutation is already stale-proof: the
        # fingerprint-keyed lookup misses and audit sees a fresh
        # build — what audit must catch is a labeling whose internal
        # length map disagrees with the graph it serves)
        g = make_family("grid")
        cat = GraphCatalog()
        cat.register("g", g)
        lab = cat.get("g").labeling(leaf_size=LEAF)
        lab.lengths[0] += 3
        with pytest.raises(AuditError, match="lengths"):
            cat.audit_labeling("g", leaf_size=LEAF)
        lab.lengths[0] -= 3
        assert lab.lengths == default_dual_lengths(g)
        cat.audit_labeling("g", leaf_size=LEAF)


# ----------------------------------------------------------------------
# input validation and misuse guards
# ----------------------------------------------------------------------
class TestValidation:
    def setup_method(self):
        self.g = make_family("grid")
        self.cat = GraphCatalog()
        self.cat.register("g", self.g)

    def test_unknown_graph(self):
        with pytest.raises(ServiceError, match="unknown graph"):
            self.cat.mutate_weights("nope", {0: 1})
        with pytest.raises(ServiceError, match="unknown graph"):
            self.cat.audit_labeling("nope")

    @pytest.mark.parametrize("edges", [
        {-1: 5}, {10 ** 9: 5}, {"0": 5}, {True: 5},
        {0: float("inf")}, {0: float("nan")}, {0: True}, {0: "7"},
        [(0,)], [(0, 1, 2)], [3],
    ])
    def test_bad_edges_rejected_before_mutation(self, edges):
        before = list(self.g.weights)
        with pytest.raises(ServiceError, match="mutate_weights"):
            self.cat.mutate_weights("g", edges)
        assert self.g.weights == before

    def test_pair_iterable_accepted(self):
        report = self.cat.mutate_weights(
            "g", [(0, self.g.weights[0] + 1), (1, 2.5)])
        assert report["changed_edges"] == 2
        assert self.g.weights[1] == 2.5

    def test_reprice_requires_repair_state(self):
        bdd = build_bdd(self.g, leaf_size=LEAF)
        lab = DualDistanceLabeling(
            bdd, default_dual_lengths(self.g), backend="engine")
        with pytest.raises(ValueError, match="repair_state"):
            lab.reprice({0: 99})
        with pytest.raises(ValueError, match="repair_state"):
            DualDistanceLabeling(bdd, default_dual_lengths(self.g),
                                 repair_state=True)  # legacy backend
