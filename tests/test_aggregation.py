"""Tests for the minor-aggregation model stack."""

import math
import random

import networkx as nx
import pytest

from repro.aggregation import (
    ApproxSsspOracle,
    DualMAHost,
    MinorAggregationGraph,
    boruvka_mst,
    deactivate_parallel_edges,
    low_outdegree_orientation,
    minor_aggregate_mincut,
    smooth_sssp,
)
from repro.aggregation.smoothing import smoothness_defect, verify_smoothness
from repro.aggregation.subtree import ancestor_path_sums, subtree_sums
from repro.congest import RoundLedger
from repro.errors import SimulationError
from repro.planar.generators import grid, random_planar, randomize_weights


def small_ma():
    # square with a diagonal
    nodes = [0, 1, 2, 3]
    edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
    weights = [1, 2, 3, 4, 5]
    return MinorAggregationGraph(nodes, edges, weights=weights)


class TestModel:
    def test_contract_merges(self):
        ma = small_ma()
        ma.contract({0: True})
        assert ma.find(0) == ma.find(1)
        assert ma.find(2) != ma.find(0)
        assert len(ma.supernode_members()) == 3

    def test_consensus(self):
        ma = small_ma()
        ma.contract({0: True, 2: True})  # {0,1}, {2,3}
        vals = ma.consensus({0: 5, 1: 7, 2: 1, 3: 2}, max)
        assert vals[0] == vals[1] == 7
        assert vals[2] == vals[3] == 2

    def test_aggregate_skips_internal_edges(self):
        ma = small_ma()
        ma.contract({0: True})  # merge 0,1
        seen = []

        def edge_fn(e, ru, rv):
            seen.append(e.eid)
            return 1, 1

        out = ma.aggregate(edge_fn, lambda a, b: a + b)
        assert 0 not in seen  # edge (0,1) is internal now
        # node {0,1} is incident to edges 1 (1-2), 3 (3-0), 4 (0-2)
        assert out[0] == 3

    def test_rounds_counted(self):
        ma = small_ma()
        assert ma.ma_rounds == 0
        ma.contract({})
        ma.consensus({}, min)
        ma.aggregate(lambda e, a, b: None, min)
        assert ma.ma_rounds == 3

    def test_virtual_nodes(self):
        ma = small_ma()
        new_edges = ma.add_virtual_node("s*", [0, 2], weights=[10, 20])
        assert len(new_edges) == 2
        assert ma.virtual_overhead == 1
        vals = ma.consensus({"s*": 1, 0: 2}, lambda a, b: a + b)
        assert vals["s*"] == 1

    def test_duplicate_virtual_rejected(self):
        ma = small_ma()
        with pytest.raises(SimulationError):
            ma.add_virtual_node(0, [1])


class TestBoruvka:
    def test_mst_matches_networkx(self):
        for seed in range(5):
            rng = random.Random(seed)
            g = randomize_weights(random_planar(30, seed=seed), seed=seed)
            ma = MinorAggregationGraph(list(range(g.n)), g.edges,
                                       weights=g.weights)
            tree = boruvka_mst(ma)
            w_ours = sum(g.weights[e] for e in tree)
            nxg = nx.Graph()
            for eid, (u, v) in enumerate(g.edges):
                if nxg.has_edge(u, v):
                    nxg[u][v]["weight"] = min(nxg[u][v]["weight"],
                                              g.weights[eid])
                else:
                    nxg.add_edge(u, v, weight=g.weights[eid])
            w_ref = sum(d["weight"] for _u, _v, d in
                        nx.minimum_spanning_edges(nxg, data=True))
            assert w_ours == w_ref
            assert len(tree) == g.n - 1

    def test_ma_round_budget_logarithmic(self):
        g = random_planar(100, seed=1)
        ma = MinorAggregationGraph(list(range(g.n)), g.edges)
        boruvka_mst(ma)
        # 2 MA rounds per Boruvka phase, O(log n) phases
        assert ma.ma_rounds <= 4 * math.ceil(math.log2(g.n)) + 4

    def test_forbidden_edges(self):
        ma = small_ma()
        tree = boruvka_mst(ma, forbidden={0})
        assert 0 not in tree
        assert len(tree) == 3


class TestOrientation:
    def test_orientation_low_outdegree(self):
        g = random_planar(60, seed=2)
        ma = MinorAggregationGraph(list(range(g.n)), g.edges)
        _phase, oriented = low_outdegree_orientation(ma)
        outdeg = {}
        for eid, (t, h) in oriented.items():
            outdeg.setdefault(t, set()).add(h)
        assert max(len(s) for s in outdeg.values()) <= 9  # 3 * arboricity

    def test_deactivate_parallel(self):
        nodes = [0, 1, 2]
        edges = [(0, 1), (0, 1), (1, 2), (2, 2)]
        weights = [3, 4, 5, 9]
        ma = MinorAggregationGraph(nodes, edges, weights=weights)
        rep = deactivate_parallel_edges(ma, lambda a, b: a + b)
        active = ma.active_edges()
        assert len(active) == 2  # self-loop gone, bundle collapsed
        bundle_edge = next(e for e in active if {e.u, e.v} == {0, 1})
        assert bundle_edge.weight == 7
        assert sorted(rep[bundle_edge.eid]) == [0, 1]

    def test_deactivate_min_operator(self):
        nodes = [0, 1]
        edges = [(0, 1), (0, 1), (0, 1)]
        ma = MinorAggregationGraph(nodes, edges, weights=[5, 2, 8])
        deactivate_parallel_edges(ma, min)
        active = ma.active_edges()
        assert len(active) == 1
        assert active[0].weight == 2


class TestMincut:
    def ref_mincut(self, edges, weights, n):
        nxg = nx.Graph()
        nxg.add_nodes_from(range(n))
        for eid, (u, v) in enumerate(edges):
            if u == v:
                continue
            if nxg.has_edge(u, v):
                nxg[u][v]["weight"] += weights[eid]
            else:
                nxg.add_edge(u, v, weight=weights[eid])
        return nx.stoer_wagner(nxg)[0]

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_stoer_wagner(self, seed):
        g = randomize_weights(random_planar(24 + seed, seed=seed),
                              seed=seed + 100)
        res = minor_aggregate_mincut(list(range(g.n)), g.edges, g.weights)
        ref = self.ref_mincut(g.edges, g.weights, g.n)
        assert res.value == ref

    def test_cut_edges_consistent(self):
        g = randomize_weights(random_planar(30, seed=7), seed=7)
        res = minor_aggregate_mincut(list(range(g.n)), g.edges, g.weights)
        assert sum(g.weights[e] for e in res.cut_edge_ids) == res.value
        side = set(res.side_nodes)
        assert 0 < len(side) < g.n
        for eid in res.cut_edge_ids:
            u, v = g.edges[eid]
            assert (u in side) != (v in side)

    def test_unbalanced_cut_found(self):
        # a pendant vertex with a light edge is the min cut
        nodes = list(range(5))
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3), (2, 4)]
        weights = [10, 10, 10, 10, 10, 10, 1]
        res = minor_aggregate_mincut(nodes, edges, weights)
        assert res.value == 1
        assert res.cut_edge_ids == [6]


class TestSubtreePrimitives:
    def test_subtree_sums(self):
        ma = MinorAggregationGraph([0, 1, 2, 3, 4],
                                   [(0, 1), (1, 2), (1, 3), (0, 4)])
        out = subtree_sums(ma, [(0, 1), (1, 2), (1, 3), (0, 4)], 0,
                           {v: 1 for v in range(5)})
        assert out[0] == 5
        assert out[1] == 3
        assert out[4] == 1

    def test_ancestor_path_sums(self):
        ma = MinorAggregationGraph([0, 1, 2, 3],
                                   [(0, 1), (1, 2), (2, 3)])
        out = ancestor_path_sums(ma, [(0, 1), (1, 2), (2, 3)], 0,
                                 {(0, 1): 5, (1, 2): 7, (2, 3): 2})
        assert out == {0: 0, 1: 5, 2: 12, 3: 14}


class TestApproxSsspAndSmoothing:
    def build(self, seed, eps):
        g = randomize_weights(random_planar(40, seed=seed), seed=seed)
        oracle = ApproxSsspOracle(g.n, g.edges, g.weights, eps, seed=seed)
        nxg = nx.Graph()
        for eid, (u, v) in enumerate(g.edges):
            if nxg.has_edge(u, v):
                nxg[u][v]["weight"] = min(nxg[u][v]["weight"],
                                          g.weights[eid])
            else:
                nxg.add_edge(u, v, weight=g.weights[eid])
        exact = nx.single_source_dijkstra_path_length(nxg, 0)
        return g, oracle, exact

    @pytest.mark.parametrize("seed", range(3))
    def test_oracle_contract(self, seed):
        eps = 0.1
        g, oracle, exact = self.build(seed, eps)
        d, _ = oracle.query(0)
        for v in range(g.n):
            assert exact[v] <= d[v] + 1e-9
            assert d[v] <= (1 + eps) * exact[v] + 1e-9

    def test_oracle_rounds_charged(self):
        g, oracle, _ = self.build(0, 0.25)
        before = oracle.ma_rounds_spent
        oracle.query(0)
        assert oracle.ma_rounds_spent > before

    @pytest.mark.parametrize("seed", range(3))
    def test_smoothing_gives_smooth_valid_estimates(self, seed):
        eps = 0.2
        g, oracle, exact = self.build(seed, eps)
        d = smooth_sssp(oracle, 0, eps)
        verify_smoothness(oracle, d, eps)
        for v in range(g.n):
            assert exact[v] <= d[v] + 1e-9
            assert d[v] <= (1 + eps) * exact[v] + 1e-9

    def test_defect_diagnostic(self):
        g, oracle, _ = self.build(1, 0.3)
        d, _ = oracle.query(0)
        assert smoothness_defect(g.edges, g.weights, d) >= 0


class TestDualHost:
    def test_ma_graph_over_faces(self):
        led = RoundLedger()
        host = DualMAHost(grid(3, 3), ledger=led)
        ma = host.ma_graph()
        assert len(ma.nodes) == host.primal.num_faces()
        assert len(ma.edges) == host.primal.m

    def test_charge_converts_ma_rounds(self):
        led = RoundLedger()
        host = DualMAHost(grid(3, 3), ledger=led)
        ma = host.ma_graph()
        ma.consensus({}, min)
        before = led.total()
        host.charge(ma, "test")
        assert led.total() >= before + host.pa_rounds
        assert ma.ma_rounds == 0
