"""Tests for the dual graph construction and cycle-cut duality."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NegativeCycleError
from repro.planar import DualGraph, PlanarGraph, rev
from repro.planar.dual import (
    bellman_ford_arcs,
    cut_edges_of_dual_cut,
    is_simple_cycle,
)
from repro.planar.generators import (
    grid,
    outerplanar_fan,
    path,
    random_planar,
    randomize_weights,
    wheel,
)


class TestDualStructure:
    def test_edge_bijection(self):
        g = grid(3, 4)
        dual = DualGraph(g)
        assert len(dual.undirected_edges()) == g.m

    def test_dual_node_degree_equals_face_length(self):
        g = grid(3, 4)
        dual = DualGraph(g)
        from collections import Counter

        deg = Counter()
        for _eid, f, h, _w in dual.undirected_edges():
            deg[f] += 1
            deg[h] += 1
        for fid, face in enumerate(g.faces):
            assert deg[fid] == len(face)

    def test_bridge_gives_self_loop(self):
        g = path(3)  # two bridges, one face
        dual = DualGraph(g)
        for _eid, f, h, _w in dual.undirected_edges():
            assert f == h  # all self-loops

    def test_parallel_dual_edges(self):
        # two faces of a 4-cycle share all 4 edges -> 4 parallel dual edges
        g = grid(2, 2)
        dual = DualGraph(g)
        assert dual.num_nodes == 2
        pairs = [(f, h) for _e, f, h, _w in dual.undirected_edges()]
        assert len(pairs) == 4

    def test_arcs_are_reversals(self):
        g = wheel(6)
        dual = DualGraph(g)
        for d in g.darts():
            t, h = dual.arc(d)
            t2, h2 = dual.arc(rev(d))
            assert (t, h) == (h2, t2)

    def test_euler_in_dual(self):
        # dual of a connected planar graph: nodes = f, edges = m, and its
        # own face count equals n (duality is an involution)
        g = grid(4, 4)
        dual = DualGraph(g)
        assert dual.num_nodes == g.num_faces()

    def test_faces_of_vertex(self):
        g = grid(3, 3)
        dual = DualGraph(g)
        center = 4
        assert len(dual.all_faces_of_vertex(center)) == 4


class TestCycleCutDuality:
    def test_grid_inner_face_cut(self):
        # the dual cut ({inner face}, rest) is the 4-cycle bounding it
        g = grid(3, 3)
        inner = [fid for fid, f in enumerate(g.faces) if len(f) == 4]
        for fid in inner:
            eids = cut_edges_of_dual_cut(g, [fid])
            assert len(eids) == 4
            assert is_simple_cycle(g, eids)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_random_dual_cuts_are_cycles_when_connected(self, seed):
        import random

        rng = random.Random(seed)
        g = random_planar(24, seed=seed % 100)
        dual = DualGraph(g)
        # grow a random connected set of faces not covering everything
        import networkx as nx

        adj = {f: set() for f in range(dual.num_nodes)}
        for _e, f, h, _w in dual.undirected_edges():
            if f != h:
                adj[f].add(h)
                adj[h].add(f)
        start = rng.randrange(dual.num_nodes)
        side = {start}
        for _ in range(rng.randrange(1, dual.num_nodes)):
            frontier = {b for a in side for b in adj[a]} - side
            if not frontier or len(side) + 1 >= dual.num_nodes:
                break
            side.add(rng.choice(sorted(frontier)))
        rest = set(range(dual.num_nodes)) - side
        # the complement side must also be connected for a simple cut
        sub = nx.Graph()
        sub.add_nodes_from(rest)
        for _e, f, h, _w in dual.undirected_edges():
            if f in rest and h in rest:
                sub.add_edge(f, h)
        if rest and nx.is_connected(sub):
            eids = cut_edges_of_dual_cut(g, side)
            assert is_simple_cycle(g, eids)


class TestBellmanFord:
    def test_simple_distances(self):
        arcs = [(0, 1, 5), (1, 2, -2), (0, 2, 9)]
        dist = bellman_ford_arcs(3, arcs, 0)
        assert dist[2] == 3

    def test_negative_cycle_detected(self):
        arcs = [(0, 1, 1), (1, 2, -5), (2, 1, 2)]
        with pytest.raises(NegativeCycleError):
            bellman_ford_arcs(3, arcs, 0)

    def test_unreachable(self):
        arcs = [(0, 1, 1)]
        dist = bellman_ford_arcs(3, arcs, 0)
        assert dist[2] == float("inf")

    def test_dual_bellman_ford_matches_networkx(self):
        import networkx as nx

        g = randomize_weights(grid(4, 4), seed=3)
        dual = DualGraph(g)
        lengths = {}
        for d in g.darts():
            lengths[d] = g.weights[d >> 1]
        ours = dual.bellman_ford(0, lengths)

        nxg = nx.DiGraph()
        for d in g.darts():
            t, h = dual.arc(d)
            w = lengths[d]
            if nxg.has_edge(t, h):
                w = min(w, nxg[t][h]["weight"])
            nxg.add_edge(t, h, weight=w)
        ref = nx.single_source_bellman_ford_path_length(nxg, 0)
        for v in range(dual.num_nodes):
            assert ours[v] == ref.get(v, float("inf"))
