"""Bit-parity of ``build_bdd(backend="engine")`` against the legacy
substrate, and the topology-keyed decomposition cache (DESIGN.md §14).

The engine backend must be indistinguishable from the reference: same
bag ids/levels/edge sets/live darts, same separator metadata, same
forced-leaf decisions and the same error sites
(:func:`repro.bdd.bdd_signature` covers all of it).  The catalog keys
the finished BDD and its dual bags by topology token in the engine's
shared cache, so weight repricing and snapshot restores must never
re-run the Lemma 5.1 recursion — verified here through the obs
counters (``bdd.separator.calls``, ``catalog.artifact.hit.bdd``), the
same mechanism the :class:`~repro.server.pool.WarmWorkerPool` spawn
handoff uses.
"""

import os
import pickle
import subprocess
import sys

import pytest

from repro import obs
from repro.bdd import bdd_signature, build_bdd
from repro.engine import DecompKernels, engine_diameter
from repro.errors import DecompositionError, NotConnectedError
from repro.obs import RingBufferSink
from repro.planar import PlanarGraph
from repro.planar.generators import (
    cylinder,
    grid,
    ladder,
    outerplanar_fan,
    random_planar,
    triangulated_disk,
    wheel,
)
from repro.service.catalog import GraphCatalog

FAMILIES = [
    ("wheel", lambda: wheel(40)),
    ("grid", lambda: grid(12, 12)),
    ("ladder", lambda: ladder(24)),
    ("cylinder", lambda: cylinder(5, 8)),
    ("fan", lambda: outerplanar_fan(30)),
    ("disk", lambda: triangulated_disk(4)),
    ("delaunay", lambda: random_planar(200, seed=3)),
]


@pytest.fixture
def array_kernels(monkeypatch):
    """Force the array separator kernels on every bag: the production
    threshold routes small bags to the (trivially bit-identical)
    legacy substrate, which would make test-sized parity vacuous."""
    monkeypatch.setattr(DecompKernels, "SMALL_BAG_EDGES", 0)


# ----------------------------------------------------------------------
# bit-identical decompositions
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,maker", FAMILIES)
@pytest.mark.parametrize("leaf", [None, 8, 16])
def test_bit_identical_bdd(array_kernels, name, maker, leaf):
    g = maker()
    eng = build_bdd(g, leaf_size=leaf, backend="engine")
    ref = build_bdd(g, leaf_size=leaf)
    assert bdd_signature(eng) == bdd_signature(ref)


def test_bit_identical_with_production_threshold():
    """The small-bag delegation path (default threshold) mixes
    substrates per bag — still bit-identical."""
    g = random_planar(200, seed=3)
    assert bdd_signature(build_bdd(g, leaf_size=8, backend="engine")) \
        == bdd_signature(build_bdd(g, leaf_size=8))


def test_forced_leaf_parity(array_kernels):
    """Bags whose separator makes no progress are kept as leaves —
    the engine must force the *same* leaves."""
    g = grid(12, 12)
    eng = build_bdd(g, leaf_size=8, backend="engine")
    ref = build_bdd(g, leaf_size=8)
    assert eng.forced_leaves > 0
    assert eng.forced_leaves == ref.forced_leaves
    assert bdd_signature(eng) == bdd_signature(ref)


def test_max_depth_error_parity(array_kernels):
    g = grid(8, 8)
    with pytest.raises(DecompositionError) as ref_err:
        build_bdd(g, leaf_size=8, max_depth=1)
    with pytest.raises(DecompositionError) as eng_err:
        build_bdd(g, leaf_size=8, max_depth=1, backend="engine")
    assert str(eng_err.value) == str(ref_err.value)


def _disconnected():
    """Two disjoint squares (valid embedding, two components)."""
    g2 = grid(2, 2)
    edges = list(g2.edges) + [(u + 4, v + 4) for (u, v) in g2.edges]
    rotations = [list(r) for r in g2.rotations]
    for r in g2.rotations:
        rotations.append([d + 2 * g2.m for d in r])
    return PlanarGraph(8, edges, rotations)


@pytest.mark.parametrize("backend", ["legacy", "engine"])
def test_disconnected_rejected(backend):
    with pytest.raises(NotConnectedError):
        build_bdd(_disconnected(), backend=backend)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown BDD backend"):
        build_bdd(grid(3, 3), backend="numpy")


# ----------------------------------------------------------------------
# diameter kernel
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,maker", FAMILIES)
def test_engine_diameter_matches(name, maker):
    g = maker()
    assert engine_diameter(g) == g.diameter()


def test_engine_diameter_requires_connected():
    with pytest.raises(NotConnectedError):
        engine_diameter(_disconnected())


# ----------------------------------------------------------------------
# topology-keyed decomposition cache
# ----------------------------------------------------------------------
def _counter(name):
    return obs.registry().snapshot().get(name, {}).get("value", 0)


def test_reprice_skips_decomposition():
    """set_weights and mutate_weights rebuild labels with zero
    separator calls: the BDD and dual bags are topology-keyed."""
    g = grid(8, 8)
    cat = GraphCatalog()
    cat.register("g", g)
    cat.get("g").labeling()
    obs.enable(RingBufferSink())
    try:
        before = _counter("bdd.separator.calls")
        cat.set_weights("g", weights=[2.0] * g.m)
        cat.get("g").labeling()
        cat.mutate_weights("g", {0: 5.0})
        cat.get("g").labeling()
        assert _counter("bdd.separator.calls") == before
        assert _counter("catalog.artifact.hit.bdd") >= 1
        assert _counter("catalog.artifact.hit.dual-bags") >= 1
    finally:
        obs.disable()


def test_catalog_bdd_backend_not_in_key():
    """The two backends are bit-identical, so the cache key ignores
    the knob: both return the same cached object."""
    cat = GraphCatalog()
    cat.register("g", grid(6, 6))
    entry = cat.get("g")
    assert entry.bdd() is entry.bdd(backend="legacy")


def test_snapshot_restore_reuses_decomposition():
    """The pickled warm-state handoff (what a spawn-mode
    WarmWorkerPool worker restores) re-keys the shared-cache BDD to
    the receiving process's topology tokens: a post-restore reprice
    still pays zero decomposition cost."""
    g = grid(8, 8)
    cat = GraphCatalog()
    cat.register("g", g)
    cat.get("g").labeling()
    restored = pickle.loads(pickle.dumps(cat.snapshot())).restore()
    obs.enable(RingBufferSink())
    try:
        before = _counter("bdd.separator.calls")
        restored.set_weights("g", weights=[3.0] * g.m)
        restored.get("g").labeling()
        assert _counter("bdd.separator.calls") == before
        assert _counter("catalog.artifact.hit.bdd") >= 1
    finally:
        obs.disable()


def test_unregister_frees_shared_decomposition():
    from repro._artifacts import shared_cache, topo_token

    cat = GraphCatalog()
    entry = cat.register("g", grid(6, 6))
    entry.bdd()
    topo = topo_token(entry.graph)
    assert ("bdd", topo, None) in shared_cache()
    cat.unregister("g")
    assert ("bdd", topo, None) not in shared_cache()


# ----------------------------------------------------------------------
# obs spans
# ----------------------------------------------------------------------
def test_separator_spans_emitted():
    sink = RingBufferSink()
    obs.enable(sink)
    try:
        build_bdd(grid(8, 8), leaf_size=16, backend="engine")
    finally:
        obs.disable()
    spans = [s for s in sink.spans() if s["name"] == "bdd.separator"]
    assert spans, "no bdd.separator spans emitted"
    for s in spans:
        assert {"level", "m", "balance", "sx", "bfs_depth"} \
            <= set(s["tags"])
    build_spans = [s for s in sink.spans() if s["name"] == "bdd.build"]
    assert build_spans and build_spans[0]["tags"]["backend"] == "engine"


# ----------------------------------------------------------------------
# numpy-free fallback
# ----------------------------------------------------------------------
def test_no_numpy_bdd_parity():
    code = (
        "from repro._compat import np\n"
        "assert np is None\n"
        "from repro.bdd import bdd_signature, build_bdd\n"
        "from repro.engine import engine_diameter\n"
        "from repro.planar.generators import grid, random_planar\n"
        "for g in (grid(6, 6), random_planar(60, seed=5)):\n"
        "    eng = build_bdd(g, leaf_size=10, backend='engine')\n"
        "    ref = build_bdd(g, leaf_size=10)\n"
        "    assert bdd_signature(eng) == bdd_signature(ref)\n"
        "    assert engine_diameter(g) == g.diameter()\n"
        "print('OK')\n"
    )
    env = dict(os.environ, REPRO_ENGINE_NO_NUMPY="1",
               PYTHONPATH="src" + os.pathsep
               + os.environ.get("PYTHONPATH", ""))
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, timeout=300,
                          cwd=os.path.dirname(os.path.dirname(
                              os.path.abspath(__file__))))
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "OK"
