"""Engine-vs-legacy parity for the Theorem 2.1 labeling pipeline
(DESIGN.md §9): the compiled-bag builder must produce *bit-identical*
labels — same Label chains, same dict contents, same decoded distances,
same NegativeCycleError messages and ``where`` sites — on positive and
mixed-sign lengths, and the compiled bag arrays must be reused across
weight-only changes (including a ``GraphCatalog.set_weights`` reprice).
"""

import os
import random
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro._artifacts import shared_cache, topo_token
from repro.bdd import build_bdd
from repro.congest import RoundLedger
from repro.errors import NegativeCycleError
from repro.labeling import (
    DualDistanceLabeling,
    PrimalDistanceLabeling,
    dual_sssp,
)
from repro.planar.generators import (
    cylinder,
    grid,
    random_planar,
    randomize_weights,
)
from repro.service import DistanceQuery, GraphCatalog


def positive_lengths(g, seed=0):
    rng = random.Random(seed)
    return {d: rng.randint(1, 12) for d in g.darts()}


def mixed_lengths(g, seed=0):
    """Negative lengths without negative cycles (potential shifts)."""
    rng = random.Random(seed)
    base = {d: rng.randint(1, 10) for d in g.darts()}
    phi = {f: rng.randint(-8, 8) for f in range(g.num_faces())}
    return {d: base[d] + phi[g.face_of[d]] - phi[g.face_of[d ^ 1]]
            for d in g.darts()}


def both(bdd, lengths):
    return (DualDistanceLabeling(bdd, lengths),
            DualDistanceLabeling(bdd, lengths, backend="engine"))


# ----------------------------------------------------------------------
# bit-identical labels
# ----------------------------------------------------------------------
@pytest.mark.parametrize("maker,leaf", [
    (lambda: grid(5, 5), 12),
    (lambda: grid(3, 10), 10),
    (lambda: cylinder(3, 7), 12),
    (lambda: random_planar(45, seed=3), 14),
    (lambda: random_planar(40, seed=8, keep=0.8), 12),
])
class TestLabelParity:
    def test_positive_lengths_bit_identical(self, maker, leaf):
        g = maker()
        bdd = build_bdd(g, leaf_size=leaf)
        leg, eng = both(bdd, positive_lengths(g, seed=1))
        assert leg._labels == eng._labels

    def test_negative_lengths_bit_identical(self, maker, leaf):
        g = maker()
        lengths = mixed_lengths(g, seed=2)
        assert any(v < 0 for v in lengths.values())
        bdd = build_bdd(g, leaf_size=leaf)
        leg, eng = both(bdd, lengths)
        assert leg._labels == eng._labels

    def test_decoded_distances_match(self, maker, leaf):
        g = maker()
        bdd = build_bdd(g, leaf_size=leaf)
        leg, eng = both(bdd, mixed_lengths(g, seed=5))
        for s in range(0, g.num_faces(), 2):
            for t in range(g.num_faces()):
                assert eng.distance(s, t) == leg.distance(s, t)


class TestEngineLabelingBehaviour:
    def test_root_labels_and_bits(self):
        g = grid(6, 6)
        bdd = build_bdd(g, leaf_size=10)
        leg, eng = both(bdd, positive_lengths(g, seed=3))
        assert eng.all_labels_root() == leg.all_labels_root()
        assert eng.max_label_bits() == leg.max_label_bits()

    def test_dual_sssp_on_engine_labels(self):
        g = grid(5, 5)
        bdd = build_bdd(g, leaf_size=10)
        leg, eng = both(bdd, mixed_lengths(g, seed=4))
        for src in (0, 3):
            assert dual_sssp(eng, source=src).dist == \
                dual_sssp(leg, source=src).dist

    def test_single_leaf_bag(self):
        g = grid(3, 3)
        bdd = build_bdd(g, leaf_size=1000)  # everything in one leaf
        leg, eng = both(bdd, positive_lengths(g))
        assert leg._labels == eng._labels

    def test_unknown_backend_rejected(self):
        g = grid(3, 3)
        bdd = build_bdd(g, leaf_size=8)
        with pytest.raises(ValueError):
            DualDistanceLabeling(bdd, positive_lengths(g),
                                 backend="vroom")
        with pytest.raises(ValueError):
            PrimalDistanceLabeling(g, backend="vroom")

    def test_engine_charges_no_rounds(self):
        """CONGEST accounting is a legacy-backend contract (same as
        PlanarMaxFlow): the centralized engine charges nothing."""
        g = grid(5, 5)
        bdd = build_bdd(g, leaf_size=10)
        led = RoundLedger()
        DualDistanceLabeling(bdd, positive_lengths(g), ledger=led,
                             backend="engine")
        assert led.total() == 0


# ----------------------------------------------------------------------
# negative-cycle detection parity (Lemma 5.19 sites)
# ----------------------------------------------------------------------
def raise_site(bdd, lengths, backend):
    try:
        DualDistanceLabeling(bdd, lengths, backend=backend)
    except NegativeCycleError as e:
        return (str(e), e.where)
    return None


class TestNegativeCycleParity:
    def test_negative_self_loop_same_site(self):
        g = grid(1, 4)
        lengths = {d: 1 for d in g.darts()}
        lengths[0] = -5
        bdd = build_bdd(g, leaf_size=8)
        leg = raise_site(bdd, lengths, "legacy")
        eng = raise_site(bdd, lengths, "engine")
        assert leg is not None and leg[1][0] == "leaf"
        assert eng == leg

    def test_leaf_cycle_same_bag(self):
        g = grid(4, 4)
        lengths = {d: 3 for d in g.darts()}
        for d in g.rotations[5]:
            lengths[d] = -10
        bdd = build_bdd(g, leaf_size=10)
        leg = raise_site(bdd, lengths, "legacy")
        eng = raise_site(bdd, lengths, "engine")
        assert leg is not None and leg[1][0] == "leaf"
        assert eng == leg

    def test_fx_crossing_cycle_same_bag(self):
        g = grid(6, 6)
        lengths = {d: 2 for d in g.darts()}
        for d in g.rotations[14]:
            lengths[d] = -9
        bdd = build_bdd(g, leaf_size=6)
        leg = raise_site(bdd, lengths, "legacy")
        eng = raise_site(bdd, lengths, "engine")
        assert leg is not None and leg[1][0] == "ddg"
        assert eng == leg

    def test_no_false_positive(self):
        g = grid(5, 5)
        bdd = build_bdd(g, leaf_size=10)
        DualDistanceLabeling(bdd, mixed_lengths(g, seed=5),
                             backend="engine")  # must not raise

    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=0, max_value=10 ** 6))
    def test_random_negative_instances_same_outcome(self, seed):
        """Random sprinkled negatives: either both backends build the
        same labels or both raise at the same site."""
        rng = random.Random(seed)
        g = random_planar(18 + seed % 20, seed=seed % 37)
        lengths = {d: rng.randint(1, 9) for d in g.darts()}
        for d in rng.sample(sorted(lengths), k=max(1, g.m // 6)):
            lengths[d] = -rng.randint(1, 6)
        bdd = build_bdd(g, leaf_size=8 + seed % 8)
        leg = raise_site(bdd, lengths, "legacy")
        eng = raise_site(bdd, lengths, "engine")
        if leg is None:
            leg_lab, eng_lab = both(bdd, lengths)
            assert leg_lab._labels == eng_lab._labels
        assert eng == leg


# ----------------------------------------------------------------------
# primal labeling engine backend
# ----------------------------------------------------------------------
class TestPrimalEngineParity:
    @pytest.mark.parametrize("maker", [
        lambda: randomize_weights(grid(5, 6), seed=2),
        lambda: randomize_weights(random_planar(45, seed=4), seed=4),
    ])
    def test_labels_bit_identical(self, maker):
        g = maker()
        leg = PrimalDistanceLabeling(g, leaf_size=12)
        eng = PrimalDistanceLabeling(g, leaf_size=12, backend="engine")
        assert leg._labels == eng._labels
        for u in range(0, g.n, 3):
            for v in range(g.n):
                assert eng.distance(u, v) == leg.distance(u, v)

    def test_engine_reuses_one_workspace(self):
        g = randomize_weights(grid(4, 5), seed=1)
        eng = PrimalDistanceLabeling(g, leaf_size=10, backend="engine")
        # one pooled workspace for the whole recursion, many runs
        assert eng._ws.sssp_runs > len(eng.bdd.bags)


# ----------------------------------------------------------------------
# compiled-bag artifact reuse
# ----------------------------------------------------------------------
class TestCompiledBagReuse:
    def test_weight_only_rebuild_hits_compiled_bags(self):
        g = grid(5, 5)
        bdd = build_bdd(g, leaf_size=10)
        key_prefix = ("labels-bags", topo_token(g))
        DualDistanceLabeling(bdd, positive_lengths(g, 1),
                             backend="engine")
        keys = [k for k in shared_cache().keys()
                if k[:2] == key_prefix]
        assert len(keys) == 1
        hits_before = shared_cache().hits
        DualDistanceLabeling(bdd, positive_lengths(g, 2),
                             backend="engine")
        assert shared_cache().hits > hits_before
        assert [k for k in shared_cache().keys()
                if k[:2] == key_prefix] == keys

    def test_fresh_bdd_same_topology_reuses_bags(self):
        """set_weights drops the catalog's BDD artifact; the rebuild's
        fresh (deterministic) BDD must still hit the compiled bags."""
        g = randomize_weights(grid(4, 5), seed=3)
        cat = GraphCatalog()
        cat.register("g", g)
        cat.serve(DistanceQuery("g", 0, 1))
        prefix = ("labels-bags", topo_token(g))
        keys = [k for k in shared_cache().keys() if k[:2] == prefix]
        assert len(keys) == 1
        cat.set_weights("g", [w + 1 for w in g.weights])
        got = cat.serve(DistanceQuery("g", 1, 3))
        assert got.warm is False
        assert [k for k in shared_cache().keys()
                if k[:2] == prefix] == keys
        lab = DualDistanceLabeling(
            build_bdd(g),
            {d: (g.weights[d >> 1] if d % 2 == 0 else 0)
             for d in g.darts()})
        assert got.result == lab.distance(1, 3)

    def test_slice_workspaces_survive_rebuilds(self):
        from repro.engine import compile_labeling_bags

        g = grid(4, 4)
        bdd = build_bdd(g, leaf_size=10)
        compiled = compile_labeling_bags(bdd)
        ws = {bid: sl.workspace
              for bid, sl in compiled.slices.items()}
        DualDistanceLabeling(bdd, positive_lengths(g, 1),
                             backend="engine")
        DualDistanceLabeling(bdd, positive_lengths(g, 2),
                             backend="engine")
        compiled2 = compile_labeling_bags(bdd)
        assert compiled2 is compiled
        for bid, sl in compiled2.slices.items():
            assert sl.workspace is ws[bid]


# ----------------------------------------------------------------------
# numpy-free fallback (subprocess: the toggle is read at import time)
# ----------------------------------------------------------------------
def test_no_numpy_labeling_parity():
    code = (
        "from repro._compat import np\n"
        "assert np is None\n"
        "import random\n"
        "from repro.bdd import build_bdd\n"
        "from repro.labeling import (DualDistanceLabeling,"
        " PrimalDistanceLabeling)\n"
        "from repro.planar.generators import grid, randomize_weights\n"
        "g = randomize_weights(grid(4, 5), seed=3)\n"
        "rng = random.Random(7)\n"
        "base = {d: rng.randint(1, 9) for d in g.darts()}\n"
        "phi = {f: rng.randint(-5, 5) for f in range(g.num_faces())}\n"
        "lengths = {d: base[d] + phi[g.face_of[d]]"
        " - phi[g.face_of[d ^ 1]] for d in g.darts()}\n"
        "bdd = build_bdd(g, leaf_size=10)\n"
        "a = DualDistanceLabeling(bdd, lengths)\n"
        "b = DualDistanceLabeling(bdd, lengths, backend='engine')\n"
        "assert a._labels == b._labels\n"
        "p = PrimalDistanceLabeling(g, leaf_size=10)\n"
        "q = PrimalDistanceLabeling(g, leaf_size=10, backend='engine')\n"
        "assert p._labels == q._labels\n"
        "print('OK')\n"
    )
    env = dict(os.environ, REPRO_ENGINE_NO_NUMPY="1",
               PYTHONPATH="src" + os.pathsep
               + os.environ.get("PYTHONPATH", ""))
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, timeout=300,
                          cwd=os.path.dirname(os.path.dirname(
                              os.path.abspath(__file__))))
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "OK"
